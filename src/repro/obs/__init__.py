"""Observability layer: metrics registry, tracing spans, profiling hooks.

``repro.obs`` is the measurement substrate the rest of the system reports
into — attention backends (dense/sparse access split, per-step filter
ratio), the offload supervisor (retries / repairs / degradations), the
DReX device and analytic timing models (per-stage modeled latency
attribution), and the serve engine (queue depth, batch size, preemptions,
shed causes, TTFT/TPOT distributions).

Instrumented components take an optional :class:`Obs` bundle (a metrics
registry plus a tracer); passing ``None`` binds them to the process-global
default, which ships with metrics **enabled** (bounded memory: counters,
gauges, fixed-bucket histograms) and tracing **disabled** (span storage
grows with work, so traces are opt-in per run).  ``NULL_OBS`` disables
everything at the cost of a branch per hook — the overhead-regression
test pins that mode below 5% of a decode microloop.

See DESIGN.md ("Observability") for the span taxonomy and metric names.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM,
                               exact_percentile)
from repro.obs.trace import Span, Tracer


class Obs:
    """A metrics registry and a tracer, bundled for passing around."""

    __slots__ = ("metrics", "tracer")

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None \
            else Tracer(enabled=False)


#: Fully disabled bundle: every hook reduces to a guard branch.
NULL_OBS = Obs(MetricsRegistry(enabled=False), Tracer(enabled=False))

#: Process-global default: metrics on, tracing off.
_DEFAULT_OBS = Obs()


def default_obs() -> Obs:
    """The process-global bundle components bind to when given ``None``."""
    return _DEFAULT_OBS


def set_default_obs(obs: Obs) -> Obs:
    """Swap the process-global bundle; returns the previous one."""
    global _DEFAULT_OBS
    previous = _DEFAULT_OBS
    _DEFAULT_OBS = obs
    return previous


def resolve_obs(obs: Optional[Obs]) -> Obs:
    """``obs`` itself, or the process-global default when ``None``.

    Components resolve at construction time, so swapping the default
    affects newly built components only — a run already holding a bundle
    keeps it.
    """
    return obs if obs is not None else _DEFAULT_OBS


__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "Obs", "Span",
    "Tracer", "NULL_COUNTER", "NULL_GAUGE", "NULL_HISTOGRAM", "NULL_OBS",
    "default_obs", "exact_percentile", "resolve_obs", "set_default_obs",
]
