"""Nested tracing spans with Chrome ``trace_event`` and JSONL export.

A :class:`Tracer` records ``span("decode_step")``-style nested intervals
on a monotonic clock.  Spans are appended to ``tracer.spans`` *at entry*
(so a parent always precedes its children and sibling order is execution
order) and closed at exit; the three exports are:

- :meth:`Tracer.to_chrome_trace` — the Chrome ``trace_event`` JSON object
  (open in ``chrome://tracing`` or https://ui.perfetto.dev);
- :meth:`Tracer.jsonl_lines` — one JSON object per span, a flat stream
  suitable for log shipping;
- :meth:`Tracer.span_tree` — names and nesting only, no timestamps — the
  stable shape the golden-trace test pins.

A tracer constructed with ``enabled=False`` is the no-op mode: ``span``
returns a shared null context manager and nothing is recorded, so
always-on instrumentation costs one method call per span site.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Callable, Dict, List, Optional


class Span:
    """One closed (or still-open) interval in the trace."""

    __slots__ = ("name", "start_s", "end_s", "depth", "parent", "index",
                 "args")

    def __init__(self, name: str, start_s: float, depth: int, parent: int,
                 index: int, args: Optional[dict]) -> None:
        self.name = name
        self.start_s = start_s
        self.end_s = start_s          # patched at exit
        self.depth = depth
        self.parent = parent          # index into Tracer.spans, -1 for roots
        self.index = index
        self.args = args or {}

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def as_dict(self) -> dict:
        return {"name": self.name, "start_s": self.start_s,
                "end_s": self.end_s, "depth": self.depth,
                "parent": self.parent, "args": self.args}


class _NullSpan:
    """Shared do-nothing context manager for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    __slots__ = ("tracer", "name", "args", "_index")

    def __init__(self, tracer: "Tracer", name: str,
                 args: Optional[dict]) -> None:
        self.tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> Span:
        tracer = self.tracer
        span = Span(self.name, tracer.clock(), depth=len(tracer._stack),
                    parent=tracer._stack[-1] if tracer._stack else -1,
                    index=len(tracer.spans), args=self.args)
        tracer.spans.append(span)
        tracer._stack.append(span.index)
        self._index = span.index
        return span

    def __exit__(self, *exc) -> bool:
        tracer = self.tracer
        tracer._stack.pop()
        tracer.spans[self._index].end_s = tracer.clock()
        return False


class Tracer:
    """Span recorder over a monotonic clock.

    Args:
        clock: timestamp source in seconds; injectable so golden tests can
            run on a deterministic counter.
        enabled: ``False`` makes every ``span`` call a shared no-op.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 enabled: bool = True) -> None:
        self.clock = clock
        self.enabled = enabled
        self.spans: List[Span] = []
        self._stack: List[int] = []

    def span(self, name: str, **args):
        """Context manager recording one nested span."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, name, args or None)

    def reset(self) -> None:
        self.spans = []
        self._stack = []

    # -- exports --------------------------------------------------------------

    def to_chrome_trace(self, pid: int = 1, tid: int = 1) -> dict:
        """The Chrome ``trace_event`` JSON object (complete "X" events)."""
        if not self.spans:
            return {"traceEvents": [], "displayTimeUnit": "ms"}
        origin = min(span.start_s for span in self.spans)
        events = []
        for span in self.spans:
            events.append({
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.start_s - origin) * 1e6,    # microseconds
                "dur": max(0.0, span.duration_s) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": span.args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace()) + "\n")
        return path

    def jsonl_lines(self) -> List[str]:
        """Flat per-span JSON stream, in span-entry order."""
        return [json.dumps(span.as_dict()) for span in self.spans]

    def write_jsonl(self, path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(self.jsonl_lines())
                        + ("\n" if self.spans else ""))
        return path

    def span_tree(self) -> List[dict]:
        """Nested ``{"name", "children"}`` forest — no timestamps.

        The golden-trace test compares this shape, which is deterministic
        for a seeded run even though timestamps are not.
        """
        nodes: Dict[int, dict] = {}
        roots: List[dict] = []
        for span in self.spans:
            node = {"name": span.name, "children": []}
            nodes[span.index] = node
            if span.parent < 0:
                roots.append(node)
            else:
                nodes[span.parent]["children"].append(node)
        return roots

    # -- accounting -----------------------------------------------------------

    def root_coverage(self, window_s: float) -> float:
        """Fraction of a wall-clock window covered by root spans.

        The acceptance gate for ``--trace-out``: the emitted trace must
        explain (cover) at least 95% of the instrumented run's wall time.
        """
        if window_s <= 0.0:
            return 0.0
        covered = sum(span.duration_s for span in self.spans
                      if span.parent < 0)
        return min(1.0, covered / window_s)
