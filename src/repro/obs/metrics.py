"""Counters, gauges, and fixed-bucket histograms behind one registry.

The registry is the metrics substrate every layer of the reproduction
reports into: attention backends count their dense/sparse access split,
the offload supervisor counts retries and degradations, the DReX timing
model attributes modeled nanoseconds per pipeline stage, and the serve
engine records TTFT/TPOT distributions.  Design constraints, in order:

1. **Cheap when off.**  A registry constructed with ``enabled=False``
   hands out shared null instruments whose record methods are no-ops, so
   instrumented hot paths cost an attribute access and a branch
   (``tests/obs/test_overhead.py`` pins the overhead below 5% of a
   decode microloop).
2. **Exact where it matters.**  Histograms keep fixed-bucket counts for
   streaming percentile *estimates* (property-tested to land within one
   bucket of the exact answer) and can optionally retain raw samples for
   exact percentiles — the serve report uses the exact mode so its TTFT
   and TPOT fields stay bit-compatible with the pre-registry code.
3. **Mergeable.**  Counter merges are associative and commutative
   (integer increments merge exactly), so per-worker registries can be
   reduced in any order.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np


def exact_percentile(values: Sequence[float], q: float) -> float:
    """``np.percentile`` with the empty-input convention used by reports."""
    if len(values) == 0:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


class Counter:
    """A monotonically increasing sum (float increments allowed)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A last-value instrument with a high watermark.

    Registry merges combine gauges by maximum, which keeps the merge
    associative and commutative (the watermark is usually what a reduced
    snapshot wants anyway: peak queue depth, peak batch size).
    """

    __slots__ = ("name", "value", "high_watermark")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high_watermark = 0.0

    def set(self, value) -> None:
        self.value = value
        if value > self.high_watermark:
            self.high_watermark = value


#: Default bucket edges: log-spaced from 1 µs to 100 s — wide enough for
#: both wall-clock step times and analytic paper-scale latencies.
DEFAULT_EDGES: tuple = tuple(float(e) for e in np.geomspace(1e-6, 100.0, 65))


class Histogram:
    """Fixed-bucket histogram with optional exact-sample retention.

    Bucket ``i`` counts values ``edges[i-1] < v <= edges[i]``; bucket 0 is
    everything at or below ``edges[0]`` and the final overflow bucket is
    everything above ``edges[-1]``.

    ``estimate_percentile`` uses the nearest-rank method over bucket
    counts, interpolating inside the winning bucket and clamping to the
    observed ``[min, max]``; the estimate provably lands in the same
    bucket as the exact nearest-rank order statistic
    (``tests/obs/test_metrics_props.py``).  ``percentile`` is exact when
    the histogram was created with ``track_values=True`` (it defers to
    :func:`exact_percentile` over the retained samples) and falls back to
    the bucket estimate otherwise.
    """

    __slots__ = ("name", "edges", "counts", "count", "total", "min", "max",
                 "values")

    def __init__(self, name: str, edges: Optional[Sequence[float]] = None,
                 track_values: bool = False) -> None:
        self.name = name
        self.edges = np.asarray(
            DEFAULT_EDGES if edges is None else edges, dtype=np.float64)
        if self.edges.ndim != 1 or len(self.edges) < 1 \
                or np.any(np.diff(self.edges) <= 0):
            raise ValueError("edges must be a strictly increasing 1-D array")
        self.counts = np.zeros(len(self.edges) + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.values: Optional[List[float]] = [] if track_values else None

    def observe(self, value) -> None:
        value = float(value)
        self.counts[int(np.searchsorted(self.edges, value, side="left"))] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self.values is not None:
            self.values.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_index(self, value: float) -> int:
        """The bucket a value falls in (shared by the property tests)."""
        return int(np.searchsorted(self.edges, float(value), side="left"))

    def estimate_percentile(self, q: float) -> float:
        """Nearest-rank percentile estimated from bucket counts alone."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * self.count))
        cumulative = np.cumsum(self.counts)
        bucket = int(np.searchsorted(cumulative, rank, side="left"))
        below = int(cumulative[bucket - 1]) if bucket > 0 else 0
        lo = self.edges[bucket - 1] if bucket > 0 else self.min
        if bucket >= len(self.edges):
            hi = self.max
        else:
            hi = self.edges[bucket]
        fraction = (rank - below) / int(self.counts[bucket])
        estimate = lo + fraction * max(0.0, hi - lo)
        return float(min(max(estimate, self.min), self.max))

    def percentile(self, q: float) -> float:
        """Exact percentile when samples are retained, estimate otherwise."""
        if self.values is not None:
            return exact_percentile(self.values, q)
        return self.estimate_percentile(q)

    def merge(self, other: "Histogram") -> None:
        if len(other.edges) != len(self.edges) \
                or not np.array_equal(other.edges, self.edges):
            raise ValueError("cannot merge histograms with different edges")
        self.counts += other.counts
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        if self.values is not None and other.values is not None:
            self.values.extend(other.values)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount=1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", edges=(0.0, 1.0))

    def observe(self, value) -> None:
        pass


NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Name-keyed counters/gauges/histograms with a cheap no-op mode.

    Instruments are created on first use and cached by name, so hot paths
    may call ``registry.counter("x").inc()`` every step without churn.
    With ``enabled=False`` every accessor returns a shared null
    instrument; callers that compute *inputs* to a metric should guard
    the computation behind ``registry.enabled``.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors -------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, edges: Optional[Sequence[float]] = None,
                  track_values: bool = False) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, edges=edges, track_values=track_values)
        return instrument

    def new_histogram(self, name: str,
                      edges: Optional[Sequence[float]] = None,
                      track_values: bool = False) -> Histogram:
        """A *fresh* histogram registered under ``name``.

        Run-scoped distributions (one serve run's TTFTs) must not
        accumulate across runs sharing the process-global registry, so
        the engine asks for a replacement instrument per run; the registry
        keeps the latest for snapshots.
        """
        if not self.enabled:
            return NULL_HISTOGRAM
        instrument = Histogram(name, edges=edges, track_values=track_values)
        self._histograms[name] = instrument
        return instrument

    # -- aggregation ----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges max, hists merge."""
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            mine = self.gauge(name)
            mine.set(max(mine.value, gauge.value))
            mine.high_watermark = max(mine.high_watermark,
                                      gauge.high_watermark)
        for name, hist in other._histograms.items():
            if name in self._histograms:
                self._histograms[name].merge(hist)
            elif self.enabled:
                clone = Histogram(name, edges=hist.edges,
                                  track_values=hist.values is not None)
                clone.merge(hist)
                self._histograms[name] = clone

    def merge_prefixed(self, other: "MetricsRegistry",
                       prefix: str) -> None:
        """Fold in only ``other``'s instruments named under ``prefix``.

        The fleet router uses this to transplant its health instruments
        (``fleet.*``) across an engine swap after a restore or failover:
        those are router-owned and never replayed, so carrying them over
        is safe, while a whole-registry merge would double count the
        ``serve.*`` work the fresh engine re-executes during recovery.
        """
        if not self.enabled:
            return
        for name, counter in other._counters.items():
            if name.startswith(prefix):
                self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            if name.startswith(prefix):
                mine = self.gauge(name)
                mine.set(max(mine.value, gauge.value))
                mine.high_watermark = max(mine.high_watermark,
                                          gauge.high_watermark)
        for name, hist in other._histograms.items():
            if not name.startswith(prefix):
                continue
            if name in self._histograms:
                self._histograms[name].merge(hist)
            else:
                clone = Histogram(name, edges=hist.edges,
                                  track_values=hist.values is not None)
                clone.merge(hist)
                self._histograms[name] = clone

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- introspection --------------------------------------------------------

    def counter_names(self) -> Iterable[str]:
        return self._counters.keys()

    def snapshot(self) -> dict:
        """JSON-ready dump of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: {"value": g.value,
                           "high_watermark": g.high_watermark}
                       for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.snapshot()
                           for n, h in sorted(self._histograms.items())},
        }
