"""LongSight (MICRO 2025) reproduction.

Hybrid dense–sparse attention for large-context LLMs, offloaded to a
compute-enabled CXL memory expander (DReX).  See DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured record.

Subpackages:

- ``repro.core``   — the LongSight algorithm (SCF, ITQ, top-k, hybrid attention).
- ``repro.llm``    — numpy transformer substrate (GQA/RoPE/SwiGLU) + training.
- ``repro.data``   — synthetic long-context corpora.
- ``repro.drex``   — DReX device model (PFU/NMA/DCC, layout, DRAM timing).
- ``repro.system`` — GPU/CXL models, serving engine, baselines, power model.
- ``repro.bench``  — experiment harness used by the benchmarks.
"""

__version__ = "1.0.0"
