"""Per-offload latency composition (Section 8.2, Figure 8).

An offload for one (user, layer) proceeds, per KV head / package:

1. address generation in the NMA memory controller (1,024 ns),
2. PFU filtering epochs (``d x 1.25 ns`` each; all spanned banks parallel),
3. bitmap read-back (120.4 ns each, channels parallel),
4. survivor key streaming + dot products (bandwidth/compute roofline),
5. top-k drain,
6. value (and score) transfer to the GPU over CXL.

Packages holding different heads (or chained slices of one head) proceed in
parallel on their own NMAs; the CXL link is shared, so value transfer is
charged once over the aggregate response size.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

from repro.drex.dram import LpddrTimings, LPDDR5X
from repro.drex.geometry import DrexGeometry, DREX_DEFAULT
from repro.drex.nma import NearMemoryAccelerator


@dataclasses.dataclass
class LatencyBreakdown:
    """Nanosecond components of one sparse-attention offload."""

    address_gen_ns: float = 0.0
    filter_ns: float = 0.0
    bitmap_read_ns: float = 0.0
    score_ns: float = 0.0
    rank_ns: float = 0.0
    value_read_ns: float = 0.0
    queue_ns: float = 0.0

    @property
    def compute_ns(self) -> float:
        """Device-side portion (everything but the CXL value read + queueing)."""
        return (self.address_gen_ns + self.filter_ns + self.bitmap_read_ns
                + self.score_ns + self.rank_ns)

    @property
    def total_ns(self) -> float:
        return self.compute_ns + self.value_read_ns + self.queue_ns

    def components(self) -> dict:
        return {
            "address_gen": self.address_gen_ns,
            "filter": self.filter_ns,
            "bitmap_read": self.bitmap_read_ns,
            "score": self.score_ns,
            "rank": self.rank_ns,
            "value_read": self.value_read_ns,
            "queue": self.queue_ns,
        }

    def __add__(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        return LatencyBreakdown(*[
            getattr(self, f.name) + getattr(other, f.name)
            for f in dataclasses.fields(self)
        ])

    @staticmethod
    def pmax(items: Sequence["LatencyBreakdown"]) -> "LatencyBreakdown":
        """Component-wise max — parallel composition across packages."""
        return LatencyBreakdown(*[
            max(getattr(item, f.name) for item in items)
            for f in dataclasses.fields(LatencyBreakdown)
        ])


@dataclasses.dataclass
class OffloadCost:
    """Inputs describing one per-package unit of offload work."""

    n_keys: int          # keys in this package's slice segment
    n_survivors: int     # keys passing SCF (actual or expected)
    n_retrieved: int     # min(k, survivors), per query head
    n_query_heads: int   # query heads served by this request (GQA group)
    head_dim: int
    top_k: int
    dtype_bytes: int = 2


class DrexTimingModel:
    """Latency calculator shared by the functional device and the perf model."""

    def __init__(self, geometry: DrexGeometry = DREX_DEFAULT,
                 timings: LpddrTimings = LPDDR5X,
                 cxl_bandwidth_gbps: float = 100.0,
                 cxl_latency_ns: float = 600.0) -> None:
        self.geometry = geometry
        self.timings = timings
        self.nma = NearMemoryAccelerator(geometry, timings)
        self.cxl_bandwidth = cxl_bandwidth_gbps * 1e9
        self.cxl_latency_ns = cxl_latency_ns

    def epochs(self, n_keys: int) -> int:
        """Filtering epochs: blocks beyond one per PFU wrap into new epochs."""
        blocks = math.ceil(max(1, n_keys) / self.geometry.pfu_keys_per_block)
        return math.ceil(blocks / self.geometry.banks_per_package)

    def package_latency(self, cost: OffloadCost) -> LatencyBreakdown:
        """Device-side latency of one package's share of an offload."""
        g = self.geometry
        blocks = math.ceil(max(1, cost.n_keys) / g.pfu_keys_per_block)
        epochs = self.epochs(cost.n_keys)
        filter_ns = epochs * self.timings.bitmap_generation_ns(cost.head_dim)
        bitmap_ns = self.nma.bitmap_read_latency_ns(blocks, epochs=1)
        score_ns = self.nma.scoring_latency_ns(
            cost.n_survivors, cost.head_dim, cost.n_query_heads,
            cost.dtype_bytes)
        rank_ns = self.nma.ranking_latency_ns(cost.top_k)
        return LatencyBreakdown(
            address_gen_ns=self.timings.address_gen_ns,
            filter_ns=filter_ns,
            bitmap_read_ns=bitmap_ns,
            score_ns=score_ns,
            rank_ns=rank_ns,
        )

    def value_read_ns(self, n_retrieved_total: int, head_dim: int,
                      dtype_bytes: int = 2) -> float:
        """CXL transfer of the response: values + scores + IDs."""
        per_entry = head_dim * dtype_bytes + dtype_bytes + 4
        n_bytes = n_retrieved_total * per_entry
        return self.cxl_latency_ns + n_bytes / self.cxl_bandwidth * 1e9

    def request_submit_ns(self, n_query_heads: int, head_dim: int,
                          dtype_bytes: int = 2) -> float:
        """GPU -> DCC descriptor write over CXL."""
        n_bytes = 16 + n_query_heads * head_dim * dtype_bytes
        return self.cxl_latency_ns + n_bytes / self.cxl_bandwidth * 1e9

    def offload_latency(self, per_package_costs: Sequence[OffloadCost],
                        head_dim: int, dtype_bytes: int = 2) -> LatencyBreakdown:
        """Full offload: parallel packages, shared CXL for the response."""
        if not per_package_costs:
            return LatencyBreakdown()
        device = LatencyBreakdown.pmax(
            [self.package_latency(c) for c in per_package_costs])
        retrieved = sum(c.n_retrieved * c.n_query_heads
                        for c in per_package_costs)
        device.value_read_ns = self.value_read_ns(retrieved, head_dim,
                                                  dtype_bytes)
        return device
