"""DReX: the compute-enabled CXL memory expander (Section 7).

DReX integrates a PIM Filtering Unit (PFU) near every LPDDR5X bank and a
Near-Memory Accelerator (NMA) beside every package, behind a CXL Type-3
controller (DCC).  LongSight repurposes it as the sparse half of hybrid
attention: the GPU writes Key/Value/Key-Sign objects into DReX's address
space and submits per-(user, layer) attention request descriptors; DReX
filters in-DRAM, scores and ranks near-DRAM, and returns top-k keys/values.

The model here is *functional + timed*: offloads compute real results
(property-tested to match the reference pipeline in
:mod:`repro.core.sparse`) and return a latency breakdown composed from the
paper's published constants (Section 8.2).
"""

from repro.drex.geometry import DrexGeometry, DREX_DEFAULT
from repro.drex.address import AddressMap, PhysicalLocation
from repro.drex.dram import LpddrTimings, LPDDR5X
from repro.drex.descriptors import (
    RequestDescriptor,
    ResponseDescriptor,
    KeySignObject,
    KeyObject,
    ValueObject,
)
from repro.drex.layout import KeyBlockGroup, ContextSlice, UserPartition
from repro.drex.allocator import DrexAllocator, CapacityError
from repro.drex.pfu import PimFilterUnit
from repro.drex.nma import NearMemoryAccelerator
from repro.drex.dcc import DrexCxlController, QueueFullError
from repro.drex.timing import DrexTimingModel, LatencyBreakdown, OffloadCost
from repro.drex.device import DrexDevice
from repro.drex.backend import DrexOffloadBackend

__all__ = [
    "DrexGeometry",
    "DREX_DEFAULT",
    "AddressMap",
    "PhysicalLocation",
    "LpddrTimings",
    "LPDDR5X",
    "RequestDescriptor",
    "ResponseDescriptor",
    "KeySignObject",
    "KeyObject",
    "ValueObject",
    "KeyBlockGroup",
    "ContextSlice",
    "UserPartition",
    "DrexAllocator",
    "CapacityError",
    "PimFilterUnit",
    "NearMemoryAccelerator",
    "DrexCxlController",
    "QueueFullError",
    "DrexTimingModel",
    "LatencyBreakdown",
    "OffloadCost",
    "DrexDevice",
    "DrexOffloadBackend",
]
