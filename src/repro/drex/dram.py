"""LPDDR5X timing and bandwidth model (Section 8.2 constants).

The paper extracts latency constants from Ramulator's LPDDR5 spec and
DRAMSim3 traces.  We encode those directly:

- bitmap generation in a PFU: ``d * 1.25 ns`` (one 128-bit column per
  dimension at the 0.8 GHz array clock),
- bitmap read into the NMA: 120.4 ns,
- address generation in the NMA memory controller: 1,024 ns per offload.

Bandwidths reproduce Table 2: 1.1 TB/s aggregate NMA-side LPDDR bandwidth
(137.5 GB/s per package) and 104.9 TB/s aggregate internal PFU bandwidth
(8,192 PFUs x 16 B per 1.25 ns).
"""

from __future__ import annotations

import dataclasses

from repro.drex.geometry import DrexGeometry, DREX_DEFAULT


@dataclasses.dataclass(frozen=True)
class LpddrTimings:
    """Latency/bandwidth constants for the DReX LPDDR5X subsystem."""

    column_cycle_ns: float = 1.25       # one 128-bit column access
    bitmap_read_ns: float = 120.4       # one PFU bitmap into the NMA
    address_gen_ns: float = 1024.0      # NMA memory-controller setup
    row_activate_ns: float = 18.0       # tRCD
    row_precharge_ns: float = 18.0      # tRP
    channel_bandwidth_gbps: float = 17.2   # GB/s per channel (LPDDR5X-8533 x16)

    def package_bandwidth(self, geometry: DrexGeometry = DREX_DEFAULT) -> float:
        """NMA-visible bandwidth of one package, bytes/second."""
        return self.channel_bandwidth_gbps * 1e9 * geometry.channels_per_package

    def device_bandwidth(self, geometry: DrexGeometry = DREX_DEFAULT) -> float:
        """Aggregate NMA-side bandwidth (Table 2: ~1.1 TB/s), bytes/second."""
        return self.package_bandwidth(geometry) * geometry.n_packages

    def pfu_internal_bandwidth(self, geometry: DrexGeometry = DREX_DEFAULT) -> float:
        """Aggregate in-DRAM PFU bandwidth (Table 2: ~104.9 TB/s), bytes/s."""
        per_pfu = geometry.col_bytes / (self.column_cycle_ns * 1e-9)
        return per_pfu * geometry.n_pfus

    def bitmap_generation_ns(self, head_dim: int) -> float:
        """PFU bitmap time for one 128-key block: d x 1.25 ns."""
        return head_dim * self.column_cycle_ns

    def stream_ns(self, n_bytes: float, n_channels: int) -> float:
        """Time to stream ``n_bytes`` across ``n_channels`` channels."""
        bw = self.channel_bandwidth_gbps * 1e9 * n_channels
        return n_bytes / bw * 1e9


#: Default LPDDR5X constants used throughout the perf model.
LPDDR5X = LpddrTimings()
