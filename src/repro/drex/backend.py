"""End-to-end functional integration: the GPU side of hybrid attention.

:class:`DrexOffloadBackend` implements the transformer substrate's
attention-backend protocol by actually driving a :class:`DrexDevice`
(Section 6's execution model):

- KV pairs are *staged* in HBM (the dense window doubles as the staging
  buffer) and flushed to DReX in groups of 128 once they leave the window —
  "off the critical path" batching of updates.
- Each attention call submits a Request Descriptor per layer, performs the
  dense sink+window attention locally, then merges the returned top-k
  scores/values in a single softmax (Figure 2b steps 5–7).

With ``flush_granularity=1`` the result is bit-identical to the pure
software backend :class:`repro.core.hybrid.LongSightAttention` — the
integration test that pins the device model to the algorithm.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import LongSightConfig
from repro.core.itq import ItqRotations
from repro.core.metrics import FilterStats
from repro.drex.descriptors import RequestDescriptor, ResponseDescriptor
from repro.drex.device import DrexDevice
from repro.drex.timing import LatencyBreakdown
from repro.llm.config import ModelConfig
from repro.llm.ops import softmax


class DrexOffloadBackend:
    """Attention backend that offloads the sparse phase to a DReX device."""

    def __init__(self, model_config: ModelConfig, config: LongSightConfig,
                 rotations: Optional[ItqRotations] = None,
                 device: Optional[DrexDevice] = None, uid: int = 0,
                 flush_granularity: int = 128,
                 stats: Optional[FilterStats] = None) -> None:
        if config.use_itq and rotations is None:
            raise ValueError("use_itq requires rotations")
        self.model_config = model_config
        self.config = config
        self.uid = uid
        self.flush_granularity = max(1, flush_granularity)
        self.device = device or DrexDevice(
            n_layers=model_config.n_layers,
            n_kv_heads=model_config.n_kv_heads,
            n_q_heads=model_config.n_q_heads,
            head_dim=model_config.head_dim,
            thresholds=config.thresholds,
            rotations=rotations if config.use_itq else None,
            dtype_bytes=model_config.dtype_bytes,
        )
        if stats is not None:
            self.device.stats = stats
        self.device.register_user(uid)
        #: tokens already written to DReX, per (layer, kv_head)
        self._flushed: Dict[Tuple[int, int], int] = {}
        #: accumulated offload latency across the run
        self.total_latency = LatencyBreakdown()
        self.n_offloads = 0
        #: (layer, position) sparse tokens attempted / degraded to dense-only
        self.sparse_token_attempts = 0
        self.degraded_tokens = 0
        self.degraded_log: List[Tuple[int, int]] = []
        #: when set to a dict, every offloaded token records its selected
        #: global key positions per query head as ``(layer, pos, head)`` —
        #: the device-path analogue of
        #: :attr:`repro.core.hybrid.LongSightAttention.selection_capture`.
        self.selection_capture: Optional[Dict[Tuple[int, int, int],
                                              np.ndarray]] = None

    # -- staging -----------------------------------------------------------------

    def _flush_gate(self, layer: int, n_new: int) -> bool:
        """Hook: may ``n_new`` staged tokens be flushed to DReX now?

        The base backend always flushes; a supervised backend may defer
        (allocator capacity pressure), in which case the tokens simply stay
        staged in the HBM window — still attended densely, never lost.  The
        gate is consulted once per flush so all KV heads stay in lockstep.
        """
        return True

    def _flush(self, layer: int, k: np.ndarray, v: np.ndarray,
               upto: int) -> int:
        """Write eligible KV pairs (position < ``upto``) to DReX in groups.

        Returns the per-layer flushed count (uniform across KV heads).
        """
        cfg = self.config
        flushed = self._flushed.get((layer, 0), cfg.n_sink)
        target = max(flushed, upto)
        # Flush whole groups; the remainder stays staged in the HBM window.
        n_new = (target - flushed) // self.flush_granularity \
            * self.flush_granularity
        if n_new > 0 and self._flush_gate(layer, n_new):
            for kv_head in range(self.model_config.n_kv_heads):
                self.device.write_kv(
                    self.uid, layer, kv_head,
                    k[kv_head, flushed : flushed + n_new],
                    v[kv_head, flushed : flushed + n_new])
            flushed += n_new
        for kv_head in range(self.model_config.n_kv_heads):
            self._flushed[(layer, kv_head)] = flushed
        self._flushed[(layer, 0)] = flushed
        return flushed

    # -- offload dispatch --------------------------------------------------------

    def _offload(self, request: RequestDescriptor
                 ) -> Optional[ResponseDescriptor]:
        """Hook: run one offload; ``None`` degrades the token to dense-only.

        The base backend drives the device directly and never degrades; the
        supervised backend routes through :class:`OffloadSupervisor` which
        retries and may return ``None`` after exhausting its budget.
        """
        return self.device.execute(request)

    # -- attention ------------------------------------------------------------------

    def forward(self, layer: int, q: np.ndarray, k: np.ndarray,
                v: np.ndarray) -> np.ndarray:
        cfg = self.config
        mc = self.model_config
        n_q_heads, n_new, head_dim = q.shape
        n_kv_heads, n_ctx, _ = k.shape
        group = n_q_heads // n_kv_heads
        scale = 1.0 / np.sqrt(head_dim)
        out = np.empty_like(q)
        for t in range(n_new):
            p = n_ctx - n_new + t
            # Tokens strictly older than the window are eligible for DReX.
            eligible_upto = max(cfg.n_sink, p - cfg.window + 1)
            flushed = self._flush(layer, k, v, eligible_upto)
            sparse_available = flushed > cfg.n_sink
            if sparse_available:
                self.sparse_token_attempts += 1
                request = RequestDescriptor(
                    uid=self.uid, layer=layer, queries=q[:, t, :],
                    top_k=cfg.top_k, dtype_bytes=mc.dtype_bytes)
                response = self._offload(request)
                if response is None:
                    # Offload failed past the retry budget: this token falls
                    # back to the dense sliding-window path, recorded here
                    # (never silently).
                    sparse_available = False
                    self.degraded_tokens += 1
                    self.degraded_log.append((layer, p))
                else:
                    self.total_latency = self.total_latency + response.latency
                    self.n_offloads += 1
                    if self.selection_capture is not None:
                        for h in range(n_q_heads):
                            # Store index i holds global position n_sink + i.
                            self.selection_capture[(layer, p, h)] = \
                                cfg.n_sink + response.heads[h].indices
            # Dense region: sinks + everything not yet flushed (window and
            # staging overhang), causally clipped.
            dense_positions = np.concatenate([
                np.arange(min(cfg.n_sink, p + 1)),
                np.arange(min(flushed, p + 1), p + 1),
            ])
            for kv_head in range(n_kv_heads):
                dense_k = k[kv_head, dense_positions]
                dense_v = v[kv_head, dense_positions]
                for g in range(group):
                    h = kv_head * group + g
                    dense_scores = (dense_k @ q[h, t]) * scale
                    if sparse_available:
                        result = response.heads[h]
                        sparse_scores = result.scores * scale
                        sparse_v = result.values
                        merged = np.concatenate([dense_scores, sparse_scores])
                        merged_v = np.concatenate([dense_v, sparse_v]) \
                            if sparse_v.size else dense_v
                        probs = softmax(merged)
                        out[h, t] = probs @ merged_v
                    else:
                        out[h, t] = softmax(dense_scores) @ dense_v
        return out

    # -- bookkeeping -----------------------------------------------------------------

    @property
    def degraded_token_fraction(self) -> float:
        """Fraction of sparse-eligible tokens that fell back to dense-only."""
        if self.sparse_token_attempts == 0:
            return 0.0
        return self.degraded_tokens / self.sparse_token_attempts

    def mean_offload_latency(self) -> LatencyBreakdown:
        """Average per-offload latency breakdown so far."""
        if self.n_offloads == 0:
            return LatencyBreakdown()
        import dataclasses
        return LatencyBreakdown(*[
            getattr(self.total_latency, f.name) / self.n_offloads
            for f in dataclasses.fields(LatencyBreakdown)
        ])
