"""DReX DRAM geometry (Section 7.1 and Table 2).

The device comprises eight LPDDR5X packages; each package has eight
channels; each channel 128 banks (four dies of 32 banks).  A PFU sits near
every bank — 1,024 per package, 8,192 device-wide (Table 2; the prose in
Section 7.1 says "1,024" which matches the per-package count).  One NMA
serves each package.  Total capacity is 512 GB.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class DrexGeometry:
    """Physical organization of a DReX device."""

    n_packages: int = 8
    channels_per_package: int = 8
    banks_per_channel: int = 128
    dies_per_channel: int = 4
    row_bytes: int = 2048          # one DRAM row (page) per bank
    col_bytes: int = 16            # 128-bit column, matching the PFU datapath
    capacity_bytes: int = 512 * 1024**3

    # PFU block parameters (Section 7.1): each PFU filters blocks of 128
    # keys for attention groups of up to 16 queries.
    pfu_keys_per_block: int = 128
    pfu_max_queries: int = 16

    # NMA top-k hardware cap (Section 7.2).
    max_top_k: int = 1024

    def __post_init__(self) -> None:
        if self.row_bytes % self.col_bytes != 0:
            raise ValueError("row_bytes must be a multiple of col_bytes")
        if self.capacity_bytes % (self.total_banks * self.row_bytes) != 0:
            raise ValueError("capacity must be whole rows per bank")

    # -- derived counts ---------------------------------------------------------

    @property
    def banks_per_package(self) -> int:
        return self.channels_per_package * self.banks_per_channel

    @property
    def total_channels(self) -> int:
        return self.n_packages * self.channels_per_package

    @property
    def total_banks(self) -> int:
        return self.n_packages * self.banks_per_package

    @property
    def n_pfus(self) -> int:
        """One PFU per bank: 8,192 for the default geometry."""
        return self.total_banks

    @property
    def n_nmas(self) -> int:
        """One NMA per package."""
        return self.n_packages

    @property
    def rows_per_bank(self) -> int:
        return self.capacity_bytes // (self.total_banks * self.row_bytes)

    @property
    def cols_per_row(self) -> int:
        return self.row_bytes // self.col_bytes

    @property
    def bank_bytes(self) -> int:
        return self.rows_per_bank * self.row_bytes

    @property
    def package_bytes(self) -> int:
        return self.banks_per_package * self.bank_bytes

    # -- layout capacities (Section 7.3) ------------------------------------------

    @property
    def keys_per_key_block_group(self) -> int:
        """Minimum Key Block group: 128 keys per bank x 8 channels = 1,024."""
        return self.pfu_keys_per_block * self.channels_per_package

    @property
    def max_keys_per_context_slice(self) -> int:
        """Full Context Slice: 1,024 keys x 128 banks = 131,072."""
        return self.keys_per_key_block_group * self.banks_per_channel


#: The configuration evaluated in the paper.
DREX_DEFAULT = DrexGeometry()
