"""Logical data layout: Key Blocks, Context Slices, User Partitions (§7.3.3).

The hierarchy maps multi-user context data onto DReX's physical parallelism:

- **Key Block group** — 128 keys per bank across all 8 channels of a package
  (1,024 keys), the minimum allocation unit.  Sign bits are bank-local (a
  Key Sign Object never straddles a bank); full-precision keys and values
  are interleaved across the package's channels for bandwidth balance.
- **Context Slice** — the keys of one (user, layer, KV head): up to 128
  Key Block groups (one per bank index), so at most
  ``1,024 x 128 = 131,072`` keys.
- **Multi-Layer Context Slice** — a head's Context Slices across layers,
  stored contiguously in one package (layers execute sequentially).
- **User Partition** — one Multi-Layer Context Slice per KV head, each in a
  different package for head-level parallelism.  Contexts longer than a
  full slice spill into additional slices ("temporal expansion").
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Tuple

from repro.drex.geometry import DrexGeometry, DREX_DEFAULT


@dataclasses.dataclass
class KeyBlockGroup:
    """One Key Block per bank at a fixed bank index, across all channels.

    Holds up to ``geometry.keys_per_key_block_group`` (1,024) keys; rows are
    allocated at the same offsets in every channel of the package.
    """

    bank_index: int
    row_start: int
    rows_per_bank: int
    capacity: int
    n_keys: int = 0

    @property
    def free(self) -> int:
        return self.capacity - self.n_keys


def rows_per_group(head_dim: int, geometry: DrexGeometry = DREX_DEFAULT,
                   dtype_bytes: int = 2) -> int:
    """DRAM rows per bank consumed by one full Key Block group.

    Per bank: the Key Sign Object (d columns x 128 bits), plus this bank's
    1/8th channel-interleaved share of the group's full-precision Key and
    Value Objects.
    """
    g = geometry
    sign_bytes = head_dim * g.pfu_keys_per_block // 8
    group_keys = g.keys_per_key_block_group
    kv_bytes_per_bank = group_keys * head_dim * dtype_bytes // g.channels_per_package
    sign_rows = math.ceil(sign_bytes / g.row_bytes)
    key_rows = math.ceil(kv_bytes_per_bank / g.row_bytes)
    value_rows = key_rows
    return sign_rows + key_rows + value_rows


@dataclasses.dataclass
class ContextSlice:
    """Storage of one (user, layer, KV head) context segment in one package."""

    uid: int
    layer: int
    kv_head: int
    package: int
    head_dim: int
    groups: List[KeyBlockGroup] = dataclasses.field(default_factory=list)
    dtype_bytes: int = 2

    @property
    def n_keys(self) -> int:
        return sum(group.n_keys for group in self.groups)

    @property
    def capacity(self) -> int:
        return sum(group.capacity for group in self.groups)

    def banks_spanned(self, geometry: DrexGeometry = DREX_DEFAULT) -> int:
        """Distinct (channel, bank) pairs holding this slice's sign blocks.

        Filtering parallelism: every group activates its bank index in all
        channels of the package.
        """
        return len(self.groups) * geometry.channels_per_package

    def bytes_used(self, geometry: DrexGeometry = DREX_DEFAULT) -> int:
        rows = rows_per_group(self.head_dim, geometry, self.dtype_bytes)
        return (len(self.groups) * rows * geometry.row_bytes
                * geometry.channels_per_package)


@dataclasses.dataclass
class UserPartition:
    """All of one user's Context Slices, keyed by (layer, KV head).

    ``slices[(layer, kv_head)]`` is a list — contexts longer than one full
    Context Slice chain into further slices, possibly in other packages.
    """

    uid: int
    slices: Dict[Tuple[int, int], List[ContextSlice]] = dataclasses.field(
        default_factory=dict)

    def total_keys(self) -> int:
        return sum(s.n_keys for chain in self.slices.values() for s in chain)

    def packages_used(self) -> set:
        return {s.package for chain in self.slices.values() for s in chain}


def packages_required(n_kv_heads: int, context_length: int,
                      geometry: DrexGeometry = DREX_DEFAULT) -> int:
    """Paper's sizing formula: ``h_kv * ceil(L / 131,072)`` package-slices.

    (Section 7.3.3 writes it as ``h_kv * L / 131,072``; we round up since a
    partial slice still occupies a package's banks.)
    """
    slices_per_head = math.ceil(context_length / geometry.max_keys_per_context_slice)
    return n_kv_heads * max(1, slices_per_head)
