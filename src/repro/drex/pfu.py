"""PIM Filter Unit (PFU) model (Sections 7.1 and 7.4).

One PFU sits near every LPDDR bank.  Per *epoch* it filters one Key Sign
Object — a block of up to 128 keys, stored so each 128-bit column holds one
dimension across the block — against the sign bits of up to 16 queries,
emitting a 128-bit bitmap per query (bit set = key passes the
sign-concordance threshold).

The functional path operates on the same packed representation the hardware
would (XOR + popcount per column) and is verified to agree with the float
reference in :mod:`repro.core.scf`.
"""

from __future__ import annotations

import numpy as np

from repro.core.scf import concordance_packed
from repro.drex.dram import LpddrTimings, LPDDR5X
from repro.drex.geometry import DrexGeometry, DREX_DEFAULT


class PimFilterUnit:
    """Functional + timed model of a single per-bank filter unit."""

    def __init__(self, geometry: DrexGeometry = DREX_DEFAULT,
                 timings: LpddrTimings = LPDDR5X) -> None:
        self.geometry = geometry
        self.timings = timings

    def filter_block(self, key_signs_packed: np.ndarray,
                     query_signs_packed: np.ndarray, head_dim: int,
                     threshold: float) -> np.ndarray:
        """Filter one Key Sign Object for a query group.

        Args:
            key_signs_packed: ``(n_keys <= 128, n_bytes)`` packed key signs.
            query_signs_packed: ``(n_queries <= 16, n_bytes)`` packed query
                signs.
            head_dim: true vector dimension.
            threshold: sign-concordance threshold for this KV head.

        Returns:
            Boolean bitmap ``(n_queries, n_keys)``; True = key survives.
        """
        n_keys = key_signs_packed.shape[0]
        n_queries = query_signs_packed.shape[0]
        if n_keys > self.geometry.pfu_keys_per_block:
            raise ValueError("PFU blocks hold at most 128 keys")
        if n_queries > self.geometry.pfu_max_queries:
            raise ValueError("PFU supports attention groups of <= 16 queries")
        matches = concordance_packed(query_signs_packed, key_signs_packed,
                                     head_dim)
        return matches >= threshold

    def bitmap_latency_ns(self, head_dim: int) -> float:
        """Bitmap generation time for one epoch: ``d x 1.25 ns``.

        One 128-bit column access per dimension; the XOR/accumulate against
        all (<= 16) query sign registers happens in the same cycle, so the
        epoch is column-read bound regardless of group size.
        """
        return self.timings.bitmap_generation_ns(head_dim)
