"""DReX CXL Controller (DCC) extensions (Section 7.2).

The DCC is the GPU-facing front-end: a hardware-managed MMIO **Request
Queue** (FIFO, depth 512 — one slot per concurrently served user, since a
user's sparse attention must complete before its next request), 512
**Response Buffers** sized for the maximum Response Descriptor, a 512-bit
**Polling Register**, and a CAM mapping User IDs to buffer/polling-bit
indices (read once by the GPU and reused across layers and iterations).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

import numpy as np

from repro.drex.descriptors import RequestDescriptor, ResponseDescriptor
from repro.errors import QueueFullError, UnknownUserError

__all__ = ["DrexCxlController", "QueueFullError", "UnknownUserError"]


class DrexCxlController:
    """Functional model of the DCC front-end."""

    QUEUE_DEPTH = 512
    N_RESPONSE_BUFFERS = 512

    def __init__(self) -> None:
        self._queue: deque = deque()
        self._buffers: Dict[int, Optional[ResponseDescriptor]] = {}
        self._cam: Dict[int, int] = {}  # UID -> buffer index
        self._free_buffers = list(range(self.N_RESPONSE_BUFFERS - 1, -1, -1))
        self.polling_register = np.zeros(self.N_RESPONSE_BUFFERS, dtype=bool)

    # -- user registration (CAM) -------------------------------------------------

    def register_user(self, uid: int) -> int:
        """Bind a UID to a response buffer + polling bit; idempotent."""
        if uid in self._cam:
            return self._cam[uid]
        if not self._free_buffers:
            raise QueueFullError("all response buffers are bound")
        index = self._free_buffers.pop()
        self._cam[uid] = index
        self._buffers[index] = None
        return index

    def unregister_user(self, uid: int) -> None:
        index = self._cam.pop(uid, None)
        if index is not None:
            self._buffers.pop(index, None)
            self.polling_register[index] = False
            self._free_buffers.append(index)
            # Drain any still-queued requests for the departed user: they can
            # no longer be completed (no response buffer) and would otherwise
            # occupy FIFO slots forever — or worse, complete into a buffer
            # later re-bound to a different user.
            if any(r.uid == uid for r in self._queue):
                self._queue = deque(r for r in self._queue if r.uid != uid)

    def buffer_index(self, uid: int) -> int:
        """CAM lookup (the GPU caches this for the whole generation phase)."""
        try:
            return self._cam[uid]
        except KeyError:
            raise UnknownUserError(
                f"UID {uid} is not registered with the DCC (no CAM entry; "
                f"{len(self._cam)} users bound)") from None

    # -- request path ------------------------------------------------------------

    def submit(self, request: RequestDescriptor) -> None:
        """Push a Request Descriptor into the MMIO queue (FIFO order)."""
        self.buffer_index(request.uid)  # raises UnknownUserError if unbound
        if len(self._queue) >= self.QUEUE_DEPTH:
            raise QueueFullError("request queue full (depth 512)")
        self._queue.append(request)

    def pop_next(self) -> Optional[RequestDescriptor]:
        """Dequeue the next request for dispatch to NMAs."""
        return self._queue.popleft() if self._queue else None

    @property
    def pending(self) -> int:
        return len(self._queue)

    # -- response path ---------------------------------------------------------

    def complete(self, response: ResponseDescriptor) -> None:
        """Aggregate NMA results into the user's buffer; raise polling bit."""
        index = self.buffer_index(response.uid)
        self._buffers[index] = response
        self.polling_register[index] = True

    def poll(self, uid: int) -> bool:
        """GPU-side poll: is the user's response ready?"""
        return bool(self.polling_register[self.buffer_index(uid)])

    def read_response(self, uid: int) -> ResponseDescriptor:
        """Consume the response (clears the polling bit)."""
        index = self.buffer_index(uid)
        response = self._buffers[index]
        if response is None:
            raise RuntimeError(f"no completed response for UID {uid}")
        self._buffers[index] = None
        self.polling_register[index] = False
        return response
