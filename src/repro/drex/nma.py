"""Near-Memory Accelerator (NMA) model (Sections 7.1 and 7.4).

One NMA serves each LPDDR5X package.  For a sparse-attention offload it
(1) launches PFU filtering across the banks the Context Slice spans,
(2) reads back bitmaps, (3) fetches surviving full-precision keys across
all eight channels (they are interleaved precisely so this saturates the
package bandwidth), (4) evaluates dot-product scores, and (5) maintains a
partial top-k (hardware cap 1,024).

Table 2 gives the aggregate NMA compute of 26.11 TFlop/s (3.26 TFlop/s per
NMA) and 1.1 TB/s of aggregate NMA-side memory bandwidth.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.topk import top_k_indices
from repro.drex.dram import LpddrTimings, LPDDR5X
from repro.drex.geometry import DrexGeometry, DREX_DEFAULT

#: Table 2: total NMA compute across the device.
TOTAL_NMA_TFLOPS = 26.11


@dataclasses.dataclass
class NmaScoreResult:
    """Per-query partial top-k produced by one NMA."""

    indices: list  # list[np.ndarray], survivor-set indices per query
    scores: list   # list[np.ndarray]


class NearMemoryAccelerator:
    """Functional + timed model of one per-package accelerator."""

    def __init__(self, geometry: DrexGeometry = DREX_DEFAULT,
                 timings: LpddrTimings = LPDDR5X,
                 tflops: float = TOTAL_NMA_TFLOPS / 8,
                 clock_ghz: float = 1.6) -> None:
        self.geometry = geometry
        self.timings = timings
        self.flops = tflops * 1e12
        self.clock_ghz = clock_ghz

    # -- functional -----------------------------------------------------------

    def score_and_rank(self, queries: np.ndarray, survivor_keys: np.ndarray,
                       k: int,
                       valid_mask: np.ndarray | None = None) -> NmaScoreResult:
        """Exhaustive full-precision scoring of survivors + per-query top-k.

        Args:
            queries: ``(G, D)`` query group.
            survivor_keys: ``(n_s, D)`` keys that passed filtering for at
                least one query of the group (fetched once, reused across
                the group).
            k: top-k size (clamped to the hardware cap).
            valid_mask: optional ``(G, n_s)`` bitmap — each query ranks only
                the keys *it* passed; others are masked out, mirroring the
                hardware's per-query bitmaps.

        Returns:
            Per-query indices (into the survivor set) and raw scores.
        """
        k = min(k, self.geometry.max_top_k)
        indices, scores = [], []
        if survivor_keys.size == 0:
            for _ in range(len(queries)):
                indices.append(np.empty(0, dtype=np.int64))
                scores.append(np.empty(0))
            return NmaScoreResult(indices, scores)
        all_scores = survivor_keys @ queries.T  # (n_s, G)
        for g in range(len(queries)):
            col = all_scores[:, g]
            if valid_mask is not None:
                col = np.where(valid_mask[g], col, -np.inf)
            idx = top_k_indices(col, k)
            indices.append(idx)
            scores.append(all_scores[idx, g])
        return NmaScoreResult(indices, scores)

    # -- timing -----------------------------------------------------------------

    #: Back-to-back bitmap read interval once the pipeline is primed
    #: (column-to-column cadence on one channel).
    BITMAP_BURST_NS = 4.0

    def bitmap_read_latency_ns(self, n_blocks: int, epochs: int = 1) -> float:
        """Reading PFU bitmaps back into the NMA.

        The first read on each channel pays the full 120.4 ns access
        latency; subsequent reads pipeline at the column cadence.  Channels
        proceed in parallel.
        """
        per_channel = -(-n_blocks // self.geometry.channels_per_package)
        per_epoch = (self.timings.bitmap_read_ns
                     + max(0, per_channel - 1) * self.BITMAP_BURST_NS)
        return epochs * per_epoch

    def scoring_latency_ns(self, n_survivors: int, head_dim: int,
                           n_queries: int, dtype_bytes: int = 2) -> float:
        """Dot-product phase: max(key streaming, MAC compute).

        Keys stream once across the package's channels and are reused for
        every query in the group from NMA SRAM.
        """
        mem_ns = self.timings.stream_ns(
            n_survivors * head_dim * dtype_bytes,
            self.geometry.channels_per_package)
        flop = 2.0 * n_survivors * head_dim * n_queries
        compute_ns = flop / self.flops * 1e9
        return max(mem_ns, compute_ns)

    def ranking_latency_ns(self, k: int) -> float:
        """Exposed top-k drain after the scoring stream.

        Insertions into the k-sorter are pipelined with scoring (one
        comparator network per query); only the final drain of the sorted
        list is exposed: ``k`` cycles at the NMA clock.
        """
        return min(k, self.geometry.max_top_k) / self.clock_ghz
