"""The assembled DReX device: functional sparse-attention offload + timing.

:class:`DrexDevice` wires together the allocator, the DCC front-end, the
per-bank PFU model and per-package NMA model.  Offloads compute *real*
results — the returned top-k is property-tested to equal the reference
pipeline (:func:`repro.core.sparse.sparse_retrieve`) — and every response
carries a :class:`repro.drex.timing.LatencyBreakdown` composed from the
paper's latency constants.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.itq import ItqRotations
from repro.core.metrics import FilterStats
from repro.core.scf import pack_signs, sign_bits
from repro.drex.allocator import DrexAllocator
from repro.drex.dcc import DrexCxlController
from repro.drex.descriptors import HeadResult, RequestDescriptor, ResponseDescriptor
from repro.drex.dram import LpddrTimings, LPDDR5X
from repro.drex.geometry import DrexGeometry, DREX_DEFAULT
from repro.drex.nma import NearMemoryAccelerator
from repro.drex.pfu import PimFilterUnit
from repro.drex.timing import DrexTimingModel, LatencyBreakdown, OffloadCost
from repro.obs import Obs, resolve_obs


#: Offload-latency histogram edges: log-spaced 100 ns .. 100 ms.
_LATENCY_NS_EDGES = tuple(float(e) for e in np.geomspace(1e2, 1e8, 61))


def _sign_crc(blocks: List[np.ndarray]) -> int:
    """CRC32 over the packed Key Sign Object bytes, block order preserved.

    Rows pack independently (``packbits`` along the last axis), so the
    checksum is invariant to how appends were chunked.
    """
    crc = 0
    for block in blocks:
        crc = zlib.crc32(np.packbits(block.astype(np.uint8), axis=-1)
                         .tobytes(), crc)
    return crc


@dataclasses.dataclass
class _HeadStore:
    """Keys/values/sign-codes for one (user, layer, KV head)."""

    keys: List[np.ndarray] = dataclasses.field(default_factory=list)
    values: List[np.ndarray] = dataclasses.field(default_factory=list)
    signs: List[np.ndarray] = dataclasses.field(default_factory=list)
    #: running CRC32 of the packed sign bytes as written; recomputing it
    #: from the live ``signs`` detects KSO bit corruption.
    sign_crc: int = 0

    def stacked(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if not self.keys:
            return (np.empty((0, 0)),) * 3
        return (np.concatenate(self.keys), np.concatenate(self.values),
                np.concatenate(self.signs))

    @property
    def n_keys(self) -> int:
        return sum(len(k) for k in self.keys)


class DrexDevice:
    """A compute-enabled CXL memory expander serving sparse attention.

    Args:
        n_layers / n_kv_heads / n_q_heads / head_dim: model geometry the
            device is configured for (per-user databases are independent
            per layer and KV head, Section 4).
        thresholds: SCF thresholds, broadcastable to
            ``(n_layers, n_kv_heads)``.
        rotations: optional ITQ bank applied when *writing* Key Sign
            Objects and when quantizing request queries.
        geometry / timings: hardware configuration.
    """

    def __init__(self, n_layers: int, n_kv_heads: int, n_q_heads: int,
                 head_dim: int, thresholds=0,
                 rotations: Optional[ItqRotations] = None,
                 geometry: DrexGeometry = DREX_DEFAULT,
                 timings: LpddrTimings = LPDDR5X,
                 timing_model: Optional[DrexTimingModel] = None,
                 dtype_bytes: int = 2,
                 obs: Optional[Obs] = None) -> None:
        if n_q_heads % n_kv_heads != 0:
            raise ValueError("n_q_heads must be a multiple of n_kv_heads")
        self.n_layers = n_layers
        self.n_kv_heads = n_kv_heads
        self.n_q_heads = n_q_heads
        self.group = n_q_heads // n_kv_heads
        self.head_dim = head_dim
        self.thresholds = np.broadcast_to(
            np.asarray(thresholds, dtype=np.float64),
            (n_layers, n_kv_heads)).copy()
        self.rotations = rotations
        self.geometry = geometry
        self.allocator = DrexAllocator(geometry, dtype_bytes)
        self.dcc = DrexCxlController()
        self.pfu = PimFilterUnit(geometry, timings)
        self.nma = NearMemoryAccelerator(geometry, timings)
        self.timing = timing_model or DrexTimingModel(geometry, timings)
        self.dtype_bytes = dtype_bytes
        self._stores: Dict[Tuple[int, int, int], _HeadStore] = {}
        #: optional :class:`FilterStats` accumulating the same
        #: candidates/passed/retrieved counters as the software hybrid path.
        self.stats: Optional[FilterStats] = None
        self.obs = resolve_obs(obs)

    # -- population ------------------------------------------------------------

    def register_user(self, uid: int) -> int:
        return self.dcc.register_user(uid)

    def evict_user(self, uid: int) -> None:
        self.dcc.unregister_user(uid)
        self.allocator.free_user(uid)
        for key in [k for k in self._stores if k[0] == uid]:
            del self._stores[key]

    def _store(self, uid: int, layer: int, kv_head: int) -> _HeadStore:
        key = (uid, layer, kv_head)
        if key not in self._stores:
            self._stores[key] = _HeadStore()
        return self._stores[key]

    def write_kv(self, uid: int, layer: int, kv_head: int, keys: np.ndarray,
                 values: np.ndarray) -> None:
        """Append Key/Value/Key-Sign Objects for one (layer, KV head).

        The GPU prepares objects in groups (the engine stages 128 at a
        time); sign bits are extracted after the optional ITQ rotation,
        matching Section 5.4's runtime application.
        """
        keys = np.atleast_2d(np.asarray(keys, dtype=np.float64))
        values = np.atleast_2d(np.asarray(values, dtype=np.float64))
        if keys.shape != values.shape or keys.shape[1] != self.head_dim:
            raise ValueError("keys/values must be (n, head_dim) and match")
        self.allocator.append_keys(uid, layer, kv_head, len(keys),
                                   self.head_dim)
        if self.rotations is not None:
            rotated = keys @ self.rotations.get(layer, kv_head)
        else:
            rotated = keys
        store = self._store(uid, layer, kv_head)
        signs = sign_bits(rotated)
        store.keys.append(keys)
        store.values.append(values)
        store.signs.append(signs)
        store.sign_crc = zlib.crc32(
            np.packbits(signs.astype(np.uint8), axis=-1).tobytes(),
            store.sign_crc)

    def context_length(self, uid: int, layer: int, kv_head: int) -> int:
        key = (uid, layer, kv_head)
        return self._stores[key].n_keys if key in self._stores else 0

    # -- KSO integrity ---------------------------------------------------------

    def kso_intact(self, uid: int, layer: int, kv_head: int) -> bool:
        """Recompute the sign-store checksum and compare with write-time CRC."""
        store = self._stores.get((uid, layer, kv_head))
        if store is None:
            return True
        return _sign_crc(store.signs) == store.sign_crc

    def corrupted_ksos(self, uid: int, layer: int) -> List[int]:
        """KV heads of ``(uid, layer)`` whose Key Sign Objects fail checksum."""
        return [kv_head for kv_head in range(self.n_kv_heads)
                if not self.kso_intact(uid, layer, kv_head)]

    def repair_kso(self, uid: int, layer: int, kv_head: int) -> None:
        """Repack sign codes from the stored full-precision keys.

        Key/Value Objects are the source of truth (sign corruption leaves
        them intact), so a corrupted KSO is repaired by re-quantizing —
        the same operation the GPU performs when first writing the keys.
        """
        store = self._stores.get((uid, layer, kv_head))
        if store is None:
            return
        rot = (self.rotations.get(layer, kv_head)
               if self.rotations is not None else None)
        store.signs = [sign_bits(block @ rot if rot is not None else block)
                       for block in store.keys]
        store.sign_crc = _sign_crc(store.signs)

    def corrupt_kso(self, uid: int, layer: int, kv_head: int,
                    rng: np.random.Generator, n_bits: int = 1) -> int:
        """Flip random stored sign bits (fault-injection hook).

        The write-time CRC is deliberately left untouched, so the
        corruption is detectable by :meth:`kso_intact`.  Returns the number
        of bits flipped (0 when the store is empty).
        """
        store = self._stores.get((uid, layer, kv_head))
        if store is None or not store.signs:
            return 0
        sizes = [block.size for block in store.signs]
        total = sum(sizes)
        # Distinct flat positions: an even number of flips at one position
        # would cancel out and evade the checksum.
        chosen = rng.choice(total, size=min(n_bits, total), replace=False)
        starts = np.cumsum([0] + sizes[:-1])
        for flat in np.sort(chosen):
            b = int(np.searchsorted(starts, flat, side="right")) - 1
            block = store.signs[b]
            i, j = divmod(int(flat - starts[b]), block.shape[1])
            block[i, j] ^= True
        return len(chosen)

    # -- offload execution ---------------------------------------------------------

    def execute(self, request: RequestDescriptor) -> ResponseDescriptor:
        """Submit, process and read back one offload synchronously."""
        self.dcc.submit(request)
        popped = self.dcc.pop_next()
        response = self._process(popped)
        self.dcc.complete(response)
        return self.dcc.read_response(request.uid)

    def _process(self, request: RequestDescriptor) -> ResponseDescriptor:
        queries = np.asarray(request.queries, dtype=np.float64)
        if queries.ndim == 2:  # (n_q_heads, d) single-token decode
            queries = queries[:, None, :]
        n_q_heads, n_tokens, d = queries.shape
        if n_q_heads != self.n_q_heads or d != self.head_dim:
            raise ValueError("request query shape mismatch")
        if n_tokens * self.group > self.geometry.pfu_max_queries:
            raise ValueError("attention group exceeds PFU limit of 16 queries")
        heads: List[Optional[HeadResult]] = [None] * (n_q_heads * n_tokens)
        costs: List[OffloadCost] = []
        for kv_head in range(self.n_kv_heads):
            results, cost = self._offload_head(request.uid, request.layer,
                                               kv_head, queries,
                                               request.top_k)
            costs.extend(cost)
            for g in range(self.group):
                for t in range(n_tokens):
                    heads[(kv_head * self.group + g) * n_tokens + t] = \
                        results[g * n_tokens + t]
        latency = self.timing.offload_latency(costs, self.head_dim,
                                              self.dtype_bytes)
        latency.queue_ns += self.timing.request_submit_ns(
            n_q_heads * n_tokens, self.head_dim, self.dtype_bytes)
        metrics = self.obs.metrics
        if metrics.enabled:
            # Per-stage modeled latency attribution: where an offload's
            # nanoseconds go (address gen / filter / bitmap / score / rank
            # / CXL value read / queueing), summed across offloads.
            metrics.counter("drex.offloads").inc()
            for stage, ns in latency.components().items():
                metrics.counter(f"drex.latency.{stage}_ns").inc(ns)
            metrics.histogram("drex.offload_total_ns",
                              edges=_LATENCY_NS_EDGES).observe(
                                  latency.total_ns)
        return ResponseDescriptor(uid=request.uid, layer=request.layer,
                                  heads=heads, dtype_bytes=self.dtype_bytes,
                                  latency=latency)

    def _offload_head(self, uid: int, layer: int, kv_head: int,
                      queries: np.ndarray, top_k: int):
        """Filter/score/rank one KV head's group of queries.

        Returns (list of HeadResult per (group-head, token)), and the
        per-package OffloadCost list for the timing model.
        """
        group_q = queries[kv_head * self.group : (kv_head + 1) * self.group]
        flat_q = group_q.reshape(-1, self.head_dim)  # (G*, d)
        store = self._stores.get((uid, layer, kv_head))
        if store is None or store.n_keys == 0:
            empty = [HeadResult(np.empty(0, dtype=np.int64), np.empty(0),
                                np.empty((0, self.head_dim)))
                     for _ in range(len(flat_q))]
            return empty, []
        keys, values, signs = store.stacked()
        n = len(keys)
        threshold = float(self.thresholds[layer, kv_head])

        # Stage 1: PFU filtering, block by 128-key block (bank granularity).
        if self.rotations is not None:
            q_rot = flat_q @ self.rotations.get(layer, kv_head)
        else:
            q_rot = flat_q
        q_packed = pack_signs(q_rot)
        survive = np.zeros((len(flat_q), n), dtype=bool)
        block = self.geometry.pfu_keys_per_block
        for start in range(0, n, block):
            stop = min(start + block, n)
            k_packed = np.packbits(signs[start:stop].astype(np.uint8), axis=-1)
            survive[:, start:stop] = self.pfu.filter_block(
                k_packed, q_packed, self.head_dim, threshold)

        # Stage 2/3: NMA scoring + ranking.  Keys surviving for any query of
        # the group are fetched once; each query then ranks only the keys
        # its own bitmap passed (the NMA's per-query valid mask).
        results: List[HeadResult] = []
        survivors_union = np.flatnonzero(survive.any(axis=0))
        sub_keys = keys[survivors_union]
        scored = self.nma.score_and_rank(flat_q, sub_keys, top_k,
                                         valid_mask=survive[:, survivors_union])
        n_tokens = len(flat_q) // self.group
        stats_per_q = (self.stats is not None
                       and self.stats.n_kv_heads == self.n_q_heads
                       and self.n_q_heads != self.n_kv_heads)
        for qi in range(len(flat_q)):
            global_idx = survivors_union[scored.indices[qi]]
            results.append(HeadResult(
                indices=global_idx,
                scores=scored.scores[qi],
                values=values[global_idx],
            ))
            if self.stats is not None:
                h = kv_head * self.group + qi // n_tokens
                self.stats.update(
                    layer, h if stats_per_q else kv_head,
                    candidates=n, passed=int(survive[qi].sum()),
                    retrieved=len(global_idx), queries=1)

        # Timing inputs: split the slice chain by package.
        chain = self.allocator.partitions[uid].slices[(layer, kv_head)]
        costs = []
        offset = 0
        per_query_survivors = survive.sum(axis=1)
        total_survivors = max(1, int(survive.any(axis=0).sum()))
        for s in chain:
            seg = s.n_keys
            if seg == 0:
                continue
            seg_survivors = int(survive[:, offset : offset + seg].any(axis=0).sum())
            seg_retrieved = int(round(
                min(top_k, float(per_query_survivors.mean()))
                * seg_survivors / total_survivors))
            costs.append(OffloadCost(
                n_keys=seg, n_survivors=seg_survivors,
                n_retrieved=seg_retrieved, n_query_heads=len(flat_q),
                head_dim=self.head_dim, top_k=top_k,
                dtype_bytes=self.dtype_bytes))
            offset += seg
        return results, costs
