"""DReX memory allocator (Sections 7.3.1–7.3.3).

Allocates Key Block groups — the minimum unit of 128 keys/bank across all
channels of a package — on behalf of Context Slices, and assembles them into
User Partitions.  Placement policy mirrors the paper:

- A (user, layer, KV head) slice lives in a single package; heads are
  spread across packages (``package = (uid + kv_head) % n_packages``) so a
  single user's per-layer offload engages every NMA.
- Within a package, groups take successive bank indices, so filtering
  parallelism grows with context length until all 128 bank indices are hot.
- Overflow beyond a full slice (131,072 keys) chains into the next package
  ("temporal expansion").

Row bookkeeping is per (package, bank index): rows are allocated at the
same offsets in every channel, which keeps address generation deterministic
for the NMA (Section 7.3.3).  The allocator never double-books a row and
raises :class:`CapacityError` when the device is full — both property-tested.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.drex.geometry import DrexGeometry, DREX_DEFAULT
from repro.drex.layout import (
    ContextSlice,
    KeyBlockGroup,
    UserPartition,
    rows_per_group,
)
from repro.errors import CapacityError

__all__ = ["CapacityError", "DrexAllocator"]


class DrexAllocator:
    """Row-granular allocator over the DReX geometry."""

    def __init__(self, geometry: DrexGeometry = DREX_DEFAULT,
                 dtype_bytes: int = 2) -> None:
        self.geometry = geometry
        self.dtype_bytes = dtype_bytes
        # Next free row per (package, bank index); channels move in lockstep.
        self._row_cursor = np.zeros(
            (geometry.n_packages, geometry.banks_per_channel), dtype=np.int64)
        self.partitions: Dict[int, UserPartition] = {}

    # -- accounting ---------------------------------------------------------------

    @property
    def rows_used(self) -> int:
        return int(self._row_cursor.sum()) * self.geometry.channels_per_package

    @property
    def bytes_used(self) -> int:
        return self.rows_used * self.geometry.row_bytes

    @property
    def bytes_free(self) -> int:
        return self.geometry.capacity_bytes - self.bytes_used

    def utilization(self) -> float:
        return self.bytes_used / self.geometry.capacity_bytes

    # -- placement ----------------------------------------------------------------

    def _home_package(self, uid: int, kv_head: int) -> int:
        return (uid + kv_head) % self.geometry.n_packages

    def _alloc_group(self, package: int, head_dim: int,
                     preferred_bank: Optional[int] = None) -> KeyBlockGroup:
        g = self.geometry
        rows = rows_per_group(head_dim, g, self.dtype_bytes)
        cursors = self._row_cursor[package]
        if preferred_bank is not None and \
                cursors[preferred_bank] + rows <= g.rows_per_bank:
            bank = preferred_bank
        else:
            bank = int(np.argmin(cursors))
            if cursors[bank] + rows > g.rows_per_bank:
                raise CapacityError(
                    f"package {package} cannot fit another Key Block group "
                    f"({rows} rows/bank needed)")
        row_start = int(cursors[bank])
        cursors[bank] += rows
        return KeyBlockGroup(bank_index=bank, row_start=row_start,
                             rows_per_bank=rows,
                             capacity=g.keys_per_key_block_group)

    def _partition(self, uid: int) -> UserPartition:
        if uid not in self.partitions:
            self.partitions[uid] = UserPartition(uid=uid)
        return self.partitions[uid]

    def append_keys(self, uid: int, layer: int, kv_head: int, n_keys: int,
                    head_dim: int) -> List[ContextSlice]:
        """Reserve space for ``n_keys`` more keys of one (layer, KV head).

        Extends the newest slice in the chain, adding Key Block groups at
        new bank indices as needed; spills to the next package once a slice
        reaches 128 groups.  Returns the (possibly extended) slice chain.
        """
        if n_keys < 0:
            raise ValueError("n_keys must be non-negative")
        g = self.geometry
        partition = self._partition(uid)
        chain = partition.slices.setdefault((layer, kv_head), [])
        if not chain:
            chain.append(ContextSlice(
                uid=uid, layer=layer, kv_head=kv_head,
                package=self._home_package(uid, kv_head),
                head_dim=head_dim, dtype_bytes=self.dtype_bytes))
        remaining = n_keys
        while remaining > 0:
            current = chain[-1]
            if current.head_dim != head_dim:
                raise ValueError("head_dim mismatch with existing slice")
            # Fill the last partially-full group first.
            if current.groups and current.groups[-1].free > 0:
                take = min(remaining, current.groups[-1].free)
                current.groups[-1].n_keys += take
                remaining -= take
                continue
            if len(current.groups) >= g.banks_per_channel:
                # Slice full (131,072 keys): chain into the next package.
                next_package = (current.package + 1) % g.n_packages
                chain.append(ContextSlice(
                    uid=uid, layer=layer, kv_head=kv_head,
                    package=next_package, head_dim=head_dim,
                    dtype_bytes=self.dtype_bytes))
                continue
            preferred = len(current.groups)  # successive bank indices
            group = self._alloc_group(current.package, head_dim, preferred)
            current.groups.append(group)
        return chain

    def free_user(self, uid: int) -> int:
        """Release a user's partition; returns bytes reclaimed.

        Rows are reclaimed logically (cursor bookkeeping is monotonic per
        bank; freed rows return to a per-package free pool counted against
        ``bytes_used``).  For simplicity and determinism we rebuild cursors
        from surviving partitions — eviction is rare (end of a session).
        """
        if uid not in self.partitions:
            return 0
        freed = sum(
            s.bytes_used(self.geometry)
            for chain in self.partitions[uid].slices.values() for s in chain)
        del self.partitions[uid]
        self._rebuild_cursors()
        return freed

    def _rebuild_cursors(self) -> None:
        self._row_cursor[:] = 0
        for partition in self.partitions.values():
            for chain in partition.slices.values():
                for s in chain:
                    for group in s.groups:
                        cursor = self._row_cursor[s.package]
                        end = group.row_start + group.rows_per_bank
                        cursor[group.bank_index] = max(
                            int(cursor[group.bank_index]), end)
