"""Memory object formats and MMIO descriptors (Section 7.3.1).

LongSight allocates DReX memory at the granularity of:

- **Key Sign Object** — one-bit sign-quantized keys for one (user, layer,
  KV head); bank-local, laid out so each 128-bit column holds one dimension
  across 128 keys (the PFU access pattern).
- **Key Object** — full-precision keys, interleaved across all eight
  channels of a package.
- **Value Object** — full-precision values per layer and head.
- **Request Descriptor** — UID, layer, and the query vectors; written by
  the GPU into the DCC's MMIO request queue.
- **Response Descriptor** — up to ``1,024 x H`` top keys/values plus their
  scores; populated into a per-user response buffer.

Each class knows its byte footprint so the CXL/bandwidth models can charge
transfers exactly.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np


@dataclasses.dataclass(frozen=True)
class KeySignObject:
    """One-bit sign codes for a block of keys (<= 128 per object)."""

    n_keys: int
    head_dim: int

    def __post_init__(self) -> None:
        if not 0 < self.n_keys <= 128:
            raise ValueError("Key Sign Objects hold 1..128 keys")

    @property
    def n_bytes(self) -> int:
        """One bit per (key, dimension): d columns of 128 bits."""
        return self.head_dim * 128 // 8


@dataclasses.dataclass(frozen=True)
class KeyObject:
    """Full-precision key block (channel-interleaved within a package)."""

    n_keys: int
    head_dim: int
    dtype_bytes: int = 2

    @property
    def n_bytes(self) -> int:
        return self.n_keys * self.head_dim * self.dtype_bytes


@dataclasses.dataclass(frozen=True)
class ValueObject:
    """Full-precision value block for one (user, layer, head)."""

    n_values: int
    head_dim: int
    dtype_bytes: int = 2

    @property
    def n_bytes(self) -> int:
        return self.n_values * self.head_dim * self.dtype_bytes


@dataclasses.dataclass
class RequestDescriptor:
    """Sparse-attention offload request (one user, one layer).

    ``queries`` carries the post-RoPE query vectors for every query head:
    shape ``(n_q_heads, head_dim)`` for single-token decode, or
    ``(n_q_heads, n_tokens, head_dim)`` for grouped decode (the PFU supports
    groups of up to 16 queries per KV head).
    """

    uid: int
    layer: int
    queries: np.ndarray
    top_k: int = 1024
    dtype_bytes: int = 2

    @property
    def n_bytes(self) -> int:
        header = 16  # UID, layer, k, flags
        return header + self.queries.size * self.dtype_bytes


@dataclasses.dataclass
class HeadResult:
    """Top-k result for one query head."""

    indices: np.ndarray   # positions within the offloaded region
    scores: np.ndarray    # raw dot products (pre-softmax, unscaled)
    values: np.ndarray    # (n_retrieved, head_dim)


@dataclasses.dataclass
class ResponseDescriptor:
    """Completed offload: per-query-head top-k lists (Section 7.3.1)."""

    uid: int
    layer: int
    heads: list  # list[HeadResult], indexed by query head
    dtype_bytes: int = 2
    latency: Optional[object] = None  # LatencyBreakdown, attached by the device

    @property
    def n_bytes(self) -> int:
        """Bytes the GPU must pull over CXL: scores + values (+ ids)."""
        total = 16
        for head in self.heads:
            n, d = head.values.shape if head.values.size else (0, 0)
            total += n * (d * self.dtype_bytes + self.dtype_bytes + 4)
        return total

    @staticmethod
    def max_bytes(n_q_heads: int, head_dim: int, top_k: int = 1024,
                  dtype_bytes: int = 2) -> int:
        """Sizing bound for the DCC's fixed response buffers."""
        per_entry = head_dim * dtype_bytes + dtype_bytes + 4
        return 16 + n_q_heads * top_k * per_entry
