"""Discrete-event simulation of DReX offload scheduling (Section 7.2).

The analytical engine (:mod:`repro.system.engine`) approximates per-layer
DReX time as ``ceil(units / n_nmas) x unit``; this module simulates the
actual DCC dispatch loop so that approximation can be validated and SLO
attainment measured:

- the DCC pops Request Descriptors in FIFO order and dispatches each
  request's package-units to the per-package NMA queues;
- each NMA serves its queue one unit at a time (one user/layer/head per
  NMA at any instant, Section 7.4);
- when a request's last unit finishes, the DCC aggregates partial top-k
  lists and enqueues the response transfer on the (serialized) CXL link —
  which is how value reads for early requests overlap compute of queued
  ones (Section 9.2).
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, List, Optional, Sequence

from repro.drex.geometry import DrexGeometry, DREX_DEFAULT


@dataclasses.dataclass
class OffloadJob:
    """One sparse-attention request (one user, one layer)."""

    job_id: int
    arrival_ns: float
    #: (package index, device compute ns) per unit of work; a unit is one
    #: head's slice segment.
    units: Sequence[tuple]
    #: Response serialization time on the CXL link (latency excluded).
    value_transfer_ns: float = 0.0


@dataclasses.dataclass
class JobResult:
    """Completion record for one job."""

    job_id: int
    arrival_ns: float
    compute_done_ns: float
    finish_ns: float

    @property
    def latency_ns(self) -> float:
        return self.finish_ns - self.arrival_ns


@dataclasses.dataclass
class SimOutcome:
    """Aggregate simulation results."""

    results: List[JobResult]
    makespan_ns: float
    nma_busy_ns: Dict[int, float]
    cxl_busy_ns: float

    def latencies_ns(self) -> List[float]:
        return [r.latency_ns for r in self.results]

    def mean_latency_ns(self) -> float:
        lats = self.latencies_ns()
        return sum(lats) / len(lats) if lats else 0.0

    def p99_latency_ns(self) -> float:
        lats = sorted(self.latencies_ns())
        if not lats:
            return 0.0
        return lats[min(len(lats) - 1, int(0.99 * len(lats)))]

    def slo_attainment(self, slo_ns: float) -> float:
        """Fraction of jobs finishing within ``slo_ns`` of arrival."""
        lats = self.latencies_ns()
        if not lats:
            return 1.0
        return sum(1 for lat in lats if lat <= slo_ns) / len(lats)

    def nma_utilization(self) -> float:
        if self.makespan_ns <= 0:
            return 0.0
        return sum(self.nma_busy_ns.values()) / (
            len(self.nma_busy_ns) * self.makespan_ns)


class DrexScheduler:
    """Event-driven model of DCC dispatch + NMA queues + CXL responses."""

    def __init__(self, geometry: DrexGeometry = DREX_DEFAULT) -> None:
        self.geometry = geometry

    def simulate(self, jobs: Sequence[OffloadJob]) -> SimOutcome:
        """Run all jobs to completion.

        Dispatch policy: FIFO per package queue (units are enqueued in job
        arrival order); the CXL response link serves completed requests in
        compute-completion order.
        """
        n = self.geometry.n_nmas
        nma_free_at = [0.0] * n
        nma_busy: Dict[int, float] = {i: 0.0 for i in range(n)}
        # Build per-package FIFO unit queues in arrival order.
        ordered = sorted(jobs, key=lambda j: (j.arrival_ns, j.job_id))
        queues: List[List[tuple]] = [[] for _ in range(n)]
        remaining: Dict[int, int] = {}
        for job in ordered:
            remaining[job.job_id] = len(job.units)
            for package, compute_ns in job.units:
                queues[package % n].append((job.arrival_ns, job.job_id,
                                            compute_ns))
        compute_done: Dict[int, float] = {}
        # Serve each NMA queue respecting arrival times.
        for package, queue in enumerate(queues):
            clock = 0.0
            for arrival_ns, job_id, compute_ns in queue:
                start = max(clock, arrival_ns)
                clock = start + compute_ns
                nma_busy[package] += compute_ns
                compute_done[job_id] = max(compute_done.get(job_id, 0.0),
                                           clock)
                remaining[job_id] -= 1
        by_job = {job.job_id: job for job in jobs}
        for job in ordered:
            if remaining[job.job_id] != 0:
                raise RuntimeError("scheduler lost a unit")
            if job.job_id not in compute_done:  # job with no units
                compute_done[job.job_id] = job.arrival_ns

        # CXL responses: serialized link, served in compute-done order.
        cxl_clock = 0.0
        cxl_busy = 0.0
        results = []
        for job_id in sorted(compute_done,
                             key=lambda j: (compute_done[j], j)):
            job = by_job[job_id]
            start = max(cxl_clock, compute_done[job_id])
            finish = start + job.value_transfer_ns
            cxl_busy += job.value_transfer_ns
            cxl_clock = finish
            results.append(JobResult(job_id=job_id,
                                     arrival_ns=job.arrival_ns,
                                     compute_done_ns=compute_done[job_id],
                                     finish_ns=finish))
        makespan = max((r.finish_ns for r in results), default=0.0)
        return SimOutcome(results=results, makespan_ns=makespan,
                          nma_busy_ns=nma_busy, cxl_busy_ns=cxl_busy)


def decode_step_jobs(n_users: int, unit_compute_ns: float,
                     n_units_per_user: int, value_transfer_ns: float,
                     geometry: DrexGeometry = DREX_DEFAULT,
                     stagger_ns: float = 0.0) -> List[OffloadJob]:
    """Jobs for one decode layer: every user submits one request.

    Units are placed on packages the way the allocator does: user ``u``'s
    unit ``i`` lands on package ``(u + i) % n_packages`` (head spreading
    plus chaining).  ``stagger_ns`` models GPU-side submission spacing.
    """
    jobs = []
    for user in range(n_users):
        units = [((user + i) % geometry.n_packages, unit_compute_ns)
                 for i in range(n_units_per_user)]
        jobs.append(OffloadJob(job_id=user, arrival_ns=user * stagger_ns,
                               units=units,
                               value_transfer_ns=value_transfer_ns))
    return jobs
