"""Physical address mapping (Section 7.3.2).

"DReX employs a simple physical address mapping scheme in which contiguous
physical addresses are first mapped to columns, then rows, followed by
banks, channels, and finally packages."  The map is a bijection between
flat byte addresses and (package, channel, bank, row, col, offset) tuples —
property-tested in ``tests/drex/test_address.py``.
"""

from __future__ import annotations

import dataclasses

from repro.drex.geometry import DrexGeometry, DREX_DEFAULT


@dataclasses.dataclass(frozen=True, order=True)
class PhysicalLocation:
    """A column-aligned location inside DReX DRAM."""

    package: int
    channel: int
    bank: int
    row: int
    col: int


class AddressMap:
    """Bidirectional flat-address <-> physical-location translation."""

    def __init__(self, geometry: DrexGeometry = DREX_DEFAULT) -> None:
        self.geometry = geometry

    def decode(self, address: int) -> tuple[PhysicalLocation, int]:
        """Flat byte address -> (location, byte offset within the column)."""
        g = self.geometry
        if not 0 <= address < g.capacity_bytes:
            raise ValueError(f"address {address:#x} out of range")
        offset = address % g.col_bytes
        units = address // g.col_bytes
        col = units % g.cols_per_row
        units //= g.cols_per_row
        row = units % g.rows_per_bank
        units //= g.rows_per_bank
        bank = units % g.banks_per_channel
        units //= g.banks_per_channel
        channel = units % g.channels_per_package
        package = units // g.channels_per_package
        return PhysicalLocation(package, channel, bank, row, col), offset

    def encode(self, location: PhysicalLocation, offset: int = 0) -> int:
        """Physical location (+ byte offset) -> flat byte address."""
        g = self.geometry
        if not 0 <= location.package < g.n_packages:
            raise ValueError("package out of range")
        if not 0 <= location.channel < g.channels_per_package:
            raise ValueError("channel out of range")
        if not 0 <= location.bank < g.banks_per_channel:
            raise ValueError("bank out of range")
        if not 0 <= location.row < g.rows_per_bank:
            raise ValueError("row out of range")
        if not 0 <= location.col < g.cols_per_row:
            raise ValueError("col out of range")
        if not 0 <= offset < g.col_bytes:
            raise ValueError("offset out of range")
        units = location.package
        units = units * g.channels_per_package + location.channel
        units = units * g.banks_per_channel + location.bank
        units = units * g.rows_per_bank + location.row
        units = units * g.cols_per_row + location.col
        return units * g.col_bytes + offset

    def row_address(self, package: int, channel: int, bank: int,
                    row: int) -> int:
        """Flat address of the first byte of a row."""
        return self.encode(PhysicalLocation(package, channel, bank, row, 0))


def key_id_address(bank: int, index_in_bitmap: int, epoch: int) -> int:
    """Pack the NMA's 32-bit key *ID address* (Section 7.4).

    Bits [6:0] bank index (128 banks/channel), bits [13:7] index within the
    128-bit bitmap, bits [31:14] the filtering epoch.
    """
    if not 0 <= bank < 128:
        raise ValueError("bank must fit in 7 bits")
    if not 0 <= index_in_bitmap < 128:
        raise ValueError("bitmap index must fit in 7 bits")
    if not 0 <= epoch < (1 << 18):
        raise ValueError("epoch must fit in 18 bits")
    return bank | (index_in_bitmap << 7) | (epoch << 14)


def decode_key_id_address(id_address: int) -> tuple[int, int, int]:
    """Inverse of :func:`key_id_address`: (bank, bitmap index, epoch)."""
    if not 0 <= id_address < (1 << 32):
        raise ValueError("ID address must be 32-bit")
    return id_address & 0x7F, (id_address >> 7) & 0x7F, id_address >> 14
