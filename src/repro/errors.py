"""Shared exception hierarchy for the reproduction.

Every operational failure the stack can raise derives from
:class:`ReproError`, so callers that supervise the offload path (retry,
degrade, shed) can catch one family instead of enumerating bare
``RuntimeError``/``KeyError`` types scattered across modules.

:class:`ReproError` subclasses :class:`RuntimeError` so pre-existing
``except RuntimeError`` call sites keep working; :class:`UnknownUserError`
additionally subclasses :class:`KeyError` because it replaces the bare
``KeyError`` the DCC CAM used to raise for unregistered UIDs.
"""

from __future__ import annotations


class ReproError(RuntimeError):
    """Base class for all operational errors raised by this package."""


class QueueFullError(ReproError):
    """A DCC hardware resource (MMIO request queue, response buffers) has
    no free slot."""


class CapacityError(ReproError):
    """DReX cannot hold the requested allocation."""


class PoolExhaustedError(CapacityError):
    """The paged KV pool has no free blocks for the requested growth.

    Raised by :class:`repro.serve.paged_kv.PagedKVPool`; the serving
    engine's signal to preempt a session (or defer admission) rather than
    crash the batch.  Subclasses :class:`CapacityError` so generic
    capacity handling keeps working.

    Carries the pool's sizing context as structured attributes (``need``,
    ``free``, ``used``, ``total`` ...) so supervisors can size a retry or
    a migration target without parsing the message.  All keyword fields
    are optional: message-only construction keeps working for callers
    that predate the structured form."""

    def __init__(self, message: str, *, need: int = 0, free: int = 0,
                 total: int = 0, block_tokens: int = 0, n_layers: int = 0,
                 shared_prefix_blocks: int = 0,
                 high_watermark: int = 0) -> None:
        super().__init__(message)
        self.need = need
        self.free = free
        self.total = total
        self.used = max(0, total - free)
        self.block_tokens = block_tokens
        self.n_layers = n_layers
        self.shared_prefix_blocks = shared_prefix_blocks
        self.high_watermark = high_watermark


class OffloadTimeoutError(ReproError):
    """An offload did not complete within its deadline (CXL stall, lost
    response, or a device-side latency beyond the per-request budget)."""


class CorruptedKsoError(ReproError):
    """A Key Sign Object failed checksum verification (bit corruption in
    the sign store)."""


class UnknownUserError(ReproError, KeyError):
    """A UID was used that is not registered with the DCC CAM."""

    def __str__(self) -> str:  # KeyError would repr() the message
        return RuntimeError.__str__(self)


class DurabilityError(ReproError):
    """Base class for snapshot / write-ahead-log / recovery failures."""


class SnapshotCorruptError(DurabilityError):
    """A snapshot file failed integrity verification (bad magic, torn
    section framing, or chain-hash footer mismatch).  Recovery skips the
    file and falls back to the previous valid snapshot."""


class WalCorruptError(DurabilityError):
    """A write-ahead log record failed CRC or framing checks *before* the
    final record — mid-file corruption, not an ordinary torn tail."""


class StaleWalError(DurabilityError):
    """The write-ahead log belongs to a different epoch than the snapshot
    being restored; its suffix cannot be trusted for replay."""


class ReplayDivergenceError(DurabilityError):
    """Deterministic re-execution of the WAL suffix produced a different
    token (or clock) than the logged record — the restored state is not
    bit-identical to the pre-crash run."""


class WorkerKilledError(DurabilityError):
    """An injected crash point killed the worker mid-run (see
    :class:`repro.system.faults.CrashPlan`).  The fleet router catches
    this and restores the worker from its durable directory."""

    def __init__(self, message: str, *, step: int = 0,
                 kind: str = "") -> None:
        super().__init__(message)
        self.step = step
        self.kind = kind


class WorkerStalledError(ReproError):
    """A worker blew its step deadline (gray failure: hung, wedged, or
    pathologically slow).  The fleet router's bounded-wait guard raises
    this instead of blocking the lockstep loop forever; with healthy
    siblings available the router converts it into a cross-worker
    failover, otherwise it propagates to the caller."""

    def __init__(self, message: str, *, worker_id: int = -1,
                 deadline_s: float = 0.0, observed_s: float = 0.0) -> None:
        super().__init__(message)
        self.worker_id = worker_id
        self.deadline_s = deadline_s
        self.observed_s = observed_s
