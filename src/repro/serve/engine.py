"""The continuous-batching functional serving engine.

:class:`ServeEngine` decodes real tokens for many concurrent requests
through one shared :class:`~repro.llm.model.Transformer` and per-session
attention backends, over a shared :class:`~repro.serve.paged_kv.PagedKVPool`.
Each engine step interleaves one chunk of prefill with a decode step for
every running session (continuous batching), exactly as the paper's
serving story pairs sparse attention with request-level scheduling.

Two clocks are supported:

- **analytic** (default for benchmarks): step durations come from the
  ``repro.system`` performance models (:class:`AnalyticTiming`), so TTFT /
  TPOT are meaningful at paper scale while tokens are still *actually
  decoded* by the miniature model — the same layering the analytic
  :class:`~repro.system.serving_sim.ServingSimulator` uses, which is what
  makes cross-validation between the two meaningful;
- **measured** (``timing=None``): wall-clock seconds of the numpy compute.

Correctness anchor: with an ample pool, a zero-fault backend, and the
default chunking, every served session's token stream is **bit-identical**
to single-session :func:`repro.llm.sampling.generate` on the same prompt —
chunked prefill splits on the model's prefill block boundaries (identical
blocking), paged reads gather identical values, and the decode batch keeps
every per-session GEMM shape unchanged (see ``decode_step_batch``).
Preemption preserves this too: victims are resumed by re-prefilling
``prompt + outputs[:-1]`` (K/V projections are blocking-independent) and
replaying the last sampled token through a real decode step.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Protocol, Sequence

import numpy as np

from repro.errors import PoolExhaustedError
from repro.llm.model import Transformer
from repro.obs import Obs, resolve_obs
from repro.serve.events import ServeReport
from repro.serve.paged_kv import PagedKVPool
from repro.serve.scheduler import (ContinuousBatchScheduler, RequestState,
                                   ServeRequest, SloPolicy, StepPlan)

#: Decode-batch-size histogram edges: one bucket per batch size up to 256.
_BATCH_EDGES = tuple(float(x) for x in range(1, 257))


class TimingModel(Protocol):
    """Maps one engine step's work to seconds of serving time."""

    def decode_step_s(self, contexts: Sequence[int],
                      degraded: Optional[Sequence[bool]]) -> float:
        ...

    def prefill_chunk_s(self, context_before: int, context_after: int) -> float:
        ...


class AnalyticTiming:
    """Adapter from the ``repro.system`` analytic models to engine steps.

    Args:
        system: any serving-simulator system model (``step_latency_s`` over
            heterogeneous contexts; ``step_latency_degraded_s`` used when
            present and any session is degraded).
        model_config: the paper-scale model the latencies are charged for.
        prefill: optional :class:`~repro.system.prefill.PrefillModel`; when
            given, a prefill chunk costs the *incremental* prefill latency
            between its start and end context (``None`` models prefill as
            fully overlapped with decode, like the analytic simulator).
        obs: observability bundle; the modeled seconds of every decode
            step and prefill chunk are attributed into
            ``timing.decode_step_s`` / ``timing.prefill_chunk_s``.
    """

    def __init__(self, system, model_config, prefill=None,
                 obs: Optional[Obs] = None) -> None:
        self.system = system
        self.model_config = model_config
        self.prefill = prefill
        self.obs = resolve_obs(obs)

    def _attribute(self, stage: str, seconds: float) -> None:
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter(f"timing.{stage}s").inc()
            metrics.counter(f"timing.{stage}_total_s").inc(seconds)
            metrics.histogram(f"timing.{stage}_s").observe(seconds)

    def decode_step_s(self, contexts, degraded=None) -> float:
        if not contexts:
            return 0.0
        degraded_step = getattr(self.system, "step_latency_degraded_s", None)
        if degraded is not None and degraded_step is not None \
                and any(degraded):
            step = degraded_step(self.model_config, list(contexts),
                                 list(degraded))
        else:
            step = self.system.step_latency_s(self.model_config,
                                              list(contexts))
        self._attribute("decode_step", step)
        return step

    def prefill_chunk_s(self, context_before: int, context_after: int) -> float:
        if self.prefill is None or context_after <= context_before:
            return 0.0
        ls = getattr(self.system, "ls", None)
        after = self.prefill.prefill(self.model_config, context_after,
                                     ls=ls).total_s
        if context_before <= 0:
            chunk = after
        else:
            before = self.prefill.prefill(self.model_config, context_before,
                                          ls=ls).total_s
            chunk = max(0.0, after - before)
        self._attribute("prefill_chunk", chunk)
        return chunk


class ServeEngine:
    """Continuous-batching serving over one model and one paged KV pool.

    Args:
        model: the shared transformer (weights are read-only).
        pool: the paged KV arena all sessions share.
        backend_factory: callable ``(request) -> attention backend`` giving
            each admitted session its (possibly stateful, e.g. supervised
            offload) backend; called again after a preemption resume.
        policy: scheduling knobs (:class:`SloPolicy`).
        timing: step-time model; ``None`` measures wall-clock numpy time.
        name: label for the report (e.g. the system being modeled).
        prefill_block_size: the model-level prefill block; the policy's
            ``prefill_chunk`` must be a multiple of it so chunked prefill
            reproduces single-shot prefill exactly.
        obs: observability bundle shared with the scheduler.  Metrics
            (queue depth, batch sizes, shed causes, TTFT/TPOT) always
            record when the registry is enabled; spans
            (``serve.run`` > ``engine.step`` > ``prefill_chunk`` /
            ``decode_batch``) record when the bundle's tracer is enabled.
            Instrumentation never changes served tokens.
    """

    def __init__(self, model: Transformer, pool: PagedKVPool,
                 backend_factory, policy: Optional[SloPolicy] = None,
                 timing: Optional[TimingModel] = None,
                 name: str = "serve", prefill_block_size: int = 256,
                 max_steps: int = 1_000_000,
                 obs: Optional[Obs] = None,
                 migrate_handler: Optional[
                     Callable[[ServeRequest], bool]] = None) -> None:
        self.model = model
        self.pool = pool
        self.backend_factory = backend_factory
        self.policy = policy or SloPolicy()
        if self.policy.prefill_chunk % prefill_block_size != 0:
            raise ValueError(
                "prefill_chunk must be a multiple of prefill_block_size so "
                "chunked prefill splits on the model's block boundaries")
        self.timing = timing
        self.name = name
        self.prefill_block_size = prefill_block_size
        self.max_steps = max_steps
        self.obs = resolve_obs(obs)
        #: optional relocation hook ``(request) -> bool``: offered every
        #: session this engine would otherwise preempt-requeue or
        #: capacity-shed; returning ``True`` means the request now lives
        #: elsewhere (a fleet router re-injected it into another worker).
        self.migrate_handler = migrate_handler
        self._active_run: Optional["EngineRun"] = None

    # -- session plumbing -----------------------------------------------------

    def _attach(self, request: ServeRequest) -> None:
        """Give an admitted request a pool-backed cache and a backend."""
        request.cache = self.pool.new_cache()
        request.backend = self.backend_factory(request)
        if request.pinned_dense:
            request.backend = self._dense_pin_of(request.backend)

    @staticmethod
    def _backend_degraded(backend) -> int:
        """Supervisor degradation counter, 0 for unsupervised backends."""
        return int(getattr(backend, "degraded_tokens", 0) or 0)

    @staticmethod
    def _dense_pin_of(backend):
        """The dense sliding-window twin of a sparse/offload backend.

        Shedding a session from the offload path pins it to exactly the
        attention the supervisor degrades single tokens to; unsupervised
        dense backends pin to themselves.
        """
        from repro.core.hybrid import SlidingWindowAttention

        fallback = getattr(backend, "dense_fallback", None)
        if callable(fallback):
            return fallback()
        cfg = getattr(backend, "config", None)
        if cfg is not None and hasattr(cfg, "window"):
            return SlidingWindowAttention(window=cfg.window,
                                          n_sink=cfg.n_sink)
        return backend

    # -- capacity -------------------------------------------------------------

    def _ensure_growth(self, scheduler: ContinuousBatchScheduler,
                       request: ServeRequest, tokens: int) -> bool:
        """Secure pool blocks for ``tokens`` total, preempting if needed.

        Returns False when even preemption cannot make room (the request
        itself must then be shed or deferred).
        """
        while True:
            try:
                request.cache.ensure_tokens(tokens)
                return True
            except PoolExhaustedError:
                if scheduler.preempt_victim(request) is None:
                    return False

    # -- the run loop ---------------------------------------------------------

    def start(self, requests: Sequence[ServeRequest]) -> "EngineRun":
        """Begin a stepwise run over ``requests``.

        The returned :class:`EngineRun` exposes the loop body of
        :meth:`run` one step at a time (``step`` / ``inject`` /
        ``finish``), which is what lets a fleet router interleave many
        workers on one coherent timeline and inject migrated sessions
        mid-run.  :meth:`run` is exactly ``start`` + stepping to
        completion, so solo callers see identical behavior.
        """
        run = EngineRun(self, requests)
        self._active_run = run
        return run

    def run(self, requests: Sequence[ServeRequest]) -> ServeReport:
        """Serve ``requests`` to completion; returns the event report."""
        run = self.start(requests)
        with self.obs.tracer.span("serve.run", system=self.name,
                                  requests=len(requests)):
            for _ in range(self.max_steps):
                if not run.step():
                    break
        return run.finish()

    def _offer_migration(self, request: ServeRequest) -> bool:
        """Offer a detached (QUEUED, cache-free) session to the router."""
        if self.migrate_handler is None or not self.migrate_handler(request):
            return False
        if self._active_run is not None:
            self._active_run.note_departure(request)
        return True

    def _is_pinned_backend(self, request: ServeRequest) -> bool:
        from repro.core.hybrid import SlidingWindowAttention

        return isinstance(request.backend, SlidingWindowAttention)

    # -- brownout (overload degradation ladder) -------------------------------

    def _brownout_backend(self, request: ServeRequest, stage: int):
        """Effective decode backend under brownout ``stage``.

        Returns ``(backend, applied_stage)``; ``applied_stage`` is 0
        whenever service is actually unchanged (stage 0, an already
        dense-pinned session, or a backend without the config hooks), so
        only genuinely degraded tokens are attributed to the ladder.

        Safe on the live cache: ``top_k`` / ``thresholds`` are
        query-time retrieval knobs (the packed-sign layout is identical
        across variants) and K/V projections are backend-independent, so
        a variant — or the dense sliding-window twin — reads the same
        blocks the full-quality backend wrote.  Variants are memoized on
        the backend instance (one per serving batch), not rebuilt per
        token.
        """
        if stage <= 0 or request.pinned_dense:
            return request.backend, 0
        backend = request.backend
        if stage >= 3:
            dense = self._dense_pin_of(backend)
            return dense, 3 if dense is not backend else 0
        policy = self.policy.brownout
        cfg = getattr(backend, "config", None)
        with_config = getattr(backend, "with_config", None)
        if policy is None or cfg is None or not callable(with_config) \
                or not hasattr(cfg, "top_k"):
            return backend, 0
        variants = getattr(backend, "_brownout_variants", None)
        if variants is None:
            variants = {}
            try:
                backend._brownout_variants = variants
            except AttributeError:
                pass  # __slots__ backend: variants live one step
        if stage not in variants:
            shrunk = max(1, int(cfg.top_k * policy.top_k_scale))
            new_cfg = cfg.replace(top_k=shrunk)
            if stage >= 2:
                bumped = np.asarray(cfg.thresholds) + policy.threshold_bump
                new_cfg = new_cfg.replace(
                    thresholds=int(bumped) if bumped.ndim == 0 else bumped)
            variants[stage] = with_config(new_cfg)
        return variants[stage], stage

    # -- one step -------------------------------------------------------------

    def _execute(self, scheduler: ContinuousBatchScheduler,
                 plan: StepPlan, clock: float):
        """Run one engine step; returns (seconds, emitters, degradations)."""
        wall0 = time.perf_counter()
        emitted: List[ServeRequest] = []
        analytic_s = 0.0
        tracer = self.obs.tracer

        # -- chunked prefill --------------------------------------------------
        for request in list(plan.prefills):
            target = request.resume_tokens
            # First chunk of a fresh (empty) cache: splice in any shared
            # prompt prefix before computing anything.  Capped at
            # target[:-1] so at least the final token always runs through
            # prefill and produces the first-token logits.  Dense-pinned
            # sessions are excluded: their K/V come from a different
            # backend family than the pool's shared blocks.
            if request.prefilled == 0 and request.cache is not None \
                    and len(request.cache) == 0 \
                    and self.pool.prefix_caching \
                    and not request.pinned_dense and len(target) > 1:
                request.prefilled = request.cache.attach_prefix(
                    target[:len(target) - 1])
            chunk = min(self.policy.prefill_chunk,
                        len(target) - request.prefilled)
            if not self._ensure_growth(scheduler, request,
                                       request.prefilled + chunk):
                self._shed_in_flight(scheduler, request)
                continue
            segment = target[request.prefilled: request.prefilled + chunk]
            with tracer.span("prefill_chunk", request=request.request_id,
                             tokens=int(chunk)):
                logits = self.model.prefill(
                    segment, request.cache, backend=request.backend,
                    block_size=self.prefill_block_size)
            ctx_before = request.prefilled
            request.prefilled += chunk
            # Publish the freshly written full prompt blocks so later
            # sessions with the same prompt prefix can attach them.
            if self.pool.prefix_caching and not request.pinned_dense:
                prompt_done = min(request.prefilled, len(request.prompt))
                request.cache.publish_prefix(request.prompt[:prompt_done])
            if self.timing is not None:
                # Charge prefill at the request's paper-scale prompt
                # length, scaled to the fraction of prompt processed.
                # The charge runs *overlapped* with the decode batch
                # (the analytic simulator's model): it delays this
                # session's readiness, not the global clock.
                scale = 1.0
                if request.charged_prompt_tokens is not None \
                        and len(request.prompt):
                    scale = request.charged_prompt_tokens \
                        / len(request.prompt)
                request.prefill_charge_s += self.timing.prefill_chunk_s(
                    int(ctx_before * scale),
                    int(request.prefilled * scale))
            if request.prefilled == len(target):
                scheduler.prefill_complete(request)
                admitted_s = request.events.admitted_s or 0.0
                request.ready_s = max(
                    clock, admitted_s + request.prefill_charge_s)
                if not request.outputs:
                    token = int(np.argmax(logits))
                    request.outputs.append(token)
                    request.pending_token = token
                    emitted.append(request)
                # resumed sessions replay outputs[-1] via a decode step, so
                # the rebuilt trajectory is bit-identical to the original.
                else:
                    request.pending_token = request.outputs[-1]

        # -- decode batch -----------------------------------------------------
        degraded_flags = []
        decodes = [r for r in plan.decodes
                   if r.state is RequestState.DECODE and r.ready_s <= clock]
        ready = []
        for request in decodes:
            if request.state is not RequestState.DECODE:
                continue  # preempted by an earlier prefill's growth
            if self._ensure_growth(scheduler, request,
                                   len(request.cache) + 1):
                ready.append(request)
            else:
                self._shed_in_flight(scheduler, request)
        # A later session's growth may have preempted one already deemed
        # ready; drop anything no longer in DECODE before batching.
        ready = [r for r in ready if r.state is RequestState.DECODE]
        if ready:
            stage = scheduler.brownout_stage
            backends = []
            applied_stages = []
            for request in ready:
                backend, applied = self._brownout_backend(request, stage)
                backends.append(backend)
                applied_stages.append(applied)
            before = [self._backend_degraded(b) for b in backends]
            with tracer.span("decode_batch", batch=len(ready)):
                logits_list = self.model.decode_step_batch(
                    [r.pending_token for r in ready],
                    [r.cache for r in ready],
                    backends)
            for request, logits, seen, backend, applied in zip(
                    ready, logits_list, before, backends, applied_stages):
                token = int(np.argmax(logits))
                request.outputs.append(token)
                request.pending_token = token
                emitted.append(request)
                now_degraded = self._backend_degraded(backend)
                degraded = request.pinned_dense or now_degraded > seen
                degraded_flags.append((request, degraded))
                if applied:
                    scheduler.note_brownout(request, applied)
            if self.timing is not None:
                # Stage-3 (dense-pin) brownout tokens take the degraded
                # step-latency path: they were served by exactly the
                # dense sliding-window fallback the fault layer degrades
                # to, which is what buys queue drain under overload.
                analytic_s += self.timing.decode_step_s(
                    [r.charged_context for r in ready],
                    [flag or applied >= 3 for (_, flag), applied
                     in zip(degraded_flags, applied_stages)])

        step_s = analytic_s if self.timing is not None \
            else time.perf_counter() - wall0
        return step_s, emitted, degraded_flags

    def _shed_in_flight(self, scheduler: ContinuousBatchScheduler,
                        request: ServeRequest) -> None:
        """Capacity shed: not even preemption freed room for this request.

        With a fleet router attached the session is offered for migration
        first — detached exactly like a preemption victim (blocks freed,
        state QUEUED, resume via re-prefill), so the target worker resumes
        it bit-identically.  Only when no worker will take it does the
        request actually shed.
        """
        scheduler.running.remove(request)
        if request.cache is not None:
            request.cache.free()
            request.cache = None
        request.backend = None
        if self.migrate_handler is not None:
            request.state = RequestState.QUEUED
            request.prefilled = 0
            request.prefill_charge_s = 0.0
            request.ready_s = 0.0
            if self._offer_migration(request):
                return
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter("serve.shed.capacity").inc()
        request.pinned_dense = False
        request.state = RequestState.SHED
        request.events.shed = True
        scheduler.finished.append(request)


class EngineRun:
    """One in-flight serving run, stepped explicitly.

    Extracted loop body of :meth:`ServeEngine.run`: ``step()`` performs
    exactly one iteration of the original loop (arrival submission,
    admission, batch assembly, execution, clock advance, bookkeeping) and
    returns ``False`` when the run is complete.  A fleet router drives
    several runs on interleaved clocks and uses :meth:`inject` to hand a
    migrated session to this worker mid-run; :meth:`note_departure`
    removes a migrated-away session from this run's report so every
    request is reported by exactly one worker.
    """

    def __init__(self, engine: ServeEngine,
                 requests: Sequence[ServeRequest]) -> None:
        self.engine = engine
        self.scheduler = ContinuousBatchScheduler(
            engine.pool, engine.policy, obs=engine.obs,
            victim_sink=engine._offer_migration)
        self._arrivals = sorted(requests,
                                key=lambda r: (r.arrival_s, r.request_id))
        self._next_arrival = 0
        self._departed: set = set()          # id(request) of migrated-away
        self.clock = 0.0
        self.tokens_generated = 0
        self.peak_batch = 0

    # -- router-facing surface ------------------------------------------------

    @property
    def idle(self) -> bool:
        """No pending arrivals and nothing queued or running.

        Future arrivals already departed (drained off by a failover) do
        not count — a fully drained run is idle even though its arrival
        cursor never swept past them.
        """
        return not self.pending and self.scheduler.all_done

    @property
    def next_arrival_s(self) -> Optional[float]:
        """Arrival time of the next not-yet-submitted request."""
        if self._next_arrival < len(self._arrivals):
            return self._arrivals[self._next_arrival].arrival_s
        return None

    @property
    def pending(self) -> List[ServeRequest]:
        """Arrived-but-unsubmitted requests (router load estimation)."""
        return [r for r in self._arrivals[self._next_arrival:]
                if id(r) not in self._departed]

    def inject(self, request: ServeRequest) -> None:
        """Hand a (migrated) request to this run as a future arrival."""
        self._departed.discard(id(request))
        idx = self._next_arrival
        key = (request.arrival_s, request.request_id)
        while idx < len(self._arrivals) and (
                self._arrivals[idx].arrival_s,
                self._arrivals[idx].request_id) <= key:
            idx += 1
        self._arrivals.insert(idx, request)

    def note_departure(self, request: ServeRequest) -> None:
        """Mark a request as migrated away (reported by its new worker)."""
        self._departed.add(id(request))

    # -- one loop iteration ---------------------------------------------------

    def step(self) -> bool:
        """One engine-loop iteration; ``False`` when the run is done."""
        engine = self.engine
        scheduler = self.scheduler
        metrics = engine.obs.metrics
        tracer = engine.obs.tracer

        while self._next_arrival < len(self._arrivals) \
                and self._arrivals[self._next_arrival].arrival_s \
                <= self.clock:
            request = self._arrivals[self._next_arrival]
            if id(request) not in self._departed:
                scheduler.submit(request)
            self._next_arrival += 1
        scheduler.update_brownout(self.clock)
        for request in scheduler.admit(self.clock):
            engine._attach(request)
        plan = scheduler.assemble()
        if plan.empty:
            pending = self.next_arrival_s
            if pending is not None:
                self.clock = max(self.clock, pending)
                return True
            return False

        with tracer.span("engine.step"):
            step_s, emitted, degraded_flags = engine._execute(
                scheduler, plan, self.clock)
        if metrics.enabled:
            metrics.counter("serve.steps").inc()
            metrics.counter("serve.tokens").inc(len(emitted))
            metrics.histogram("serve.decode_batch",
                              edges=_BATCH_EDGES).observe(len(plan.decodes))
            metrics.gauge("serve.queue_depth").set(len(scheduler.queued))
            metrics.gauge("serve.running_sessions").set(
                len(scheduler.running))
        if step_s == 0.0 and not emitted:
            # Every runnable session is waiting out its overlapped
            # prefill charge; jump the clock to the first readiness.
            waiting = [r.ready_s for r in scheduler.running
                       if r.state is RequestState.DECODE
                       and r.ready_s > self.clock]
            if waiting:
                self.clock = min(waiting)
                return True
        self.clock += step_s
        self.peak_batch = max(self.peak_batch, len(plan.decodes))
        self.tokens_generated += len(emitted)
        for request in emitted:
            stamp = max(self.clock, request.ready_s)
            request.events.token_times_s.append(stamp)
            if request.events.first_token_s is None:
                request.events.first_token_s = stamp
        for request, degraded in degraded_flags:
            scheduler.note_degraded(request, degraded)
            if request.pinned_dense and request.state \
                    is RequestState.DECODE \
                    and not engine._is_pinned_backend(request):
                request.backend = engine._dense_pin_of(request.backend)
        for request in list(plan.decodes):
            if request.state is RequestState.DECODE \
                    and len(request.outputs) >= request.max_new_tokens:
                scheduler.request_finished(request, self.clock)
        return True

    # -- reduction ------------------------------------------------------------

    def finish(self) -> ServeReport:
        """Reduce the run's events to a :class:`ServeReport`."""
        engine = self.engine
        metrics = engine.obs.metrics
        # TTFT / TPOT distributions live in the registry; the report reads
        # its percentiles from these run-scoped exact histograms (or falls
        # back to the raw events when the registry is a no-op).
        events = []
        seen: set = set()
        for request in self._arrivals:
            if id(request) in seen or id(request) in self._departed:
                continue
            seen.add(id(request))
            events.append(request.events)
        ttft_hist = metrics.new_histogram("serve.ttft_s", track_values=True)
        tpot_hist = metrics.new_histogram("serve.tpot_s", track_values=True)
        for event in events:
            if event.ttft_s is not None:
                ttft_hist.observe(event.ttft_s)
            if event.tpot_s is not None:
                tpot_hist.observe(event.tpot_s)

        return ServeReport(
            system=engine.name,
            events=events,
            clock_s=self.clock,
            tokens_generated=self.tokens_generated,
            peak_decode_batch=self.peak_batch,
            preemptions=self.scheduler.preemptions,
            pool_blocks=engine.pool.n_blocks,
            pool_high_watermark=engine.pool.high_watermark,
            ttft_hist=ttft_hist if ttft_hist.count else None,
            tpot_hist=tpot_hist if tpot_hist.count else None,
        )
