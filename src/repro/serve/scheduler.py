"""Continuous-batching scheduler: request lifecycle and SLO-aware policy.

Requests move through the lifecycle

    QUEUED -> PREFILL -> DECODE -> DONE
        \\-> SHED (admission SLO blown / impossible fit)   [no tokens]
    DECODE -> SHED-in-place (degradation budget exhausted) [full output]

The scheduler owns the *decisions* — admission against pool capacity and
the TTFT SLO, per-step batch assembly (chunked prefill interleaved with
decode), and preemption victim selection — while the engine owns the
*mechanics* (running the model, advancing the clock, event logging).
Keeping the two apart makes the policy unit-testable without a model.

Preemption follows the recompute discipline: a victim's blocks are
released and the request re-enters the queue remembering its generated
tokens; on re-admission the engine re-prefills prompt + generated[:-1]
(K/V projections are blocking-independent, so the rebuilt cache is
bit-identical) and resumes decoding from the last sampled token.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import Obs, resolve_obs
from repro.serve.events import RequestEvents
from repro.serve.paged_kv import PagedKVPool


class RequestState(enum.Enum):
    QUEUED = "queued"
    PREFILL = "prefill"
    DECODE = "decode"
    DONE = "done"
    SHED = "shed"


@dataclasses.dataclass(frozen=True)
class TenantClass:
    """Per-tenant SLO class: admission weight and optional overrides.

    Attributes:
        name: tenant identifier requests carry in ``ServeRequest.tenant``.
        weight: weighted-round-robin admission share — each admission
            advances the tenant's virtual time by ``1/weight``, so a
            weight-4 tenant is offered four admissions for every one of a
            weight-1 tenant when both are backlogged.
        queue_timeout_s: per-tenant queueing-delay shed override; ``None``
            inherits the policy-wide ``queue_timeout_s``.
    """

    name: str
    weight: int = 1
    queue_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant class needs a name")
        if self.weight < 1:
            raise ValueError("tenant weight must be >= 1")


#: Human-readable names of the brownout ladder stages, by stage index.
BROWNOUT_STAGES = ("normal", "shrink_topk", "raise_threshold",
                   "dense_pin", "shed")


@dataclasses.dataclass(frozen=True)
class BrownoutPolicy:
    """Overload brownout ladder: staged degradation before shedding.

    Under overload the scheduler climbs a ladder of progressively
    cheaper service instead of dropping requests outright — the
    SparseAccelerate observation (sparsity level is a runtime resource
    knob) applied to serving:

    - stage 1 (``shrink_topk``): decode with ``top_k`` scaled by
      ``top_k_scale`` — fewer sparse keys retrieved per head;
    - stage 2 (``raise_threshold``): additionally raise the SCF
      sign-agreement threshold by ``threshold_bump`` — a stricter filter
      passes fewer keys to score at all;
    - stage 3 (``dense_pin``): decode on the dense sliding-window
      fallback for the step (the supervisor's degradation target);
    - stage 4 (``shed``): on top of stage 3, shed the *youngest* queued
      requests beyond ``shed_to_depth`` — load has outrun even the
      cheapest service.

    Stages 1-3 are per-step, per-token effects: the KV cache layout is
    query-independent (``top_k`` and ``thresholds`` are retrieval-time
    knobs and K/V projections are backend-independent), so a variant
    backend can serve a token from the same cache and the session
    returns to full quality the moment the ladder steps down.  Entry is
    driven by queue depth (``queue_high``) and head-of-queue wait
    against the TTFT budget (``budget_fractions`` of ``ttft_budget_s``);
    exit requires both signals below ``exit_fraction`` of the current
    stage's entry point (hysteresis), one stage per scheduler pass.
    While any stage is active, admissions are paced to
    ``admit_per_step`` per scheduler pass (admission-rate control).
    """

    #: queue depths entering stages 1..4.
    queue_high: Tuple[int, int, int, int] = (6, 10, 14, 18)
    #: head-of-queue TTFT budget; ``None`` disables the wait signal.
    ttft_budget_s: Optional[float] = None
    #: fractions of ``ttft_budget_s`` entering stages 1..4.
    budget_fractions: Tuple[float, float, float, float] = \
        (0.25, 0.5, 0.75, 1.0)
    #: de-escalation hysteresis: exit = this fraction of the entry point.
    exit_fraction: float = 0.5
    #: stage-1 multiplier on the backend's ``top_k``.
    top_k_scale: float = 0.5
    #: stage-2 increment on the SCF sign-agreement threshold(s).
    threshold_bump: int = 2
    #: admissions per scheduler pass while browned out (>= 1).
    admit_per_step: int = 1
    #: stage-4 shed target depth; ``None`` uses ``queue_high[-1]``.
    shed_to_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.queue_high) != 4 or len(self.budget_fractions) != 4:
            raise ValueError("queue_high and budget_fractions must give "
                             "entry points for all four stages")
        if any(b <= a for a, b in zip(self.queue_high,
                                      self.queue_high[1:])):
            raise ValueError("queue_high must be strictly increasing")
        if any(b <= a for a, b in zip(self.budget_fractions,
                                      self.budget_fractions[1:])):
            raise ValueError("budget_fractions must be strictly increasing")
        if self.queue_high[0] < 1:
            raise ValueError("queue_high entries must be >= 1")
        if self.budget_fractions[0] <= 0.0:
            raise ValueError("budget_fractions must be > 0")
        if self.ttft_budget_s is not None and self.ttft_budget_s <= 0:
            raise ValueError("ttft_budget_s must be > 0")
        if not 0.0 < self.exit_fraction < 1.0:
            raise ValueError("exit_fraction must be in (0, 1)")
        if not 0.0 < self.top_k_scale < 1.0:
            raise ValueError("top_k_scale must be in (0, 1)")
        if self.threshold_bump < 1:
            raise ValueError("threshold_bump must be >= 1")
        if self.admit_per_step < 1:
            raise ValueError("admit_per_step must be >= 1")
        if self.shed_to_depth is not None and self.shed_to_depth < 1:
            raise ValueError("shed_to_depth must be >= 1")


@dataclasses.dataclass(frozen=True)
class SloPolicy:
    """Scheduling knobs, all expressed against serving objectives.

    Attributes:
        max_decode_batch: decode sessions stepped together per engine step.
        prefill_chunk: prompt tokens processed per engine step for the
            session being prefilled; must be a multiple of the model's
            prefill block size so chunked prefill reproduces single-shot
            prefill bit-for-bit.
        max_prefills_per_step: how many sessions may advance their prefill
            in one engine step (chunked prefill interleaves with decode, so
            decode steps keep flowing while long prompts stream in).
        queue_timeout_s: shed a QUEUED request once its queueing delay
            alone exceeds this (its TTFT SLO is already unattainable);
            ``None`` disables shedding at admission.
        admission_headroom_blocks: free blocks that must remain *after*
            admitting a request (reserve for decode growth of the running
            batch; prevents admission from immediately forcing preemption).
        shed_after_consecutive_degraded: a DECODE session whose offload
            degrades this many consecutive tokens is pinned to the dense
            sliding-window fallback for the rest of its life (shed from
            the sparse path, never from service) — it keeps decoding and
            completing, mirroring the simulator's shed-in-place semantics.
        tenant_classes: declared per-tenant SLO classes (weight, timeout
            override).  Tenants without a declared class get weight 1 and
            the policy-wide timeout; an empty tuple (the default) makes
            every request one implicit tenant, which degenerates to the
            original FIFO admission order exactly.
    """

    max_decode_batch: int = 16
    prefill_chunk: int = 256
    max_prefills_per_step: int = 1
    queue_timeout_s: Optional[float] = None
    admission_headroom_blocks: int = 0
    shed_after_consecutive_degraded: int = 4
    tenant_classes: Tuple[TenantClass, ...] = ()
    #: overload brownout ladder; ``None`` (the default) disables it and
    #: keeps scheduling bit-identical to the pre-brownout policy.
    brownout: Optional[BrownoutPolicy] = None

    def tenant_class(self, name: str) -> Optional[TenantClass]:
        for cls in self.tenant_classes:
            if cls.name == name:
                return cls
        return None

    def tenant_weight(self, name: str) -> int:
        cls = self.tenant_class(name)
        return cls.weight if cls is not None else 1

    def tenant_timeout_s(self, name: str) -> Optional[float]:
        cls = self.tenant_class(name)
        if cls is not None and cls.queue_timeout_s is not None:
            return cls.queue_timeout_s
        return self.queue_timeout_s

    def __post_init__(self) -> None:
        if self.max_decode_batch < 1:
            raise ValueError("max_decode_batch must be >= 1")
        if self.prefill_chunk < 1:
            raise ValueError("prefill_chunk must be >= 1")
        if self.max_prefills_per_step < 1:
            raise ValueError("max_prefills_per_step must be >= 1")
        if self.admission_headroom_blocks < 0:
            raise ValueError("admission_headroom_blocks must be >= 0")
        if self.shed_after_consecutive_degraded < 1:
            raise ValueError("shed_after_consecutive_degraded must be >= 1")
        names = [cls.name for cls in self.tenant_classes]
        if len(names) != len(set(names)):
            raise ValueError("tenant class names must be unique")


@dataclasses.dataclass
class ServeRequest:
    """One user request plus its scheduling state."""

    request_id: int
    prompt: np.ndarray
    max_new_tokens: int
    arrival_s: float = 0.0
    #: SLO class the request is admitted under (weighted round-robin).
    tenant: str = "default"
    #: session-affinity key for fleet routing; ``None`` routes by load
    #: and prefix locality alone.
    session: Optional[str] = None
    #: cross-worker relocations performed so far (router-owned).
    migrations: int = 0
    state: RequestState = RequestState.QUEUED
    #: sampled output tokens (the last one may not be in the cache yet).
    outputs: List[int] = dataclasses.field(default_factory=list)
    #: prompt positions already prefilled into the cache.
    prefilled: int = 0
    #: last sampled token, not yet fed through a decode step.
    pending_token: Optional[int] = None
    #: consecutive offload-degraded tokens (resets on a healthy one).
    consecutive_degraded: int = 0
    #: pinned to the dense sliding-window fallback (shed-in-place).
    pinned_dense: bool = False
    #: prompt length the *timing model* charges for (paper-scale), letting
    #: a laptop-scale functional prompt stand in for a long-context one;
    #: ``None`` charges the actual prompt length.
    charged_prompt_tokens: Optional[int] = None
    #: analytic prefill seconds accrued so far (overlapped with decode).
    prefill_charge_s: float = 0.0
    #: engine clock at which decode may begin (charged prefill complete;
    #: prefill overlaps the running batch, as in the analytic simulator).
    ready_s: float = 0.0
    events: RequestEvents = None  # filled in __post_init__
    # engine-owned handles (cache/backend), opaque to the scheduler
    cache: object = None
    backend: object = None

    def __post_init__(self) -> None:
        self.prompt = np.asarray(self.prompt)
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if self.events is None:
            self.events = RequestEvents(request_id=self.request_id,
                                        arrival_s=self.arrival_s,
                                        tenant=self.tenant)

    @property
    def context(self) -> int:
        """Current context length (prompt + generated so far)."""
        return len(self.prompt) + len(self.outputs)

    @property
    def charged_context(self) -> int:
        """Context length as seen by the analytic timing model."""
        base = self.charged_prompt_tokens if self.charged_prompt_tokens \
            is not None else len(self.prompt)
        return base + len(self.outputs)

    @property
    def done(self) -> bool:
        return self.state in (RequestState.DONE, RequestState.SHED)

    @property
    def resume_tokens(self) -> np.ndarray:
        """Tokens to re-prefill on (re-)admission.

        Fresh requests: the whole prompt.  Preempted requests: prompt plus
        every generated token except the pending one, which is replayed
        through a real decode step so the resumed trajectory stays
        bit-identical to an uninterrupted run.
        """
        if not self.outputs:
            return self.prompt
        return np.concatenate(
            [self.prompt, np.asarray(self.outputs[:-1], dtype=np.int64)])


@dataclasses.dataclass
class StepPlan:
    """What the engine should execute this step."""

    prefills: List[ServeRequest]   # advance each by <= prefill_chunk tokens
    decodes: List[ServeRequest]    # one decode token each

    @property
    def empty(self) -> bool:
        return not self.prefills and not self.decodes


class ContinuousBatchScheduler:
    """Admission, batch assembly, and preemption over one paged pool.

    Admission runs **weighted round-robin over per-tenant FIFO queues**
    (stride scheduling): each tenant carries a virtual time that advances
    by ``1/weight`` per admission, and the backlogged tenant with the
    smallest virtual time is offered the next admission slot.  With one
    tenant (or no declared classes) this is exactly the original FIFO-by-
    arrival order; with several, one tenant's burst cannot starve
    another's admissions — the burster's virtual time races ahead and the
    steady tenant is served at its weighted share.
    """

    def __init__(self, pool: PagedKVPool,
                 policy: Optional[SloPolicy] = None,
                 obs: Optional[Obs] = None,
                 victim_sink: Optional[
                     Callable[[ServeRequest], bool]] = None) -> None:
        self.pool = pool
        self.policy = policy or SloPolicy()
        self.obs = resolve_obs(obs)
        #: per-tenant FIFO queues (arrival order, id tie-break).
        self._queues: Dict[str, List[ServeRequest]] = {}
        #: stride-scheduling virtual time per tenant.
        self._vtime: Dict[str, float] = {}
        self.running: List[ServeRequest] = []   # PREFILL or DECODE
        self.finished: List[ServeRequest] = []
        self.preemptions = 0
        #: current brownout ladder stage (0 = normal service).
        self.brownout_stage = 0
        self.brownout_transitions = 0
        #: optional relocation hook: offered every preemption victim;
        #: returning ``True`` claims the request (a fleet router moving
        #: it to another worker) so it is *not* re-queued locally.
        self.victim_sink = victim_sink

    def _count(self, name: str, amount=1) -> None:
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter(name).inc(amount)

    # -- submission -----------------------------------------------------------

    @property
    def queued(self) -> List[ServeRequest]:
        """All queued requests in arrival order (id tie-break)."""
        merged = [r for q in self._queues.values() for r in q]
        merged.sort(key=lambda r: (r.arrival_s, r.request_id))
        return merged

    def submit(self, request: ServeRequest) -> None:
        """Enqueue an arrived request (FIFO by arrival within tenant)."""
        queue = self._queues.setdefault(request.tenant, [])
        if not queue:
            # (Re)activating tenant: clamp its virtual time up to the
            # slowest active tenant so accumulated idle credit cannot buy
            # a monopolizing burst (standard stride-scheduler join rule).
            active = [self._vtime[t] for t, q in self._queues.items()
                      if q and t != request.tenant]
            floor = min(active) if active else 0.0
            self._vtime[request.tenant] = max(
                self._vtime.get(request.tenant, 0.0), floor)
        queue.append(request)
        queue.sort(key=lambda r: (r.arrival_s, r.request_id))

    @property
    def all_done(self) -> bool:
        return not any(self._queues.values()) and not self.running

    # -- admission ------------------------------------------------------------

    def _session_blocks(self, request: ServeRequest) -> int:
        """Worst-case block demand of a request (prompt + full output)."""
        return self.pool.blocks_for_tokens(
            len(request.prompt) + request.max_new_tokens)

    def _prompt_blocks(self, request: ServeRequest) -> int:
        """Blocks the prefill phase will claim (what admission must fit)."""
        return self.pool.blocks_for_tokens(len(request.resume_tokens))

    def _reserved_blocks(self) -> int:
        """Prompt blocks promised to running prefills but not yet claimed.

        Block allocation is lazy (the engine grows caches chunk by chunk),
        so admission must count what admitted-but-unclaimed prefills will
        take, or one free-list snapshot would over-admit.
        """
        reserved = 0
        for request in self.running:
            if request.state is RequestState.PREFILL:
                held = getattr(request.cache, "n_blocks", 0) or 0
                reserved += max(0, self._prompt_blocks(request) - held)
        return reserved

    def admit(self, now: float) -> List[ServeRequest]:
        """Admit queue-head requests while capacity and SLO allow.

        Admission is *optimistic*, vLLM-style: a request is admitted when
        its **prompt** fits the free list (net of blocks promised to other
        running prefills) — decode growth is not reserved up front, and a
        later shortfall is preemption's job.  A request whose queueing
        delay already exceeds ``queue_timeout_s`` is shed (rejected)
        instead of admitted — serving it would blow its TTFT SLO *and*
        steal capacity from requests that can still meet theirs.  A
        request that cannot fit even into an empty pool is shed
        immediately (it could otherwise clog the queue head forever).

        With several backlogged tenants the admission slots rotate by
        stride scheduling (see class docstring); a tenant whose head does
        not fit is *skipped* for this call rather than blocking the other
        tenants' heads behind it.
        """
        policy = self.policy
        admitted = []
        reserved = self._reserved_blocks()
        blocked: set = set()
        # Brownout admission-rate control: while any ladder stage is
        # active, pace admissions so the running batch drains ahead of
        # fresh load (sheds and timeouts above still process normally).
        admit_cap = None
        if policy.brownout is not None and self.brownout_stage >= 1:
            admit_cap = policy.brownout.admit_per_step
        while True:
            if admit_cap is not None and len(admitted) >= admit_cap:
                break
            active = [t for t, q in self._queues.items()
                      if q and t not in blocked]
            if not active:
                break
            tenant = min(active, key=lambda t: (
                self._vtime[t], self._queues[t][0].arrival_s,
                self._queues[t][0].request_id))
            queue = self._queues[tenant]
            head = queue[0]
            timeout = policy.tenant_timeout_s(tenant)
            if timeout is not None and now - head.arrival_s > timeout:
                queue.pop(0)
                self._reject(head, "queue_timeout")
                continue
            if self._session_blocks(head) > self.pool.n_blocks:
                queue.pop(0)
                self._reject(head, "impossible_fit")
                continue
            need = self._prompt_blocks(head)
            # Headroom protects the growth of *running* sessions; an idle
            # system admits whenever the request fits at all (no livelock).
            headroom = policy.admission_headroom_blocks if self.running else 0
            if need + reserved + headroom > self.pool.n_free:
                blocked.add(tenant)
                continue
            reserved += need
            queue.pop(0)
            self._vtime[tenant] += 1.0 / policy.tenant_weight(tenant)
            head.state = RequestState.PREFILL
            head.prefilled = 0
            if head.events.admitted_s is None:
                head.events.admitted_s = now
            self.running.append(head)
            admitted.append(head)
            self._count(f"serve.tenant.{tenant}.admitted")
        return admitted

    def _reject(self, request: ServeRequest, cause: str) -> None:
        self._count("serve.rejected")
        self._count(f"serve.shed.{cause}")
        request.state = RequestState.SHED
        request.events.rejected = True
        request.events.shed = True
        self.finished.append(request)

    # -- overload brownout ----------------------------------------------------

    def update_brownout(self, now: float) -> int:
        """Re-evaluate the brownout ladder stage; returns the new stage.

        Escalation is immediate to whatever stage the queue-depth and
        head-of-queue-wait signals demand; de-escalation is one stage per
        pass and only when both signals sit below ``exit_fraction`` of
        the current stage's entry point (hysteresis, so the ladder does
        not chatter around a threshold).  At stage 4 the youngest queued
        requests beyond the shed depth are rejected — by then stages 1-3
        have already cheapened service as far as it goes.
        """
        policy = self.policy.brownout
        if policy is None:
            return 0
        queued = self.queued
        depth = len(queued)
        wait = (now - queued[0].arrival_s) if queued else 0.0
        target = 0
        for i, high in enumerate(policy.queue_high):
            if depth >= high:
                target = i + 1
        if policy.ttft_budget_s is not None:
            for i, fraction in enumerate(policy.budget_fractions):
                if wait >= fraction * policy.ttft_budget_s:
                    target = max(target, i + 1)
        stage = self.brownout_stage
        if target > stage:
            stage = target
        elif target < stage:
            depth_exit = policy.exit_fraction * policy.queue_high[stage - 1]
            wait_exit = None if policy.ttft_budget_s is None else (
                policy.exit_fraction * policy.budget_fractions[stage - 1]
                * policy.ttft_budget_s)
            if depth <= depth_exit \
                    and (wait_exit is None or wait <= wait_exit):
                stage -= 1
        if stage != self.brownout_stage:
            self.brownout_stage = stage
            self.brownout_transitions += 1
            self._count("serve.brownout.transitions")
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.gauge("serve.brownout.stage").set(stage)
        if stage >= 4:
            cap = policy.shed_to_depth if policy.shed_to_depth is not None \
                else policy.queue_high[-1]
            excess = len(queued) - cap
            for victim in queued[len(queued) - excess:] if excess > 0 \
                    else ():
                self._queues[victim.tenant].remove(victim)
                self._reject(victim, "brownout")
        return stage

    def note_brownout(self, request: ServeRequest, stage: int) -> None:
        """Attribute one emitted token to a brownout ladder stage.

        Mirrors the offload degradation log: every token served below
        full quality is recorded per request and per stage, so brownout
        output remains attributable after the fact.
        """
        events = request.events
        events.brownout_tokens[stage] = \
            events.brownout_tokens.get(stage, 0) + 1
        self._count("serve.brownout.stage_tokens")
        self._count(f"serve.brownout.stage{stage}_tokens")

    # -- failover drain (fleet router) ----------------------------------------

    def detach(self, request: ServeRequest) -> None:
        """Detach a running session for relocation: blocks freed, state
        QUEUED, generated tokens kept — the preemption mechanics without
        the preemption accounting (used by cross-worker failover, where
        the move is the router's doing, not a capacity decision)."""
        self.running.remove(request)
        if request.cache is not None:
            request.cache.free()
            request.cache = None
        request.backend = None
        request.state = RequestState.QUEUED
        request.prefilled = 0
        request.prefill_charge_s = 0.0
        request.ready_s = 0.0

    def drain_queued(self) -> List[ServeRequest]:
        """Pop every queued request (arrival order) for relocation."""
        drained = self.queued
        for queue in self._queues.values():
            queue.clear()
        return drained

    # -- step assembly --------------------------------------------------------

    def assemble(self) -> StepPlan:
        """Pick this step's prefill chunk(s) and decode batch.

        Decode-first continuous batching: every DECODE session (up to
        ``max_decode_batch``, oldest admitted first) generates one token
        this step; up to ``max_prefills_per_step`` PREFILL sessions
        advance one chunk alongside, so prompt streaming never stalls the
        token clock of running sessions.
        """
        decodes = [r for r in self.running
                   if r.state is RequestState.DECODE]
        if len(decodes) > self.policy.max_decode_batch:
            decodes = self._fair_truncate(decodes,
                                          self.policy.max_decode_batch)
        prefills = [r for r in self.running
                    if r.state is RequestState.PREFILL]
        prefills = prefills[: self.policy.max_prefills_per_step]
        return StepPlan(prefills=prefills, decodes=decodes)

    def _fair_truncate(self, decodes: List[ServeRequest],
                       cap: int) -> List[ServeRequest]:
        """Tenant-fair decode truncation when the batch cap binds.

        Round-robin over tenants (in admission order), each round taking
        up to ``weight`` sessions per tenant, so an over-cap step still
        decodes every tenant at its weighted share instead of whichever
        tenant happened to admit first.  Single-tenant batches keep the
        original oldest-admitted-first order exactly.
        """
        by_tenant: Dict[str, List[ServeRequest]] = {}
        for request in decodes:
            by_tenant.setdefault(request.tenant, []).append(request)
        if len(by_tenant) == 1:
            return decodes[:cap]
        picked: List[ServeRequest] = []
        while len(picked) < cap:
            progressed = False
            for tenant, queue in by_tenant.items():
                take = min(self.policy.tenant_weight(tenant), len(queue),
                           cap - len(picked))
                if take > 0:
                    picked.extend(queue[:take])
                    del queue[:take]
                    progressed = True
                if len(picked) >= cap:
                    break
            if not progressed:
                break
        return picked

    # -- transitions (driven by the engine) -----------------------------------

    def prefill_complete(self, request: ServeRequest) -> None:
        request.state = RequestState.DECODE

    def request_finished(self, request: ServeRequest, now: float) -> None:
        """Completion: release blocks, record timestamps, retire."""
        request.state = RequestState.SHED if request.pinned_dense \
            else RequestState.DONE
        request.events.finished_s = now
        request.events.shed = request.pinned_dense
        if request.cache is not None:
            request.cache.free()
            request.cache = None
        request.backend = None
        self.running.remove(request)
        self.finished.append(request)

    def note_degraded(self, request: ServeRequest, degraded: bool) -> None:
        """Track a token's offload health; pin after the budget is spent.

        A pinned session *falls to the dense window without stalling the
        batch*: it stays in DECODE (tokens keep flowing every step) but is
        excluded from the sparse/offload path by the engine's timing and
        backend handling, and retires as SHED.
        """
        if degraded:
            request.events.degraded_tokens += 1
            request.consecutive_degraded += 1
            self._count("serve.degraded_tokens")
            if not request.pinned_dense and request.consecutive_degraded \
                    >= self.policy.shed_after_consecutive_degraded:
                request.pinned_dense = True
                self._count("serve.shed.degraded_pin")
        else:
            request.consecutive_degraded = 0

    # -- preemption -----------------------------------------------------------

    def preempt_victim(self, needy: ServeRequest) -> Optional[ServeRequest]:
        """Pick and preempt a session so ``needy`` can grow.

        Victim: the *youngest admitted* running session other than
        ``needy`` (LIFO preemption preserves the FIFO fairness of the
        queue: the request that joined last loses its slot first).  The
        victim's blocks return to the pool and it re-enters the queue
        head-of-line for its original arrival order.  Returns the victim,
        or ``None`` when ``needy`` is the only running session (the caller
        must then shed or wait).

        When a ``victim_sink`` is installed it is offered the victim
        first; a sink that returns ``True`` has relocated the request (a
        fleet router migrating the session to another worker), so it is
        not re-queued here.
        """
        candidates = [r for r in self.running if r is not needy]
        if not candidates:
            return None
        victim = max(candidates,
                     key=lambda r: (r.events.admitted_s, r.request_id))
        self.running.remove(victim)
        victim.cache.free()
        victim.cache = None
        victim.backend = None
        victim.state = RequestState.QUEUED
        victim.prefilled = 0
        victim.prefill_charge_s = 0.0
        victim.ready_s = 0.0
        victim.events.preemptions += 1
        self.preemptions += 1
        self._count("serve.preemptions")
        if self.victim_sink is not None and self.victim_sink(victim):
            return victim
        self.submit(victim)
        return victim
