"""Continuous-batching scheduler: request lifecycle and SLO-aware policy.

Requests move through the lifecycle

    QUEUED -> PREFILL -> DECODE -> DONE
        \\-> SHED (admission SLO blown / impossible fit)   [no tokens]
    DECODE -> SHED-in-place (degradation budget exhausted) [full output]

The scheduler owns the *decisions* — admission against pool capacity and
the TTFT SLO, per-step batch assembly (chunked prefill interleaved with
decode), and preemption victim selection — while the engine owns the
*mechanics* (running the model, advancing the clock, event logging).
Keeping the two apart makes the policy unit-testable without a model.

Preemption follows the recompute discipline: a victim's blocks are
released and the request re-enters the queue remembering its generated
tokens; on re-admission the engine re-prefills prompt + generated[:-1]
(K/V projections are blocking-independent, so the rebuilt cache is
bit-identical) and resumes decoding from the last sampled token.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import Obs, resolve_obs
from repro.serve.events import RequestEvents
from repro.serve.paged_kv import PagedKVPool


class RequestState(enum.Enum):
    QUEUED = "queued"
    PREFILL = "prefill"
    DECODE = "decode"
    DONE = "done"
    SHED = "shed"


@dataclasses.dataclass(frozen=True)
class TenantClass:
    """Per-tenant SLO class: admission weight and optional overrides.

    Attributes:
        name: tenant identifier requests carry in ``ServeRequest.tenant``.
        weight: weighted-round-robin admission share — each admission
            advances the tenant's virtual time by ``1/weight``, so a
            weight-4 tenant is offered four admissions for every one of a
            weight-1 tenant when both are backlogged.
        queue_timeout_s: per-tenant queueing-delay shed override; ``None``
            inherits the policy-wide ``queue_timeout_s``.
    """

    name: str
    weight: int = 1
    queue_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant class needs a name")
        if self.weight < 1:
            raise ValueError("tenant weight must be >= 1")


@dataclasses.dataclass(frozen=True)
class SloPolicy:
    """Scheduling knobs, all expressed against serving objectives.

    Attributes:
        max_decode_batch: decode sessions stepped together per engine step.
        prefill_chunk: prompt tokens processed per engine step for the
            session being prefilled; must be a multiple of the model's
            prefill block size so chunked prefill reproduces single-shot
            prefill bit-for-bit.
        max_prefills_per_step: how many sessions may advance their prefill
            in one engine step (chunked prefill interleaves with decode, so
            decode steps keep flowing while long prompts stream in).
        queue_timeout_s: shed a QUEUED request once its queueing delay
            alone exceeds this (its TTFT SLO is already unattainable);
            ``None`` disables shedding at admission.
        admission_headroom_blocks: free blocks that must remain *after*
            admitting a request (reserve for decode growth of the running
            batch; prevents admission from immediately forcing preemption).
        shed_after_consecutive_degraded: a DECODE session whose offload
            degrades this many consecutive tokens is pinned to the dense
            sliding-window fallback for the rest of its life (shed from
            the sparse path, never from service) — it keeps decoding and
            completing, mirroring the simulator's shed-in-place semantics.
        tenant_classes: declared per-tenant SLO classes (weight, timeout
            override).  Tenants without a declared class get weight 1 and
            the policy-wide timeout; an empty tuple (the default) makes
            every request one implicit tenant, which degenerates to the
            original FIFO admission order exactly.
    """

    max_decode_batch: int = 16
    prefill_chunk: int = 256
    max_prefills_per_step: int = 1
    queue_timeout_s: Optional[float] = None
    admission_headroom_blocks: int = 0
    shed_after_consecutive_degraded: int = 4
    tenant_classes: Tuple[TenantClass, ...] = ()

    def tenant_class(self, name: str) -> Optional[TenantClass]:
        for cls in self.tenant_classes:
            if cls.name == name:
                return cls
        return None

    def tenant_weight(self, name: str) -> int:
        cls = self.tenant_class(name)
        return cls.weight if cls is not None else 1

    def tenant_timeout_s(self, name: str) -> Optional[float]:
        cls = self.tenant_class(name)
        if cls is not None and cls.queue_timeout_s is not None:
            return cls.queue_timeout_s
        return self.queue_timeout_s

    def __post_init__(self) -> None:
        if self.max_decode_batch < 1:
            raise ValueError("max_decode_batch must be >= 1")
        if self.prefill_chunk < 1:
            raise ValueError("prefill_chunk must be >= 1")
        if self.max_prefills_per_step < 1:
            raise ValueError("max_prefills_per_step must be >= 1")
        if self.admission_headroom_blocks < 0:
            raise ValueError("admission_headroom_blocks must be >= 0")
        if self.shed_after_consecutive_degraded < 1:
            raise ValueError("shed_after_consecutive_degraded must be >= 1")
        names = [cls.name for cls in self.tenant_classes]
        if len(names) != len(set(names)):
            raise ValueError("tenant class names must be unique")


@dataclasses.dataclass
class ServeRequest:
    """One user request plus its scheduling state."""

    request_id: int
    prompt: np.ndarray
    max_new_tokens: int
    arrival_s: float = 0.0
    #: SLO class the request is admitted under (weighted round-robin).
    tenant: str = "default"
    #: session-affinity key for fleet routing; ``None`` routes by load
    #: and prefix locality alone.
    session: Optional[str] = None
    #: cross-worker relocations performed so far (router-owned).
    migrations: int = 0
    state: RequestState = RequestState.QUEUED
    #: sampled output tokens (the last one may not be in the cache yet).
    outputs: List[int] = dataclasses.field(default_factory=list)
    #: prompt positions already prefilled into the cache.
    prefilled: int = 0
    #: last sampled token, not yet fed through a decode step.
    pending_token: Optional[int] = None
    #: consecutive offload-degraded tokens (resets on a healthy one).
    consecutive_degraded: int = 0
    #: pinned to the dense sliding-window fallback (shed-in-place).
    pinned_dense: bool = False
    #: prompt length the *timing model* charges for (paper-scale), letting
    #: a laptop-scale functional prompt stand in for a long-context one;
    #: ``None`` charges the actual prompt length.
    charged_prompt_tokens: Optional[int] = None
    #: analytic prefill seconds accrued so far (overlapped with decode).
    prefill_charge_s: float = 0.0
    #: engine clock at which decode may begin (charged prefill complete;
    #: prefill overlaps the running batch, as in the analytic simulator).
    ready_s: float = 0.0
    events: RequestEvents = None  # filled in __post_init__
    # engine-owned handles (cache/backend), opaque to the scheduler
    cache: object = None
    backend: object = None

    def __post_init__(self) -> None:
        self.prompt = np.asarray(self.prompt)
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if self.events is None:
            self.events = RequestEvents(request_id=self.request_id,
                                        arrival_s=self.arrival_s,
                                        tenant=self.tenant)

    @property
    def context(self) -> int:
        """Current context length (prompt + generated so far)."""
        return len(self.prompt) + len(self.outputs)

    @property
    def charged_context(self) -> int:
        """Context length as seen by the analytic timing model."""
        base = self.charged_prompt_tokens if self.charged_prompt_tokens \
            is not None else len(self.prompt)
        return base + len(self.outputs)

    @property
    def done(self) -> bool:
        return self.state in (RequestState.DONE, RequestState.SHED)

    @property
    def resume_tokens(self) -> np.ndarray:
        """Tokens to re-prefill on (re-)admission.

        Fresh requests: the whole prompt.  Preempted requests: prompt plus
        every generated token except the pending one, which is replayed
        through a real decode step so the resumed trajectory stays
        bit-identical to an uninterrupted run.
        """
        if not self.outputs:
            return self.prompt
        return np.concatenate(
            [self.prompt, np.asarray(self.outputs[:-1], dtype=np.int64)])


@dataclasses.dataclass
class StepPlan:
    """What the engine should execute this step."""

    prefills: List[ServeRequest]   # advance each by <= prefill_chunk tokens
    decodes: List[ServeRequest]    # one decode token each

    @property
    def empty(self) -> bool:
        return not self.prefills and not self.decodes


class ContinuousBatchScheduler:
    """Admission, batch assembly, and preemption over one paged pool.

    Admission runs **weighted round-robin over per-tenant FIFO queues**
    (stride scheduling): each tenant carries a virtual time that advances
    by ``1/weight`` per admission, and the backlogged tenant with the
    smallest virtual time is offered the next admission slot.  With one
    tenant (or no declared classes) this is exactly the original FIFO-by-
    arrival order; with several, one tenant's burst cannot starve
    another's admissions — the burster's virtual time races ahead and the
    steady tenant is served at its weighted share.
    """

    def __init__(self, pool: PagedKVPool,
                 policy: Optional[SloPolicy] = None,
                 obs: Optional[Obs] = None,
                 victim_sink: Optional[
                     Callable[[ServeRequest], bool]] = None) -> None:
        self.pool = pool
        self.policy = policy or SloPolicy()
        self.obs = resolve_obs(obs)
        #: per-tenant FIFO queues (arrival order, id tie-break).
        self._queues: Dict[str, List[ServeRequest]] = {}
        #: stride-scheduling virtual time per tenant.
        self._vtime: Dict[str, float] = {}
        self.running: List[ServeRequest] = []   # PREFILL or DECODE
        self.finished: List[ServeRequest] = []
        self.preemptions = 0
        #: optional relocation hook: offered every preemption victim;
        #: returning ``True`` claims the request (a fleet router moving
        #: it to another worker) so it is *not* re-queued locally.
        self.victim_sink = victim_sink

    def _count(self, name: str, amount=1) -> None:
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter(name).inc(amount)

    # -- submission -----------------------------------------------------------

    @property
    def queued(self) -> List[ServeRequest]:
        """All queued requests in arrival order (id tie-break)."""
        merged = [r for q in self._queues.values() for r in q]
        merged.sort(key=lambda r: (r.arrival_s, r.request_id))
        return merged

    def submit(self, request: ServeRequest) -> None:
        """Enqueue an arrived request (FIFO by arrival within tenant)."""
        queue = self._queues.setdefault(request.tenant, [])
        if not queue:
            # (Re)activating tenant: clamp its virtual time up to the
            # slowest active tenant so accumulated idle credit cannot buy
            # a monopolizing burst (standard stride-scheduler join rule).
            active = [self._vtime[t] for t, q in self._queues.items()
                      if q and t != request.tenant]
            floor = min(active) if active else 0.0
            self._vtime[request.tenant] = max(
                self._vtime.get(request.tenant, 0.0), floor)
        queue.append(request)
        queue.sort(key=lambda r: (r.arrival_s, r.request_id))

    @property
    def all_done(self) -> bool:
        return not any(self._queues.values()) and not self.running

    # -- admission ------------------------------------------------------------

    def _session_blocks(self, request: ServeRequest) -> int:
        """Worst-case block demand of a request (prompt + full output)."""
        return self.pool.blocks_for_tokens(
            len(request.prompt) + request.max_new_tokens)

    def _prompt_blocks(self, request: ServeRequest) -> int:
        """Blocks the prefill phase will claim (what admission must fit)."""
        return self.pool.blocks_for_tokens(len(request.resume_tokens))

    def _reserved_blocks(self) -> int:
        """Prompt blocks promised to running prefills but not yet claimed.

        Block allocation is lazy (the engine grows caches chunk by chunk),
        so admission must count what admitted-but-unclaimed prefills will
        take, or one free-list snapshot would over-admit.
        """
        reserved = 0
        for request in self.running:
            if request.state is RequestState.PREFILL:
                held = getattr(request.cache, "n_blocks", 0) or 0
                reserved += max(0, self._prompt_blocks(request) - held)
        return reserved

    def admit(self, now: float) -> List[ServeRequest]:
        """Admit queue-head requests while capacity and SLO allow.

        Admission is *optimistic*, vLLM-style: a request is admitted when
        its **prompt** fits the free list (net of blocks promised to other
        running prefills) — decode growth is not reserved up front, and a
        later shortfall is preemption's job.  A request whose queueing
        delay already exceeds ``queue_timeout_s`` is shed (rejected)
        instead of admitted — serving it would blow its TTFT SLO *and*
        steal capacity from requests that can still meet theirs.  A
        request that cannot fit even into an empty pool is shed
        immediately (it could otherwise clog the queue head forever).

        With several backlogged tenants the admission slots rotate by
        stride scheduling (see class docstring); a tenant whose head does
        not fit is *skipped* for this call rather than blocking the other
        tenants' heads behind it.
        """
        policy = self.policy
        admitted = []
        reserved = self._reserved_blocks()
        blocked: set = set()
        while True:
            active = [t for t, q in self._queues.items()
                      if q and t not in blocked]
            if not active:
                break
            tenant = min(active, key=lambda t: (
                self._vtime[t], self._queues[t][0].arrival_s,
                self._queues[t][0].request_id))
            queue = self._queues[tenant]
            head = queue[0]
            timeout = policy.tenant_timeout_s(tenant)
            if timeout is not None and now - head.arrival_s > timeout:
                queue.pop(0)
                self._reject(head, "queue_timeout")
                continue
            if self._session_blocks(head) > self.pool.n_blocks:
                queue.pop(0)
                self._reject(head, "impossible_fit")
                continue
            need = self._prompt_blocks(head)
            # Headroom protects the growth of *running* sessions; an idle
            # system admits whenever the request fits at all (no livelock).
            headroom = policy.admission_headroom_blocks if self.running else 0
            if need + reserved + headroom > self.pool.n_free:
                blocked.add(tenant)
                continue
            reserved += need
            queue.pop(0)
            self._vtime[tenant] += 1.0 / policy.tenant_weight(tenant)
            head.state = RequestState.PREFILL
            head.prefilled = 0
            if head.events.admitted_s is None:
                head.events.admitted_s = now
            self.running.append(head)
            admitted.append(head)
            self._count(f"serve.tenant.{tenant}.admitted")
        return admitted

    def _reject(self, request: ServeRequest, cause: str) -> None:
        self._count("serve.rejected")
        self._count(f"serve.shed.{cause}")
        request.state = RequestState.SHED
        request.events.rejected = True
        request.events.shed = True
        self.finished.append(request)

    # -- step assembly --------------------------------------------------------

    def assemble(self) -> StepPlan:
        """Pick this step's prefill chunk(s) and decode batch.

        Decode-first continuous batching: every DECODE session (up to
        ``max_decode_batch``, oldest admitted first) generates one token
        this step; up to ``max_prefills_per_step`` PREFILL sessions
        advance one chunk alongside, so prompt streaming never stalls the
        token clock of running sessions.
        """
        decodes = [r for r in self.running
                   if r.state is RequestState.DECODE]
        if len(decodes) > self.policy.max_decode_batch:
            decodes = self._fair_truncate(decodes,
                                          self.policy.max_decode_batch)
        prefills = [r for r in self.running
                    if r.state is RequestState.PREFILL]
        prefills = prefills[: self.policy.max_prefills_per_step]
        return StepPlan(prefills=prefills, decodes=decodes)

    def _fair_truncate(self, decodes: List[ServeRequest],
                       cap: int) -> List[ServeRequest]:
        """Tenant-fair decode truncation when the batch cap binds.

        Round-robin over tenants (in admission order), each round taking
        up to ``weight`` sessions per tenant, so an over-cap step still
        decodes every tenant at its weighted share instead of whichever
        tenant happened to admit first.  Single-tenant batches keep the
        original oldest-admitted-first order exactly.
        """
        by_tenant: Dict[str, List[ServeRequest]] = {}
        for request in decodes:
            by_tenant.setdefault(request.tenant, []).append(request)
        if len(by_tenant) == 1:
            return decodes[:cap]
        picked: List[ServeRequest] = []
        while len(picked) < cap:
            progressed = False
            for tenant, queue in by_tenant.items():
                take = min(self.policy.tenant_weight(tenant), len(queue),
                           cap - len(picked))
                if take > 0:
                    picked.extend(queue[:take])
                    del queue[:take]
                    progressed = True
                if len(picked) >= cap:
                    break
            if not progressed:
                break
        return picked

    # -- transitions (driven by the engine) -----------------------------------

    def prefill_complete(self, request: ServeRequest) -> None:
        request.state = RequestState.DECODE

    def request_finished(self, request: ServeRequest, now: float) -> None:
        """Completion: release blocks, record timestamps, retire."""
        request.state = RequestState.SHED if request.pinned_dense \
            else RequestState.DONE
        request.events.finished_s = now
        request.events.shed = request.pinned_dense
        if request.cache is not None:
            request.cache.free()
            request.cache = None
        request.backend = None
        self.running.remove(request)
        self.finished.append(request)

    def note_degraded(self, request: ServeRequest, degraded: bool) -> None:
        """Track a token's offload health; pin after the budget is spent.

        A pinned session *falls to the dense window without stalling the
        batch*: it stays in DECODE (tokens keep flowing every step) but is
        excluded from the sparse/offload path by the engine's timing and
        backend handling, and retires as SHED.
        """
        if degraded:
            request.events.degraded_tokens += 1
            request.consecutive_degraded += 1
            self._count("serve.degraded_tokens")
            if not request.pinned_dense and request.consecutive_degraded \
                    >= self.policy.shed_after_consecutive_degraded:
                request.pinned_dense = True
                self._count("serve.shed.degraded_pin")
        else:
            request.consecutive_degraded = 0

    # -- preemption -----------------------------------------------------------

    def preempt_victim(self, needy: ServeRequest) -> Optional[ServeRequest]:
        """Pick and preempt a session so ``needy`` can grow.

        Victim: the *youngest admitted* running session other than
        ``needy`` (LIFO preemption preserves the FIFO fairness of the
        queue: the request that joined last loses its slot first).  The
        victim's blocks return to the pool and it re-enters the queue
        head-of-line for its original arrival order.  Returns the victim,
        or ``None`` when ``needy`` is the only running session (the caller
        must then shed or wait).

        When a ``victim_sink`` is installed it is offered the victim
        first; a sink that returns ``True`` has relocated the request (a
        fleet router migrating the session to another worker), so it is
        not re-queued here.
        """
        candidates = [r for r in self.running if r is not needy]
        if not candidates:
            return None
        victim = max(candidates,
                     key=lambda r: (r.events.admitted_s, r.request_id))
        self.running.remove(victim)
        victim.cache.free()
        victim.cache = None
        victim.backend = None
        victim.state = RequestState.QUEUED
        victim.prefilled = 0
        victim.prefill_charge_s = 0.0
        victim.ready_s = 0.0
        victim.events.preemptions += 1
        self.preemptions += 1
        self._count("serve.preemptions")
        if self.victim_sink is not None and self.victim_sink(victim):
            return victim
        self.submit(victim)
        return victim
