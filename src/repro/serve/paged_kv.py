"""Paged KV memory: a block-granular pool shared by every live session.

The serving engine cannot afford one doubling-and-copying numpy arena per
session (:class:`~repro.llm.kv_cache.LayerKV`): admission/completion churn
would fragment the heap and every admission would pay fresh allocations.
Instead the pool preallocates **one arena per decoder layer** and hands
out fixed-size *blocks* of token slots, vLLM-PagedAttention style:

- a block is ``block_tokens`` rows, shared across every layer's arena (the
  same block id addresses the same rows of layer 0's and layer N's K, V,
  and sign arenas — all layers of a session grow in lockstep, so one free
  list suffices);
- sessions own a *logical → arena row* mapping; completed sessions return
  their blocks to the free list (LIFO, so hot arena rows are reused);
- sign-cache bytes are paged **alongside K/V** in a parallel uint8 arena,
  so the incremental sign store survives paging exactly like the keys it
  summarizes (the software Key Sign Objects stay with their Key Objects).

:class:`PagedKVCache` presents the same duck-typed interface the
transformer and the attention backends consume (``append``, ``reserve``,
``layers[i].keys/values/packed_signs``, ``window_view``, ...), so a paged
session is a drop-in replacement for a private :class:`KVCache`.  Reads
gather logical rows out of the arena; when a session's blocks happen to
be contiguous (the common case right after admission) the gather
degenerates to a zero-copy slice.

**Prefix caching** (``prefix_caching=True``): *full* prompt blocks are
content-hashed with a chained blake2b digest (``digest_i =
H(digest_{i-1} || tokens_of_block_i)``, so a block's key commits to the
entire prefix before it, not just its own tokens) and registered in a
pool-level index.  A new session whose prompt starts with an indexed
prefix *attaches* those blocks instead of re-prefilling them: the shared
block ids are spliced into its row map and the per-block refcount rises.
Shared blocks are copy-on-write in the only sense that matters for
fixed-size pages: they are always **full**, so no append can ever write
into one — divergence lands in freshly allocated private blocks — and a
block returns to the LIFO free list only when the *last* referencing
session frees it.  Sharing K/V across sessions is bit-exact only when
every session would have produced the same arena bytes, which holds
when one pool serves one backend family (same weights, same attention
numerics, same sign-rotation bank); mixed-family pools (e.g. dense
fallback sessions, fault-injecting backends) must not attach or publish
— the serving engine enforces this for pinned-dense sessions.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import PoolExhaustedError
from repro.llm.config import ModelConfig
from repro.llm.kv_cache import BlockSummary
from repro.obs import resolve_obs

if TYPE_CHECKING:
    from repro.core.itq import ItqRotations
    from repro.obs import Obs


@dataclasses.dataclass
class _PrefixEntry:
    """One shared (refcounted) full block in the pool's prefix index."""

    key: bytes          # chained digest of the prefix ending at this block
    block: int          # arena block id holding the tokens' K/V/signs
    refcount: int       # live sessions referencing the block
    signs_packed: bool  # sign arena rows for this block are valid


def _chain_digest(prev: bytes, tokens: np.ndarray) -> bytes:
    """Chained content hash of one full block of prompt tokens."""
    h = hashlib.blake2b(prev, digest_size=16)
    h.update(np.ascontiguousarray(tokens, dtype=np.int64).tobytes())
    return h.digest()


class PagedKVPool:
    """Preallocated block-granular K/V/sign arenas for all sessions.

    Args:
        config: model architecture (layer count, KV heads, head dim, dtype).
        n_blocks: total blocks in the arena.
        block_tokens: token slots per block.
        prefix_caching: share content-identical full prompt blocks across
            sessions via refcounts (see module docstring for validity).
        obs: optional observability bundle; prefix hit/miss counters and
            the shared-block gauge report through it.

    The pool never allocates after construction; :class:`PagedKVCache`
    growth only moves block ids between the free list and sessions.
    """

    def __init__(self, config: ModelConfig, n_blocks: int,
                 block_tokens: int = 16, prefix_caching: bool = False,
                 obs: Optional["Obs"] = None) -> None:
        if n_blocks < 1 or block_tokens < 1:
            raise ValueError("need at least one block of at least one token")
        self.config = config
        self.n_blocks = n_blocks
        self.block_tokens = block_tokens
        self.prefix_caching = prefix_caching
        self.obs = resolve_obs(obs)
        dtype = np.dtype(config.kv_dtype)
        rows = n_blocks * block_tokens
        shape = (config.n_kv_heads, rows, config.head_dim)
        self.sign_nbytes = (config.head_dim + 7) // 8
        #: per-layer arenas; indexed [layer][kv_head, arena_row, dim]
        self.k_arenas = [np.zeros(shape, dtype=dtype)
                        for _ in range(config.n_layers)]
        self.v_arenas = [np.zeros(shape, dtype=dtype)
                        for _ in range(config.n_layers)]
        self.sign_arenas = [
            np.zeros((config.n_kv_heads, rows, self.sign_nbytes),
                     dtype=np.uint8)
            for _ in range(config.n_layers)]
        # LIFO free list: most recently released blocks are reused first.
        self._free: List[int] = list(range(n_blocks - 1, -1, -1))
        #: chained digest -> shared entry (prefix caching only).
        self._prefix_index: Dict[bytes, _PrefixEntry] = {}
        # -- telemetry --
        self.total_allocated = 0
        self.total_released = 0
        self.high_watermark = 0
        self.prefix_hits = 0
        self.prefix_misses = 0
        self.shared_blocks_peak = 0

    # -- accounting -----------------------------------------------------------

    @property
    def n_free(self) -> int:
        return len(self._free)

    @property
    def n_used(self) -> int:
        return self.n_blocks - len(self._free)

    def blocks_for_tokens(self, n_tokens: int) -> int:
        """Blocks needed to hold ``n_tokens`` token slots."""
        return -(-max(0, n_tokens) // self.block_tokens)

    def can_fit_tokens(self, n_tokens: int) -> bool:
        """Would a fresh session of ``n_tokens`` fit right now?"""
        return self.blocks_for_tokens(n_tokens) <= self.n_free

    # -- block lifecycle ------------------------------------------------------

    def allocate(self, n: int) -> List[int]:
        """Take ``n`` blocks off the free list (all-or-nothing)."""
        if n < 0:
            raise ValueError("cannot allocate a negative block count")
        if n > len(self._free):
            cfg = self.config
            raise PoolExhaustedError(
                f"paged KV pool exhausted: need {n} blocks, "
                f"{len(self._free)} of {self.n_blocks} free "
                f"({self.n_used} occupied x {cfg.n_layers} layers at "
                f"{self.block_tokens} tokens/block, "
                f"{self.shared_blocks} shared prefix blocks, "
                f"free-list depth {len(self._free)}, "
                f"high watermark {self.high_watermark})",
                need=n, free=len(self._free), total=self.n_blocks,
                block_tokens=self.block_tokens, n_layers=cfg.n_layers,
                shared_prefix_blocks=self.shared_blocks,
                high_watermark=self.high_watermark)
        taken = [self._free.pop() for _ in range(n)]
        self.total_allocated += n
        self.high_watermark = max(self.high_watermark, self.n_used)
        return taken

    def release(self, blocks: List[int]) -> None:
        """Return blocks to the free list (session completion)."""
        for block in blocks:
            if not 0 <= block < self.n_blocks:
                raise ValueError(f"block id {block} outside the arena")
            if block in self._free:
                raise ValueError(f"double free of block {block}")
        self._free.extend(blocks)
        self.total_released += len(blocks)

    def new_cache(self) -> "PagedKVCache":
        """A fresh (empty) session cache backed by this pool."""
        return PagedKVCache(self)

    # -- prefix index ---------------------------------------------------------

    @property
    def shared_blocks(self) -> int:
        """Distinct blocks currently registered in the prefix index."""
        return len(self._prefix_index)

    def _note_shared_blocks(self) -> None:
        n = len(self._prefix_index)
        if n > self.shared_blocks_peak:
            self.shared_blocks_peak = n
        self.obs.metrics.gauge("serve.prefix.shared_blocks").set(n)

    def longest_prefix_tokens(self, tokens: Sequence[int]) -> int:
        """Cached-prefix length (tokens) the index holds for this prompt.

        A metric-free probe: walks the chained digests over the prompt's
        full blocks without touching refcounts or hit/miss counters, so a
        router can score worker locality without perturbing the stats.
        """
        if not self.prefix_caching:
            return 0
        arr = np.asarray(tokens, dtype=np.int64)
        bt = self.block_tokens
        digest = b""
        hit = 0
        for start in range(0, (len(arr) // bt) * bt, bt):
            digest = _chain_digest(digest, arr[start:start + bt])
            if digest not in self._prefix_index:
                break
            hit += bt
        return hit


class PagedLayerKV:
    """One layer's view of a paged session: the ``LayerKV`` consumer API.

    Reads gather the session's logical rows from the shared arena; when
    the underlying blocks are contiguous the gather is a zero-copy slice.
    """

    def __init__(self, cache: "PagedKVCache", layer: int) -> None:
        self._cache = cache
        self._layer = layer
        pool = cache.pool
        self.n_kv_heads = pool.config.n_kv_heads
        self.head_dim = pool.config.head_dim
        self.dtype = np.dtype(pool.config.kv_dtype)
        self._k = pool.k_arenas[layer]
        self._v = pool.v_arenas[layer]
        self._signs = pool.sign_arenas[layer]
        self._sign_rot: Optional[np.ndarray] = None
        self._sign_enabled = False
        self._len = 0
        self.signs_packed_total = 0
        # Block summaries index logical positions, not arena rows, so they
        # need no paging; at default geometry they are ~1/8 the size of one
        # layer's keys, small enough to live privately per session.
        self._block_summary: Optional[BlockSummary] = None

    def __len__(self) -> int:
        return self._len

    # -- reads ----------------------------------------------------------------

    def _gather(self, arena: np.ndarray) -> np.ndarray:
        rows = self._cache.rows(self._len)
        if self._cache.contiguous:
            start = rows[0] if self._len else 0
            return arena[:, start : start + self._len]
        return arena[:, rows]

    @property
    def keys(self) -> np.ndarray:
        """``(n_kv_heads, n_tokens, head_dim)`` keys in logical order."""
        return self._gather(self._k)

    @property
    def values(self) -> np.ndarray:
        """``(n_kv_heads, n_tokens, head_dim)`` values in logical order."""
        return self._gather(self._v)

    @property
    def sign_cache_enabled(self) -> bool:
        return self._sign_enabled

    @property
    def packed_signs(self) -> np.ndarray:
        """``(n_kv_heads, n_tokens, sign_nbytes)`` packed rotated signs."""
        if not self._sign_enabled:
            raise RuntimeError("sign cache not enabled; call enable_sign_cache")
        return self._gather(self._signs)

    # -- writes ---------------------------------------------------------------

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append keys/values for one or more tokens into pool blocks."""
        if k.shape != v.shape:
            raise ValueError("key and value shapes must match")
        if k.shape[0] != self.n_kv_heads or k.shape[2] != self.head_dim:
            raise ValueError(
                f"expected (n_kv_heads={self.n_kv_heads}, n, "
                f"head_dim={self.head_dim}), got {k.shape}")
        n_new = k.shape[1]
        if n_new == 0:
            return
        self._cache.ensure_tokens(self._len + n_new)
        rows = self._cache.rows_range(self._len, self._len + n_new)
        self._k[:, rows] = k
        self._v[:, rows] = v
        if self._sign_enabled:
            self._pack_rows(k, rows)
        if self._block_summary is not None:
            self._block_summary.update(k, self._len)
        self._len += n_new

    def _pack_rows(self, k: np.ndarray, rows: np.ndarray) -> None:
        from repro.core.scf import pack_signs

        keys = k if self._sign_rot is None else np.matmul(k, self._sign_rot)
        self._signs[:, rows] = pack_signs(keys)
        self.signs_packed_total += len(rows)

    def enable_sign_cache(self, rotations: Optional[np.ndarray] = None) -> None:
        """Start packing (rotated) key signs on append; packs the backlog.

        Backlog packing skips the leading run of attached shared-prefix
        tokens whose sign rows were already packed by the publishing
        session (``cache.prefix_signed_tokens``): re-packing them would
        write the same bytes — one sign-rotation bank per pool — but
        skipping keeps borrowers from touching shared arena rows at all.
        """
        if rotations is not None and rotations.shape != (
                self.n_kv_heads, self.head_dim, self.head_dim):
            raise ValueError("rotation stack shape mismatch")
        self._sign_rot = rotations
        self._sign_enabled = True
        start = min(self._cache.prefix_signed_tokens, self._len)
        if self._len > start:
            rows = self._cache.rows_range(start, self._len)
            self._pack_rows(self._k[:, rows], rows)

    @property
    def block_summary_enabled(self) -> bool:
        return self._block_summary is not None

    def enable_block_summary(self, block: int, stride: int) -> None:
        """Start maintaining antidiagonal residue sums on append."""
        if (self._block_summary is not None
                and self._block_summary.block == block
                and self._block_summary.stride == stride):
            return
        self._block_summary = BlockSummary(
            self.n_kv_heads, self.head_dim, block, stride, dtype=self.dtype)
        if self._len:
            self._block_summary.update(self.keys, 0)

    @property
    def block_summaries(self) -> np.ndarray:
        """``(n_kv_heads, n_blocks, stride, head_dim)`` residue sums."""
        if self._block_summary is None:
            raise RuntimeError(
                "block summaries not enabled; call enable_block_summary")
        return self._block_summary.summaries

    def free(self) -> None:
        """Per-layer release is a no-op: the cache owns the shared blocks."""
        self._len = 0
        self._block_summary = None


class PagedKVCache:
    """A session's KV cache backed by pool blocks (``KVCache`` interface).

    All layers share one block list (they grow in lockstep), so the block
    cost of a session is ``ceil(tokens / block_tokens)`` — paid once, not
    per layer.  :meth:`free` returns every block to the pool; the freed
    cache must not be appended to again.
    """

    def __init__(self, pool: PagedKVPool) -> None:
        self.pool = pool
        self.config = pool.config
        self.layers = [PagedLayerKV(self, i)
                       for i in range(pool.config.n_layers)]
        self._blocks: List[int] = []
        #: logical token position -> arena row, grown block-by-block.
        self._rows = np.empty(0, dtype=np.intp)
        self.contiguous = True
        self.sign_rotations: Optional["ItqRotations"] = None
        self._sign_cache_enabled = False
        self._freed = False
        # -- prefix-caching state --
        #: refcounted entry per shared block this session references
        #: (borrowed via attach_prefix or published by this session).
        self._entry_by_block: Dict[int, _PrefixEntry] = {}
        #: chained digest of the last hashed full block (publish resumes
        #: the chain here), and how many prompt tokens are hashed so far.
        self._prefix_digest = b""
        self._published_tokens = 0
        #: leading tokens whose shared sign rows are already packed —
        #: enable_sign_cache starts its backlog pack after this run.
        self.prefix_signed_tokens = 0

    def __len__(self) -> int:
        """Number of cached tokens (identical across layers)."""
        return len(self.layers[0])

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    @property
    def block_ids(self) -> List[int]:
        return list(self._blocks)

    @property
    def freed(self) -> bool:
        return self._freed

    # -- row mapping ----------------------------------------------------------

    def rows(self, n_tokens: int) -> np.ndarray:
        """Arena rows of logical tokens ``[0, n_tokens)``."""
        return self._rows[:n_tokens]

    def rows_range(self, start: int, stop: int) -> np.ndarray:
        """Arena rows of logical tokens ``[start, stop)``."""
        return self._rows[start:stop]

    def ensure_tokens(self, n_tokens: int) -> None:
        """Grow the block list to cover ``n_tokens`` logical slots.

        Raises :class:`~repro.errors.PoolExhaustedError` (leaving the
        session's existing blocks intact) when the pool cannot supply the
        growth — the engine's preemption signal.
        """
        if self._freed:
            raise RuntimeError("PagedKVCache was freed; sessions must not "
                               "append after release")
        need = self.pool.blocks_for_tokens(n_tokens) - len(self._blocks)
        if need <= 0:
            return
        new_blocks = self.pool.allocate(need)
        bt = self.pool.block_tokens
        for block in new_blocks:
            if self._blocks and block != self._blocks[-1] + 1:
                self.contiguous = False
            self._blocks.append(block)
            self._rows = np.concatenate(
                [self._rows, np.arange(block * bt, (block + 1) * bt,
                                       dtype=np.intp)])

    # -- prefix caching -------------------------------------------------------

    def attach_prefix(self, tokens: Sequence[int]) -> int:
        """Splice in shared blocks for the longest indexed prompt prefix.

        Walks the chained digests over the prompt's full blocks; every
        hit raises that block's refcount and maps it into this session's
        row table, so the attached K/V (and packed signs, when the
        publisher had its sign cache on) are served without re-prefill.
        Stops at the first miss.  Returns the number of attached tokens —
        the engine resumes prefill from there.

        Only valid on an empty session cache: attached blocks must form
        the logical prefix, and they are full by construction so later
        appends can never write into them.
        """
        pool = self.pool
        if not pool.prefix_caching:
            return 0
        if self._freed:
            raise RuntimeError("PagedKVCache was freed")
        if self._blocks or len(self):
            raise RuntimeError(
                "attach_prefix requires an empty session cache")
        arr = np.asarray(tokens, dtype=np.int64)
        bt = pool.block_tokens
        n_full = len(arr) // bt
        digest = b""
        entries: List[_PrefixEntry] = []
        for start in range(0, n_full * bt, bt):
            digest = _chain_digest(digest, arr[start:start + bt])
            entry = pool._prefix_index.get(digest)
            if entry is None:
                break
            entries.append(entry)
        hits = len(entries)
        if hits:
            pool.prefix_hits += hits
            pool.obs.metrics.counter("serve.prefix.hit").inc(hits)
        if hits < n_full:
            pool.prefix_misses += 1
            pool.obs.metrics.counter("serve.prefix.miss").inc()
        if not hits:
            return 0
        signed_run = 0
        for entry in entries:
            entry.refcount += 1
            self._entry_by_block[entry.block] = entry
            if self._blocks and entry.block != self._blocks[-1] + 1:
                self.contiguous = False
            self._blocks.append(entry.block)
            if signed_run == len(self._blocks) - 1 and entry.signs_packed:
                signed_run += 1
        self._rows = np.concatenate(
            [np.arange(b * bt, (b + 1) * bt, dtype=np.intp)
             for b in self._blocks])
        attached = hits * bt
        for layer in self.layers:
            layer._len = attached
        self._prefix_digest = entries[-1].key
        self._published_tokens = attached
        self.prefix_signed_tokens = signed_run * bt
        pool._note_shared_blocks()
        return attached

    def publish_prefix(self, tokens: Sequence[int]) -> int:
        """Register this session's full prompt blocks in the prefix index.

        ``tokens`` is the prompt prefix written so far (the engine calls
        this after each prefill chunk); blocks already hashed — attached
        or previously published — are skipped via the resumed digest
        chain.  A digest another session already registered is *not*
        re-registered: this session's copy of the block stays private
        (slight arena waste, no remapping churn).  Returns the number of
        newly registered blocks.
        """
        pool = self.pool
        if not pool.prefix_caching or self._freed:
            return 0
        arr = np.asarray(tokens, dtype=np.int64)
        bt = pool.block_tokens
        full = min((len(arr) // bt) * bt, len(self))
        registered = 0
        while self._published_tokens + bt <= full:
            start = self._published_tokens
            digest = _chain_digest(self._prefix_digest,
                                   arr[start:start + bt])
            block = self._blocks[start // bt]
            if digest not in pool._prefix_index:
                entry = _PrefixEntry(digest, block, 1,
                                     self._sign_cache_enabled)
                pool._prefix_index[digest] = entry
                self._entry_by_block[block] = entry
                registered += 1
            self._prefix_digest = digest
            self._published_tokens = start + bt
        if registered:
            pool._note_shared_blocks()
        return registered

    # -- KVCache interface ----------------------------------------------------

    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        self.layers[layer].append(k, v)

    def reserve(self, capacity: int) -> None:
        """Acquire blocks for ``capacity`` tokens up front (prefill)."""
        self.ensure_tokens(capacity)

    @property
    def sign_cache_enabled(self) -> bool:
        return self._sign_cache_enabled

    def enable_sign_cache(
            self, rotations: Optional["ItqRotations"] = None) -> None:
        """Enable per-layer sign packing (idempotent for the same bank)."""
        if self._sign_cache_enabled and self.sign_rotations is rotations:
            return
        for i, layer in enumerate(self.layers):
            layer.enable_sign_cache(
                rotations.matrices[i] if rotations is not None else None)
        self.sign_rotations = rotations
        self._sign_cache_enabled = True
        # The backlog pack above covered every row below len(self), so any
        # shared block this session references now holds valid signs —
        # future borrowers may skip them (one rotation bank per pool, so
        # the bytes are the same whoever packs them).
        for entry in self._entry_by_block.values():
            entry.signs_packed = True

    @property
    def block_summary_enabled(self) -> bool:
        return all(layer.block_summary_enabled for layer in self.layers)

    def enable_block_summary(self, block: int, stride: int) -> None:
        """Enable antidiagonal block summaries on every layer (idempotent)."""
        for layer in self.layers:
            layer.enable_block_summary(block, stride)

    def free(self) -> None:
        """Return every block to the pool (idempotent).

        Shared blocks are dereferenced instead: a block goes back to the
        LIFO free list only when this was the last referencing session,
        at which point its index entry is retired too (no resident-but-
        unreferenced caching).
        """
        if self._freed:
            return
        for layer in self.layers:
            layer.free()
        pool = self.pool
        if self._entry_by_block:
            to_release: List[int] = []
            for block in self._blocks:
                entry = self._entry_by_block.get(block)
                if entry is None:
                    to_release.append(block)
                    continue
                entry.refcount -= 1
                if entry.refcount == 0:
                    del pool._prefix_index[entry.key]
                    to_release.append(block)
            pool.release(to_release)
            self._entry_by_block = {}
            pool._note_shared_blocks()
        else:
            pool.release(self._blocks)
        self._blocks = []
        self._rows = np.empty(0, dtype=np.intp)
        self._freed = True

    # -- dense/sparse views (mirrors KVCache) ---------------------------------

    def window_view(self, layer: int, window: int,
                    n_sink: int = 0) -> tuple:
        """(keys, values, positions) of sinks + recent window."""
        n = len(self.layers[layer])
        kv = self.layers[layer]
        if n <= n_sink + window:
            pos = np.arange(n)
            return kv.keys, kv.values, pos
        pos = np.concatenate([np.arange(n_sink), np.arange(n - window, n)])
        k = kv.keys[:, pos]
        v = kv.values[:, pos]
        return k, v, pos

    def offloaded_view(self, layer: int, window: int,
                       n_sink: int = 0) -> tuple:
        """(keys, values, positions) of the sparse (offloaded) region."""
        n = len(self.layers[layer])
        kv = self.layers[layer]
        if n <= n_sink + window:
            empty_k = kv.keys[:, :0]
            return empty_k, empty_k.copy(), np.arange(0)
        pos = np.arange(n_sink, n - window)
        return kv.keys[:, pos], kv.values[:, pos], pos
