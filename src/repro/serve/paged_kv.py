"""Paged KV memory: a block-granular pool shared by every live session.

The serving engine cannot afford one doubling-and-copying numpy arena per
session (:class:`~repro.llm.kv_cache.LayerKV`): admission/completion churn
would fragment the heap and every admission would pay fresh allocations.
Instead the pool preallocates **one arena per decoder layer** and hands
out fixed-size *blocks* of token slots, vLLM-PagedAttention style:

- a block is ``block_tokens`` rows, shared across every layer's arena (the
  same block id addresses the same rows of layer 0's and layer N's K, V,
  and sign arenas — all layers of a session grow in lockstep, so one free
  list suffices);
- sessions own a *logical → arena row* mapping; completed sessions return
  their blocks to the free list (LIFO, so hot arena rows are reused);
- sign-cache bytes are paged **alongside K/V** in a parallel uint8 arena,
  so the incremental sign store survives paging exactly like the keys it
  summarizes (the software Key Sign Objects stay with their Key Objects).

:class:`PagedKVCache` presents the same duck-typed interface the
transformer and the attention backends consume (``append``, ``reserve``,
``layers[i].keys/values/packed_signs``, ``window_view``, ...), so a paged
session is a drop-in replacement for a private :class:`KVCache`.  Reads
gather logical rows out of the arena; when a session's blocks happen to
be contiguous (the common case right after admission) the gather
degenerates to a zero-copy slice.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.errors import PoolExhaustedError
from repro.llm.config import ModelConfig
from repro.llm.kv_cache import BlockSummary

if TYPE_CHECKING:
    from repro.core.itq import ItqRotations


class PagedKVPool:
    """Preallocated block-granular K/V/sign arenas for all sessions.

    Args:
        config: model architecture (layer count, KV heads, head dim, dtype).
        n_blocks: total blocks in the arena.
        block_tokens: token slots per block.

    The pool never allocates after construction; :class:`PagedKVCache`
    growth only moves block ids between the free list and sessions.
    """

    def __init__(self, config: ModelConfig, n_blocks: int,
                 block_tokens: int = 16) -> None:
        if n_blocks < 1 or block_tokens < 1:
            raise ValueError("need at least one block of at least one token")
        self.config = config
        self.n_blocks = n_blocks
        self.block_tokens = block_tokens
        dtype = np.dtype(config.kv_dtype)
        rows = n_blocks * block_tokens
        shape = (config.n_kv_heads, rows, config.head_dim)
        self.sign_nbytes = (config.head_dim + 7) // 8
        #: per-layer arenas; indexed [layer][kv_head, arena_row, dim]
        self.k_arenas = [np.zeros(shape, dtype=dtype)
                        for _ in range(config.n_layers)]
        self.v_arenas = [np.zeros(shape, dtype=dtype)
                        for _ in range(config.n_layers)]
        self.sign_arenas = [
            np.zeros((config.n_kv_heads, rows, self.sign_nbytes),
                     dtype=np.uint8)
            for _ in range(config.n_layers)]
        # LIFO free list: most recently released blocks are reused first.
        self._free: List[int] = list(range(n_blocks - 1, -1, -1))
        # -- telemetry --
        self.total_allocated = 0
        self.total_released = 0
        self.high_watermark = 0

    # -- accounting -----------------------------------------------------------

    @property
    def n_free(self) -> int:
        return len(self._free)

    @property
    def n_used(self) -> int:
        return self.n_blocks - len(self._free)

    def blocks_for_tokens(self, n_tokens: int) -> int:
        """Blocks needed to hold ``n_tokens`` token slots."""
        return -(-max(0, n_tokens) // self.block_tokens)

    def can_fit_tokens(self, n_tokens: int) -> bool:
        """Would a fresh session of ``n_tokens`` fit right now?"""
        return self.blocks_for_tokens(n_tokens) <= self.n_free

    # -- block lifecycle ------------------------------------------------------

    def allocate(self, n: int) -> List[int]:
        """Take ``n`` blocks off the free list (all-or-nothing)."""
        if n < 0:
            raise ValueError("cannot allocate a negative block count")
        if n > len(self._free):
            raise PoolExhaustedError(
                f"paged KV pool exhausted: need {n} blocks, "
                f"{len(self._free)} of {self.n_blocks} free")
        taken = [self._free.pop() for _ in range(n)]
        self.total_allocated += n
        self.high_watermark = max(self.high_watermark, self.n_used)
        return taken

    def release(self, blocks: List[int]) -> None:
        """Return blocks to the free list (session completion)."""
        for block in blocks:
            if not 0 <= block < self.n_blocks:
                raise ValueError(f"block id {block} outside the arena")
            if block in self._free:
                raise ValueError(f"double free of block {block}")
        self._free.extend(blocks)
        self.total_released += len(blocks)

    def new_cache(self) -> "PagedKVCache":
        """A fresh (empty) session cache backed by this pool."""
        return PagedKVCache(self)


class PagedLayerKV:
    """One layer's view of a paged session: the ``LayerKV`` consumer API.

    Reads gather the session's logical rows from the shared arena; when
    the underlying blocks are contiguous the gather is a zero-copy slice.
    """

    def __init__(self, cache: "PagedKVCache", layer: int) -> None:
        self._cache = cache
        self._layer = layer
        pool = cache.pool
        self.n_kv_heads = pool.config.n_kv_heads
        self.head_dim = pool.config.head_dim
        self.dtype = np.dtype(pool.config.kv_dtype)
        self._k = pool.k_arenas[layer]
        self._v = pool.v_arenas[layer]
        self._signs = pool.sign_arenas[layer]
        self._sign_rot: Optional[np.ndarray] = None
        self._sign_enabled = False
        self._len = 0
        self.signs_packed_total = 0
        # Block summaries index logical positions, not arena rows, so they
        # need no paging; at default geometry they are ~1/8 the size of one
        # layer's keys, small enough to live privately per session.
        self._block_summary: Optional[BlockSummary] = None

    def __len__(self) -> int:
        return self._len

    # -- reads ----------------------------------------------------------------

    def _gather(self, arena: np.ndarray) -> np.ndarray:
        rows = self._cache.rows(self._len)
        if self._cache.contiguous:
            start = rows[0] if self._len else 0
            return arena[:, start : start + self._len]
        return arena[:, rows]

    @property
    def keys(self) -> np.ndarray:
        """``(n_kv_heads, n_tokens, head_dim)`` keys in logical order."""
        return self._gather(self._k)

    @property
    def values(self) -> np.ndarray:
        """``(n_kv_heads, n_tokens, head_dim)`` values in logical order."""
        return self._gather(self._v)

    @property
    def sign_cache_enabled(self) -> bool:
        return self._sign_enabled

    @property
    def packed_signs(self) -> np.ndarray:
        """``(n_kv_heads, n_tokens, sign_nbytes)`` packed rotated signs."""
        if not self._sign_enabled:
            raise RuntimeError("sign cache not enabled; call enable_sign_cache")
        return self._gather(self._signs)

    # -- writes ---------------------------------------------------------------

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append keys/values for one or more tokens into pool blocks."""
        if k.shape != v.shape:
            raise ValueError("key and value shapes must match")
        if k.shape[0] != self.n_kv_heads or k.shape[2] != self.head_dim:
            raise ValueError(
                f"expected (n_kv_heads={self.n_kv_heads}, n, "
                f"head_dim={self.head_dim}), got {k.shape}")
        n_new = k.shape[1]
        if n_new == 0:
            return
        self._cache.ensure_tokens(self._len + n_new)
        rows = self._cache.rows_range(self._len, self._len + n_new)
        self._k[:, rows] = k
        self._v[:, rows] = v
        if self._sign_enabled:
            self._pack_rows(k, rows)
        if self._block_summary is not None:
            self._block_summary.update(k, self._len)
        self._len += n_new

    def _pack_rows(self, k: np.ndarray, rows: np.ndarray) -> None:
        from repro.core.scf import pack_signs

        keys = k if self._sign_rot is None else np.matmul(k, self._sign_rot)
        self._signs[:, rows] = pack_signs(keys)
        self.signs_packed_total += len(rows)

    def enable_sign_cache(self, rotations: Optional[np.ndarray] = None) -> None:
        """Start packing (rotated) key signs on append; packs the backlog."""
        if rotations is not None and rotations.shape != (
                self.n_kv_heads, self.head_dim, self.head_dim):
            raise ValueError("rotation stack shape mismatch")
        self._sign_rot = rotations
        self._sign_enabled = True
        if self._len:
            rows = self._cache.rows(self._len)
            self._pack_rows(self._gather(self._k), rows)

    @property
    def block_summary_enabled(self) -> bool:
        return self._block_summary is not None

    def enable_block_summary(self, block: int, stride: int) -> None:
        """Start maintaining antidiagonal residue sums on append."""
        if (self._block_summary is not None
                and self._block_summary.block == block
                and self._block_summary.stride == stride):
            return
        self._block_summary = BlockSummary(
            self.n_kv_heads, self.head_dim, block, stride, dtype=self.dtype)
        if self._len:
            self._block_summary.update(self.keys, 0)

    @property
    def block_summaries(self) -> np.ndarray:
        """``(n_kv_heads, n_blocks, stride, head_dim)`` residue sums."""
        if self._block_summary is None:
            raise RuntimeError(
                "block summaries not enabled; call enable_block_summary")
        return self._block_summary.summaries

    def free(self) -> None:
        """Per-layer release is a no-op: the cache owns the shared blocks."""
        self._len = 0
        self._block_summary = None


class PagedKVCache:
    """A session's KV cache backed by pool blocks (``KVCache`` interface).

    All layers share one block list (they grow in lockstep), so the block
    cost of a session is ``ceil(tokens / block_tokens)`` — paid once, not
    per layer.  :meth:`free` returns every block to the pool; the freed
    cache must not be appended to again.
    """

    def __init__(self, pool: PagedKVPool) -> None:
        self.pool = pool
        self.config = pool.config
        self.layers = [PagedLayerKV(self, i)
                       for i in range(pool.config.n_layers)]
        self._blocks: List[int] = []
        #: logical token position -> arena row, grown block-by-block.
        self._rows = np.empty(0, dtype=np.intp)
        self.contiguous = True
        self.sign_rotations: Optional["ItqRotations"] = None
        self._sign_cache_enabled = False
        self._freed = False

    def __len__(self) -> int:
        """Number of cached tokens (identical across layers)."""
        return len(self.layers[0])

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    @property
    def block_ids(self) -> List[int]:
        return list(self._blocks)

    @property
    def freed(self) -> bool:
        return self._freed

    # -- row mapping ----------------------------------------------------------

    def rows(self, n_tokens: int) -> np.ndarray:
        """Arena rows of logical tokens ``[0, n_tokens)``."""
        return self._rows[:n_tokens]

    def rows_range(self, start: int, stop: int) -> np.ndarray:
        """Arena rows of logical tokens ``[start, stop)``."""
        return self._rows[start:stop]

    def ensure_tokens(self, n_tokens: int) -> None:
        """Grow the block list to cover ``n_tokens`` logical slots.

        Raises :class:`~repro.errors.PoolExhaustedError` (leaving the
        session's existing blocks intact) when the pool cannot supply the
        growth — the engine's preemption signal.
        """
        if self._freed:
            raise RuntimeError("PagedKVCache was freed; sessions must not "
                               "append after release")
        need = self.pool.blocks_for_tokens(n_tokens) - len(self._blocks)
        if need <= 0:
            return
        new_blocks = self.pool.allocate(need)
        bt = self.pool.block_tokens
        for block in new_blocks:
            if self._blocks and block != self._blocks[-1] + 1:
                self.contiguous = False
            self._blocks.append(block)
            self._rows = np.concatenate(
                [self._rows, np.arange(block * bt, (block + 1) * bt,
                                       dtype=np.intp)])

    # -- KVCache interface ----------------------------------------------------

    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        self.layers[layer].append(k, v)

    def reserve(self, capacity: int) -> None:
        """Acquire blocks for ``capacity`` tokens up front (prefill)."""
        self.ensure_tokens(capacity)

    @property
    def sign_cache_enabled(self) -> bool:
        return self._sign_cache_enabled

    def enable_sign_cache(
            self, rotations: Optional["ItqRotations"] = None) -> None:
        """Enable per-layer sign packing (idempotent for the same bank)."""
        if self._sign_cache_enabled and self.sign_rotations is rotations:
            return
        for i, layer in enumerate(self.layers):
            layer.enable_sign_cache(
                rotations.matrices[i] if rotations is not None else None)
        self.sign_rotations = rotations
        self._sign_cache_enabled = True

    @property
    def block_summary_enabled(self) -> bool:
        return all(layer.block_summary_enabled for layer in self.layers)

    def enable_block_summary(self, block: int, stride: int) -> None:
        """Enable antidiagonal block summaries on every layer (idempotent)."""
        for layer in self.layers:
            layer.enable_block_summary(block, stride)

    def free(self) -> None:
        """Return every block to the pool (idempotent)."""
        if self._freed:
            return
        for layer in self.layers:
            layer.free()
        self.pool.release(self._blocks)
        self._blocks = []
        self._rows = np.empty(0, dtype=np.intp)
        self._freed = True

    # -- dense/sparse views (mirrors KVCache) ---------------------------------

    def window_view(self, layer: int, window: int,
                    n_sink: int = 0) -> tuple:
        """(keys, values, positions) of sinks + recent window."""
        n = len(self.layers[layer])
        kv = self.layers[layer]
        if n <= n_sink + window:
            pos = np.arange(n)
            return kv.keys, kv.values, pos
        pos = np.concatenate([np.arange(n_sink), np.arange(n - window, n)])
        k = kv.keys[:, pos]
        v = kv.values[:, pos]
        return k, v, pos

    def offloaded_view(self, layer: int, window: int,
                       n_sink: int = 0) -> tuple:
        """(keys, values, positions) of the sparse (offloaded) region."""
        n = len(self.layers[layer])
        kv = self.layers[layer]
        if n <= n_sink + window:
            empty_k = kv.keys[:, :0]
            return empty_k, empty_k.copy(), np.arange(0)
        pos = np.arange(n_sink, n - window)
        return kv.keys[:, pos], kv.values[:, pos], pos
