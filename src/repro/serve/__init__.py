"""repro.serve: continuous-batching functional serving.

The serving layer the paper's system story implies but the analytic
simulator cannot test: many concurrent sessions decoding *real tokens*
through one shared transformer over one paged KV arena, with chunked
prefill, SLO-aware admission, recompute-preemption, and degradation-aware
shedding onto the dense sliding-window fallback.

Layout:

- :mod:`repro.serve.paged_kv` — block-granular KV pool + paged caches;
- :mod:`repro.serve.scheduler` — request lifecycle, admission, preemption;
- :mod:`repro.serve.engine` — the step loop, analytic/measured clocks;
- :mod:`repro.serve.events` — per-request event log and ServeReport;
- :mod:`repro.serve.crossval` — paired workloads vs the analytic simulator.
"""

from repro.serve.engine import AnalyticTiming, EngineRun, ServeEngine
from repro.serve.events import RequestEvents, ServeReport
from repro.serve.paged_kv import PagedKVCache, PagedKVPool
from repro.serve.scheduler import (ContinuousBatchScheduler, RequestState,
                                   ServeRequest, SloPolicy, TenantClass)

__all__ = [
    "AnalyticTiming",
    "ContinuousBatchScheduler",
    "EngineRun",
    "PagedKVCache",
    "PagedKVPool",
    "RequestEvents",
    "RequestState",
    "ServeEngine",
    "ServeReport",
    "ServeRequest",
    "SloPolicy",
    "TenantClass",
]
