"""Per-request event logging and the serve-level report.

Every request carries timestamps for the canonical serving milestones —
arrival, admission, first token, every subsequent token, completion — in
the engine's clock (analytic seconds by default, wall seconds in measured
mode).  :class:`ServeReport` reduces the event log to the metrics a
serving SLO is written against: TTFT and TPOT percentiles, aggregate
decode throughput, and the shed/degradation accounting the fault layer
feeds.

Percentiles are sourced from the ``repro.obs`` registry: the engine
records every request's TTFT/TPOT into exact (sample-retaining)
histograms and hands them to the report, which falls back to computing
the same :func:`repro.obs.exact_percentile` over the raw events when the
registry is a no-op — the two paths are bit-identical.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.obs import Histogram, exact_percentile


@dataclasses.dataclass
class RequestEvents:
    """Timestamps and counters for one request's lifetime."""

    request_id: int
    arrival_s: float
    tenant: str = "default"
    admitted_s: Optional[float] = None
    first_token_s: Optional[float] = None
    finished_s: Optional[float] = None
    token_times_s: List[float] = dataclasses.field(default_factory=list)
    degraded_tokens: int = 0
    preemptions: int = 0
    migrations: int = 0         # cross-worker relocations (fleet runs)
    shed: bool = False          # finished pinned to the dense fallback
    rejected: bool = False      # never admitted (SLO or capacity)
    #: brownout ladder attribution: stage -> tokens of this request
    #: decoded at that stage (mirrors the degradation log; stage names
    #: in :data:`repro.serve.scheduler.BROWNOUT_STAGES`).
    brownout_tokens: Dict[int, int] = dataclasses.field(default_factory=dict)

    @property
    def brownout_token_total(self) -> int:
        return sum(self.brownout_tokens.values())

    @property
    def ttft_s(self) -> Optional[float]:
        """Time to first token (arrival -> first emitted token)."""
        if self.first_token_s is None:
            return None
        return self.first_token_s - self.arrival_s

    @property
    def tpot_s(self) -> Optional[float]:
        """Mean time per output token after the first."""
        if self.finished_s is None or len(self.token_times_s) < 2:
            return None
        span = self.token_times_s[-1] - self.token_times_s[0]
        return span / (len(self.token_times_s) - 1)

    @property
    def n_tokens(self) -> int:
        return len(self.token_times_s)

    def as_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "arrival_s": self.arrival_s,
            "tenant": self.tenant,
            "admitted_s": self.admitted_s,
            "first_token_s": self.first_token_s,
            "finished_s": self.finished_s,
            "n_tokens": self.n_tokens,
            "ttft_s": self.ttft_s,
            "tpot_s": self.tpot_s,
            "degraded_tokens": self.degraded_tokens,
            "preemptions": self.preemptions,
            "migrations": self.migrations,
            "shed": self.shed,
            "rejected": self.rejected,
            "brownout_tokens": {str(stage): count for stage, count
                                in sorted(self.brownout_tokens.items())},
        }


@dataclasses.dataclass
class ServeReport:
    """Outcome of one :class:`~repro.serve.engine.ServeEngine` run."""

    system: str
    events: List[RequestEvents]
    clock_s: float                    # engine clock at run end
    tokens_generated: int
    peak_decode_batch: int
    preemptions: int
    pool_blocks: int
    pool_high_watermark: int
    #: registry-backed exact TTFT/TPOT distributions, populated by the
    #: engine; ``None`` (no-op registry, or hand-built reports) falls back
    #: to recomputing from ``events``.
    ttft_hist: Optional[Histogram] = None
    tpot_hist: Optional[Histogram] = None

    # -- request partitions ---------------------------------------------------

    @property
    def completed(self) -> List[RequestEvents]:
        return [e for e in self.events if e.finished_s is not None]

    @property
    def shed(self) -> List[RequestEvents]:
        return [e for e in self.events if e.shed]

    @property
    def rejected(self) -> List[RequestEvents]:
        return [e for e in self.events if e.rejected]

    # -- SLO metrics ----------------------------------------------------------

    def _ttfts(self, tenant: Optional[str] = None) -> List[float]:
        return [e.ttft_s for e in self.events if e.ttft_s is not None
                and (tenant is None or e.tenant == tenant)]

    def _tpots(self, tenant: Optional[str] = None) -> List[float]:
        return [e.tpot_s for e in self.events if e.tpot_s is not None
                and (tenant is None or e.tenant == tenant)]

    def ttft_percentile_s(self, q: float,
                          tenant: Optional[str] = None) -> float:
        """TTFT percentile; a ``tenant`` filter always uses the exact
        per-event path (the registry histogram pools all tenants)."""
        if tenant is not None:
            return exact_percentile(self._ttfts(tenant), q)
        if self.ttft_hist is not None and self.ttft_hist.count:
            return self.ttft_hist.percentile(q)
        return exact_percentile(self._ttfts(), q)

    def tpot_percentile_s(self, q: float,
                          tenant: Optional[str] = None) -> float:
        if tenant is not None:
            return exact_percentile(self._tpots(tenant), q)
        if self.tpot_hist is not None and self.tpot_hist.count:
            return self.tpot_hist.percentile(q)
        return exact_percentile(self._tpots(), q)

    @property
    def tenants(self) -> List[str]:
        """Distinct tenants in event order of first appearance."""
        seen: List[str] = []
        for e in self.events:
            if e.tenant not in seen:
                seen.append(e.tenant)
        return seen

    def tenant_summary(self) -> Dict[str, Dict]:
        """Per-tenant SLO metrics (exact percentiles over the events)."""
        out: Dict[str, Dict] = {}
        for tenant in self.tenants:
            mine = [e for e in self.events if e.tenant == tenant]
            out[tenant] = {
                "requests": len(mine),
                "completed": sum(1 for e in mine
                                 if e.finished_s is not None),
                "rejected": sum(1 for e in mine if e.rejected),
                "migrations": sum(e.migrations for e in mine),
                "ttft_p50_s": self.ttft_percentile_s(50.0, tenant),
                "ttft_p99_s": self.ttft_percentile_s(99.0, tenant),
                "tpot_p50_s": self.tpot_percentile_s(50.0, tenant),
                "tpot_p99_s": self.tpot_percentile_s(99.0, tenant),
            }
        return out

    @property
    def throughput_tps(self) -> float:
        """Aggregate decode tokens per second of engine time."""
        return self.tokens_generated / self.clock_s if self.clock_s else 0.0

    @property
    def degraded_tokens(self) -> int:
        return sum(e.degraded_tokens for e in self.events)

    @property
    def degraded_token_fraction(self) -> float:
        if self.tokens_generated == 0:
            return 0.0
        return self.degraded_tokens / self.tokens_generated

    @property
    def brownout_tokens(self) -> int:
        return sum(e.brownout_token_total for e in self.events)

    @property
    def brownout_stage_tokens(self) -> Dict[int, int]:
        """Pooled brownout attribution: stage -> tokens served at it."""
        pooled: Dict[int, int] = {}
        for e in self.events:
            for stage, count in e.brownout_tokens.items():
                pooled[stage] = pooled.get(stage, 0) + count
        return dict(sorted(pooled.items()))

    @property
    def brownout_token_fraction(self) -> float:
        if self.tokens_generated == 0:
            return 0.0
        return self.brownout_tokens / self.tokens_generated

    @property
    def availability(self) -> float:
        """Completed-with-sparse-service fraction (mirrors ServingReport)."""
        done = self.completed
        if not done:
            return 1.0
        return sum(1 for e in done if not e.shed) / len(done)

    def as_dict(self) -> Dict:
        """JSON-ready summary (the per-point payload of BENCH_serve)."""
        return {
            "system": self.system,
            "clock_s": self.clock_s,
            "tokens_generated": self.tokens_generated,
            "throughput_tps": self.throughput_tps,
            "ttft_p50_s": self.ttft_percentile_s(50.0),
            "ttft_p99_s": self.ttft_percentile_s(99.0),
            "tpot_p50_s": self.tpot_percentile_s(50.0),
            "tpot_p99_s": self.tpot_percentile_s(99.0),
            "completed": len(self.completed),
            "shed": len(self.shed),
            "rejected": len(self.rejected),
            "preemptions": self.preemptions,
            "peak_decode_batch": self.peak_decode_batch,
            "degraded_token_fraction": self.degraded_token_fraction,
            "availability": self.availability,
            "brownout": {
                "stage_tokens": {str(s): n for s, n
                                 in self.brownout_stage_tokens.items()},
                "token_fraction": self.brownout_token_fraction,
            },
            "pool": {"n_blocks": self.pool_blocks,
                     "high_watermark": self.pool_high_watermark},
            "tenants": self.tenant_summary(),
        }
