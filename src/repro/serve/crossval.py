"""Cross-validation between the functional engine and the analytic simulator.

The repo has two serving stories that must agree:

- the **analytic** :class:`~repro.system.serving_sim.ServingSimulator`,
  which never touches tokens — it integrates the paper's latency models
  over an arrival trace;
- the **functional** :class:`~repro.serve.engine.ServeEngine`, which
  actually decodes every token through a miniature transformer while its
  clock advances by the *same* analytic step latencies.

This module runs one paired workload — identical arrival times, identical
charged (paper-scale) prompt lengths — through both layers for each system
under comparison, so tests can assert that the functional engine
reproduces the simulator's throughput *ordering* (LongSight above the
full-dense GPU baseline at long context, the gap closing as context
shrinks toward the crossover).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import LongSightConfig
from repro.core.hybrid import LongSightAttention, SlidingWindowAttention
from repro.llm.config import ModelConfig
from repro.llm.model import DenseBackend, Transformer
from repro.serve.engine import AnalyticTiming, ServeEngine
from repro.serve.events import ServeReport
from repro.serve.paged_kv import PagedKVPool
from repro.serve.scheduler import ServeRequest, SloPolicy
from repro.system.baselines import DenseGpuSystem, SlidingWindowGpuSystem
from repro.system.engine import LongSightSystem
from repro.system.serving_sim import (ServingReport, ServingSimulator,
                                      Session)

#: The three systems every serve benchmark compares.
SYSTEM_NAMES = ("longsight", "dense", "sliding_window")


def default_systems(window: int = 1024, n_sink: int = 16) -> Dict[str, object]:
    """Paper-scale analytic system models, keyed by serve-bench name."""
    ls = LongSightConfig(window=window, n_sink=n_sink, top_k=1024,
                         use_itq=True)
    return {
        "longsight": LongSightSystem(ls),
        "dense": DenseGpuSystem(),
        "sliding_window": SlidingWindowGpuSystem(window=window,
                                                 n_sink=n_sink),
    }


def backend_factory(name: str, tiny_ls: LongSightConfig):
    """Per-session functional backend maker for system ``name``.

    A fresh backend per session keeps per-cache state (threshold caches,
    sign-rotation expectations) from leaking across sessions.
    """
    if name == "longsight":
        return lambda request: LongSightAttention(tiny_ls)
    if name == "dense":
        return lambda request: DenseBackend()
    if name == "sliding_window":
        return lambda request: SlidingWindowAttention(
            window=tiny_ls.window, n_sink=tiny_ls.n_sink)
    raise ValueError(f"unknown system: {name!r}")


def paired_workload(n_requests: int, arrival_rate_per_s: float,
                    prompt_tokens: int, output_tokens: int,
                    vocab_size: int,
                    charged_prompt_tokens: Optional[int] = None,
                    seed: int = 0, prompt_jitter: float = 0.25,
                    ) -> Tuple[List[ServeRequest], List[Session]]:
    """One Poisson trace realised for both layers.

    Returns parallel lists: real-token :class:`ServeRequest`s for the
    functional engine (prompts of ~``prompt_tokens`` ids) and analytic
    :class:`Session`s with *identical* arrivals.  When
    ``charged_prompt_tokens`` is given, both layers account latency for
    that paper-scale prompt length while the functional layer only decodes
    the laptop-scale one.
    """
    rng = np.random.default_rng(seed)
    t = 0.0
    requests, sessions = [], []
    for i in range(n_requests):
        t += rng.exponential(1.0 / arrival_rate_per_s)
        jitter = 1.0 + prompt_jitter * (2 * rng.random() - 1)
        actual = max(1, int(prompt_tokens * jitter))
        charged = actual if charged_prompt_tokens is None \
            else max(1, int(charged_prompt_tokens * jitter))
        prompt = rng.integers(0, vocab_size, size=actual)
        requests.append(ServeRequest(
            request_id=i, prompt=prompt, max_new_tokens=output_tokens,
            arrival_s=t, charged_prompt_tokens=charged))
        sessions.append(Session(
            session_id=i, arrival_s=t, prompt_tokens=charged,
            output_tokens=output_tokens))
    return requests, sessions


@dataclasses.dataclass
class CrossValReport:
    """Functional and analytic outcomes of one paired workload."""

    functional: Dict[str, ServeReport]
    analytic: Dict[str, ServingReport]

    def functional_tps(self, name: str) -> float:
        return self.functional[name].throughput_tps

    def analytic_tps(self, name: str) -> float:
        return self.analytic[name].throughput_tps

    @staticmethod
    def _ranking(tps: Dict[str, float]) -> List[str]:
        return sorted(tps, key=lambda n: (-tps[n], n))

    @property
    def functional_ranking(self) -> List[str]:
        return self._ranking({n: r.throughput_tps
                              for n, r in self.functional.items()})

    @property
    def analytic_ranking(self) -> List[str]:
        return self._ranking({n: r.throughput_tps
                              for n, r in self.analytic.items()})

    @property
    def orderings_agree(self) -> bool:
        """Both layers rank the systems' throughput identically."""
        return self.functional_ranking == self.analytic_ranking

    def speedup(self, name: str, over: str, layer: str = "functional"
                ) -> float:
        """Throughput ratio ``name / over`` in the chosen layer."""
        reports = self.functional if layer == "functional" else self.analytic
        denom = reports[over].throughput_tps
        return reports[name].throughput_tps / denom if denom else float("inf")


def cross_validate(model: Transformer,
                   paper_config: ModelConfig,
                   tiny_ls: LongSightConfig,
                   n_requests: int = 6,
                   arrival_rate_per_s: float = 200.0,
                   prompt_tokens: int = 32,
                   charged_prompt_tokens: int = 32_768,
                   output_tokens: int = 8,
                   systems: Sequence[str] = SYSTEM_NAMES,
                   pool_blocks: int = 256,
                   block_tokens: int = 16,
                   policy: Optional[SloPolicy] = None,
                   seed: int = 0) -> CrossValReport:
    """Run one paired workload through both layers for each system.

    The functional side decodes real tokens with ``model`` (laptop scale)
    while charging latency for ``paper_config`` at
    ``charged_prompt_tokens`` context; the analytic side simulates the
    identical trace.  Each system gets a fresh pool and fresh requests so
    runs cannot contaminate one another.

    The default arrival rate *saturates* the decode loop (requests land
    faster than steps retire them), so throughput reflects per-step
    latency rather than arrival spacing — an idle system would measure
    the trace, not the serving system.
    """
    analytic_systems = default_systems()
    functional: Dict[str, ServeReport] = {}
    analytic: Dict[str, ServingReport] = {}
    for name in systems:
        system = analytic_systems[name]
        requests, sessions = paired_workload(
            n_requests, arrival_rate_per_s, prompt_tokens, output_tokens,
            model.config.vocab_size, charged_prompt_tokens, seed=seed)
        pool = PagedKVPool(model.config, n_blocks=pool_blocks,
                           block_tokens=block_tokens)
        engine = ServeEngine(
            model, pool, backend_factory(name, tiny_ls), policy=policy,
            timing=AnalyticTiming(system, paper_config), name=name)
        functional[name] = engine.run(requests)
        sim = ServingSimulator(system, paper_config, max_steps=50_000)
        analytic[name] = sim.run(sessions)
    return CrossValReport(functional=functional, analytic=analytic)
