"""Experiment harness: paper-style tables and per-figure runners.

Each module here regenerates one table or figure of the paper's evaluation
(Section 9).  The ``benchmarks/`` pytest-benchmark suite is a thin shell
over these runners; the same functions are importable for interactive use::

    from repro.bench.fig7 import run_fig7
    table = run_fig7()
    print(table.render())
"""

from repro.bench.tables import Table, format_si

__all__ = ["Table", "format_si"]
