"""Serving benchmark CLI (``python -m repro.bench.serve``).

Sweeps arrival rate x (charged) context length through the *functional*
continuous-batching engine: a tiny seeded transformer really decodes every
token for every request over the shared paged KV pool, while the engine's
clock advances by the paper-scale analytic step latencies — so TTFT, TPOT
and throughput are meaningful at paper scale and every scheduling decision
(admission, chunked prefill, preemption) is exercised for real.

Three systems per sweep point, mirroring the serving simulator's cast:

- ``longsight``  — hybrid dense+sparse attention, LongSight latency model;
- ``dense``      — full dense attention on the GPU latency model (the
  quality-equal baseline LongSight must beat at long context);
- ``sliding_window`` — dense window only (the quality-*sacrificing*
  floor; fastest by construction).

Each point also carries the analytic :class:`ServingSimulator` throughput
for the same trace, so the JSON records the functional/analytic agreement
that ``tests/serve/test_crossval.py`` asserts.

Results are written as ``BENCH_serve.json`` (default: ``results/``); the
schema is validated by ``validate_payload`` / ``tests/bench/test_serve.py``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import Dict, List, Optional, Sequence

from repro.bench.tables import Table, results_dir
from repro.core.config import LongSightConfig
from repro.llm.config import LLAMA3_8B, ModelConfig
from repro.llm.model import Transformer
from repro.obs import MetricsRegistry, Obs, Tracer
from repro.serve.crossval import (SYSTEM_NAMES, backend_factory,
                                  default_systems, paired_workload)
from repro.serve.engine import AnalyticTiming, ServeEngine
from repro.serve.paged_kv import PagedKVPool
from repro.serve.scheduler import SloPolicy
from repro.system.prefill import PrefillModel
from repro.system.serving_sim import ServingSimulator

SCHEMA_VERSION = 1
RESULT_NAME = "BENCH_serve.json"

#: Tiny functional model: real tokens at laptop scale.
TINY_MODEL = ModelConfig(name="serve-tiny", vocab_size=64, n_layers=2,
                         n_q_heads=4, n_kv_heads=2, head_dim=8, d_ff=32,
                         qk_bias=True)
#: Tiny algorithm config sized to the tiny contexts actually decoded.
TINY_LS = LongSightConfig(window=8, n_sink=4, top_k=12, thresholds=3)


def _point(model: Transformer, system_name: str, system,
           rate: float, charged_context: int, n_requests: int,
           prompt_tokens: int, output_tokens: int, seed: int,
           obs: Optional[Obs] = None) -> dict:
    """One (system, arrival rate, context) cell of the sweep."""
    requests, sessions = paired_workload(
        n_requests, rate, prompt_tokens, output_tokens,
        model.config.vocab_size, charged_prompt_tokens=charged_context,
        seed=seed)
    pool = PagedKVPool(model.config, n_blocks=16 * n_requests,
                       block_tokens=16)
    prefill = PrefillModel()
    engine = ServeEngine(
        model, pool, backend_factory(system_name, TINY_LS),
        policy=SloPolicy(max_decode_batch=max(4, n_requests)),
        timing=AnalyticTiming(system, LLAMA3_8B, prefill=prefill, obs=obs),
        name=system_name, obs=obs)
    report = engine.run(requests)
    analytic = ServingSimulator(system, LLAMA3_8B, max_steps=100_000,
                                prefill=prefill).run(sessions)
    point = report.as_dict()
    point.update({
        "arrival_rate_per_s": rate,
        "charged_context": charged_context,
        "analytic_throughput_tps": analytic.throughput_tps,
        "all_tokens_served": all(
            len(r.outputs) == r.max_new_tokens or r.events.rejected
            for r in requests),
    })
    return point


def write_trace(model: Transformer, systems: dict, rate: float,
                charged_context: int, n_requests: int, prompt_tokens: int,
                output_tokens: int, seed: int,
                trace_out: pathlib.Path) -> dict:
    """Re-run one fully instrumented ``longsight`` point; dump the trace.

    A fresh enabled :class:`Tracer` is bound to the engine, the whole
    point runs under a single ``bench.serve_point`` root span, and the
    result is written as Chrome ``trace_event`` JSON (open in
    ``chrome://tracing`` or Perfetto).  Returns trace metadata including
    ``root_coverage`` — the fraction of the instrumented wall time the
    recorded spans explain, which must stay >= 0.95.
    """
    obs = Obs(MetricsRegistry(enabled=True), Tracer(enabled=True))
    start = time.perf_counter()
    with obs.tracer.span("bench.serve_point", system="longsight",
                         arrival_rate_per_s=rate,
                         charged_context=charged_context):
        _point(model, "longsight", systems["longsight"], rate,
               charged_context, n_requests, prompt_tokens, output_tokens,
               seed, obs=obs)
    wall_s = time.perf_counter() - start
    path = obs.tracer.write_chrome_trace(trace_out)
    return {"path": str(path),
            "n_spans": len(obs.tracer.spans),
            "wall_s": wall_s,
            "root_coverage": obs.tracer.root_coverage(wall_s)}


def run_serve(rates: Sequence[float] = (2.0, 200.0),
              contexts: Sequence[int] = (8_192, 32_768, 131_072),
              n_requests: int = 6, prompt_tokens: int = 24,
              output_tokens: int = 8, seed: int = 0,
              out_dir: Optional[pathlib.Path] = None,
              trace_out: Optional[pathlib.Path] = None) -> Table:
    """Run the serving sweep; returns the table and writes the JSON."""
    rates = sorted(set(float(r) for r in rates))
    contexts = sorted(set(int(c) for c in contexts))
    if len(rates) < 2:
        raise ValueError("need >= 2 arrival-rate points")
    if len(contexts) < 2:
        raise ValueError("need >= 2 context points")

    model = Transformer(TINY_MODEL, seed=seed)
    systems = default_systems()
    sweep: Dict[str, List[dict]] = {name: [] for name in SYSTEM_NAMES}
    for name in SYSTEM_NAMES:
        for rate in rates:
            for ctx in contexts:
                sweep[name].append(_point(
                    model, name, systems[name], rate, ctx, n_requests,
                    prompt_tokens, output_tokens, seed))

    payload = {
        "benchmark": "serve",
        "schema_version": SCHEMA_VERSION,
        "units": {"arrival_rate_per_s": "requests per second (Poisson)",
                  "charged_context": "prompt tokens charged to the "
                                     "analytic latency model",
                  "throughput_tps": "decode tokens per second of engine "
                                    "clock",
                  "ttft_s": "arrival to first token, seconds",
                  "tpot_s": "mean seconds per output token after the "
                            "first"},
        "config": {"n_requests": n_requests,
                   "prompt_tokens": prompt_tokens,
                   "output_tokens": output_tokens, "seed": seed,
                   "functional_model": TINY_MODEL.name,
                   "charged_model": LLAMA3_8B.name,
                   "systems": list(SYSTEM_NAMES)},
        "arrival_rates": rates,
        "contexts": contexts,
        "sweep": sweep,
    }
    if trace_out is not None:
        payload["trace"] = write_trace(
            model, systems, rates[0], contexts[0], n_requests,
            prompt_tokens, output_tokens, seed, pathlib.Path(trace_out))
        print(f"[chrome trace: {payload['trace']['path']}  "
              f"spans={payload['trace']['n_spans']}  "
              f"root_coverage={payload['trace']['root_coverage']:.3f}]")
    out_dir = pathlib.Path(out_dir) if out_dir is not None else results_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / RESULT_NAME).write_text(json.dumps(payload, indent=2) + "\n")

    table = Table(
        "functional serving sweep (arrival rate x charged context)",
        ["system", "rate_per_s", "context", "throughput_tps",
         "analytic_tps", "ttft_p50_ms", "ttft_p99_ms", "tpot_p50_ms",
         "completed", "preempt"],
        note=f"{n_requests} requests/point; tiny model decodes real "
             f"tokens, clock charged for {LLAMA3_8B.name}")
    for name in SYSTEM_NAMES:
        for point in sweep[name]:
            table.add_row(
                system=name,
                rate_per_s=point["arrival_rate_per_s"],
                context=point["charged_context"],
                throughput_tps=point["throughput_tps"],
                analytic_tps=point["analytic_throughput_tps"],
                ttft_p50_ms=point["ttft_p50_s"] * 1e3,
                ttft_p99_ms=point["ttft_p99_s"] * 1e3,
                tpot_p50_ms=point["tpot_p50_s"] * 1e3,
                completed=point["completed"],
                preempt=point["preemptions"])
    return table


def validate_payload(payload: dict) -> List[str]:
    """Schema check used by the smoke test; returns a list of problems."""
    problems = []
    for key in ("benchmark", "schema_version", "units", "config",
                "arrival_rates", "contexts", "sweep"):
        if key not in payload:
            problems.append(f"missing key: {key}")
    if problems:
        return problems
    rates = payload["arrival_rates"]
    contexts = payload["contexts"]
    if len(rates) < 2:
        problems.append("fewer than 2 arrival-rate points")
    if any(b >= a for a, b in zip(rates[1:], rates)):
        problems.append("arrival_rates axis is not strictly increasing")
    if len(contexts) < 2:
        problems.append("fewer than 2 context points")
    if any(b >= a for a, b in zip(contexts[1:], contexts)):
        problems.append("contexts axis is not strictly increasing")
    n_points = len(rates) * len(contexts)
    for name in SYSTEM_NAMES:
        points = payload["sweep"].get(name)
        if points is None or len(points) != n_points:
            problems.append(
                f"sweep.{name} length != len(rates) * len(contexts)")
            continue
        for point in points:
            for key in ("throughput_tps", "ttft_p50_s", "ttft_p99_s",
                        "tpot_p50_s", "tpot_p99_s",
                        "analytic_throughput_tps"):
                if not isinstance(point.get(key), (int, float)) \
                        or point[key] < 0:
                    problems.append(f"sweep.{name}: bad {key}")
            if point.get("ttft_p99_s", 0) < point.get("ttft_p50_s", 0):
                problems.append(f"sweep.{name}: ttft p99 < p50")
            if not point.get("all_tokens_served", False):
                problems.append(
                    f"sweep.{name}: a non-rejected request did not get "
                    "its full output (service guarantee violated)")
            pool = point.get("pool", {})
            if not 0 <= pool.get("high_watermark", -1) \
                    <= pool.get("n_blocks", 0):
                problems.append(f"sweep.{name}: bad pool accounting")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.serve",
        description="Functional continuous-batching serving sweep: "
                    "arrival rate x context, LongSight vs dense baselines.")
    parser.add_argument("--rates", type=float, nargs="+",
                        default=[2.0, 200.0],
                        help=">= 2 Poisson arrival rates (requests/s)")
    parser.add_argument("--contexts", type=int, nargs="+",
                        default=[8192, 32768, 131072],
                        help=">= 2 charged context lengths (tokens)")
    parser.add_argument("--n-requests", type=int, default=6)
    parser.add_argument("--prompt-tokens", type=int, default=24,
                        help="functional (tiny-model) prompt length")
    parser.add_argument("--output-tokens", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out-dir", type=pathlib.Path, default=None,
                        help=f"directory for {RESULT_NAME} "
                             "(default: results/)")
    parser.add_argument("--trace-out", type=pathlib.Path, default=None,
                        help="also run one fully traced longsight point "
                             "and write a Chrome trace_event JSON here")
    args = parser.parse_args(argv)
    table = run_serve(rates=args.rates, contexts=args.contexts,
                      n_requests=args.n_requests,
                      prompt_tokens=args.prompt_tokens,
                      output_tokens=args.output_tokens, seed=args.seed,
                      out_dir=args.out_dir, trace_out=args.trace_out)
    print(table.render())
    out_dir = args.out_dir if args.out_dir is not None else results_dir()
    print(f"[saved to {pathlib.Path(out_dir) / RESULT_NAME}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
