"""Shared machinery for the algorithm-level experiments (Figures 3, 4, 10).

The paper runs these on Llama-3-1B/8B at 32K–1M-token contexts; the
miniature substitutes run at 1/16 scale (see DESIGN.md).  Every
paper-scale hyper-parameter is divided by :data:`SCALE` — window 1024 ->
128, top-k {128, 1024} -> {16, 128}, contexts {16K..128K} -> {1K..8K} — so
ratios between quantities (window:context, k:context) match the paper's
operating points.

Tuned thresholds and ITQ rotations are cached under ``.cache/`` because the
tuning loop is the expensive part (it re-evaluates perplexity per step,
exactly like the paper's procedure).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.config import LongSightConfig
from repro.core.hybrid import LongSightAttention
from repro.core.itq import ItqRotations, fit_itq
from repro.core.metrics import FilterStats
from repro.core.tuning import tune_thresholds
from repro.data.synthetic import pg_like, wiki2_like
from repro.llm.config import SIM_FOR_PAPER
from repro.llm.model import Transformer
from repro.llm.perplexity import perplexity
from repro.llm.zoo import cache_dir, trained_model

#: Hyper-parameter scale factor between the paper's setup and the miniatures.
SCALE = 8

#: Scaled defaults (paper values in comments).
WINDOW = 1024 // SCALE          # W = 1024
N_SINK = 16 // SCALE            # 16 attention-sink tokens
TOP_K_SMALL = 128 // SCALE      # k = 128
TOP_K_LARGE = 1024 // SCALE     # k = 1024
#: Threshold-tuning contexts (paper: "128K context for Llama-3-1B and 32K
#: for Llama-3-8B, the longest that fit in GPU memory" — i.e. the larger
#: model tunes at a shorter context; scaled by 1/16 and 1/32 here).
TUNE_CONTEXT = 2048
TUNE_CONTEXTS = {"llama-3-1b": 2048, "llama-3-8b": 1024}

#: Paper model -> miniature stand-in names.
MODELS = {"llama-3-1b": "llama-sim-small", "llama-3-8b": "llama-sim-base"}

DATASETS = {"PG": pg_like, "Wiki2": wiki2_like}


def bench_contexts() -> list[int]:
    """Evaluation contexts; REPRO_BENCH_FULL=1 extends the sweep.

    Defaults map to the paper's 8K-32K band at 1/8 scale; the full sweep
    adds 4096/8192 (32K/64K-equivalent) at several times the runtime.
    """
    contexts = [1024, 2048]
    if os.environ.get("REPRO_BENCH_FULL"):
        contexts.extend([4096, 8192])
    return contexts


def get_model(paper_name: str) -> Transformer:
    """The trained miniature standing in for a paper model."""
    return trained_model(MODELS[paper_name])


def get_tokens(dataset: str, n: int, seed: int = 3) -> np.ndarray:
    return DATASETS[dataset](n, seed=seed)


# -- ITQ rotation cache -------------------------------------------------------


def get_rotations(paper_name: str) -> ItqRotations:
    """Fitted (and disk-cached) per-head ITQ rotations for a model."""
    model = get_model(paper_name)
    path = cache_dir().parent / "itq" / f"{MODELS[paper_name]}.npz"
    path.parent.mkdir(parents=True, exist_ok=True)
    rotations = ItqRotations(model.config.n_layers, model.config.n_kv_heads,
                             model.config.head_dim)
    if path.exists():
        with np.load(path) as archive:
            rotations.matrices = archive["matrices"]
        return rotations
    rotations = fit_itq(model, pg_like(1024, seed=11))
    np.savez(path, matrices=rotations.matrices)
    return rotations


# -- threshold tuning cache ------------------------------------------------------


def _tuning_key(paper_name: str, variant: str, top_k: int, window: int,
                n_sink: int, max_increase: float, init: int) -> str:
    payload = json.dumps([paper_name, variant, top_k, window, n_sink,
                          max_increase, TUNE_CONTEXTS[paper_name], init])
    return hashlib.sha1(payload.encode()).hexdigest()[:16]


def variant_config(variant: str, top_k: int,
                   thresholds=0) -> LongSightConfig:
    """Algorithm config for one of the paper's three variants.

    - ``sparse``: Section 5.2's baseline — raw sign bits, no window, no
      sinks (window=1 keeps self-attention, which dense always has).
    - ``hybrid``: Section 5.3 — adds the dense sliding window + sinks.
    - ``hybrid+itq``: Section 5.4 — adds learned rotations.
    """
    if variant == "sparse":
        return LongSightConfig(window=1, n_sink=0, top_k=top_k,
                               thresholds=thresholds, use_itq=False)
    if variant == "hybrid":
        return LongSightConfig(window=WINDOW, n_sink=N_SINK, top_k=top_k,
                               thresholds=thresholds, use_itq=False)
    if variant == "hybrid+itq":
        return LongSightConfig(window=WINDOW, n_sink=N_SINK, top_k=top_k,
                               thresholds=thresholds, use_itq=True)
    raise ValueError(f"unknown variant {variant!r}")


def tuned_thresholds(paper_name: str, variant: str, top_k: int,
                     max_increase: float = 0.05,
                     dataset: str = "PG") -> np.ndarray:
    """Per-(layer, KV head) thresholds tuned at the reference context.

    Mirrors Section 8.1.3: tuned once at a fixed context, reused across the
    context sweep.  Disk-cached.
    """
    model = get_model(paper_name)
    config = variant_config(variant, top_k)
    init = model.config.head_dim // 2  # chance-level warm start
    key = _tuning_key(paper_name, variant, top_k, config.window,
                      config.n_sink, max_increase, init)
    path = cache_dir().parent / "tuning" / f"{key}.npz"
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        with np.load(path) as archive:
            return archive["thresholds"]
    tokens = get_tokens(dataset, TUNE_CONTEXTS[paper_name])
    dense_ppl = perplexity(model, tokens)
    rotations = get_rotations(paper_name) if config.use_itq else None
    result = tune_thresholds(model, tokens, config, dense_ppl,
                             max_increase=max_increase,
                             step=max(1, model.config.head_dim // 8),
                             max_iterations=12, rotations=rotations,
                             init_threshold=init)
    np.savez(path, thresholds=result.thresholds,
             perplexity=result.perplexity, filter_ratio=result.filter_ratio)
    return result.thresholds


# -- evaluation ---------------------------------------------------------------


def evaluate_config(paper_name: str, tokens: np.ndarray,
                    config: LongSightConfig) -> Tuple[float, FilterStats]:
    """Perplexity + filter stats of one configuration on one token stream."""
    model = get_model(paper_name)
    stats = FilterStats(model.config.n_layers, model.config.n_kv_heads)
    rotations = get_rotations(paper_name) if config.use_itq else None
    backend = LongSightAttention(config, rotations=rotations, stats=stats)
    ppl = perplexity(model, tokens, backend=backend)
    return ppl, stats


_DENSE_CACHE: Dict[Tuple[str, str, int, int], float] = {}


def dense_perplexity(paper_name: str, dataset: str, context: int,
                     seed: int = 3) -> float:
    """Dense-attention reference perplexity (memoized)."""
    key = (paper_name, dataset, context, seed)
    if key not in _DENSE_CACHE:
        model = get_model(paper_name)
        tokens = get_tokens(dataset, context, seed)
        _DENSE_CACHE[key] = perplexity(model, tokens)
    return _DENSE_CACHE[key]
