"""Tables 1 and 2, and the Section 9.4 power/area numbers."""

from __future__ import annotations

from repro.bench.tables import Table
from repro.drex.geometry import DREX_DEFAULT
from repro.llm.config import LLAMA3_1B, LLAMA3_8B, SIM_FOR_PAPER
from repro.system.power import PowerAreaModel
from repro.system.specs import PAPER_SYSTEM


def run_table1() -> Table:
    """Table 1: model parameters (plus their miniature stand-ins)."""
    table = Table(
        "Table 1: model parameters",
        ["field", "llama-3-1b", "llama-3-8b"],
        note="Stand-in rows show the trained miniatures used for the "
             "algorithm experiments (same architecture family).")
    rows = [
        ("attention", "GQA", "GQA"),
        ("query/KV heads", f"{LLAMA3_1B.n_q_heads}/{LLAMA3_1B.n_kv_heads}",
         f"{LLAMA3_8B.n_q_heads}/{LLAMA3_8B.n_kv_heads}"),
        ("head dim", LLAMA3_1B.head_dim, LLAMA3_8B.head_dim),
        ("layers", LLAMA3_1B.n_layers, LLAMA3_8B.n_layers),
        ("quantization", "BF16", "BF16"),
        ("params (approx)", f"{LLAMA3_1B.n_params() / 1e9:.2f}B",
         f"{LLAMA3_8B.n_params() / 1e9:.2f}B"),
        ("KV bytes/token", LLAMA3_1B.kv_bytes_per_token(),
         LLAMA3_8B.kv_bytes_per_token()),
        ("stand-in", SIM_FOR_PAPER["llama-3-1b"].name,
         SIM_FOR_PAPER["llama-3-8b"].name),
        ("stand-in heads",
         f"{SIM_FOR_PAPER['llama-3-1b'].n_q_heads}/"
         f"{SIM_FOR_PAPER['llama-3-1b'].n_kv_heads}",
         f"{SIM_FOR_PAPER['llama-3-8b'].n_q_heads}/"
         f"{SIM_FOR_PAPER['llama-3-8b'].n_kv_heads}"),
        ("stand-in head dim", SIM_FOR_PAPER["llama-3-1b"].head_dim,
         SIM_FOR_PAPER["llama-3-8b"].head_dim),
    ]
    for field, a, b in rows:
        table.add_row(**{"field": field, "llama-3-1b": a, "llama-3-8b": b})
    return table


def run_table2() -> Table:
    """Table 2: system configuration."""
    spec = PAPER_SYSTEM
    g = DREX_DEFAULT
    from repro.drex.dram import LPDDR5X

    table = Table("Table 2: system configuration", ["device", "field", "value"])
    rows = [
        ("CPU", "description", spec.cpu.name),
        ("CPU", "DRAM", f"{spec.cpu.dram_bytes / 1024**3:.0f} GB"),
        ("CPU", "bandwidth", f"{spec.cpu.dram_bandwidth / 1e9:.0f} GB/s"),
        ("GPU", "description", spec.gpu.name),
        ("GPU", "compute", f"{spec.gpu.tflops:.0f} TFlop/s"),
        ("GPU", "HBM", f"{spec.gpu.hbm_bytes / 1024**3:.0f} GB"),
        ("GPU", "bandwidth", f"{spec.gpu.hbm_bandwidth / 1e12:.2f} TB/s"),
        ("DReX", "NMAs", g.n_nmas),
        ("DReX", "PFUs", g.n_pfus),
        ("DReX", "capacity", f"{g.capacity_bytes / 1024**3:.0f} GB LPDDR5X"),
        ("DReX", "NMA compute", f"{spec.drex.nma_tflops_total:.2f} TFlop/s"),
        ("DReX", "NMA bandwidth",
         f"{LPDDR5X.device_bandwidth(g) / 1e12:.2f} TB/s"),
        ("DReX", "PFU bandwidth",
         f"{LPDDR5X.pfu_internal_bandwidth(g) / 1e12:.1f} TB/s"),
    ]
    for device, field, value in rows:
        table.add_row(device=device, field=field, value=value)
    return table


def run_power_area() -> Table:
    """Section 9.4: power and area."""
    model = PowerAreaModel()
    table = Table(
        "Section 9.4: power and area",
        ["component", "metric", "value", "paper"],
        note="Constants carried from the DReX design (LongSight leaves the "
             "PFU unchanged and only grows NMA scratchpads slightly).")
    rows = [
        ("LPDDR5X package", "peak power (W)", model.package_peak_w, 18.7),
        ("PFUs", "area overhead (frac of DRAM die)",
         model.pfu_area_overhead, 0.067),
        ("NMA", "area (mm^2, 16nm)", model.nma_area_mm2, 15.1),
        ("NMA", "peak power (W)", model.nma_peak_w, 1.072),
        ("DReX total", "peak power (W)", model.drex_peak_w, 158.2),
        ("GPU+DReX system", "peak power (W)",
         model.system_peak_w(n_gpus=1), None),
    ]
    for component, metric, value, paper in rows:
        table.add_row(component=component, metric=metric, value=value,
                      paper=paper)
    return table
