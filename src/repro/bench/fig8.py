"""Figure 8: per-token latency breakdown inside a DReX offload.

Two scenarios per (model, context): a single user (every component fully
exposed) and a fully-utilized device (value reads overlap dot-products of
queued partitions, Section 9.2).  Components follow Section 8.2's model:
address generation, PFU filtering, bitmap read, dot-product scoring, top-k
ranking, and the CXL value read.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.bench.tables import Table
from repro.core.config import LongSightConfig
from repro.llm.config import LLAMA3_1B, LLAMA3_8B, ModelConfig
from repro.system.engine import LongSightSystem

CONTEXTS = [8192, 32768, 131072, 524288, 1048576]

COMPONENTS = ["address_gen", "filter", "bitmap_read", "score", "rank",
              "value_read"]


def run_fig8(models: Iterable[ModelConfig] = (LLAMA3_1B, LLAMA3_8B),
             contexts: Optional[List[int]] = None,
             top_k: int = 1024) -> Table:
    contexts = contexts or CONTEXTS
    engine = LongSightSystem(LongSightConfig(window=1024, n_sink=16,
                                             top_k=top_k, use_itq=True))
    table = Table(
        "Figure 8: DReX offload latency breakdown (us per offload)",
        ["model", "context", "scenario"] + COMPONENTS + ["total"],
        note="single = 1 user (everything exposed); "
             "saturated = full utilization (value read overlapped with "
             "dot-product of queued partitions).")
    for config in models:
        for context in contexts:
            for scenario in ("single", "saturated"):
                if scenario == "single":
                    parts = engine.single_offload_breakdown(config, context)
                else:
                    parts = engine.saturated_offload_breakdown(config, context)
                row = {name: parts[name] / 1e3 for name in COMPONENTS}
                table.add_row(model=config.name, context=context,
                              scenario=scenario,
                              total=sum(row.values()), **row)
    return table
