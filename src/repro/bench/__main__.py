"""Run reproduction experiments from the command line.

Usage:
    python -m repro.bench list
    python -m repro.bench table1 table2 fig7 fig8 fig9 power
    python -m repro.bench fig3a fig3b fig3c fig4 fig10 dynax
    python -m repro.bench micro chaos serve fleet obs_overhead recovery
    python -m repro.bench all            # everything (trains models once)

Tables print to stdout and are saved under results/.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict

from repro.bench.tables import Table, results_dir


def _runners() -> Dict[str, Callable[[], Table]]:
    from repro.bench.chaos import run_chaos
    from repro.bench.dynax import run_dynax
    from repro.bench.micro import run_micro
    from repro.bench.fleet import run_fleet
    from repro.bench.obs_overhead import run_obs_overhead
    from repro.bench.recovery import run_recovery
    from repro.bench.serve import run_serve
    from repro.bench.fig3 import run_fig3
    from repro.bench.fig4 import run_fig4
    from repro.bench.fig7 import run_fig7
    from repro.bench.fig8 import run_fig8
    from repro.bench.fig9 import run_fig9
    from repro.bench.fig10 import run_fig10
    from repro.bench.spec_tables import run_power_area, run_table1, run_table2

    return {
        "table1": run_table1,
        "table2": run_table2,
        "fig3a": lambda: run_fig3("a"),
        "fig3b": lambda: run_fig3("b"),
        "fig3c": lambda: run_fig3("c"),
        "fig4": run_fig4,
        "fig7": run_fig7,
        "fig8": run_fig8,
        "fig9": run_fig9,
        "fig10": run_fig10,
        "dynax": run_dynax,
        "power": run_power_area,
        "micro": run_micro,
        "chaos": run_chaos,
        "serve": run_serve,
        "fleet": run_fleet,
        "obs_overhead": run_obs_overhead,
        "recovery": run_recovery,
    }


def main(argv: list[str]) -> int:
    runners = _runners()
    if not argv or argv == ["list"]:
        print(__doc__)
        print("available experiments:", ", ".join(sorted(runners)))
        return 0
    names = list(runners) if argv == ["all"] else argv
    unknown = [n for n in names if n not in runners]
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"options: {sorted(runners)} or 'all'")
        return 2
    for name in names:
        table = runners[name]()
        print()
        print(table.render())
        path = table.save(results_dir())
        print(f"[saved to {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
