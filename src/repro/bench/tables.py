"""Plain-text result tables for the benchmark harness."""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_si(value: float, digits: int = 3) -> str:
    """Human-scaled number: 1234567 -> '1.23M'."""
    if value is None:
        return "-"
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= scale:
            return f"{value / scale:.{digits - 1}g}{suffix}"
    return f"{value:.{digits}g}"


class Table:
    """A titled, column-aligned results table.

    >>> t = Table("demo", ["a", "b"])
    >>> t.add_row(a=1, b="x")
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, title: str, columns: Sequence[str],
                 note: str = "") -> None:
        self.title = title
        self.columns = list(columns)
        self.note = note
        self.rows: List[Dict[str, Cell]] = []

    def add_row(self, **cells: Cell) -> None:
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns: {sorted(unknown)}")
        self.rows.append(cells)

    @staticmethod
    def _fmt(value: Cell) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            if value != value:  # NaN
                return "-"
            if abs(value) >= 1000 or (0 < abs(value) < 0.01):
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    def render(self) -> str:
        header = self.columns
        body = [[self._fmt(row.get(col)) for col in header]
                for row in self.rows]
        widths = [max(len(header[i]), *(len(r[i]) for r in body))
                  if body else len(header[i]) for i in range(len(header))]
        lines = [f"== {self.title} =="]
        if self.note:
            lines.append(self.note)
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {"title": self.title, "columns": self.columns, "rows": self.rows},
            indent=2, default=str)

    @staticmethod
    def _slug(title: str) -> str:
        keep = [c if c.isalnum() or c in "._-" else "_"
                for c in title.lower().replace(" ", "_")]
        slug = "".join(keep)
        while "__" in slug:
            slug = slug.replace("__", "_")
        return slug.strip("_")[:80]

    def save(self, directory: Union[str, pathlib.Path],
             stem: Optional[str] = None) -> pathlib.Path:
        """Write both .txt and .json under ``directory``; returns txt path."""
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        stem = stem or self._slug(self.title)
        txt = directory / f"{stem}.txt"
        txt.write_text(self.render() + "\n")
        (directory / f"{stem}.json").write_text(self.to_json() + "\n")
        return txt


def results_dir() -> pathlib.Path:
    """Default output directory for benchmark artifacts."""
    path = pathlib.Path(__file__).resolve().parents[3] / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path
