"""Section 5.4's DynaX comparison.

DynaX reports 91.77% average sparsity at a 1% perplexity increase on
concatenated Wiki2 with Llama-3-8B; the paper measures LongSight at up to
91.92% sparsity (12.4x filter ratio) in the same setup.  Here we tune the
miniature stand-in to the same 1% budget on the Wiki2-like corpus and
report the sparsity reached.
"""

from __future__ import annotations

from repro.bench import algo
from repro.bench.tables import Table
from repro.core.tuning import tune_thresholds
from repro.llm.perplexity import perplexity

DYNAX_SPARSITY = 0.9177
PAPER_LONGSIGHT_SPARSITY = 0.9192


def run_dynax(paper_name: str = "llama-3-8b", context: int = 2048,
              max_increase: float = 0.01) -> Table:
    model = algo.get_model(paper_name)
    tokens = algo.get_tokens("Wiki2", context)
    dense_ppl = perplexity(model, tokens)
    config = algo.variant_config("hybrid+itq", algo.TOP_K_LARGE)
    rotations = algo.get_rotations(paper_name)
    result = tune_thresholds(model, tokens, config, dense_ppl,
                             max_increase=max_increase,
                             step=max(1, model.config.head_dim // 8),
                             max_iterations=14, rotations=rotations,
                             init_threshold=model.config.head_dim // 2)
    sparsity = 1.0 - 1.0 / result.filter_ratio
    table = Table(
        "Section 5.4: sparsity at 1% perplexity increase (Wiki2, "
        f"{paper_name} stand-in)",
        ["system", "sparsity_pct", "filter_ratio"],
        note="Paper: DynaX 91.77%, LongSight up to 91.92% (12.4x).")
    table.add_row(system="DynaX (paper)", sparsity_pct=DYNAX_SPARSITY * 100,
                  filter_ratio=1.0 / (1.0 - DYNAX_SPARSITY))
    table.add_row(system="LongSight (paper)",
                  sparsity_pct=PAPER_LONGSIGHT_SPARSITY * 100,
                  filter_ratio=1.0 / (1.0 - PAPER_LONGSIGHT_SPARSITY))
    table.add_row(system="LongSight (this repro)",
                  sparsity_pct=sparsity * 100,
                  filter_ratio=result.filter_ratio)
    return table
