"""Fleet chaos benchmark CLI (``python -m repro.bench.fleet_chaos``).

Two resilience experiments over the functional fleet:

1. **Gray-failure sweep** — a four-worker *durable* fleet serves the
   seeded two-tenant trace of ``repro.bench.fleet`` while worker 0
   misbehaves per :data:`repro.system.faults.GRAY_KINDS`:

   - ``slow_worker`` / ``stuck_worker``: the health monitor suspects,
     then fails the worker; its sessions fail over (newest durable
     snapshot + WAL suffix into a fresh engine, live sessions shipped to
     healthy siblings) and the fleet finishes every request
     **bit-identical** to the fault-free reference run.
   - ``flapping_worker`` (period 1): the worker oscillates around the
     deadline, is repeatedly suspected and drained, self-heals each
     time, and the run completes without any failover.

   Stalls are simulated (:class:`~repro.fleet.resilience.GrayRun`), so
   the sweep is fast and reproducible while driving the real detection,
   fencing, and recovery paths; failover latency is real wall time of
   the recover-and-drain sequence.

2. **Overload brownout A/B** — one engine at well over sustainable load,
   with and without the :class:`~repro.serve.scheduler.BrownoutPolicy`
   ladder, same queue timeout.  Staged degradation (shrink top-k, raise
   the SCF threshold, dense-window pin) plus admission pacing must shed
   a smaller fraction of requests than the no-ladder baseline, and every
   browned-out token must be attributed to a ladder stage.

Results are written as ``BENCH_fleet_chaos.json`` (default:
``results/``); the schema is validated by ``validate_payload`` /
``tests/bench/test_fleet_chaos.py``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import tempfile
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bench.fleet import _build_fleet, fleet_workload
from repro.bench.serve import TINY_LS, TINY_MODEL
from repro.bench.tables import Table, results_dir
from repro.fleet import FleetReport, HealthPolicy
from repro.llm.config import LLAMA3_8B
from repro.llm.model import Transformer
from repro.obs import MetricsRegistry, Obs, Tracer
from repro.serve.crossval import backend_factory, default_systems
from repro.serve.engine import AnalyticTiming, ServeEngine
from repro.serve.paged_kv import PagedKVPool
from repro.serve.scheduler import (BROWNOUT_STAGES, BrownoutPolicy,
                                   ServeRequest, SloPolicy)
from repro.system.faults import GRAY_KINDS, GrayFailurePlan
from repro.system.prefill import PrefillModel

SCHEMA_VERSION = 1
RESULT_NAME = "BENCH_fleet_chaos.json"

#: fixed step deadline for the sweep: simulated stalls (2 s) always miss
#: it, real tiny-model steps (milliseconds) never do — the verdicts are
#: deterministic regardless of host jitter.
STEP_DEADLINE_S = 1.0
STALL_S = 2.0


def gray_plan(kind: str, seed: int) -> GrayFailurePlan:
    """Seeded gray-failure plan for ``kind`` (start step varies with the
    seed; flapping uses period 1 so misses never run consecutive and the
    worker self-heals instead of failing over)."""
    rng = np.random.default_rng(seed ^ 0x5EED)
    start = int(rng.integers(2, 6))
    period = 1 if kind == "flapping_worker" else 4
    return GrayFailurePlan(kind=kind, start_step=start, stall_s=STALL_S,
                           period=period)


def _fleet_outputs(fleet) -> Dict[int, List[int]]:
    """request_id -> decoded tokens, read from the workers' runs.

    Failover rebuilds sessions from the durable snapshot, so the
    authoritative request objects live in the (possibly recovered)
    worker runs, not in the caller's trace list; departed twins are
    skipped so every request is read from the worker that finished it.
    """
    outs: Dict[int, List[int]] = {}
    for worker in fleet.workers:
        run = worker.run
        run = getattr(run, "inner", run)     # GrayRun proxy
        run = getattr(run, "run", run)       # DurableRun wrapper
        for request in run._arrivals:
            if id(request) in run._departed:
                continue
            outs[request.request_id] = [int(t) for t in request.outputs]
    return outs


def _run_gray(model: Transformer, system, requests: List[ServeRequest],
              plan: Optional[GrayFailurePlan], durable_root: pathlib.Path,
              n_workers: int, blocks_per_worker: int,
              snapshot_every: int):
    health = HealthPolicy(step_deadline_s=STEP_DEADLINE_S,
                          fail_after_deadline_misses=2)
    fleet = _build_fleet(
        n_workers, model, system, blocks_per_worker, max_decode_batch=4,
        durable_root=durable_root, snapshot_every=snapshot_every,
        gray_plans=None if plan is None else {0: plan}, health=health)
    report = fleet.run(requests)
    return report, _fleet_outputs(fleet)


def run_gray_sweep(model: Transformer, system, seed: int,
                   n_steady: int = 10, n_burst: int = 6,
                   output_tokens: int = 8, n_workers: int = 4,
                   blocks_per_worker: int = 64,
                   snapshot_every: int = 4,
                   ttft_slo_s: float = 5.0) -> dict:
    """Fault-free reference plus one run per gray kind, all compared."""
    def trace() -> List[ServeRequest]:
        return fleet_workload(n_steady, n_burst, model.config.vocab_size,
                              seed=seed, output_tokens=output_tokens)

    def point(plan: Optional[GrayFailurePlan]) -> dict:
        requests = trace()
        with tempfile.TemporaryDirectory() as tmp:
            report, outputs = _run_gray(model, system, requests, plan,
                                        pathlib.Path(tmp), n_workers,
                                        blocks_per_worker, snapshot_every)
        events = report.events
        attained = [e for e in events if e.ttft_s is not None
                    and e.ttft_s <= ttft_slo_s]
        return {
            "outputs": outputs,
            "summary": {
                "completed": report.completed,
                "shed": report.shed,
                "rejected": report.rejected,
                "availability": report.availability,
                "slo_attainment": (len(attained) / len(events)
                                   if events else 1.0),
                "failovers": report.failovers,
                "failover_sessions": report.failover_sessions,
                "failover_latency_s": list(report.failover_latency_s),
                "failover_latency_max_s": report.failover_latency_max_s,
                "worker_suspects": report.worker_suspects,
                "migrations": report.migrations,
                "makespan_s": report.makespan_s,
            },
        }

    reference = point(None)
    kinds = []
    for kind in GRAY_KINDS:
        plan = gray_plan(kind, seed)
        result = point(plan)
        result["summary"].update({
            "kind": kind,
            "plan": {"start_step": plan.start_step,
                     "stall_s": plan.stall_s, "period": plan.period},
            "bit_identical": result["outputs"] == reference["outputs"],
        })
        kinds.append(result["summary"])
    return {
        "n_requests": n_steady + n_burst,
        "n_workers": n_workers,
        "gray_worker": 0,
        "step_deadline_s": STEP_DEADLINE_S,
        "ttft_slo_s": ttft_slo_s,
        "reference": reference["summary"],
        "kinds": kinds,
    }


# -- overload brownout A/B ----------------------------------------------------

def overload_workload(n_requests: int, rate_per_s: float, vocab_size: int,
                      seed: int, prompt_tokens: int = 24,
                      output_tokens: int = 8,
                      charged_context: int = 8_192
                      ) -> List[ServeRequest]:
    """Poisson single-tenant trace driven well past sustainable rate."""
    rng = np.random.default_rng(seed + 7)
    requests = []
    t = 0.0
    for i in range(n_requests):
        t += rng.exponential(1.0 / rate_per_s)
        prompt = rng.integers(0, vocab_size,
                              size=prompt_tokens + int(rng.integers(0, 8)))
        requests.append(ServeRequest(
            request_id=i, prompt=prompt, max_new_tokens=output_tokens,
            arrival_s=t, charged_prompt_tokens=charged_context))
    return requests


def _overload_point(model: Transformer, system,
                    brownout: Optional[BrownoutPolicy],
                    requests_factory, n_blocks: int,
                    queue_timeout_s: float) -> dict:
    obs = Obs(MetricsRegistry(enabled=True), Tracer(enabled=False))
    pool = PagedKVPool(model.config, n_blocks=n_blocks, block_tokens=16,
                       obs=obs)
    policy = SloPolicy(max_decode_batch=4, queue_timeout_s=queue_timeout_s,
                       brownout=brownout)
    engine = ServeEngine(
        model, pool, backend_factory("longsight", TINY_LS), policy=policy,
        timing=AnalyticTiming(system, LLAMA3_8B, prefill=PrefillModel(),
                              obs=obs),
        name="overload", obs=obs)
    requests = requests_factory()
    report = engine.run(requests)
    n = len(requests)
    shed = sum(1 for e in report.events if e.shed or e.rejected)
    stage_tokens = report.brownout_stage_tokens
    return {
        "requests": n,
        "completed": len(report.completed),
        "shed": shed,
        "shed_fraction": shed / n if n else 0.0,
        "tokens_generated": report.tokens_generated,
        "brownout_tokens": report.brownout_tokens,
        "brownout_token_fraction": report.brownout_token_fraction,
        "brownout_stage_tokens": {str(s): c
                                  for s, c in stage_tokens.items()},
        "brownout_transitions": engine.obs.metrics.counter(
            "serve.brownout.transitions").value,
        "makespan_s": report.clock_s,
        "ttft_p99_s": report.ttft_percentile_s(99.0),
    }


def run_overload_ab(model: Transformer, system, seed: int,
                    n_requests: int = 40, rate_per_s: float = 8.0,
                    n_blocks: int = 48, queue_timeout_s: float = 1.0,
                    ttft_budget_s: float = 1.0) -> dict:
    """Same overload trace with and without the brownout ladder.

    Calibration: in the analytic clock prefill charges *overlap* (they
    delay a session's readiness, not the engine step), so a single
    engine is decode- and pool-bound.  The trace makes decode dominate
    service: 96 output tokens at a charged 32k context cost ~7.5 ms per
    normal decode step but only ~4.7 ms on the degraded sliding-window
    path (1.57x), so when the ladder reaches stage 3 (dense-window pin)
    the running batch genuinely drains faster.  The Poisson rate then
    drives ~2x the no-ladder service rate: the baseline's queue heads
    outwait the 1 s queue timeout and shed, while the ladder's extra
    drain keeps more heads inside the same timeout — fewer sheds from
    the identical trace.  Stage 4 (queue-depth triggered only; the
    sentinel last budget fraction keeps the wait signal out of it)
    additionally sheds the youngest excess beyond ``shed_to_depth``
    before those requests can time out at the head.
    """
    def requests_factory() -> List[ServeRequest]:
        return overload_workload(n_requests, rate_per_s,
                                 model.config.vocab_size, seed,
                                 output_tokens=96,
                                 charged_context=32_768)

    ladder_policy = BrownoutPolicy(
        queue_high=(1, 2, 3, 12), ttft_budget_s=ttft_budget_s,
        budget_fractions=(0.1, 0.2, 0.3, 99.0), admit_per_step=4,
        shed_to_depth=10)
    baseline = _overload_point(model, system, None, requests_factory,
                               n_blocks, queue_timeout_s)
    ladder = _overload_point(model, system, ladder_policy,
                             requests_factory, n_blocks, queue_timeout_s)
    attributed = sum(int(c) for c in
                     ladder["brownout_stage_tokens"].values())
    return {
        "n_requests": n_requests,
        "rate_per_s": rate_per_s,
        "queue_timeout_s": queue_timeout_s,
        "ttft_budget_s": ttft_budget_s,
        "stages": list(BROWNOUT_STAGES),
        "baseline": baseline,
        "ladder": ladder,
        "shed_reduction": (baseline["shed_fraction"]
                           - ladder["shed_fraction"]),
        "attributed_tokens_consistent":
            attributed == ladder["brownout_tokens"],
    }


def run_fleet_chaos(seed: int = 0, n_steady: int = 10, n_burst: int = 6,
                    output_tokens: int = 8, n_workers: int = 4,
                    blocks_per_worker: int = 64, snapshot_every: int = 4,
                    overload_requests: int = 40,
                    overload_rate_per_s: float = 8.0,
                    out_dir: Optional[pathlib.Path] = None) -> Table:
    """Run both experiments; returns the table and writes the JSON."""
    model = Transformer(TINY_MODEL, seed=seed)
    system = default_systems()["longsight"]

    gray = run_gray_sweep(model, system, seed, n_steady=n_steady,
                          n_burst=n_burst, output_tokens=output_tokens,
                          n_workers=n_workers,
                          blocks_per_worker=blocks_per_worker,
                          snapshot_every=snapshot_every)
    brownout = run_overload_ab(model, system, seed,
                               n_requests=overload_requests,
                               rate_per_s=overload_rate_per_s)

    payload = {
        "benchmark": "fleet_chaos",
        "schema_version": SCHEMA_VERSION,
        "units": {
            "availability": "fraction of arrived requests completed "
                            "with (eventually) full service",
            "slo_attainment": "fraction of requests with TTFT within "
                              "the configured budget",
            "failover_latency_s": "wall seconds to fence, recover, and "
                                  "drain a failed worker",
            "shed_fraction": "shed or rejected requests / arrivals",
            "brownout_stage_tokens": "decode tokens attributed to each "
                                     "active ladder stage",
        },
        "config": {
            "seed": seed,
            "n_steady": n_steady, "n_burst": n_burst,
            "output_tokens": output_tokens,
            "n_workers": n_workers,
            "blocks_per_worker": blocks_per_worker,
            "snapshot_every": snapshot_every,
            "functional_model": TINY_MODEL.name,
            "charged_model": LLAMA3_8B.name,
            "system": "longsight",
            "gray_kinds": list(GRAY_KINDS),
        },
        "gray": gray,
        "brownout": brownout,
    }
    out_dir = pathlib.Path(out_dir) if out_dir is not None else results_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / RESULT_NAME).write_text(json.dumps(payload, indent=2) + "\n")

    table = Table(
        "fleet chaos: gray failures on worker 0 of "
        f"{n_workers} (durable fleet, {gray['n_requests']} requests)",
        ["kind", "bit_identical", "availability", "failovers",
         "failover_ms", "suspects", "completed"],
        note=f"brownout A/B: shed fraction "
             f"{brownout['baseline']['shed_fraction']:.2f} -> "
             f"{brownout['ladder']['shed_fraction']:.2f} with the ladder "
             f"({brownout['ladder']['brownout_tokens']} tokens browned "
             "out, all stage-attributed)")
    for point in gray["kinds"]:
        table.add_row(
            kind=point["kind"],
            bit_identical=point["bit_identical"],
            availability=point["availability"],
            failovers=point["failovers"],
            failover_ms=point["failover_latency_max_s"] * 1e3,
            suspects=point["worker_suspects"],
            completed=point["completed"])
    return table


def validate_payload(payload: dict) -> List[str]:
    """Schema check used by the smoke test; returns a list of problems."""
    problems = []
    for key in ("benchmark", "schema_version", "units", "config",
                "gray", "brownout"):
        if key not in payload:
            problems.append(f"missing key: {key}")
    if problems:
        return problems
    if payload["benchmark"] != "fleet_chaos":
        problems.append("benchmark name mismatch")
    gray = payload["gray"]
    kinds = {point.get("kind") for point in gray.get("kinds", ())}
    if kinds != set(payload["config"].get("gray_kinds", ())):
        problems.append("gray sweep does not cover every gray kind")
    reference = gray.get("reference", {})
    if reference.get("failovers", -1) != 0:
        problems.append("reference (fault-free) run recorded a failover")
    n_requests = gray.get("n_requests", 0)
    for point in gray.get("kinds", ()):
        tag = f"gray[{point.get('kind')}]"
        if not point.get("bit_identical"):
            problems.append(f"{tag}: outputs diverge from the fault-free "
                            "reference")
        if point.get("availability", 0.0) < 0.99:
            problems.append(f"{tag}: availability "
                            f"{point.get('availability')} < 0.99")
        if point.get("completed", -1) + point.get("shed", 0) \
                + point.get("rejected", 0) != n_requests:
            problems.append(f"{tag}: requests not fully accounted")
        if point.get("kind") in ("slow_worker", "stuck_worker"):
            if point.get("failovers", 0) < 1:
                problems.append(f"{tag}: expected a failover")
            if not point.get("failover_latency_max_s", 0.0) > 0.0:
                problems.append(f"{tag}: no measured failover latency")
        if point.get("kind") == "flapping_worker" \
                and point.get("worker_suspects", 0) < 2:
            problems.append(f"{tag}: flapping worker was not repeatedly "
                            "suspected")
    brownout = payload["brownout"]
    baseline = brownout.get("baseline", {})
    ladder = brownout.get("ladder", {})
    if not isinstance(baseline.get("shed_fraction"), (int, float)) \
            or not isinstance(ladder.get("shed_fraction"), (int, float)):
        problems.append("brownout: missing shed fractions")
        return problems
    if baseline["shed_fraction"] <= 0.0:
        problems.append("brownout: baseline never shed -- the overload "
                        "trace is not actually overloading")
    if ladder["shed_fraction"] >= baseline["shed_fraction"]:
        problems.append(
            f"brownout: ladder shed fraction {ladder['shed_fraction']} "
            f"did not improve on baseline {baseline['shed_fraction']}")
    if ladder.get("brownout_tokens", 0) < 1:
        problems.append("brownout: ladder run never browned out a token")
    if not brownout.get("attributed_tokens_consistent"):
        problems.append("brownout: stage-token attribution does not sum "
                        "to the browned-out token count")
    if baseline.get("brownout_tokens", -1) != 0:
        problems.append("brownout: baseline (no ladder) recorded "
                        "browned-out tokens")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.fleet_chaos",
        description="Fleet resilience: gray-failure kill/failover sweep "
                    "(bit-identity, availability, failover latency) plus "
                    "an overload brownout-ladder A/B.")
    parser.add_argument("--seed", type=int, default=0,
                        help="seeds the trace, the model, and the gray "
                             "fault plans")
    parser.add_argument("--n-steady", type=int, default=10)
    parser.add_argument("--n-burst", type=int, default=6)
    parser.add_argument("--output-tokens", type=int, default=8)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--blocks-per-worker", type=int, default=64)
    parser.add_argument("--snapshot-every", type=int, default=4)
    parser.add_argument("--overload-requests", type=int, default=40)
    parser.add_argument("--overload-rate", type=float, default=8.0)
    parser.add_argument("--out-dir", type=pathlib.Path, default=None,
                        help=f"directory for {RESULT_NAME} "
                             "(default: results/)")
    args = parser.parse_args(argv)
    table = run_fleet_chaos(
        seed=args.seed, n_steady=args.n_steady, n_burst=args.n_burst,
        output_tokens=args.output_tokens, n_workers=args.workers,
        blocks_per_worker=args.blocks_per_worker,
        snapshot_every=args.snapshot_every,
        overload_requests=args.overload_requests,
        overload_rate_per_s=args.overload_rate, out_dir=args.out_dir)
    print(table.render())
    out_dir = args.out_dir if args.out_dir is not None else results_dir()
    print(f"[saved to {pathlib.Path(out_dir) / RESULT_NAME}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
