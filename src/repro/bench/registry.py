"""Registry of benchmark CLIs that must ship a committed artifact.

Every benchmark that writes a ``results/BENCH_*.json`` file registers
here, pairing the CLI module with the artifact name, the payload
``benchmark`` tag, the expected ``schema_version``, and the module's
``validate_payload`` checker.  ``check_artifact`` / ``check_all`` load
the committed JSON and re-run the schema validation, so a bench whose
artifact was never regenerated after a schema bump -- or never committed
at all -- fails ``tests/bench/test_artifacts.py`` instead of silently
shipping stale numbers.

Registering a new benchmark is one :class:`BenchSpec` line; the artifact
test picks it up automatically.
"""

from __future__ import annotations

import importlib
import json
import pathlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.bench.tables import results_dir


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark CLI and its committed artifact."""

    #: import path of the CLI module (``python -m <module>`` regenerates it)
    module: str
    #: artifact filename under ``results/``
    result_name: str
    #: value of the payload's ``benchmark`` field
    benchmark: str

    def load(self) -> Tuple[int, Callable[[dict], List[str]]]:
        """Import the module and return (schema_version, validate_payload)."""
        mod = importlib.import_module(self.module)
        return mod.SCHEMA_VERSION, mod.validate_payload


#: benchmark tag -> spec; the single source of truth for artifact checks.
REGISTRY: Dict[str, BenchSpec] = {
    spec.benchmark: spec
    for spec in (
        BenchSpec("repro.bench.micro", "BENCH_attention.json",
                  "attention_micro"),
        BenchSpec("repro.bench.chaos", "BENCH_chaos.json", "chaos"),
        BenchSpec("repro.bench.serve", "BENCH_serve.json", "serve"),
        BenchSpec("repro.bench.fleet", "BENCH_fleet.json", "fleet"),
        BenchSpec("repro.bench.obs_overhead", "BENCH_obs.json",
                  "obs_overhead"),
        BenchSpec("repro.bench.recovery", "BENCH_recovery.json",
                  "recovery"),
        BenchSpec("repro.bench.fleet_chaos", "BENCH_fleet_chaos.json",
                  "fleet_chaos"),
    )
}


def check_artifact(spec: BenchSpec,
                   directory: pathlib.Path | None = None) -> List[str]:
    """Problems with one committed artifact ([] when it is healthy)."""
    directory = directory if directory is not None else results_dir()
    path = directory / spec.result_name
    if not path.exists():
        return [f"{spec.result_name}: missing -- regenerate with "
                f"`python -m {spec.module}`"]
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        return [f"{spec.result_name}: unparseable JSON ({exc})"]
    schema_version, validate = spec.load()
    problems = [f"{spec.result_name}: {p}" for p in validate(payload)]
    if payload.get("benchmark") != spec.benchmark:
        problems.append(f"{spec.result_name}: benchmark tag "
                        f"{payload.get('benchmark')!r} != {spec.benchmark!r}")
    if payload.get("schema_version") != schema_version:
        problems.append(
            f"{spec.result_name}: schema_version "
            f"{payload.get('schema_version')!r} != {schema_version} -- "
            f"stale artifact, regenerate with `python -m {spec.module}`")
    return problems


def check_all(directory: pathlib.Path | None = None) -> List[str]:
    """Problems across every registered benchmark artifact."""
    problems: List[str] = []
    for spec in REGISTRY.values():
        problems.extend(check_artifact(spec, directory))
    return problems
