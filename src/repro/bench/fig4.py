"""Figure 4: accuracy vs filter-ratio Pareto frontiers at 32K context.

The paper sweeps (window, k, thresholds) for the hybrid ITQ-enhanced
algorithm at a 32K context, plotting inverse-perplexity accuracy relative
to dense against the overall filter ratio, with three example
configurations highlighted plus the all-configs frontier.

Scaled here to the miniatures' 4K context (= 32K / SCALE); axes are
identical in meaning.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bench import algo
from repro.bench.tables import Table
from repro.core.config import LongSightConfig
from repro.system.sweep import ParetoPoint, pareto_frontier

#: The paper highlights three example configurations; these are their
#: scaled analogues (window, k).
EXAMPLE_CONFIGS = [
    ("W=1024,k=1024", algo.WINDOW, algo.TOP_K_LARGE),
    ("W=1024,k=128", algo.WINDOW, algo.TOP_K_SMALL),
    ("W=256,k=1024", max(1, algo.WINDOW // 4), algo.TOP_K_LARGE),
]


def sweep_points(paper_name: str, dataset: str = "PG",
                 context: int = 4096,
                 windows: Optional[List[int]] = None,
                 ks: Optional[List[int]] = None,
                 thresholds: Optional[List[int]] = None) -> List[ParetoPoint]:
    """Evaluate the (W, k, TH) grid; returns accuracy/filter-ratio points."""
    model = algo.get_model(paper_name)
    d = model.config.head_dim
    windows = windows or [max(1, algo.WINDOW // 4), algo.WINDOW,
                          algo.WINDOW * 4]
    ks = ks or [algo.TOP_K_SMALL, algo.TOP_K_LARGE]
    thresholds = thresholds or [0, d // 2, d // 2 + d // 8,
                                d // 2 + d // 4, d // 2 + 3 * d // 8]
    tokens = algo.get_tokens(dataset, context)
    dense = algo.dense_perplexity(paper_name, dataset, context)
    points: List[ParetoPoint] = []
    for window in windows:
        for k in ks:
            for th in thresholds:
                config = LongSightConfig(window=window, n_sink=algo.N_SINK,
                                         top_k=k, thresholds=th,
                                         use_itq=True)
                ppl, stats = algo.evaluate_config(paper_name, tokens, config)
                points.append(ParetoPoint(
                    x=stats.filter_ratio,
                    y=dense / ppl,  # inverse-perplexity accuracy vs dense
                    label=f"W={window},k={k},TH={th}",
                    config={"window": window, "k": k, "threshold": th},
                ))
    return points


def run_fig4(paper_name: str = "llama-3-1b", dataset: str = "PG",
             context: int = 2048) -> Table:
    """Regenerate Figure 4 for one model/dataset."""
    points = sweep_points(paper_name, dataset, context)
    frontier = pareto_frontier(points)
    frontier_labels = {p.label for p in frontier}
    examples = {(window, k): name for name, window, k in EXAMPLE_CONFIGS}
    table = Table(
        f"Figure 4: accuracy vs filter ratio ({paper_name}, {dataset}, "
        f"ctx={context})",
        ["config", "filter_ratio", "accuracy_vs_dense", "on_frontier",
         "example"],
        note="accuracy = dense_ppl / ppl (1.0 = matches dense); "
             "frontier = non-dominated across all configs tested; "
             "'example' marks the paper's three highlighted configs "
             "(paper-scale names, parameters scaled 1/8).")
    for point in sorted(points, key=lambda p: p.x):
        example = examples.get((point.config["window"], point.config["k"]),
                               "")
        table.add_row(config=point.label, filter_ratio=point.x,
                      accuracy_vs_dense=point.y,
                      on_frontier="yes" if point.label in frontier_labels
                      else "",
                      example=example)
    return table
