"""Figure 10: accuracy vs normalized throughput Pareto frontiers at 32K.

LongSight vs sliding-window attention, both tuned for one context length.
Accuracy comes from the miniature models (scaled parameters); throughput
comes from the analytical perf model at paper dimensions with the
corresponding *unscaled* parameters, normalized to the 1-GPU dense system
at the same context — so the x-axis reads "x over dense attention".
"""

from __future__ import annotations

import os
from typing import List

from repro.bench import algo
from repro.bench.tables import Table
from repro.core.config import LongSightConfig
from repro.core.hybrid import SlidingWindowAttention
from repro.llm.config import PAPER_MODELS
from repro.llm.perplexity import perplexity
from repro.system.baselines import DenseGpuSystem, SlidingWindowGpuSystem
from repro.system.engine import LongSightSystem
from repro.system.sweep import ParetoPoint, pareto_frontier

#: Paper context for this figure; miniatures run at context / SCALE.
#: The default drops one octave (16K) to keep single-core runtimes sane;
#: REPRO_BENCH_FULL=1 restores the paper's 32K.
PAPER_CONTEXT = 32768 if os.environ.get("REPRO_BENCH_FULL") else 16384


def _dense_tput(config, context: int) -> float:
    system = DenseGpuSystem(1)
    from repro.bench.fig7 import best_point
    point = best_point(system, config, context)
    return point.throughput_tps if point else float("nan")


def longsight_points(paper_name: str, dataset: str = "PG") -> List[ParetoPoint]:
    """LongSight configs: sweep (W, k, TH); accuracy mini, throughput full."""
    from repro.bench.fig7 import best_point

    mini_ctx = PAPER_CONTEXT // algo.SCALE
    model = algo.get_model(paper_name)
    d = model.config.head_dim
    tokens = algo.get_tokens(dataset, mini_ctx)
    dense_ppl = algo.dense_perplexity(paper_name, dataset, mini_ctx)
    paper_config = PAPER_MODELS[paper_name]
    dense_tput = _dense_tput(paper_config, PAPER_CONTEXT)
    points = []
    for window in (algo.WINDOW // 4, algo.WINDOW):
        for k in (algo.TOP_K_SMALL, algo.TOP_K_LARGE):
            for th in (d // 2, d // 2 + d // 8, d // 2 + d // 4):
                mini = LongSightConfig(window=max(1, window),
                                       n_sink=algo.N_SINK, top_k=k,
                                       thresholds=th, use_itq=True)
                ppl, stats = algo.evaluate_config(paper_name, tokens, mini)
                # Scale the config back up for the perf model.
                full = LongSightConfig(window=window * algo.SCALE, n_sink=16,
                                       top_k=k * algo.SCALE, thresholds=th,
                                       use_itq=True)
                engine = LongSightSystem(full, pass_rate=max(
                    1e-3, stats.pass_rate))
                point = best_point(engine, paper_config, PAPER_CONTEXT)
                if point is None:
                    continue
                points.append(ParetoPoint(
                    x=point.throughput_tps / dense_tput,
                    y=dense_ppl / ppl,
                    label=f"LongSight W={window * algo.SCALE},"
                          f"k={k * algo.SCALE},TH={th}",
                    config={"window": window, "k": k, "threshold": th}))
    return points


def sliding_window_points(paper_name: str,
                          dataset: str = "PG") -> List[ParetoPoint]:
    """Sliding-window baseline: sweep window size."""
    from repro.bench.fig7 import best_point

    mini_ctx = PAPER_CONTEXT // algo.SCALE
    model = algo.get_model(paper_name)
    tokens = algo.get_tokens(dataset, mini_ctx)
    dense_ppl = algo.dense_perplexity(paper_name, dataset, mini_ctx)
    paper_config = PAPER_MODELS[paper_name]
    dense_tput = _dense_tput(paper_config, PAPER_CONTEXT)
    points = []
    for window in (32, 128, 512, 1024, 2048):
        backend = SlidingWindowAttention(window=window, n_sink=algo.N_SINK)
        ppl = perplexity(model, tokens, backend=backend)
        system = SlidingWindowGpuSystem(window=window * algo.SCALE, n_sink=16)
        point = best_point(system, paper_config, PAPER_CONTEXT)
        if point is None:
            continue
        points.append(ParetoPoint(
            x=point.throughput_tps / dense_tput,
            y=dense_ppl / ppl,
            label=f"SlidingWindow W={window * algo.SCALE}",
            config={"window": window}))
    return points


def run_fig10(paper_name: str = "llama-3-1b", dataset: str = "PG") -> Table:
    ls_points = longsight_points(paper_name, dataset)
    sw_points = sliding_window_points(paper_name, dataset)
    ls_front = {p.label for p in pareto_frontier(ls_points)}
    sw_front = {p.label for p in pareto_frontier(sw_points)}
    table = Table(
        f"Figure 10: accuracy vs normalized throughput ({paper_name}, "
        f"{dataset}, ctx={PAPER_CONTEXT})",
        ["config", "normalized_throughput", "accuracy_vs_dense",
         "on_frontier"],
        note="throughput normalized to dense 1-GPU at the same context; "
             "accuracy = dense_ppl / ppl from the miniature models.")
    for point in sorted(ls_points + sw_points, key=lambda p: -p.y):
        table.add_row(config=point.label, normalized_throughput=point.x,
                      accuracy_vs_dense=point.y,
                      on_frontier="yes" if point.label in (ls_front | sw_front)
                      else "")
    return table
