"""Fleet serving benchmark CLI (``python -m repro.bench.fleet``).

Sweeps the worker count through :class:`~repro.fleet.router.FleetRouter`
on a fixed two-tenant trace: a *steady* tenant (weight 4, Poisson
arrivals) and a *burst* tenant (weight 1, every request arriving at
once).  Each tenant shares a block-aligned system prefix across its
requests, so concurrently admitted sessions exercise the hash-keyed
copy-on-write prefix cache; per-tenant weighted admission bounds the
steady tenant's tail TTFT while the burst drains.

Every sweep point is a full :class:`~repro.fleet.report.FleetReport`
(``workers == 1`` is the single-engine baseline the fleet must beat);
a separate fairness section reruns the two-worker point with the burst
tenant removed and reports the steady tenant's p99-TTFT degradation
ratio, which must stay under the configured bound.

Results are written as ``BENCH_fleet.json`` (default: ``results/``);
the schema is validated by ``validate_payload`` /
``tests/bench/test_fleet.py``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
from typing import List, Optional, Sequence

import numpy as np

from repro.bench.serve import TINY_LS, TINY_MODEL
from repro.bench.tables import Table, results_dir
from repro.fleet import FleetReport, FleetRouter, make_worker
from repro.llm.config import LLAMA3_8B
from repro.llm.model import Transformer
from repro.serve.crossval import backend_factory, default_systems
from repro.serve.engine import AnalyticTiming
from repro.serve.scheduler import ServeRequest, SloPolicy, TenantClass
from repro.system.prefill import PrefillModel

SCHEMA_VERSION = 1
RESULT_NAME = "BENCH_fleet.json"

#: admission weights: the steady tenant gets 4 slots per burst slot.
TENANTS = (TenantClass("steady", weight=4), TenantClass("burst", weight=1))


def fleet_workload(n_steady: int, n_burst: int, vocab_size: int,
                   seed: int = 0, prefix_tokens: int = 32,
                   tail_tokens: int = 20, output_tokens: int = 8,
                   steady_rate_per_s: float = 50.0,
                   charged_context: int = 32_768,
                   include_burst: bool = True) -> List[ServeRequest]:
    """Two-tenant trace with per-tenant shared system prefixes.

    Each tenant's requests open with the same block-aligned
    ``prefix_tokens``-token system prompt and diverge in a unique tail,
    so temporally overlapping sessions of one tenant hit the prefix
    cache.  Burst arrivals all land at t=0; steady arrivals are Poisson.
    Separate RNG streams per concern keep the steady trace bit-identical
    whether or not the burst tenant is included (the fairness A/B).
    """
    prefix_rng = np.random.default_rng(seed)
    steady_rng = np.random.default_rng(seed + 1)
    burst_rng = np.random.default_rng(seed + 2)
    steady_prefix = prefix_rng.integers(0, vocab_size, size=prefix_tokens)
    burst_prefix = prefix_rng.integers(0, vocab_size, size=prefix_tokens)

    requests: List[ServeRequest] = []
    t = 0.0
    for i in range(n_steady):
        t += steady_rng.exponential(1.0 / steady_rate_per_s)
        tail = steady_rng.integers(
            0, vocab_size, size=tail_tokens + int(steady_rng.integers(0, 8)))
        requests.append(ServeRequest(
            request_id=i, prompt=np.concatenate([steady_prefix, tail]),
            max_new_tokens=output_tokens, arrival_s=t,
            charged_prompt_tokens=charged_context, tenant="steady"))
    if include_burst:
        for i in range(n_burst):
            tail = burst_rng.integers(
                0, vocab_size,
                size=tail_tokens + int(burst_rng.integers(0, 8)))
            requests.append(ServeRequest(
                request_id=1000 + i,
                prompt=np.concatenate([burst_prefix, tail]),
                max_new_tokens=output_tokens, arrival_s=0.0,
                charged_prompt_tokens=charged_context, tenant="burst"))
    return requests


def _build_fleet(n_workers: int, model: Transformer, system,
                 blocks_per_worker: int, max_decode_batch: int, *,
                 policy: Optional[SloPolicy] = None,
                 durable_root: Optional[pathlib.Path] = None,
                 snapshot_every: int = 8,
                 crash_plans: Optional[dict] = None,
                 gray_plans: Optional[dict] = None,
                 health=None) -> FleetRouter:
    """A fresh fleet: per-worker prefix-cached pools and analytic timing.

    Deterministic by construction — every random choice lives in the
    seeded trace (:func:`fleet_workload`) and the seeded model, both
    owned by the caller.  The resilience/durability knobs are forwarded
    so ``repro.bench.fleet_chaos`` can reuse the exact same fleet.
    """
    if policy is None:
        policy = SloPolicy(max_decode_batch=max_decode_batch,
                           tenant_classes=TENANTS)
    prefill = PrefillModel()
    factory = backend_factory("longsight", TINY_LS)
    workers = [
        make_worker(
            wid, model, factory, n_blocks=blocks_per_worker,
            block_tokens=16, policy=policy,
            timing_factory=lambda obs: AnalyticTiming(
                system, LLAMA3_8B, prefill=prefill, obs=obs),
            durable_root=durable_root)
        for wid in range(n_workers)
    ]
    return FleetRouter(workers, snapshot_every=snapshot_every,
                       crash_plans=crash_plans, gray_plans=gray_plans,
                       health=health)


def _run_point(n_workers: int, model: Transformer, system,
               blocks_per_worker: int, max_decode_batch: int,
               requests: Sequence[ServeRequest]) -> FleetReport:
    fleet = _build_fleet(n_workers, model, system, blocks_per_worker,
                         max_decode_batch)
    return fleet.run(requests)


def run_fleet(workers_axis: Sequence[int] = (1, 2, 4),
              n_steady: int = 8, n_burst: int = 8,
              output_tokens: int = 32, charged_context: int = 32_768,
              blocks_per_worker: int = 64, max_decode_batch: int = 4,
              fairness_limit: float = 5.0, seed: int = 0,
              out_dir: Optional[pathlib.Path] = None) -> Table:
    """Run the worker-count sweep; returns the table and writes the JSON."""
    workers_axis = sorted(set(int(w) for w in workers_axis))
    if not workers_axis or workers_axis[0] != 1:
        raise ValueError("workers axis must start at 1 (the single-engine "
                         "baseline the fleet is judged against)")
    if len(workers_axis) < 2:
        raise ValueError("need >= 2 worker-count points")

    model = Transformer(TINY_MODEL, seed=seed)
    system = default_systems()["longsight"]

    def trace(include_burst: bool = True) -> List[ServeRequest]:
        return fleet_workload(
            n_steady, n_burst, model.config.vocab_size, seed=seed,
            output_tokens=output_tokens, charged_context=charged_context,
            include_burst=include_burst)

    sweep: List[dict] = []
    for n_workers in workers_axis:
        report = _run_point(n_workers, model, system, blocks_per_worker,
                            max_decode_batch, trace())
        sweep.append(report.as_dict())

    # Fairness A/B at the first multi-worker point: the steady tenant's
    # p99 TTFT with the burst tenant present vs with it removed.
    fair_workers = workers_axis[1]
    contended = _run_point(fair_workers, model, system, blocks_per_worker,
                           max_decode_batch, trace())
    alone = _run_point(fair_workers, model, system, blocks_per_worker,
                       max_decode_batch, trace(include_burst=False))
    p99_contended = contended.ttft_percentile_s(99.0, tenant="steady")
    p99_alone = alone.ttft_percentile_s(99.0, tenant="steady")
    fairness = {
        "workers": fair_workers,
        "steady_ttft_p99_alone_s": p99_alone,
        "steady_ttft_p99_contended_s": p99_contended,
        "degradation_ratio": (p99_contended / p99_alone
                              if p99_alone else float("inf")),
        "limit": fairness_limit,
    }

    payload = {
        "benchmark": "fleet",
        "schema_version": SCHEMA_VERSION,
        "units": {
            "workers": "engine shards, each with a private paged KV pool",
            "throughput_tps": "decode tokens per second of fleet makespan",
            "ttft_s": "arrival to first token, seconds",
            "tpot_s": "mean seconds per output token after the first",
            "prefix.hit_rate": "fraction of full-block prefix lookups "
                               "served from a resident shared block",
        },
        "config": {
            "n_steady": n_steady, "n_burst": n_burst,
            "output_tokens": output_tokens,
            "charged_context": charged_context,
            "blocks_per_worker": blocks_per_worker,
            "max_decode_batch": max_decode_batch,
            "tenants": {t.name: t.weight for t in TENANTS},
            "seed": seed,
            "functional_model": TINY_MODEL.name,
            "charged_model": LLAMA3_8B.name,
            "system": "longsight",
        },
        "workers_axis": workers_axis,
        "sweep": sweep,
        "fairness": fairness,
    }
    out_dir = pathlib.Path(out_dir) if out_dir is not None else results_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / RESULT_NAME).write_text(json.dumps(payload, indent=2) + "\n")

    base_tps = sweep[0]["throughput_tps"]
    table = Table(
        "fleet sweep (worker count; two tenants, shared system prefixes)",
        ["workers", "throughput_tps", "speedup_vs_1", "ttft_p50_ms",
         "ttft_p99_ms", "hit_rate", "migrations", "completed", "shed"],
        note=f"{n_steady} steady + {n_burst} burst requests; fairness "
             f"ratio {fairness['degradation_ratio']:.2f} "
             f"(limit {fairness_limit}) at {fair_workers} workers")
    for point in sweep:
        table.add_row(
            workers=point["workers"],
            throughput_tps=point["throughput_tps"],
            speedup_vs_1=(point["throughput_tps"] / base_tps
                          if base_tps else float("inf")),
            ttft_p50_ms=point["ttft_p50_s"] * 1e3,
            ttft_p99_ms=point["ttft_p99_s"] * 1e3,
            hit_rate=point["prefix"]["hit_rate"],
            migrations=point["migrations"],
            completed=point["completed"],
            shed=point["shed"])
    return table


def validate_payload(payload: dict) -> List[str]:
    """Schema check used by the smoke test; returns a list of problems."""
    problems = []
    for key in ("benchmark", "schema_version", "units", "config",
                "workers_axis", "sweep", "fairness"):
        if key not in payload:
            problems.append(f"missing key: {key}")
    if problems:
        return problems
    axis = payload["workers_axis"]
    if not axis or axis[0] != 1:
        problems.append("workers_axis does not start at the single-engine "
                        "baseline (1)")
    if any(b >= a for a, b in zip(axis[1:], axis)):
        problems.append("workers_axis is not strictly increasing")
    sweep = payload["sweep"]
    if len(sweep) != len(axis):
        problems.append("sweep length != len(workers_axis)")
        return problems
    config = payload["config"]
    n_requests = config.get("n_steady", 0) + config.get("n_burst", 0)
    base_tps = None
    for n_workers, point in zip(axis, sweep):
        tag = f"sweep[workers={n_workers}]"
        if point.get("workers") != n_workers:
            problems.append(f"{tag}: workers field mismatch")
        for key in ("throughput_tps", "ttft_p50_s", "ttft_p99_s",
                    "tpot_p50_s", "tpot_p99_s", "makespan_s"):
            if not isinstance(point.get(key), (int, float)) \
                    or point[key] < 0:
                problems.append(f"{tag}: bad {key}")
        if point.get("ttft_p99_s", 0) < point.get("ttft_p50_s", 0):
            problems.append(f"{tag}: ttft p99 < p50")
        for key in ("completed", "shed", "rejected", "migrations",
                    "preemptions"):
            if not isinstance(point.get(key), int) or point[key] < 0:
                problems.append(f"{tag}: bad {key}")
        accounted = (point.get("completed", 0) + point.get("shed", 0)
                     + point.get("rejected", 0))
        if accounted != n_requests:
            problems.append(f"{tag}: completed+shed+rejected != "
                            f"{n_requests} requests")
        prefix = point.get("prefix", {})
        if prefix.get("hits", -1) < 0 or prefix.get("misses", -1) < 0:
            problems.append(f"{tag}: bad prefix counters")
        if not prefix.get("hits", 0) > 0:
            problems.append(f"{tag}: zero prefix-cache hits on a "
                            "shared-system-prompt workload")
        if n_workers == 1:
            base_tps = point.get("throughput_tps", 0.0)
        elif base_tps is not None \
                and point.get("throughput_tps", 0.0) <= base_tps:
            problems.append(f"{tag}: fleet throughput does not beat the "
                            "single-engine baseline")
        tenants = point.get("tenants", {})
        for tenant in ("steady", "burst"):
            if tenant not in tenants:
                problems.append(f"{tag}: missing tenant summary "
                                f"for {tenant!r}")
    fairness = payload["fairness"]
    ratio = fairness.get("degradation_ratio")
    limit = fairness.get("limit")
    if not isinstance(ratio, (int, float)) or ratio < 0:
        problems.append("fairness: bad degradation_ratio")
    elif not isinstance(limit, (int, float)) or ratio > limit:
        problems.append(
            f"fairness: steady-tenant p99 TTFT degraded {ratio}x under "
            f"the burst (limit {limit}) -- weighted admission failed")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.fleet",
        description="Sharded fleet serving sweep: worker count vs "
                    "throughput, prefix-cache hit rate, and per-tenant "
                    "SLOs on a two-tenant shared-prefix trace.")
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4],
                        help="worker counts to sweep (must include 1, "
                             "the single-engine baseline)")
    parser.add_argument("--n-steady", type=int, default=8,
                        help="steady-tenant (weight 4) request count")
    parser.add_argument("--n-burst", type=int, default=8,
                        help="burst-tenant (weight 1) request count, all "
                             "arriving at t=0")
    parser.add_argument("--output-tokens", type=int, default=32,
                        help="decode tokens per request; decode steps are "
                             "the serialized per-worker resource, so "
                             "sharding gains grow with this")
    parser.add_argument("--charged-context", type=int, default=32_768,
                        help="prompt tokens charged to the analytic "
                             "latency model")
    parser.add_argument("--blocks-per-worker", type=int, default=64)
    parser.add_argument("--max-decode-batch", type=int, default=4)
    parser.add_argument("--fairness-limit", type=float, default=5.0,
                        help="max allowed steady-tenant p99 TTFT "
                             "degradation under the burst")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out-dir", type=pathlib.Path, default=None,
                        help=f"directory for {RESULT_NAME} "
                             "(default: results/)")
    args = parser.parse_args(argv)
    table = run_fleet(workers_axis=args.workers, n_steady=args.n_steady,
                      n_burst=args.n_burst, output_tokens=args.output_tokens,
                      charged_context=args.charged_context,
                      blocks_per_worker=args.blocks_per_worker,
                      max_decode_batch=args.max_decode_batch,
                      fairness_limit=args.fairness_limit, seed=args.seed,
                      out_dir=args.out_dir)
    print(table.render())
    out_dir = args.out_dir if args.out_dir is not None else results_dir()
    print(f"[saved to {pathlib.Path(out_dir) / RESULT_NAME}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
