"""Chaos benchmark CLI (``python -m repro.bench.chaos``).

Sweeps fault rates x workloads through two layers of the stack:

- **Serving**: the multi-tenant simulator drives :class:`LongSightSystem`
  under a :class:`ServingFaultModel` (degraded tokens, backoff +
  re-admission, shedding) on steady-Poisson and bursty arrival traces,
  alongside the fault-immune :class:`SlidingWindowGpuSystem` baseline —
  the floor LongSight degrades *toward*, never below.
- **Functional**: a tiny seeded Transformer decodes end to end through
  :class:`SupervisedOffloadBackend` against an injected fault mix at each
  rate, recording degraded-token fraction, retries, repairs, and that
  generation always completes (the dense-fallback guarantee).

Results are written as ``BENCH_chaos.json`` (default: ``results/``); the
schema is validated by ``validate_payload`` / ``tests/bench/test_chaos.py``:
``fault_rates`` is a strictly increasing axis with >= 3 points, and every
serving/functional series has exactly one entry per rate.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bench.tables import Table, results_dir
from repro.core.config import LongSightConfig
from repro.llm.config import LLAMA3_8B, ModelConfig
from repro.llm.model import Transformer
from repro.system.baselines import SlidingWindowGpuSystem
from repro.system.engine import LongSightSystem
from repro.system.faults import FaultPlan
from repro.system.serving_sim import (ServingFaultModel, ServingSimulator,
                                      Session, poisson_workload)
from repro.system.supervisor import SupervisedOffloadBackend

SCHEMA_VERSION = 1
RESULT_NAME = "BENCH_chaos.json"
WORKLOADS = ("steady", "burst")
SERVING_SYSTEMS = ("LongSight", "SlidingWindow")


def burst_workload(n_sessions: int, burst_every: int = 4,
                   burst_gap_s: float = 2.0, prompt_tokens: int = 32768,
                   output_tokens: int = 24, seed: int = 0) -> List[Session]:
    """Bursty arrivals: groups of sessions land at the same instant."""
    rng = np.random.default_rng(seed)
    sessions = []
    for i in range(n_sessions):
        jitter = 1.0 + 0.25 * (2 * rng.random() - 1)
        sessions.append(Session(
            session_id=i, arrival_s=(i // burst_every) * burst_gap_s,
            prompt_tokens=max(1, int(prompt_tokens * jitter)),
            output_tokens=output_tokens))
    return sessions


def _workload(name: str, n_sessions: int, seed: int) -> List[Session]:
    if name == "steady":
        return poisson_workload(n_sessions, arrival_rate_per_s=2.0,
                                prompt_tokens=32768, output_tokens=24,
                                seed=seed)
    if name == "burst":
        return burst_workload(n_sessions, seed=seed)
    raise ValueError(f"unknown workload: {name!r}")


def _serving_point(system, config: ModelConfig, workload: str,
                   n_sessions: int, rate: float, seed: int,
                   faultable: bool) -> dict:
    faults = ServingFaultModel(offload_failure_rate=rate, seed=seed) \
        if faultable else None
    sim = ServingSimulator(system, config, max_steps=20_000, faults=faults)
    report = sim.run(_workload(workload, n_sessions, seed))
    return {
        "fault_rate": rate if faultable else 0.0,
        "throughput_tps": report.throughput_tps,
        "tokens_generated": report.tokens_generated,
        "degraded_token_fraction": report.degraded_token_fraction,
        "availability": report.availability,
        "completed_sessions": len(report.completed),
        "shed_sessions": len(report.shed),
        "total_backoffs": report.total_backoffs,
        "p50_step_latency_s": report.p50_step_latency_s,
        "p99_step_latency_s": report.p99_step_latency_s,
        "mean_queueing_delay_s": report.mean_queueing_delay_s(),
    }


def _fault_mix(rate: float, seed: int) -> FaultPlan:
    """The injected mix at sweep point ``rate``: every transient kind at
    ``rate`` plus sign-store corruption at a quarter of it."""
    return dataclasses.replace(FaultPlan.uniform(rate, seed=seed),
                               kso_corruption_rate=rate / 4.0)


def _functional_point(rate: float, seed: int, n_tokens: int) -> dict:
    mc = ModelConfig(name="chaos-tiny", vocab_size=64, n_layers=2,
                     n_q_heads=4, n_kv_heads=2, head_dim=8, d_ff=32,
                     qk_bias=True)
    cfg = LongSightConfig(window=8, n_sink=4, top_k=12, thresholds=5)
    model = Transformer(mc, seed=seed)
    tokens = np.random.default_rng(seed).integers(0, mc.vocab_size,
                                                  size=n_tokens)
    backend = SupervisedOffloadBackend(mc, cfg, plan=_fault_mix(rate, seed),
                                       flush_granularity=1,
                                       supervisor_seed=seed)
    out = model.forward_full(tokens, backend=backend, block_size=16)
    stats = backend.supervisor.stats
    return {
        "fault_rate": rate,
        "tokens": int(n_tokens),
        "completed": bool(np.isfinite(out).all()),
        "degraded_token_fraction": backend.degraded_token_fraction,
        "offload_attempts": stats.attempts,
        "retries": stats.retries,
        "timeouts": stats.timeouts,
        "queue_full": stats.queue_full,
        "kso_repairs": stats.repairs,
        "injected_faults": backend.injector.total_fired,
    }


def run_chaos(rates: Sequence[float] = (0.0, 0.25, 1.0),
              n_sessions: int = 10, n_tokens: int = 56, seed: int = 0,
              out_dir: Optional[pathlib.Path] = None) -> Table:
    """Run the chaos sweep; returns the table and writes the JSON."""
    rates = sorted(set(float(r) for r in rates))
    if len(rates) < 3:
        raise ValueError("need >= 3 fault-rate points")
    ls = LongSightSystem(LongSightConfig(window=1024, n_sink=16, top_k=1024,
                                         use_itq=True))
    sw = SlidingWindowGpuSystem(window=1024, n_sink=16)
    systems = {"LongSight": (ls, True),
               # The GPU-only baseline never offloads: fault-immune, the
               # quality/latency floor the degraded path converges to.
               "SlidingWindow": (sw, False)}

    serving: Dict[str, Dict[str, List[dict]]] = {
        w: {name: [] for name in SERVING_SYSTEMS} for w in WORKLOADS}
    for workload in WORKLOADS:
        for name, (system, faultable) in systems.items():
            for rate in rates:
                serving[workload][name].append(_serving_point(
                    system, LLAMA3_8B, workload, n_sessions, rate, seed,
                    faultable))
    functional = [_functional_point(rate, seed, n_tokens) for rate in rates]

    payload = {
        "benchmark": "chaos",
        "schema_version": SCHEMA_VERSION,
        "units": {"fault_rate": "per-offload failure probability",
                  "throughput_tps": "decode tokens per second",
                  "degraded_token_fraction":
                      "fraction of tokens served dense-only",
                  "availability": "completed / (completed + shed) sessions",
                  "step_latency_s": "seconds per decode step"},
        "config": {"n_sessions": n_sessions, "n_tokens": n_tokens,
                   "seed": seed, "model": LLAMA3_8B.name,
                   "workloads": list(WORKLOADS)},
        "fault_rates": rates,
        "serving": serving,
        "functional": functional,
    }
    out_dir = pathlib.Path(out_dir) if out_dir is not None else results_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / RESULT_NAME).write_text(json.dumps(payload, indent=2) + "\n")

    table = Table(
        "chaos sweep (fault rate x workload; serving + functional)",
        ["section", "workload", "system", "fault_rate", "throughput_tps",
         "degraded_frac", "availability", "shed", "retries",
         "p99_step_ms"],
        note=f"{n_sessions} sessions/workload; functional: tiny model, "
             f"{n_tokens} tokens through SupervisedOffloadBackend")
    for workload in WORKLOADS:
        for name in SERVING_SYSTEMS:
            for point in serving[workload][name]:
                table.add_row(
                    section="serving", workload=workload, system=name,
                    fault_rate=point["fault_rate"],
                    throughput_tps=point["throughput_tps"],
                    degraded_frac=point["degraded_token_fraction"],
                    availability=point["availability"],
                    shed=point["shed_sessions"],
                    retries=point["total_backoffs"],
                    p99_step_ms=point["p99_step_latency_s"] * 1e3)
    for point in functional:
        table.add_row(
            section="functional", workload="decode", system="Supervised",
            fault_rate=point["fault_rate"],
            degraded_frac=point["degraded_token_fraction"],
            availability=1.0 if point["completed"] else 0.0,
            retries=point["retries"])
    return table


def validate_payload(payload: dict) -> List[str]:
    """Schema check used by the smoke test; returns a list of problems."""
    problems = []
    for key in ("benchmark", "schema_version", "units", "config",
                "fault_rates", "serving", "functional"):
        if key not in payload:
            problems.append(f"missing key: {key}")
    if problems:
        return problems
    rates = payload["fault_rates"]
    if len(rates) < 3:
        problems.append("fewer than 3 fault-rate points")
    if any(b >= a for a, b in zip(rates[1:], rates)):
        problems.append("fault_rates axis is not strictly increasing")
    for workload in WORKLOADS:
        per_system = payload["serving"].get(workload)
        if per_system is None:
            problems.append(f"missing serving workload: {workload}")
            continue
        for name in SERVING_SYSTEMS:
            points = per_system.get(name)
            if points is None or len(points) != len(rates):
                problems.append(
                    f"serving.{workload}.{name} length != len(fault_rates)")
                continue
            for point in points:
                frac = point.get("degraded_token_fraction", -1.0)
                if not 0.0 <= frac <= 1.0:
                    problems.append(
                        f"serving.{workload}.{name}: degraded fraction "
                        f"{frac} outside [0, 1]")
                if not 0.0 <= point.get("availability", -1.0) <= 1.0:
                    problems.append(
                        f"serving.{workload}.{name}: bad availability")
    functional = payload["functional"]
    if len(functional) != len(rates):
        problems.append("functional length != len(fault_rates)")
    for point in functional:
        if not point.get("completed", False):
            problems.append(
                f"functional run at rate {point.get('fault_rate')} did not "
                "complete — dense fallback guarantee violated")
        if not 0.0 <= point.get("degraded_token_fraction", -1.0) <= 1.0:
            problems.append("functional: degraded fraction outside [0, 1]")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.chaos",
        description="Fault-rate sweep: serving dynamics under failures plus "
                    "functional dense-fallback verification.")
    parser.add_argument("--rates", type=float, nargs="+",
                        default=[0.0, 0.25, 1.0],
                        help=">= 3 per-offload failure probabilities")
    parser.add_argument("--n-sessions", type=int, default=10)
    parser.add_argument("--n-tokens", type=int, default=56,
                        help="decode length for the functional check")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out-dir", type=pathlib.Path, default=None,
                        help="directory for BENCH_chaos.json "
                             "(default: results/)")
    args = parser.parse_args(argv)
    table = run_chaos(rates=args.rates, n_sessions=args.n_sessions,
                      n_tokens=args.n_tokens, seed=args.seed,
                      out_dir=args.out_dir)
    print(table.render())
    out_dir = args.out_dir if args.out_dir is not None else results_dir()
    print(f"[saved to {pathlib.Path(out_dir) / RESULT_NAME}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
