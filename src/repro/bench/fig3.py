"""Figure 3: non-window KV cache filter ratios across context lengths.

Three panels: (a) baseline sparse attention, (b) hybrid (sparse + dense
sliding window), (c) ITQ-enhanced hybrid.  For every (model, dataset,
context, k) the harness reports the filter ratio achieved with thresholds
tuned for <=5% perplexity increase; configurations that cannot reach the
perplexity target even unfiltered are marked 'X', as in the paper.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bench import algo
from repro.bench.tables import Table

#: k values per panel (paper: 128 and 1024, scaled by algo.SCALE).
PANEL_KS = (algo.TOP_K_SMALL, algo.TOP_K_LARGE)

VARIANT_BY_PANEL = {"a": "sparse", "b": "hybrid", "c": "hybrid+itq"}


def run_fig3(panel: str, models: Iterable[str] = ("llama-3-1b", "llama-3-8b"),
             datasets: Iterable[str] = ("PG", "Wiki2"),
             contexts: Optional[Iterable[int]] = None,
             max_increase: float = 0.05) -> Table:
    """Regenerate one panel of Figure 3.

    Args:
        panel: 'a' (baseline sparse), 'b' (hybrid), or 'c' (hybrid + ITQ).
        max_increase: the perplexity budget (paper: within 5% of dense).
    """
    variant = VARIANT_BY_PANEL[panel]
    contexts = list(contexts) if contexts is not None else algo.bench_contexts()
    table = Table(
        f"Figure 3{panel}: filter ratio ({variant})",
        ["model", "dataset", "context", "k", "filter_ratio",
         "ppl_increase_pct", "meets_target"],
        note=(f"k and window scaled by 1/{algo.SCALE} with context "
              f"(paper: k=128/1024, W=1024 at 32K-1M ctx); "
              f"'X' = cannot stay within {max_increase:.0%} of dense ppl."))
    for model in models:
        for k in PANEL_KS:
            thresholds = algo.tuned_thresholds(model, variant, k,
                                               max_increase=max_increase)
            config = algo.variant_config(variant, k, thresholds=thresholds)
            for dataset in datasets:
                for context in contexts:
                    tokens = algo.get_tokens(dataset, context)
                    dense = algo.dense_perplexity(model, dataset, context)
                    ppl, stats = algo.evaluate_config(model, tokens, config)
                    increase = ppl / dense - 1.0
                    ok = increase <= max_increase
                    table.add_row(
                        model=model, dataset=dataset, context=context, k=k,
                        filter_ratio=stats.filter_ratio if ok else None,
                        ppl_increase_pct=increase * 100.0,
                        meets_target="yes" if ok else "X")
    return table
