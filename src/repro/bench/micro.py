"""Attention microbenchmark CLI (``python -m repro.bench.micro``).

Times prefill and decode for three attention backends across context
lengths:

- ``sliding_window`` — the StreamingLLM-style baseline (O(window)/query),
- ``hybrid_reference`` — :class:`LongSightAttention` per-head reference loop,
- ``hybrid_fast`` — the head-batched fast path consuming the KV cache's
  incremental sign store.

Results are written as ``BENCH_attention.json`` (default: ``results/``) so
later performance work has a trajectory to regress against.  The JSON
schema is validated by ``tests/bench/test_micro.py``:

- ``contexts`` is a strictly increasing token-count axis,
- every backend series has one entry per context,
- all times are seconds (best of ``--repeats``), speedups are ratios.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.bench.tables import Table, results_dir
from repro.core.config import LongSightConfig
from repro.core.hybrid import LongSightAttention, SlidingWindowAttention
from repro.llm.config import ModelConfig
from repro.llm.kv_cache import KVCache

SCHEMA_VERSION = 1
RESULT_NAME = "BENCH_attention.json"
BACKENDS = ("sliding_window", "hybrid_reference", "hybrid_fast")


def bench_model_config(n_q_heads: int = 8, n_kv_heads: int = 2,
                       head_dim: int = 64) -> ModelConfig:
    """A single-layer attention-only stand-in (weights are never run)."""
    return ModelConfig(name="bench-attn", vocab_size=256, n_layers=1,
                       n_q_heads=n_q_heads, n_kv_heads=n_kv_heads,
                       head_dim=head_dim, d_ff=4 * n_q_heads * head_dim)


def _time_best(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _decode_runners(mc: ModelConfig, cfg: LongSightConfig, k: np.ndarray,
                    v: np.ndarray, q: np.ndarray) -> Dict[str, Callable]:
    """One-token decode at full context, per backend."""
    sliding = SlidingWindowAttention(window=cfg.window, n_sink=cfg.n_sink)
    reference = LongSightAttention(cfg, use_fast_path=False)
    fast = LongSightAttention(cfg)
    cache = KVCache(mc)
    fast.prepare_cache(cache)
    cache.append(0, k, v)
    return {
        "sliding_window": lambda: sliding.forward(0, q, k, v),
        "hybrid_reference": lambda: reference.forward(0, q, k, v),
        "hybrid_fast": lambda: fast.forward_cached(0, q, cache),
    }


def _prefill_runners(mc: ModelConfig, cfg: LongSightConfig, k: np.ndarray,
                     v: np.ndarray, q_full: np.ndarray,
                     block_size: int) -> Dict[str, Callable]:
    """Blockwise prefill over the whole context, per backend."""
    n_ctx = k.shape[1]
    sliding = SlidingWindowAttention(window=cfg.window, n_sink=cfg.n_sink)
    reference = LongSightAttention(cfg, use_fast_path=False)
    fast = LongSightAttention(cfg)

    def run_stateless(backend) -> None:
        for start in range(0, n_ctx, block_size):
            stop = min(start + block_size, n_ctx)
            backend.forward(0, q_full[:, start:stop], k[:, :stop], v[:, :stop])

    def run_fast() -> None:
        cache = KVCache(mc)
        cache.reserve(n_ctx)
        fast.prepare_cache(cache)
        for start in range(0, n_ctx, block_size):
            stop = min(start + block_size, n_ctx)
            cache.append(0, k[:, start:stop], v[:, start:stop])
            fast.forward_cached(0, q_full[:, start:stop], cache)

    return {
        "sliding_window": lambda: run_stateless(sliding),
        "hybrid_reference": lambda: run_stateless(reference),
        "hybrid_fast": run_fast,
    }


def run_micro(contexts: Sequence[int] = (512, 1024, 2048, 4096),
              repeats: int = 5, window: int = 128, n_sink: int = 16,
              top_k: int = 128, threshold: Optional[float] = None,
              n_q_heads: int = 8, n_kv_heads: int = 2, head_dim: int = 64,
              block_size: int = 256, seed: int = 0,
              out_dir: Optional[pathlib.Path] = None) -> Table:
    """Run the microbenchmark; returns the table and writes the JSON."""
    contexts = sorted(set(int(c) for c in contexts))
    mc = bench_model_config(n_q_heads, n_kv_heads, head_dim)
    if threshold is None:
        threshold = head_dim // 2
    cfg = LongSightConfig(window=window, n_sink=n_sink, top_k=top_k,
                          thresholds=threshold)
    rng = np.random.default_rng(seed)
    kv_dtype = np.dtype(mc.kv_dtype)

    series: Dict[str, Dict[str, List[float]]] = {
        name: {"decode_s": [], "prefill_s": []} for name in BACKENDS}
    for n_ctx in contexts:
        k = rng.normal(size=(n_kv_heads, n_ctx, head_dim)).astype(kv_dtype)
        v = rng.normal(size=(n_kv_heads, n_ctx, head_dim)).astype(kv_dtype)
        q_full = rng.normal(size=(n_q_heads, n_ctx, head_dim))
        q_last = q_full[:, -1:, :]
        for name, fn in _decode_runners(mc, cfg, k, v, q_last).items():
            series[name]["decode_s"].append(_time_best(fn, repeats))
        for name, fn in _prefill_runners(mc, cfg, k, v, q_full,
                                         block_size).items():
            series[name]["prefill_s"].append(_time_best(fn, repeats))

    speedup = {
        f"{phase}_fast_vs_reference": [
            ref / max(fastt, 1e-12)
            for ref, fastt in zip(series["hybrid_reference"][f"{phase}_s"],
                                  series["hybrid_fast"][f"{phase}_s"])]
        for phase in ("decode", "prefill")
    }

    payload = {
        "benchmark": "attention_micro",
        "schema_version": SCHEMA_VERSION,
        "units": {"context": "tokens", "decode_s": "seconds per decode step",
                  "prefill_s": "seconds per full prefill",
                  "speedup": "reference_time / fast_time"},
        "model": {"n_q_heads": n_q_heads, "n_kv_heads": n_kv_heads,
                  "head_dim": head_dim, "kv_dtype": mc.kv_dtype},
        "config": {"window": window, "n_sink": n_sink, "top_k": top_k,
                   "threshold": threshold, "block_size": block_size,
                   "repeats": repeats},
        "contexts": contexts,
        "backends": series,
        "speedup": speedup,
    }
    out_dir = pathlib.Path(out_dir) if out_dir is not None else results_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / RESULT_NAME).write_text(json.dumps(payload, indent=2) + "\n")

    table = Table(
        "attention microbenchmark (decode one token / prefill full context)",
        ["context", "sw_decode_ms", "ref_decode_ms", "fast_decode_ms",
         "decode_speedup", "ref_prefill_ms", "fast_prefill_ms",
         "prefill_speedup"],
        note=f"best of {repeats}; window={window} top_k={top_k} "
             f"threshold={threshold} heads={n_q_heads}/{n_kv_heads} "
             f"d={head_dim}")
    for i, n_ctx in enumerate(contexts):
        table.add_row(
            context=n_ctx,
            sw_decode_ms=series["sliding_window"]["decode_s"][i] * 1e3,
            ref_decode_ms=series["hybrid_reference"]["decode_s"][i] * 1e3,
            fast_decode_ms=series["hybrid_fast"]["decode_s"][i] * 1e3,
            decode_speedup=speedup["decode_fast_vs_reference"][i],
            ref_prefill_ms=series["hybrid_reference"]["prefill_s"][i] * 1e3,
            fast_prefill_ms=series["hybrid_fast"]["prefill_s"][i] * 1e3,
            prefill_speedup=speedup["prefill_fast_vs_reference"][i],
        )
    return table


def validate_payload(payload: dict) -> List[str]:
    """Schema check used by the smoke test; returns a list of problems."""
    problems = []
    for key in ("benchmark", "schema_version", "units", "model", "config",
                "contexts", "backends", "speedup"):
        if key not in payload:
            problems.append(f"missing key: {key}")
    if problems:
        return problems
    contexts = payload["contexts"]
    if any(b >= a for a, b in zip(contexts[1:], contexts)):
        problems.append("contexts axis is not strictly increasing")
    for unit_key in ("context", "decode_s", "prefill_s", "speedup"):
        if unit_key not in payload["units"]:
            problems.append(f"missing unit: {unit_key}")
    for name in BACKENDS:
        backend = payload["backends"].get(name)
        if backend is None:
            problems.append(f"missing backend series: {name}")
            continue
        for phase in ("decode_s", "prefill_s"):
            values = backend.get(phase)
            if values is None or len(values) != len(contexts):
                problems.append(f"{name}.{phase} length != len(contexts)")
            elif any(t <= 0 for t in values):
                problems.append(f"{name}.{phase} has non-positive times")
    for key in ("decode_fast_vs_reference", "prefill_fast_vs_reference"):
        values = payload["speedup"].get(key)
        if values is None or len(values) != len(contexts):
            problems.append(f"speedup.{key} length != len(contexts)")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.micro",
        description="Attention prefill/decode microbenchmark "
                    "(sliding-window vs hybrid vs fast-hybrid).")
    parser.add_argument("--contexts", type=int, nargs="+",
                        default=[512, 1024, 2048, 4096])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--window", type=int, default=128)
    parser.add_argument("--n-sink", type=int, default=16)
    parser.add_argument("--top-k", type=int, default=128)
    parser.add_argument("--threshold", type=float, default=None)
    parser.add_argument("--n-q-heads", type=int, default=8)
    parser.add_argument("--n-kv-heads", type=int, default=2)
    parser.add_argument("--head-dim", type=int, default=64)
    parser.add_argument("--block-size", type=int, default=256)
    parser.add_argument("--out-dir", type=pathlib.Path, default=None,
                        help="directory for BENCH_attention.json "
                             "(default: results/)")
    args = parser.parse_args(argv)
    table = run_micro(
        contexts=args.contexts, repeats=args.repeats, window=args.window,
        n_sink=args.n_sink, top_k=args.top_k, threshold=args.threshold,
        n_q_heads=args.n_q_heads, n_kv_heads=args.n_kv_heads,
        head_dim=args.head_dim, block_size=args.block_size,
        out_dir=args.out_dir)
    print(table.render())
    out_dir = args.out_dir if args.out_dir is not None else results_dir()
    print(f"[saved to {pathlib.Path(out_dir) / RESULT_NAME}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
