"""Attention microbenchmark CLI (``python -m repro.bench.micro``).

Times prefill and decode for five attention backends across context
lengths:

- ``sliding_window`` — the StreamingLLM-style baseline (O(window)/query),
- ``hybrid_reference`` — :class:`LongSightAttention` per-head reference loop,
- ``hybrid_fast`` — the head-batched monolithic fast path consuming the KV
  cache's incremental sign store (``prefill_tile=0``),
- ``hybrid_tiled`` — the fast path with the IO-aware tiled prefill enabled
  (streams keys/values/signs in ``--prefill-tile`` column tiles, so large
  contexts never materialize an ``(n_queries, n_ctx)`` score array),
- ``hybrid_antidiag`` — the XAttention-style antidiagonal block-scoring
  pre-filter (:mod:`repro.core.antidiag`).

Quadratic-cost prefill series (the reference loop and the monolithic fast
path) are only measured up to ``--max-reference-context``; beyond it
their entries are ``null`` — a 256k reference prefill would take hours
and teach nothing.  Decode is cheap for every backend, so decode series
are always complete, which keeps the long-context decode speedup
(the paper's headline number) directly measurable at every point of the
curve.

Results are written as ``BENCH_attention.json`` (default: ``results/``) so
later performance work has a trajectory to regress against.  Schema v2 is
validated by ``tests/bench/test_micro.py``:

- ``contexts`` is a strictly increasing token-count axis,
- every backend series has one entry per context (prefill entries may be
  ``null`` above the reference cap),
- ``speedup.decode`` / ``speedup.prefill`` hold per-backend
  reference-time / backend-time curves (``null`` where either side was
  not measured),
- all times are seconds (best of ``--repeats``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.bench.tables import Table, results_dir
from repro.core.antidiag import AntidiagonalAttention
from repro.core.config import LongSightConfig
from repro.core.hybrid import LongSightAttention, SlidingWindowAttention
from repro.llm.config import ModelConfig
from repro.llm.kv_cache import KVCache

SCHEMA_VERSION = 2
RESULT_NAME = "BENCH_attention.json"
BACKENDS = ("sliding_window", "hybrid_reference", "hybrid_fast",
            "hybrid_tiled", "hybrid_antidiag")
#: Backends whose *prefill* cost is quadratic in context length; their
#: prefill series stop at ``max_reference_context``.
QUADRATIC_PREFILL = ("hybrid_reference", "hybrid_fast")


def bench_model_config(n_q_heads: int = 8, n_kv_heads: int = 2,
                       head_dim: int = 64) -> ModelConfig:
    """A single-layer attention-only stand-in (weights are never run)."""
    return ModelConfig(name="bench-attn", vocab_size=256, n_layers=1,
                       n_q_heads=n_q_heads, n_kv_heads=n_kv_heads,
                       head_dim=head_dim, d_ff=4 * n_q_heads * head_dim)


def _time_best(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _backend_stack(cfg: LongSightConfig, prefill_tile: int) -> Dict[str, object]:
    """Fresh backend instances, one per benchmarked series."""
    return {
        "sliding_window": SlidingWindowAttention(window=cfg.window,
                                                 n_sink=cfg.n_sink),
        "hybrid_reference": LongSightAttention(cfg.replace(prefill_tile=0),
                                               use_fast_path=False),
        "hybrid_fast": LongSightAttention(cfg.replace(prefill_tile=0)),
        "hybrid_tiled": LongSightAttention(
            cfg.replace(prefill_tile=prefill_tile)),
        "hybrid_antidiag": AntidiagonalAttention(
            cfg.replace(prefilter="antidiag")),
    }


def _decode_runners(mc: ModelConfig, cfg: LongSightConfig, k: np.ndarray,
                    v: np.ndarray, q: np.ndarray,
                    prefill_tile: int) -> Dict[str, Callable]:
    """One-token decode at full context, per backend.

    Cache-consuming backends get a pre-populated cache with their
    incremental metadata (packed signs / block summaries) already built,
    mirroring steady-state decode where appends maintain it token by
    token.
    """
    stack = _backend_stack(cfg, prefill_tile)
    caches: Dict[str, KVCache] = {}
    for name in ("hybrid_fast", "hybrid_tiled", "hybrid_antidiag"):
        cache = KVCache(mc)
        stack[name].prepare_cache(cache)
        cache.append(0, k, v)
        caches[name] = cache
    return {
        "sliding_window": lambda: stack["sliding_window"].forward(0, q, k, v),
        "hybrid_reference":
            lambda: stack["hybrid_reference"].forward(0, q, k, v),
        "hybrid_fast":
            lambda: stack["hybrid_fast"].forward_cached(
                0, q, caches["hybrid_fast"]),
        "hybrid_tiled":
            lambda: stack["hybrid_tiled"].forward_cached(
                0, q, caches["hybrid_tiled"]),
        "hybrid_antidiag":
            lambda: stack["hybrid_antidiag"].forward_cached(
                0, q, caches["hybrid_antidiag"]),
    }


def _prefill_runners(mc: ModelConfig, cfg: LongSightConfig, k: np.ndarray,
                     v: np.ndarray, q_full: np.ndarray, block_size: int,
                     prefill_tile: int) -> Dict[str, Callable]:
    """Blockwise prefill over the whole context, per backend."""
    n_ctx = k.shape[1]
    stack = _backend_stack(cfg, prefill_tile)

    def run_stateless(backend) -> None:
        for start in range(0, n_ctx, block_size):
            stop = min(start + block_size, n_ctx)
            backend.forward(0, q_full[:, start:stop], k[:, :stop], v[:, :stop])

    def run_cached(backend) -> Callable[[], None]:
        def run() -> None:
            cache = KVCache(mc)
            cache.reserve(n_ctx)
            backend.prepare_cache(cache)
            for start in range(0, n_ctx, block_size):
                stop = min(start + block_size, n_ctx)
                cache.append(0, k[:, start:stop], v[:, start:stop])
                backend.forward_cached(0, q_full[:, start:stop], cache)
        return run

    return {
        "sliding_window": lambda: run_stateless(stack["sliding_window"]),
        "hybrid_reference": lambda: run_stateless(stack["hybrid_reference"]),
        "hybrid_fast": run_cached(stack["hybrid_fast"]),
        "hybrid_tiled": run_cached(stack["hybrid_tiled"]),
        "hybrid_antidiag": run_cached(stack["hybrid_antidiag"]),
    }


def run_micro(contexts: Sequence[int] = (512, 1024, 2048, 4096),
              repeats: int = 5, window: int = 128, n_sink: int = 16,
              top_k: int = 128, threshold: Optional[float] = None,
              n_q_heads: int = 8, n_kv_heads: int = 2, head_dim: int = 64,
              block_size: int = 256, prefill_tile: int = 4096,
              max_reference_context: int = 16384, seed: int = 0,
              out_dir: Optional[pathlib.Path] = None) -> Table:
    """Run the microbenchmark; returns the table and writes the JSON."""
    contexts = sorted(set(int(c) for c in contexts))
    mc = bench_model_config(n_q_heads, n_kv_heads, head_dim)
    if threshold is None:
        threshold = head_dim // 2
    cfg = LongSightConfig(window=window, n_sink=n_sink, top_k=top_k,
                          thresholds=threshold)
    rng = np.random.default_rng(seed)
    kv_dtype = np.dtype(mc.kv_dtype)

    series: Dict[str, Dict[str, List[Optional[float]]]] = {
        name: {"decode_s": [], "prefill_s": []} for name in BACKENDS}
    for n_ctx in contexts:
        k = rng.normal(size=(n_kv_heads, n_ctx, head_dim)).astype(kv_dtype)
        v = rng.normal(size=(n_kv_heads, n_ctx, head_dim)).astype(kv_dtype)
        q_full = rng.normal(size=(n_q_heads, n_ctx, head_dim))
        q_last = q_full[:, -1:, :]
        for name, fn in _decode_runners(mc, cfg, k, v, q_last,
                                        prefill_tile).items():
            series[name]["decode_s"].append(_time_best(fn, repeats))
        prefill = _prefill_runners(mc, cfg, k, v, q_full, block_size,
                                   prefill_tile)
        for name, fn in prefill.items():
            if name in QUADRATIC_PREFILL and n_ctx > max_reference_context:
                series[name]["prefill_s"].append(None)
            else:
                series[name]["prefill_s"].append(_time_best(fn, repeats))

    def _ratio(ref: Optional[float], t: Optional[float]) -> Optional[float]:
        if ref is None or t is None:
            return None
        return ref / max(t, 1e-12)

    speedup = {
        phase: {
            name: [_ratio(ref, t) for ref, t in
                   zip(series["hybrid_reference"][f"{phase}_s"],
                       series[name][f"{phase}_s"])]
            for name in BACKENDS if name != "hybrid_reference"
        }
        for phase in ("decode", "prefill")
    }

    payload = {
        "benchmark": "attention_micro",
        "schema_version": SCHEMA_VERSION,
        "units": {"context": "tokens", "decode_s": "seconds per decode step",
                  "prefill_s": "seconds per full prefill (null = skipped, "
                               "quadratic backend above the reference cap)",
                  "speedup": "reference_time / backend_time"},
        "model": {"n_q_heads": n_q_heads, "n_kv_heads": n_kv_heads,
                  "head_dim": head_dim, "kv_dtype": mc.kv_dtype},
        "config": {"window": window, "n_sink": n_sink, "top_k": top_k,
                   "threshold": threshold, "block_size": block_size,
                   "prefill_tile": prefill_tile,
                   "max_reference_context": max_reference_context,
                   "antidiag": {"block": cfg.antidiag_block,
                                "stride": cfg.antidiag_stride,
                                "tau": cfg.antidiag_tau,
                                "max_blocks": cfg.antidiag_max_blocks},
                   "repeats": repeats},
        "contexts": contexts,
        "backends": series,
        "speedup": speedup,
    }
    out_dir = pathlib.Path(out_dir) if out_dir is not None else results_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / RESULT_NAME).write_text(json.dumps(payload, indent=2) + "\n")

    def _ms(value: Optional[float]) -> Optional[float]:
        return None if value is None else value * 1e3

    table = Table(
        "attention microbenchmark (decode one token / prefill full context)",
        ["context", "ref_decode_ms", "fast_decode_ms", "anti_decode_ms",
         "decode_speedup", "ref_prefill_ms", "tiled_prefill_ms",
         "anti_prefill_ms", "tiled_speedup"],
        note=f"best of {repeats}; window={window} top_k={top_k} "
             f"threshold={threshold} heads={n_q_heads}/{n_kv_heads} "
             f"d={head_dim} tile={prefill_tile}")
    for i, n_ctx in enumerate(contexts):
        table.add_row(
            context=n_ctx,
            ref_decode_ms=_ms(series["hybrid_reference"]["decode_s"][i]),
            fast_decode_ms=_ms(series["hybrid_fast"]["decode_s"][i]),
            anti_decode_ms=_ms(series["hybrid_antidiag"]["decode_s"][i]),
            decode_speedup=speedup["decode"]["hybrid_fast"][i],
            ref_prefill_ms=_ms(series["hybrid_reference"]["prefill_s"][i]),
            tiled_prefill_ms=_ms(series["hybrid_tiled"]["prefill_s"][i]),
            anti_prefill_ms=_ms(series["hybrid_antidiag"]["prefill_s"][i]),
            tiled_speedup=speedup["prefill"]["hybrid_tiled"][i],
        )
    return table


def validate_payload(payload: dict) -> List[str]:
    """Schema-v2 check used by the smoke test; returns a list of problems."""
    problems = []
    for key in ("benchmark", "schema_version", "units", "model", "config",
                "contexts", "backends", "speedup"):
        if key not in payload:
            problems.append(f"missing key: {key}")
    if problems:
        return problems
    if payload["schema_version"] != SCHEMA_VERSION:
        problems.append(f"schema_version != {SCHEMA_VERSION}")
    contexts = payload["contexts"]
    if any(b >= a for a, b in zip(contexts[1:], contexts)):
        problems.append("contexts axis is not strictly increasing")
    for unit_key in ("context", "decode_s", "prefill_s", "speedup"):
        if unit_key not in payload["units"]:
            problems.append(f"missing unit: {unit_key}")
    for name in BACKENDS:
        backend = payload["backends"].get(name)
        if backend is None:
            problems.append(f"missing backend series: {name}")
            continue
        decode = backend.get("decode_s")
        if decode is None or len(decode) != len(contexts):
            problems.append(f"{name}.decode_s length != len(contexts)")
        elif any(t is None or t <= 0 for t in decode):
            problems.append(f"{name}.decode_s has missing/non-positive times")
        prefill = backend.get("prefill_s")
        if prefill is None or len(prefill) != len(contexts):
            problems.append(f"{name}.prefill_s length != len(contexts)")
        else:
            if any(t is not None and t <= 0 for t in prefill):
                problems.append(f"{name}.prefill_s has non-positive times")
            if name not in QUADRATIC_PREFILL and any(
                    t is None for t in prefill):
                problems.append(f"{name}.prefill_s has null entries but is "
                                "not a capped quadratic backend")
    for phase in ("decode", "prefill"):
        curves = payload["speedup"].get(phase)
        if not isinstance(curves, dict):
            problems.append(f"speedup.{phase} is not a per-backend mapping")
            continue
        for name in BACKENDS:
            if name == "hybrid_reference":
                continue
            values = curves.get(name)
            if values is None or len(values) != len(contexts):
                problems.append(
                    f"speedup.{phase}.{name} length != len(contexts)")
            elif phase == "decode" and any(v is None for v in values):
                problems.append(f"speedup.decode.{name} has null entries")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.micro",
        description="Attention prefill/decode microbenchmark "
                    "(sliding-window vs hybrid reference/fast/tiled vs "
                    "antidiagonal block scoring).")
    parser.add_argument("--contexts", type=int, nargs="+",
                        default=[512, 1024, 2048, 4096])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--window", type=int, default=128)
    parser.add_argument("--n-sink", type=int, default=16)
    parser.add_argument("--top-k", type=int, default=128)
    parser.add_argument("--threshold", type=float, default=None)
    parser.add_argument("--n-q-heads", type=int, default=8)
    parser.add_argument("--n-kv-heads", type=int, default=2)
    parser.add_argument("--head-dim", type=int, default=64)
    parser.add_argument("--block-size", type=int, default=256)
    parser.add_argument("--prefill-tile", type=int, default=4096,
                        help="K/V column-tile size of the tiled prefill "
                             "series")
    parser.add_argument("--max-reference-context", type=int, default=16384,
                        help="largest context at which the quadratic "
                             "prefill series (reference, monolithic fast) "
                             "are still measured; null beyond")
    parser.add_argument("--out-dir", type=pathlib.Path, default=None,
                        help="directory for BENCH_attention.json "
                             "(default: results/)")
    args = parser.parse_args(argv)
    table = run_micro(
        contexts=args.contexts, repeats=args.repeats, window=args.window,
        n_sink=args.n_sink, top_k=args.top_k, threshold=args.threshold,
        n_q_heads=args.n_q_heads, n_kv_heads=args.n_kv_heads,
        head_dim=args.head_dim, block_size=args.block_size,
        prefill_tile=args.prefill_tile,
        max_reference_context=args.max_reference_context,
        out_dir=args.out_dir)
    print(table.render())
    out_dir = args.out_dir if args.out_dir is not None else results_dir()
    print(f"[saved to {pathlib.Path(out_dir) / RESULT_NAME}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
