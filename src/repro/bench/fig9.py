"""Figure 9: system-level per-token latency breakdown for LongSight.

Shows how the bottleneck shifts with load (Section 9.2): with few users
the GPU dominates regardless of context; as DReX fills up, short contexts
become DReX/CXL-bound (per-user value loading), while very long contexts
reduce the feasible user count and hand the bottleneck back to the GPU.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.bench.tables import Table
from repro.core.config import LongSightConfig
from repro.llm.config import LLAMA3_1B, LLAMA3_8B, ModelConfig
from repro.system.engine import LongSightSystem

CONTEXTS = [8192, 32768, 131072, 524288, 1048576]


def run_fig9(models: Iterable[ModelConfig] = (LLAMA3_1B, LLAMA3_8B),
             contexts: Optional[List[int]] = None) -> Table:
    contexts = contexts or CONTEXTS
    engine = LongSightSystem(LongSightConfig(window=1024, n_sink=16,
                                             top_k=1024, use_itq=True))
    table = Table(
        "Figure 9: LongSight per-token latency breakdown (ms)",
        ["model", "context", "users", "gemm", "window_attn", "drex", "cxl",
         "exposed_offload", "merge", "total", "bottleneck"],
        note="users = 1 (GPU-bound regime) and max (device saturated).")
    for config in models:
        for context in contexts:
            max_users = engine.max_users(config, context)
            if max_users < 1:
                continue
            for users in sorted({1, max_users}):
                point = engine.evaluate(config, context, users)
                b = point.breakdown
                table.add_row(
                    model=config.name, context=context, users=users,
                    gemm=b["gemm_s"] * 1e3,
                    window_attn=b["window_attention_s"] * 1e3,
                    drex=b["drex_s"] * 1e3,
                    cxl=b["cxl_s"] * 1e3,
                    exposed_offload=b["exposed_offload_s"] * 1e3,
                    merge=b["merge_s"] * 1e3,
                    total=point.token_latency_s * 1e3,
                    bottleneck=engine.bottleneck(config, context, users))
    return table
