"""Figure 7: decode throughput and per-token latency across systems.

Grid over {Llama-3-1B, Llama-3-8B} x context {8K..1M} x user counts for
1-GPU, 2-GPU, AttAcc and LongSight.  Missing entries ("OOM") mark contexts
whose KV cache exceeds GPU memory, as in the paper.  This experiment is
purely analytical (paper dimensions, no miniatures).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.bench.tables import Table
from repro.core.config import LongSightConfig
from repro.llm.config import LLAMA3_1B, LLAMA3_8B, ModelConfig
from repro.system.baselines import AttAccSystem, DenseGpuSystem, ServingPoint
from repro.system.engine import LongSightSystem

CONTEXTS = [8192, 32768, 131072, 262144, 524288, 1048576]
USER_GRID = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]


def default_systems():
    ls = LongSightSystem(LongSightConfig(window=1024, n_sink=16, top_k=1024,
                                         use_itq=True))
    return [DenseGpuSystem(1), DenseGpuSystem(2), AttAccSystem(), ls]


def best_point(system, config: ModelConfig, context: int,
               users: Iterable[int] = USER_GRID) -> Optional[ServingPoint]:
    """Highest-throughput point over the user sweep (capacity-clipped)."""
    max_users = system.max_users(config, context)
    best = None
    for u in sorted(set(list(users) + [max_users])):
        if u < 1 or u > max_users:
            continue
        point = system.evaluate(config, context, u)
        if point and (best is None
                      or point.throughput_tps > best.throughput_tps):
            best = point
    return best


def run_fig7(models: Iterable[ModelConfig] = (LLAMA3_1B, LLAMA3_8B),
             contexts: Optional[List[int]] = None) -> Table:
    contexts = contexts or CONTEXTS
    systems = default_systems()
    table = Table(
        "Figure 7: decode throughput / per-token latency",
        ["model", "context", "system", "max_users", "best_users",
         "throughput_tps", "latency_ms_at_best", "latency_ms_1user"],
        note="Best point over a user sweep; '-' entries are GPU-memory OOM "
             "(the paper's missing bars).")
    for config in models:
        for context in contexts:
            for system in systems:
                point = best_point(system, config, context)
                one = system.evaluate(config, context, 1) \
                    if system.max_users(config, context) >= 1 else None
                table.add_row(
                    model=config.name, context=context, system=system.name,
                    max_users=system.max_users(config, context),
                    best_users=point.n_users if point else None,
                    throughput_tps=point.throughput_tps if point else None,
                    latency_ms_at_best=point.token_latency_s * 1e3
                    if point else None,
                    latency_ms_1user=one.token_latency_s * 1e3
                    if one else None)
    return table


def headline_speedups(config: ModelConfig) -> dict:
    """Section 9.1's headline: LongSight vs 1-GPU at max 1-GPU context.

    Returns throughput and per-user-latency ratios at the longest context a
    single GPU can still serve.
    """
    one = DenseGpuSystem(1)
    ls = LongSightSystem(LongSightConfig(window=1024, n_sink=16, top_k=1024,
                                         use_itq=True))
    context = 8192
    step = 8192
    while one.max_users(config, context + step) >= 1:
        context += step
    p1 = best_point(one, config, context)
    pl = best_point(ls, config, context)
    l1 = one.evaluate(config, context, 1)
    ll = ls.evaluate(config, context, 1)
    return {
        "context": context,
        "throughput_ratio": pl.throughput_tps / p1.throughput_tps,
        "per_user_latency_ratio": l1.token_latency_s / ll.token_latency_s,
    }
