"""Crash-recovery benchmark CLI (``python -m repro.bench.recovery``).

Measures what durable serving buys on a worker death: a 64k-charged-
context trace is served once uninterrupted (the *recompute* baseline —
what re-serving from scratch up to the crash point costs), then served
again under a :class:`~repro.system.faults.CrashPlan` that kills the
worker mid-decode, recovered via :func:`repro.durable.recover` (newest
valid snapshot + verified WAL replay), and stepped to completion.  The
payload records the recovery timings (``snapshot_load_s``, ``replay_s``,
``tokens_replayed``), the recovery-vs-recompute speedup, and the bit-
identity verdict comparing every session's final token stream against
the uninterrupted run — the same property ``tests/durable/`` pins.

Results are written as ``BENCH_recovery.json`` (default: ``results/``);
the schema is validated by ``validate_payload`` /
``tests/bench/test_recovery.py`` and registered in
:mod:`repro.bench.registry`.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import tempfile
import time
from typing import List, Optional

from repro.bench.serve import TINY_LS, TINY_MODEL
from repro.bench.tables import Table, results_dir
from repro.durable import DurableRun, recover
from repro.errors import WorkerKilledError
from repro.llm.config import LLAMA3_8B
from repro.llm.model import Transformer
from repro.serve.crossval import backend_factory, default_systems, \
    paired_workload
from repro.serve.engine import AnalyticTiming, ServeEngine
from repro.serve.paged_kv import PagedKVPool
from repro.serve.scheduler import SloPolicy
from repro.system.faults import CrashPlan
from repro.system.prefill import PrefillModel

SCHEMA_VERSION = 1
RESULT_NAME = "BENCH_recovery.json"


def _engine_builder(model: Transformer, system, n_requests: int):
    """Factory of fresh engines (restore needs a clean pool each time)."""
    def build() -> ServeEngine:
        pool = PagedKVPool(model.config, n_blocks=16 * n_requests,
                           block_tokens=16, prefix_caching=True)
        return ServeEngine(
            model, pool, backend_factory("longsight", TINY_LS),
            policy=SloPolicy(max_decode_batch=max(4, n_requests)),
            timing=AnalyticTiming(system, LLAMA3_8B,
                                  prefill=PrefillModel()),
            name="longsight")
    return build


def run_recovery(n_requests: int = 4, prompt_tokens: int = 24,
                 output_tokens: int = 16, charged_context: int = 65_536,
                 arrival_rate: float = 50.0, snapshot_every: int = 8,
                 kill_fraction: float = 0.7,
                 crash_kind: str = "kill_after_fsync", seed: int = 0,
                 out_dir: Optional[pathlib.Path] = None) -> Table:
    """Run the crash-recovery benchmark; returns the table, writes JSON."""
    model = Transformer(TINY_MODEL, seed=seed)
    system = default_systems()["longsight"]
    build = _engine_builder(model, system, n_requests)

    def workload():
        requests, _ = paired_workload(
            n_requests, arrival_rate, prompt_tokens, output_tokens,
            model.config.vocab_size,
            charged_prompt_tokens=charged_context, seed=seed)
        return requests

    # -- uninterrupted baseline: plain engine, per-step wall clocks ----------
    reference = workload()
    run = build().start(reference)
    cumulative: List[float] = []
    t0 = time.perf_counter()
    while run.step():
        cumulative.append(time.perf_counter() - t0)
    total_serve_s = time.perf_counter() - t0
    total_steps = len(cumulative)
    ref_outputs = {r.request_id: list(r.outputs) for r in reference}
    ref_tokens = run.tokens_generated

    # -- crash run + recovery ------------------------------------------------
    kill_step = max(1, min(total_steps, int(total_steps * kill_fraction)))
    recompute_to_kill_s = cumulative[kill_step - 1]
    with tempfile.TemporaryDirectory(prefix="bench-recovery-") as tmp:
        durable_dir = pathlib.Path(tmp)
        crashing = DurableRun(build(), workload(), durable_dir,
                              snapshot_every=snapshot_every,
                              crash=CrashPlan(kill_at_step=kill_step,
                                              kind=crash_kind))
        crash_info = {"kill_step": kill_step, "kind": crash_kind}
        try:
            while crashing.step():
                pass
            raise RuntimeError("crash plan never fired (kill_step beyond "
                               "the end of the run)")
        except WorkerKilledError as death:
            crash_info["died_at_step"] = death.step
        recovered, stats = recover(durable_dir, build(),
                                   snapshot_every=snapshot_every)
        recovered.serve()
        out = {r.request_id: list(r.outputs)
               for r in recovered.run._arrivals}

    identical = out == ref_outputs
    recovery_s = stats.snapshot_load_s + stats.replay_s
    speedup = recompute_to_kill_s / recovery_s if recovery_s > 0 \
        else float("inf")

    payload = {
        "benchmark": "recovery",
        "schema_version": SCHEMA_VERSION,
        "units": {
            "snapshot_load_s": "newest-valid-snapshot load + restore, "
                               "wall seconds",
            "replay_s": "verified WAL-suffix re-execution, wall seconds",
            "recovery_s": "snapshot_load_s + replay_s",
            "recompute_to_kill_s": "wall seconds to re-serve the trace "
                                   "from scratch up to the crash step",
            "speedup_vs_recompute": "recompute_to_kill_s / recovery_s",
            "tokens_replayed": "decode tokens re-executed and verified "
                               "against logged WAL records",
        },
        "config": {"n_requests": n_requests,
                   "prompt_tokens": prompt_tokens,
                   "output_tokens": output_tokens,
                   "charged_context": charged_context,
                   "arrival_rate_per_s": arrival_rate,
                   "snapshot_every": snapshot_every,
                   "kill_fraction": kill_fraction,
                   "seed": seed,
                   "functional_model": TINY_MODEL.name,
                   "charged_model": LLAMA3_8B.name},
        "uninterrupted": {"steps": total_steps,
                          "tokens_generated": ref_tokens,
                          "total_serve_s": total_serve_s,
                          "recompute_to_kill_s": recompute_to_kill_s},
        "crash": crash_info,
        "recovery": {"snapshot_load_s": stats.snapshot_load_s,
                     "replay_s": stats.replay_s,
                     "recovery_s": recovery_s,
                     "steps_replayed": stats.steps_replayed,
                     "tokens_replayed": stats.tokens_replayed,
                     "snapshot_step": stats.snapshot_step,
                     "snapshots_skipped": stats.snapshots_skipped,
                     "stale_wal": stats.stale_wal,
                     "speedup_vs_recompute": speedup},
        "identity": {"outputs_bit_identical": identical,
                     "sessions": len(ref_outputs),
                     "tokens_compared": sum(len(v)
                                            for v in ref_outputs.values())},
    }
    out_dir = pathlib.Path(out_dir) if out_dir is not None else results_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / RESULT_NAME).write_text(json.dumps(payload, indent=2) + "\n")

    table = Table(
        "crash recovery vs recompute (64k-charged-context trace)",
        ["kill_step", "steps", "snapshot_load_ms", "replay_ms",
         "recompute_ms", "speedup", "tokens_replayed", "identical"],
        note=f"{n_requests} sessions, snapshot every {snapshot_every} "
             f"steps, crash kind {crash_kind}")
    table.add_row(kill_step=kill_step, steps=total_steps,
                  snapshot_load_ms=stats.snapshot_load_s * 1e3,
                  replay_ms=stats.replay_s * 1e3,
                  recompute_ms=recompute_to_kill_s * 1e3,
                  speedup=speedup,
                  tokens_replayed=stats.tokens_replayed,
                  identical=identical)
    return table


def validate_payload(payload: dict) -> List[str]:
    """Schema check used by the artifact test; returns problems."""
    problems = []
    for key in ("benchmark", "schema_version", "units", "config",
                "uninterrupted", "crash", "recovery", "identity"):
        if key not in payload:
            problems.append(f"missing key: {key}")
    if problems:
        return problems
    config = payload["config"]
    if config.get("charged_context", 0) < 65_536:
        problems.append("charged_context below the 64k acceptance floor")
    recovery = payload["recovery"]
    for key in ("snapshot_load_s", "replay_s", "recovery_s"):
        value = recovery.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"recovery: bad {key}")
    if recovery.get("recovery_s", 0) <= 0:
        problems.append("recovery: recovery_s must be > 0")
    if not isinstance(recovery.get("tokens_replayed"), int) \
            or recovery["tokens_replayed"] < 0:
        problems.append("recovery: bad tokens_replayed")
    speedup = recovery.get("speedup_vs_recompute")
    if not isinstance(speedup, (int, float)) or speedup <= 1.0:
        problems.append(
            "recovery: speedup_vs_recompute must beat recompute (> 1.0)")
    crash = payload["crash"]
    if not isinstance(crash.get("kill_step"), int) \
            or crash["kill_step"] < 1:
        problems.append("crash: bad kill_step")
    steps = payload["uninterrupted"].get("steps", 0)
    if not isinstance(steps, int) or steps < 1:
        problems.append("uninterrupted: bad steps")
    elif crash.get("kill_step", 0) > steps:
        problems.append("crash: kill_step beyond the uninterrupted run")
    identity = payload["identity"]
    if identity.get("outputs_bit_identical") is not True:
        problems.append(
            "identity: recovered outputs are not bit-identical to the "
            "uninterrupted run")
    if identity.get("sessions", 0) < 1:
        problems.append("identity: no sessions compared")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.recovery",
        description="Durable-serving crash recovery: snapshot load + WAL "
                    "replay vs full recompute, with bit-identity check.")
    parser.add_argument("--n-requests", type=int, default=4)
    parser.add_argument("--prompt-tokens", type=int, default=24,
                        help="functional (tiny-model) prompt length")
    parser.add_argument("--output-tokens", type=int, default=16)
    parser.add_argument("--charged-context", type=int, default=65_536,
                        help="prompt tokens charged to the analytic "
                             "latency model (>= 65536 for acceptance)")
    parser.add_argument("--arrival-rate", type=float, default=50.0)
    parser.add_argument("--snapshot-every", type=int, default=8)
    parser.add_argument("--kill-fraction", type=float, default=0.7,
                        help="crash after this fraction of the "
                             "uninterrupted run's steps")
    parser.add_argument("--crash-kind", default="kill_after_fsync",
                        choices=("kill_after_fsync", "kill_before_fsync",
                                 "torn_snapshot", "stale_wal"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out-dir", type=pathlib.Path, default=None,
                        help=f"directory for {RESULT_NAME} "
                             "(default: results/)")
    args = parser.parse_args(argv)
    table = run_recovery(n_requests=args.n_requests,
                         prompt_tokens=args.prompt_tokens,
                         output_tokens=args.output_tokens,
                         charged_context=args.charged_context,
                         arrival_rate=args.arrival_rate,
                         snapshot_every=args.snapshot_every,
                         kill_fraction=args.kill_fraction,
                         crash_kind=args.crash_kind, seed=args.seed,
                         out_dir=args.out_dir)
    print(table.render())
    out_dir = args.out_dir if args.out_dir is not None else results_dir()
    print(f"[saved to {pathlib.Path(out_dir) / RESULT_NAME}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
