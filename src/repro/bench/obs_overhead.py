"""Instrumentation-overhead benchmark (``python -m repro.bench.obs_overhead``).

The observability layer is meant to stay on by default, so its cost must
be provably negligible.  This benchmark times a decode microloop — a tiny
seeded transformer really decoding tokens — three ways:

- ``baseline``: no instrumentation calls in the loop at all;
- ``noop``: every step records the same spans/counters/histograms one
  ``ServeEngine`` step records, against a **disabled** registry and
  tracer (the no-op mode);
- ``enabled``: the same calls against an enabled registry and tracer.

The headline number is ``noop_overhead_frac`` — the relative cost of
leaving the hooks in when observability is off — which
``tests/obs/test_overhead.py`` pins below 5%.  Results are written as
schema-checked ``BENCH_obs.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import List, Optional

import numpy as np

from repro.bench.tables import Table, results_dir
from repro.core.config import LongSightConfig
from repro.core.hybrid import LongSightAttention
from repro.llm.config import ModelConfig
from repro.llm.kv_cache import KVCache
from repro.llm.model import Transformer
from repro.obs import NULL_OBS, MetricsRegistry, Obs, Tracer

SCHEMA_VERSION = 1
RESULT_NAME = "BENCH_obs.json"

#: Same tiny functional model the serve bench decodes with.
TINY_MODEL = ModelConfig(name="obs-tiny", vocab_size=64, n_layers=2,
                         n_q_heads=4, n_kv_heads=2, head_dim=8, d_ff=32,
                         qk_bias=True)
TINY_LS = LongSightConfig(window=8, n_sink=4, top_k=12, thresholds=3)


def _microloop(model: Transformer, prompt: np.ndarray, steps: int,
               obs: Optional[Obs]) -> float:
    """Decode ``steps`` tokens; returns loop seconds (prefill excluded).

    ``obs=None`` is the uninstrumented baseline.  Otherwise each step
    makes the instrumentation calls one engine step makes — two nested
    spans, four counters/gauges, two histogram observations — against the
    given bundle.  The attention backend itself is pinned to ``NULL_OBS``
    in every mode so the decoded workload is identical across modes.
    """
    backend = LongSightAttention(TINY_LS, obs=NULL_OBS)
    cache = KVCache(model.config)
    logits = model.prefill(prompt, cache, backend=backend)
    token = int(np.argmax(logits))
    if obs is None:
        start = time.perf_counter()
        for _ in range(steps):
            logits = model.decode_step(token, cache, backend=backend)
            token = int(np.argmax(logits))
        return time.perf_counter() - start
    metrics, tracer = obs.metrics, obs.tracer
    start = time.perf_counter()
    for step in range(steps):
        with tracer.span("engine.step"):
            with tracer.span("decode_batch", batch=1):
                logits = model.decode_step(token, cache, backend=backend)
            token = int(np.argmax(logits))
            metrics.counter("loop.steps").inc()
            metrics.counter("loop.tokens").inc()
            metrics.gauge("loop.queue_depth").set(0)
            metrics.gauge("loop.context").set(step)
            metrics.histogram("loop.decode_batch").observe(1.0)
            metrics.histogram("loop.step_s").observe(1e-4)
    return time.perf_counter() - start


def _measure(model: Transformer, prompt: np.ndarray, steps: int,
             reps: int) -> dict:
    """Best-of-``reps`` seconds per mode (interleaved to spread noise)."""
    times = {"baseline": [], "noop": [], "enabled": []}
    for _ in range(reps):
        times["baseline"].append(_microloop(model, prompt, steps, None))
        times["noop"].append(_microloop(model, prompt, steps, NULL_OBS))
        enabled = Obs(MetricsRegistry(enabled=True), Tracer(enabled=True))
        times["enabled"].append(_microloop(model, prompt, steps, enabled))
    return {mode: min(values) for mode, values in times.items()}


def run_obs_overhead(steps: int = 512, reps: int = 3, seed: int = 0,
                     prompt_tokens: int = 24,
                     out_dir: Optional[pathlib.Path] = None) -> Table:
    """Run the overhead measurement; returns the table, writes the JSON."""
    if steps < 1 or reps < 1:
        raise ValueError("steps and reps must be >= 1")
    model = Transformer(TINY_MODEL, seed=seed)
    rng = np.random.default_rng(seed)
    prompt = rng.integers(0, TINY_MODEL.vocab_size, size=prompt_tokens)
    _microloop(model, prompt, min(steps, 32), None)   # warm numpy/caches
    best = _measure(model, prompt, steps, reps)

    baseline = best["baseline"]
    results = {
        "baseline_s": baseline,
        "noop_s": best["noop"],
        "enabled_s": best["enabled"],
        "noop_overhead_frac": (best["noop"] - baseline) / baseline,
        "enabled_overhead_frac": (best["enabled"] - baseline) / baseline,
        "baseline_step_us": baseline / steps * 1e6,
    }
    payload = {
        "benchmark": "obs_overhead",
        "schema_version": SCHEMA_VERSION,
        "units": {"*_s": "best-of-reps loop seconds (prefill excluded)",
                  "*_overhead_frac": "(mode - baseline) / baseline",
                  "baseline_step_us": "microseconds per decode step"},
        "config": {"steps": steps, "reps": reps, "seed": seed,
                   "prompt_tokens": prompt_tokens,
                   "model": TINY_MODEL.name},
        "results": results,
    }
    out_dir = pathlib.Path(out_dir) if out_dir is not None else results_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / RESULT_NAME).write_text(json.dumps(payload, indent=2) + "\n")

    table = Table(
        "instrumentation overhead (decode microloop, best of "
        f"{reps} reps x {steps} steps)",
        ["mode", "loop_s", "step_us", "overhead_pct"],
        note="noop must stay < 5% so instrumentation ships on by default")
    for mode in ("baseline", "noop", "enabled"):
        table.add_row(
            mode=mode,
            loop_s=best[mode],
            step_us=best[mode] / steps * 1e6,
            overhead_pct=(best[mode] - baseline) / baseline * 100.0)
    return table


def validate_payload(payload: dict) -> List[str]:
    """Schema check used by the smoke tests; returns a list of problems."""
    problems = []
    for key in ("benchmark", "schema_version", "units", "config", "results"):
        if key not in payload:
            problems.append(f"missing key: {key}")
    if problems:
        return problems
    if payload["benchmark"] != "obs_overhead":
        problems.append("benchmark name mismatch")
    config = payload["config"]
    if not isinstance(config.get("steps"), int) or config["steps"] < 1:
        problems.append("config.steps must be a positive int")
    results = payload["results"]
    for key in ("baseline_s", "noop_s", "enabled_s"):
        if not isinstance(results.get(key), (int, float)) \
                or results[key] <= 0:
            problems.append(f"results.{key} must be a positive number")
    for key in ("noop_overhead_frac", "enabled_overhead_frac"):
        if not isinstance(results.get(key), (int, float)):
            problems.append(f"results.{key} must be a number")
    # Timer noise can make an overhead slightly negative; a large negative
    # value means the measurement itself is broken.
    if isinstance(results.get("noop_overhead_frac"), (int, float)) \
            and results["noop_overhead_frac"] < -0.5:
        problems.append("noop_overhead_frac is implausibly negative")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.obs_overhead",
        description="Measure observability overhead on a decode microloop "
                    "(baseline vs no-op vs enabled instrumentation).")
    parser.add_argument("--steps", type=int, default=512)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--prompt-tokens", type=int, default=24)
    parser.add_argument("--out-dir", type=pathlib.Path, default=None,
                        help=f"directory for {RESULT_NAME} "
                             "(default: results/)")
    args = parser.parse_args(argv)
    table = run_obs_overhead(steps=args.steps, reps=args.reps,
                             seed=args.seed,
                             prompt_tokens=args.prompt_tokens,
                             out_dir=args.out_dir)
    print(table.render())
    out_dir = args.out_dir if args.out_dir is not None else results_dir()
    print(f"[saved to {pathlib.Path(out_dir) / RESULT_NAME}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
