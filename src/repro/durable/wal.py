"""Write-ahead log of scheduler events, fsync-batched with monotonic LSNs.

The WAL is line-oriented JSON: one record per line, each carrying a
monotonically increasing log sequence number and a CRC32 over its
canonical payload, so a torn tail (the half-written line a crash leaves
behind) is detected and truncated while mid-file corruption is reported
as :class:`~repro.errors.WalCorruptError` rather than silently replayed.
The first record is a ``begin`` header naming the *epoch* — one serving
lifetime of one durable directory — which snapshots also carry; replaying
a WAL whose epoch does not match the snapshot is refused
(:class:`~repro.errors.StaleWalError` semantics, handled by recovery).

Appends buffer in memory and reach disk in fsync batches
(``fsync_every`` records), so steady-state logging costs one fsync per
batch, not per record.  Callers that *act* on a record's content before
acknowledging (e.g. migrating a session to another worker) must
:meth:`~WriteAheadLog.sync` first — the write-ahead discipline; the
durable runner does this for ``inject`` and ``depart`` records.
:meth:`~WriteAheadLog.drop_unsynced` models process death before fsync:
the buffered tail vanishes exactly as it would with a real kill.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import zlib
from typing import Iterator, List, Optional, Tuple

from repro.errors import WalCorruptError

#: record kinds the durable runner emits.
RECORD_KINDS = ("begin", "admit", "prefill", "token", "preempt", "finish",
                "inject", "depart", "step")


@dataclasses.dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    lsn: int
    kind: str
    data: dict


def _encode(lsn: int, kind: str, data: dict) -> str:
    body = json.dumps({"lsn": lsn, "kind": kind, "data": data},
                      sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f'{body[:-1]},"crc":{crc}}}\n'


def _decode(line: str) -> WalRecord:
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise WalCorruptError(f"undecodable WAL line: {exc}") from exc
    if not isinstance(obj, dict) or "crc" not in obj:
        raise WalCorruptError("WAL line missing crc field")
    crc = obj.pop("crc")
    body = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != crc:
        raise WalCorruptError("WAL record CRC mismatch")
    return WalRecord(lsn=int(obj["lsn"]), kind=str(obj["kind"]),
                     data=obj["data"])


class WriteAheadLog:
    """Appender over one WAL file (see module docstring)."""

    def __init__(self, path: pathlib.Path, epoch: str,
                 fsync_every: int = 8, *, _resume_lsn: Optional[int] = None,
                 _resume_offset: Optional[int] = None) -> None:
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.path = pathlib.Path(path)
        self.epoch = epoch
        self.fsync_every = fsync_every
        self._buffer: List[str] = []
        self.records_appended = 0
        self.syncs = 0
        if _resume_lsn is None:
            self._lsn = 0
            self._file = open(self.path, "w", encoding="utf-8")
            self._buffer.append(_encode(0, "begin", {"epoch": epoch,
                                                     "version": 1}))
            self.sync()
        else:
            self._lsn = _resume_lsn
            # Truncate any torn tail before appending past it.
            self._file = open(self.path, "r+", encoding="utf-8")
            self._file.truncate(_resume_offset)
            self._file.seek(_resume_offset)

    @classmethod
    def resume(cls, path: pathlib.Path, epoch: str, last_lsn: int,
               end_offset: int, fsync_every: int = 8) -> "WriteAheadLog":
        """Continue appending to an existing WAL after recovery.

        ``end_offset`` is the byte offset just past the last valid record
        (from :func:`read_wal`); anything beyond it is a torn tail and is
        truncated away.
        """
        return cls(path, epoch, fsync_every, _resume_lsn=last_lsn,
                   _resume_offset=end_offset)

    @property
    def last_lsn(self) -> int:
        return self._lsn

    @property
    def unsynced(self) -> int:
        return len(self._buffer)

    def append(self, kind: str, data: dict) -> int:
        """Buffer one record; auto-syncs every ``fsync_every`` records."""
        if kind not in RECORD_KINDS:
            raise ValueError(f"unknown WAL record kind: {kind!r}")
        self._lsn += 1
        self._buffer.append(_encode(self._lsn, kind, data))
        self.records_appended += 1
        if len(self._buffer) >= self.fsync_every:
            self.sync()
        return self._lsn

    def sync(self) -> None:
        """Write buffered records and fsync them to disk."""
        if not self._buffer:
            return
        self._file.write("".join(self._buffer))
        self._file.flush()
        os.fsync(self._file.fileno())
        self._buffer.clear()
        self.syncs += 1

    def drop_unsynced(self) -> int:
        """Simulate process death before fsync: the buffered tail is lost.

        Returns the number of records dropped.  The in-memory LSN is *not*
        rolled back — the dying process never reuses them; the recovered
        appender resumes from the last on-disk LSN.
        """
        dropped = len(self._buffer)
        self._buffer.clear()
        return dropped

    def close(self) -> None:
        self.sync()
        self._file.close()


def read_wal(path: pathlib.Path
             ) -> Tuple[str, List[WalRecord], int, bool]:
    """Read a WAL file; returns ``(epoch, records, end_offset, torn)``.

    ``records`` excludes the ``begin`` header.  A torn *tail* — an
    undecodable or CRC-failing final line — is tolerated and truncated
    (``torn=True``); an invalid record followed by further valid lines is
    mid-file corruption and raises :class:`WalCorruptError`, as does a
    missing or malformed header or a non-monotonic LSN.
    ``end_offset`` is the byte offset just past the last valid record,
    the resume point for :meth:`WriteAheadLog.resume`.
    """
    raw = pathlib.Path(path).read_bytes()
    lines = raw.split(b"\n")
    decoded: List[WalRecord] = []
    offset = 0
    torn = False
    for i, line in enumerate(lines):
        if not line:
            continue
        try:
            record = _decode(line.decode("utf-8"))
        except (WalCorruptError, UnicodeDecodeError) as exc:
            remainder = b"\n".join(lines[i + 1:]).strip()
            if remainder:
                raise WalCorruptError(
                    f"corrupt WAL record mid-file at byte {offset}: {exc}")
            torn = True
            break
        expect = decoded[-1].lsn + 1 if decoded else 0
        if record.lsn != expect:
            raise WalCorruptError(
                f"non-monotonic LSN {record.lsn} (expected {expect})")
        decoded.append(record)
        offset += len(line) + 1
    if not decoded or decoded[0].kind != "begin":
        raise WalCorruptError("WAL has no begin header")
    epoch = str(decoded[0].data.get("epoch", ""))
    return epoch, decoded[1:], offset, torn


def iter_step_buckets(records: List[WalRecord]
                      ) -> Iterator[Tuple[List[WalRecord], Optional[WalRecord]]]:
    """Group records into per-step buckets.

    Yields ``(bucket, step_marker)`` for every completed step (bucket =
    the records logged since the previous ``step`` marker, marker = the
    ``step`` record closing it) and, if the log ends mid-step, a final
    ``(trailing, None)`` with the unterminated records.
    """
    bucket: List[WalRecord] = []
    for record in records:
        if record.kind == "step":
            yield bucket, record
            bucket = []
        else:
            bucket.append(record)
    if bucket:
        yield bucket, None
