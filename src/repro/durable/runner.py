"""Durable stepping loop and crash recovery for a serving engine.

:class:`DurableRun` wraps an :class:`~repro.serve.engine.EngineRun` with
the two durability mechanisms snapshots alone cannot provide:

- a **write-ahead log** of everything that happens between snapshots.
  True *inputs* (``inject`` of a dispatched/migrated request, ``depart``
  of a migrated-away one) are force-synced before the run acts on them —
  the write-ahead discipline — because they cannot be re-derived.
  *Execution* records (admit / prefill-chunk / decode-token / preempt /
  finish, plus a ``step`` marker carrying the clock) are fsync-batched:
  the engine is deterministic (argmax sampling, seeded fault RNG), so a
  lost unsynced exec tail regenerates identically on replay.  Replay
  therefore **re-executes** each logged step and *verifies* every token
  (and, under analytic timing, the clock) against the log, raising
  :class:`~repro.errors.ReplayDivergenceError` on any mismatch — the WAL
  is a redo/verification log, not an apply log.
- **periodic chain-hashed snapshots** (every ``snapshot_every`` steps,
  plus a step-0 baseline so recovery is always possible) with the last
  ``keep_snapshots`` retained, so a snapshot torn by the crash itself
  still leaves a valid predecessor to fall back to.

:func:`recover` inverts the process: newest verifiable snapshot →
:func:`~repro.durable.snapshot.restore_run` into a fresh engine → replay
the WAL suffix (records with LSN past the snapshot's) step-bucket by
step-bucket → resume appending to the same WAL.  Records after the last
``step`` marker belong to a step the dying process never completed
logging; its inputs are applied (injects) or parked as pending
departures, and the step itself simply re-executes — re-logging a
duplicate of the partial bucket, which is benign because replay
verification is idempotent.

Exactly-once migration: a ``depart`` record whose session was already
handed to the target worker pre-crash must not be re-migrated after
restore.  :meth:`DurableRun.wrap_migrate_handler` answers ``True`` for
such *pending* departures without consulting the router, and
:meth:`DurableRun.note_departure` consumes them without re-logging — the
restored worker never double-reports a session its target already owns.

A stale WAL (epoch differs from every snapshot's — mixed durable dirs,
operator error) is never replayed: the file is set aside as
``wal.log.stale``, a fresh log is begun, and a new snapshot is written
immediately so the directory is self-consistent again.  Snapshots are
self-contained, so a solo run recovered this way is still bit-identical;
only unreplayable cross-worker injects in the stale suffix (none, for a
solo run) would be lost.
"""

from __future__ import annotations

import dataclasses
import pathlib
import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (ReplayDivergenceError, SnapshotCorruptError,
                          WorkerKilledError)
from repro.serve.engine import ServeEngine
from repro.serve.events import ServeReport
from repro.serve.scheduler import RequestState, ServeRequest
from repro.system.faults import CrashPlan
from repro.durable.snapshot import (build_request, read_snapshot,
                                    restore_run, serialize_request,
                                    write_snapshot)
from repro.durable.wal import (WriteAheadLog, _encode, iter_step_buckets,
                               read_wal)

WAL_NAME = "wal.log"


class _StepObserver:
    """Pre-step state capture; diffed after the step into WAL records."""

    def __init__(self, run) -> None:
        self._run = run
        scheduler = run.scheduler
        self._out_lens = {r.request_id: len(r.outputs)
                          for r in run._arrivals}
        self._preempts = {r.request_id: r.events.preemptions
                          for r in run._arrivals}
        self._running = {r.request_id for r in scheduler.running}
        self._prefilled = {r.request_id: r.prefilled
                          for r in scheduler.running}
        self._n_finished = len(scheduler.finished)

    def records(self) -> List[Tuple[str, dict]]:
        run = self._run
        scheduler = run.scheduler
        out: List[Tuple[str, dict]] = []
        for r in scheduler.running:
            if r.request_id not in self._running:
                out.append(("admit", {"rid": r.request_id}))
        for r in scheduler.running:
            before = self._prefilled.get(r.request_id, 0)
            if r.state is RequestState.PREFILL and r.prefilled > before:
                out.append(("prefill", {"rid": r.request_id,
                                        "from": before,
                                        "to": r.prefilled}))
        for r in run._arrivals:
            was = self._out_lens.get(r.request_id, len(r.outputs))
            for i in range(was, len(r.outputs)):
                out.append(("token", {"rid": r.request_id, "index": i,
                                      "token": int(r.outputs[i])}))
            delta = r.events.preemptions - self._preempts.get(
                r.request_id, r.events.preemptions)
            if delta > 0:
                out.append(("preempt", {"rid": r.request_id,
                                        "count": delta}))
        for r in scheduler.finished[self._n_finished:]:
            out.append(("finish", {"rid": r.request_id,
                                   "shed": bool(r.events.shed),
                                   "rejected": bool(r.events.rejected)}))
        return out


class DurableRun:
    """An :class:`EngineRun` with WAL + snapshot durability (module doc).

    Exposes the same router-facing surface as ``EngineRun`` (``idle`` /
    ``clock`` / ``pending`` / ``inject`` / ``note_departure`` / ``step``
    / ``finish``), so a :class:`~repro.fleet.router.FleetRouter` can
    drive durable and plain workers interchangeably.
    """

    def __init__(self, engine: ServeEngine,
                 requests: Sequence[ServeRequest],
                 directory: pathlib.Path, *,
                 snapshot_every: int = 8, fsync_every: int = 8,
                 keep_snapshots: int = 2,
                 crash: Optional[CrashPlan] = None,
                 epoch: str = "epoch-0",
                 _resume: Optional[dict] = None) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.engine = engine
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_every = snapshot_every
        self.keep_snapshots = max(2, keep_snapshots)
        self.crash = crash
        self.epoch = epoch
        self._pending_departures: Set[int] = set()
        if _resume is None:
            self.steps = 0
            self.run = engine.start(list(requests))
            self.wal = WriteAheadLog(self.directory / WAL_NAME, epoch,
                                     fsync_every)
            self._snapshot()
        else:
            self.steps = _resume["steps"]
            self.run = _resume["run"]
            self.wal = _resume["wal"]
            self._pending_departures = _resume["pending"]
        # Route engine-initiated departures (migration offers) through
        # this wrapper so they hit the WAL.
        engine._active_run = self

    # -- router-facing proxies ------------------------------------------------

    @property
    def idle(self) -> bool:
        return self.run.idle

    @property
    def clock(self) -> float:
        return self.run.clock

    @property
    def tokens_generated(self) -> int:
        return self.run.tokens_generated

    @property
    def next_arrival_s(self) -> Optional[float]:
        return self.run.next_arrival_s

    @property
    def pending(self) -> List[ServeRequest]:
        return self.run.pending

    @property
    def scheduler(self):
        return self.run.scheduler

    # -- durable inputs -------------------------------------------------------

    def inject(self, request: ServeRequest) -> None:
        """Log-then-apply a new arrival (write-ahead: synced first)."""
        if request.cache is not None:
            raise ValueError("cannot inject a request with a live cache "
                             "(sessions migrate detached)")
        self.wal.append("inject",
                        {"request": serialize_request(
                            request, include_cache=False)})
        self.wal.sync()
        self._count("recovery.wal_records")
        self.run.inject(request)

    def note_departure(self, request: ServeRequest) -> None:
        """Log-then-apply a migration departure, exactly once.

        Idempotent per request (the engine's migration offer and the
        fleet handler both call it), and *pending* departures — replayed
        from the WAL's unterminated tail, already delivered to their
        target pre-crash — are consumed without re-logging.
        """
        rid = request.request_id
        if rid in self._pending_departures:
            self._pending_departures.discard(rid)
        elif id(request) not in self.run._departed:
            self.wal.append("depart", {"rid": rid})
            self.wal.sync()
            self._count("recovery.wal_records")
        self.run.note_departure(request)

    def wrap_migrate_handler(self, inner: Callable[[ServeRequest], bool]
                             ) -> Callable[[ServeRequest], bool]:
        """Exactly-once guard around a router's migrate handler: a
        pending departure was already delivered to its target pre-crash,
        so answer ``True`` without re-migrating."""
        def handler(request: ServeRequest) -> bool:
            if request.request_id in self._pending_departures:
                return True
            return inner(request)
        return handler

    # -- the durable step -----------------------------------------------------

    def step(self) -> bool:
        """One engine step, logged; snapshots and crashes on schedule."""
        observer = _StepObserver(self.run)
        alive = self.run.step()
        records = observer.records()
        for kind, data in records:
            self.wal.append(kind, data)
        self.steps += 1
        self.wal.append("step", {"step": self.steps,
                                 "clock": self.run.clock})
        self._count("recovery.wal_records", len(records) + 1)
        crash = self.crash
        if crash is not None and self.steps >= crash.kill_at_step:
            self.crash = None
            self._die(crash)
        if self.steps % self.snapshot_every == 0:
            self._snapshot()
        return alive

    def serve(self) -> ServeReport:
        """Step to completion and reduce (the solo-run entry point)."""
        for _ in range(self.engine.max_steps):
            if not self.step():
                break
        return self.finish()

    def finish(self) -> ServeReport:
        self.wal.sync()
        return self.run.finish()

    # -- snapshots ------------------------------------------------------------

    def _snapshot(self) -> pathlib.Path:
        self.wal.sync()
        path = self.directory / f"snapshot-{self.steps:08d}.bin"
        with self.engine.obs.tracer.span("recovery.snapshot",
                                         step=self.steps):
            write_snapshot(path, self.run, epoch=self.epoch,
                           lsn=self.wal.last_lsn, step=self.steps)
        self._count("recovery.snapshots")
        for old in sorted(
                self.directory.glob("snapshot-*.bin"))[:-self.keep_snapshots]:
            old.unlink()
        return path

    # -- injected death -------------------------------------------------------

    def _die(self, crash: CrashPlan) -> None:
        if crash.kind == "kill_after_fsync":
            self.wal.sync()
        elif crash.kind == "kill_before_fsync":
            self.wal.drop_unsynced()
        elif crash.kind == "torn_snapshot":
            path = self._snapshot()
            data = path.read_bytes()
            keep = max(16, int(len(data) * crash.torn_fraction))
            path.write_bytes(data[:keep])
        elif crash.kind == "stale_wal":
            self.wal.sync()
            _mark_wal_stale(self.directory / WAL_NAME)
        raise WorkerKilledError(
            f"injected crash ({crash.kind}) after step {self.steps}",
            step=self.steps, kind=crash.kind)

    def _count(self, name: str, n: int = 1) -> None:
        metrics = self.engine.obs.metrics
        if metrics.enabled:
            metrics.counter(name).inc(n)


def _mark_wal_stale(path: pathlib.Path) -> None:
    """Rewrite the WAL header with a foreign epoch (operator-error sim)."""
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    lines[0] = _encode(0, "begin", {"epoch": "foreign-epoch",
                                    "version": 1})
    path.write_text("".join(lines), encoding="utf-8")


# -- recovery -----------------------------------------------------------------

@dataclasses.dataclass
class RecoveryStats:
    """What a :func:`recover` call loaded, replayed, and measured."""

    snapshot_path: str = ""
    snapshot_step: int = 0
    snapshot_lsn: int = 0
    snapshot_load_s: float = 0.0
    replay_s: float = 0.0
    steps_replayed: int = 0
    tokens_replayed: int = 0
    snapshots_skipped: int = 0
    stale_wal: bool = False
    wal_torn: bool = False

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


def recover(directory: pathlib.Path, engine: ServeEngine, *,
            snapshot_every: int = 8, fsync_every: int = 8,
            keep_snapshots: int = 2
            ) -> Tuple[DurableRun, RecoveryStats]:
    """Restore a durable directory into a fresh ``engine``.

    Loads the newest snapshot that passes chain-hash verification
    (corrupt/torn ones are skipped — the step-0 baseline guarantees a
    floor), replays and *verifies* the WAL suffix by deterministic
    re-execution, and returns a :class:`DurableRun` ready to continue
    stepping, plus :class:`RecoveryStats` timings.
    """
    directory = pathlib.Path(directory)
    stats = RecoveryStats()
    tracer = engine.obs.tracer
    metrics = engine.obs.metrics

    t0 = time.perf_counter()
    meta = arenas = None
    with tracer.span("recovery.restore", directory=str(directory)):
        for path in sorted(directory.glob("snapshot-*.bin"), reverse=True):
            try:
                meta, arenas = read_snapshot(path)
            except SnapshotCorruptError:
                stats.snapshots_skipped += 1
                continue
            stats.snapshot_path = str(path)
            break
        if meta is None:
            raise SnapshotCorruptError(
                f"no verifiable snapshot in {directory}")
        run = restore_run(engine, meta, arenas)
    stats.snapshot_step = int(meta["step"])
    stats.snapshot_lsn = int(meta["lsn"])
    stats.snapshot_load_s = time.perf_counter() - t0

    # -- WAL suffix -----------------------------------------------------------
    wal_path = directory / WAL_NAME
    epoch = meta["epoch"]
    suffix = []
    end_offset = last_lsn = 0
    if wal_path.exists():
        wal_epoch, records, end_offset, stats.wal_torn = read_wal(wal_path)
        if wal_epoch != epoch:
            stats.stale_wal = True
            stale_path = directory / (WAL_NAME + ".stale")
            if stale_path.exists():
                stale_path.unlink()
            wal_path.rename(stale_path)
        else:
            suffix = [r for r in records if r.lsn > stats.snapshot_lsn]
            last_lsn = records[-1].lsn if records else 0

    # -- replay by re-execution, verifying against the log --------------------
    t1 = time.perf_counter()
    pending: Set[int] = set()
    replay_departs: Set[int] = set()

    def replay_handler(request: ServeRequest) -> bool:
        # A logged departure means the pre-crash router accepted the
        # migration; honor it without a router.  Anything else stays.
        if request.request_id in replay_departs:
            return True
        return False

    previous_handler = engine.migrate_handler
    engine.migrate_handler = replay_handler
    try:
        with tracer.span("recovery.replay", records=len(suffix)):
            for bucket, marker in iter_step_buckets(suffix):
                for record in bucket:
                    if record.kind == "inject":
                        run.inject(build_request(record.data["request"]))
                    elif record.kind == "depart":
                        (replay_departs if marker is not None
                         else pending).add(record.data["rid"])
                if marker is None:
                    # Unterminated tail: inputs applied above; the step
                    # itself re-executes (and re-logs) after recovery.
                    break
                run.step()
                stats.steps_replayed += 1
                by_rid = {r.request_id: r for r in run._arrivals}
                for record in bucket:
                    if record.kind != "token":
                        continue
                    rid = record.data["rid"]
                    index = record.data["index"]
                    request = by_rid.get(rid)
                    if request is None or index >= len(request.outputs) \
                            or request.outputs[index] \
                            != record.data["token"]:
                        raise ReplayDivergenceError(
                            f"replayed step {marker.data['step']} did not "
                            f"reproduce token {index} of request {rid} "
                            f"(logged {record.data['token']})")
                    stats.tokens_replayed += 1
                if replay_departs:
                    raise ReplayDivergenceError(
                        f"logged departures {sorted(replay_departs)} were "
                        f"not re-offered during replay of step "
                        f"{marker.data['step']}")
                if engine.timing is not None \
                        and run.clock != marker.data["clock"]:
                    raise ReplayDivergenceError(
                        f"replayed clock {run.clock!r} != logged "
                        f"{marker.data['clock']!r} at step "
                        f"{marker.data['step']}")
    finally:
        engine.migrate_handler = previous_handler
    stats.replay_s = time.perf_counter() - t1

    # -- resume the WAL and wrap back into a DurableRun -----------------------
    fresh_wal = stats.stale_wal or not wal_path.exists()
    if fresh_wal:
        wal = WriteAheadLog(wal_path, epoch, fsync_every)
    else:
        wal = WriteAheadLog.resume(wal_path, epoch, last_lsn, end_offset,
                                   fsync_every)
    durable = DurableRun(
        engine, (), directory, snapshot_every=snapshot_every,
        fsync_every=fsync_every, keep_snapshots=keep_snapshots,
        epoch=epoch, _resume={
            "steps": stats.snapshot_step + stats.steps_replayed,
            "run": run, "wal": wal, "pending": pending})
    if fresh_wal:
        # Re-anchor: the new log starts at LSN 0, so write a snapshot
        # that references it (older snapshots point into the discarded
        # epoch's LSN space).
        durable._snapshot()
    if metrics.enabled:
        metrics.counter("recovery.restores").inc()
        metrics.counter("recovery.steps_replayed").inc(
            stats.steps_replayed)
        metrics.counter("recovery.tokens_replayed").inc(
            stats.tokens_replayed)
    return durable, stats
