"""Chain-hashed binary snapshots of a live serving run.

A snapshot captures everything a :class:`~repro.serve.engine.EngineRun`
needs to resume bit-identically:

- the :class:`~repro.serve.paged_kv.PagedKVPool` — per-layer K/V and
  packed-sign arena bytes for every *used* block, the free list **in LIFO
  order** (future block assignment, and therefore gather layout and the
  ``contiguous`` fast path, depends on it), the prefix-cache index with
  refcounts, and the pool telemetry;
- every request (arrived or not): full scheduling state, generated
  tokens, event log, and — for live sessions — the paged-cache block map
  and prefix-caching state, plus any backend-declared durable state
  (duck-typed ``durable_state()`` / ``restore_durable_state()``, e.g. the
  supervised offload backend's RNG streams and degradation counters);
- scheduler queues / virtual times / running order, and the run's clock,
  arrival cursor, and departed-request set (serialized by request id —
  object identity does not survive a restore).

File layout: ``MAGIC`` then length-prefixed sections (section 0 is JSON
metadata, then 3 raw arena sections per layer: K, V, signs), closed by a
32-byte blake2b digest chained over everything written.  A torn write or
a flipped byte fails the chain hash and the loader raises
:class:`~repro.errors.SnapshotCorruptError` — recovery falls back to the
previous snapshot instead of restoring silently wrong state.  Writes go
to a temp file and ``os.replace`` into place after fsync.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import DurabilityError, SnapshotCorruptError
from repro.serve.engine import EngineRun, ServeEngine
from repro.serve.paged_kv import PagedKVCache, _PrefixEntry
from repro.serve.scheduler import RequestState, ServeRequest

MAGIC = b"LSDURSNP"
FORMAT = "longsight-durable-snapshot"
VERSION = 1


# -- request (de)serialization -- shared with WAL ``inject`` records ----------

def serialize_request(request: ServeRequest,
                      include_cache: bool = True) -> dict:
    """JSON-safe dict of one request's full scheduling + event state."""
    events = request.events
    out = {
        "request_id": int(request.request_id),
        "prompt": np.asarray(request.prompt).astype(np.int64).tolist(),
        "max_new_tokens": int(request.max_new_tokens),
        "arrival_s": float(request.arrival_s),
        "tenant": request.tenant,
        "session": request.session,
        "migrations": int(request.migrations),
        "state": request.state.value,
        "outputs": [int(t) for t in request.outputs],
        "prefilled": int(request.prefilled),
        "pending_token": None if request.pending_token is None
        else int(request.pending_token),
        "consecutive_degraded": int(request.consecutive_degraded),
        "pinned_dense": bool(request.pinned_dense),
        "charged_prompt_tokens": request.charged_prompt_tokens,
        "prefill_charge_s": float(request.prefill_charge_s),
        "ready_s": float(request.ready_s),
        "events": {
            "arrival_s": float(events.arrival_s),
            "admitted_s": events.admitted_s,
            "first_token_s": events.first_token_s,
            "finished_s": events.finished_s,
            "token_times_s": [float(t) for t in events.token_times_s],
            "degraded_tokens": int(events.degraded_tokens),
            "preemptions": int(events.preemptions),
            "migrations": int(events.migrations),
            "shed": bool(events.shed),
            "rejected": bool(events.rejected),
            "brownout_tokens": {str(stage): int(count) for stage, count
                                in sorted(events.brownout_tokens.items())},
        },
        "cache": None,
        "backend_state": None,
    }
    if include_cache and request.cache is not None:
        cache = request.cache
        out["cache"] = {
            "blocks": [int(b) for b in cache._blocks],
            "tokens": len(cache),
            "contiguous": bool(cache.contiguous),
            "sign_enabled": bool(cache._sign_cache_enabled),
            "prefix_digest": cache._prefix_digest.hex(),
            "published_tokens": int(cache._published_tokens),
            "prefix_signed_tokens": int(cache.prefix_signed_tokens),
            "entry_digests": [entry.key.hex()
                              for entry in cache._entry_by_block.values()],
        }
    durable_state = getattr(request.backend, "durable_state", None)
    if callable(durable_state):
        out["backend_state"] = durable_state()
    return out


def build_request(data: dict) -> ServeRequest:
    """Rebuild a :class:`ServeRequest` from :func:`serialize_request`."""
    request = ServeRequest(
        request_id=int(data["request_id"]),
        prompt=np.asarray(data["prompt"], dtype=np.int64),
        max_new_tokens=int(data["max_new_tokens"]),
        arrival_s=float(data["arrival_s"]),
        tenant=data["tenant"],
        session=data["session"],
        migrations=int(data["migrations"]),
    )
    request.state = RequestState(data["state"])
    request.outputs = [int(t) for t in data["outputs"]]
    request.prefilled = int(data["prefilled"])
    request.pending_token = None if data["pending_token"] is None \
        else int(data["pending_token"])
    request.consecutive_degraded = int(data["consecutive_degraded"])
    request.pinned_dense = bool(data["pinned_dense"])
    request.charged_prompt_tokens = data["charged_prompt_tokens"]
    request.prefill_charge_s = float(data["prefill_charge_s"])
    request.ready_s = float(data["ready_s"])
    ev = request.events
    ed = data["events"]
    ev.arrival_s = float(ed["arrival_s"])
    ev.admitted_s = ed["admitted_s"]
    ev.first_token_s = ed["first_token_s"]
    ev.finished_s = ed["finished_s"]
    ev.token_times_s = [float(t) for t in ed["token_times_s"]]
    ev.degraded_tokens = int(ed["degraded_tokens"])
    ev.preemptions = int(ed["preemptions"])
    ev.migrations = int(ed["migrations"])
    ev.shed = bool(ed["shed"])
    ev.rejected = bool(ed["rejected"])
    ev.brownout_tokens = {int(k): int(v) for k, v
                          in ed.get("brownout_tokens", {}).items()}
    return request


# -- write --------------------------------------------------------------------

def _block_rows(blocks: List[int], block_tokens: int) -> np.ndarray:
    if not blocks:
        return np.empty(0, dtype=np.intp)
    return np.concatenate([
        np.arange(b * block_tokens, (b + 1) * block_tokens, dtype=np.intp)
        for b in blocks])


def write_snapshot(path: pathlib.Path, run: EngineRun, *, epoch: str,
                   lsn: int, step: int) -> None:
    """Serialize ``run`` (engine + pool + scheduler state) to ``path``."""
    engine = run.engine
    pool = engine.pool
    scheduler = run.scheduler
    cfg = pool.config
    free = [int(b) for b in pool._free]
    used = sorted(set(range(pool.n_blocks)) - set(free))
    meta = {
        "format": FORMAT,
        "version": VERSION,
        "epoch": epoch,
        "step": int(step),
        "lsn": int(lsn),
        "run": {
            "clock": float(run.clock),
            "tokens_generated": int(run.tokens_generated),
            "peak_batch": int(run.peak_batch),
            "next_arrival": int(run._next_arrival),
        },
        "departed": [r.request_id for r in run._arrivals
                     if id(r) in run._departed],
        "scheduler": {
            "vtime": {t: float(v) for t, v in scheduler._vtime.items()},
            "preemptions": int(scheduler.preemptions),
            "running": [r.request_id for r in scheduler.running],
            "finished": [r.request_id for r in scheduler.finished],
            "queues": {tenant: [r.request_id for r in queue]
                       for tenant, queue in scheduler._queues.items()},
        },
        "pool": {
            "n_blocks": pool.n_blocks,
            "block_tokens": pool.block_tokens,
            "prefix_caching": pool.prefix_caching,
            "n_layers": cfg.n_layers,
            "n_kv_heads": cfg.n_kv_heads,
            "head_dim": cfg.head_dim,
            "kv_dtype": str(np.dtype(cfg.kv_dtype)),
            "sign_nbytes": pool.sign_nbytes,
            "free": free,
            "used": used,
            "telemetry": {
                "total_allocated": pool.total_allocated,
                "total_released": pool.total_released,
                "high_watermark": pool.high_watermark,
                "prefix_hits": pool.prefix_hits,
                "prefix_misses": pool.prefix_misses,
                "shared_blocks_peak": pool.shared_blocks_peak,
            },
            "prefix_index": [
                {"key": entry.key.hex(), "block": entry.block,
                 "refcount": entry.refcount,
                 "signs_packed": entry.signs_packed}
                for entry in pool._prefix_index.values()],
        },
        "requests": [serialize_request(r) for r in run._arrivals],
    }
    rows = _block_rows(used, pool.block_tokens)
    path = pathlib.Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    digest = hashlib.blake2b(digest_size=32)
    with open(tmp, "wb") as fh:
        def emit(payload: bytes) -> None:
            prefix = len(payload).to_bytes(8, "big")
            fh.write(prefix)
            fh.write(payload)
            digest.update(prefix)
            digest.update(payload)

        fh.write(MAGIC)
        digest.update(MAGIC)
        emit(json.dumps(meta, sort_keys=True).encode("utf-8"))
        for layer in range(cfg.n_layers):
            for arena in (pool.k_arenas[layer], pool.v_arenas[layer],
                          pool.sign_arenas[layer]):
                emit(np.ascontiguousarray(arena[:, rows]).tobytes())
        fh.write(digest.digest())
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


# -- read ---------------------------------------------------------------------

def read_snapshot(path: pathlib.Path) -> Tuple[dict, List[bytes]]:
    """Load and integrity-check a snapshot; ``(meta, arena_sections)``.

    Raises :class:`~repro.errors.SnapshotCorruptError` on any framing,
    magic, or chain-hash failure — including truncation anywhere in the
    file (a torn write cannot produce a valid footer).
    """
    raw = pathlib.Path(path).read_bytes()
    if len(raw) < len(MAGIC) + 32 or raw[:len(MAGIC)] != MAGIC:
        raise SnapshotCorruptError(f"{path}: bad magic or truncated header")
    digest = hashlib.blake2b(digest_size=32)
    digest.update(MAGIC)
    body_end = len(raw) - 32
    pos = len(MAGIC)
    sections: List[bytes] = []
    while pos < body_end:
        if pos + 8 > body_end:
            raise SnapshotCorruptError(f"{path}: torn section length")
        length = int.from_bytes(raw[pos:pos + 8], "big")
        if pos + 8 + length > body_end:
            raise SnapshotCorruptError(f"{path}: torn section payload")
        digest.update(raw[pos:pos + 8 + length])
        sections.append(raw[pos + 8:pos + 8 + length])
        pos += 8 + length
    if digest.digest() != raw[body_end:]:
        raise SnapshotCorruptError(f"{path}: chain-hash footer mismatch")
    if not sections:
        raise SnapshotCorruptError(f"{path}: no sections")
    try:
        meta = json.loads(sections[0])
    except ValueError as exc:
        raise SnapshotCorruptError(f"{path}: bad metadata ({exc})") from exc
    if meta.get("format") != FORMAT or meta.get("version") != VERSION:
        raise SnapshotCorruptError(f"{path}: unknown format/version")
    expected = 3 * meta["pool"]["n_layers"]
    if len(sections) - 1 != expected:
        raise SnapshotCorruptError(
            f"{path}: expected {expected} arena sections, "
            f"got {len(sections) - 1}")
    return meta, sections[1:]


# -- restore ------------------------------------------------------------------

def restore_run(engine: ServeEngine, meta: dict,
                arenas: List[bytes]) -> EngineRun:
    """Rebuild an :class:`EngineRun` inside ``engine`` from snapshot state.

    ``engine`` must be fresh (empty pool) with geometry matching the
    snapshot; sessions get new caches wired to the restored arena blocks
    and new backends from the engine's factory (with any serialized
    durable backend state restored on top).
    """
    pool = engine.pool
    cfg = pool.config
    pm = meta["pool"]
    geometry = {
        "n_blocks": pool.n_blocks, "block_tokens": pool.block_tokens,
        "n_layers": cfg.n_layers, "n_kv_heads": cfg.n_kv_heads,
        "head_dim": cfg.head_dim, "kv_dtype": str(np.dtype(cfg.kv_dtype)),
        "sign_nbytes": pool.sign_nbytes,
    }
    for key, value in geometry.items():
        if pm[key] != value:
            raise DurabilityError(
                f"snapshot geometry mismatch: {key} is {pm[key]} in the "
                f"snapshot but {value} in the engine's pool")
    if pool.n_used:
        raise DurabilityError("restore_run needs a fresh engine: the "
                              "pool already has allocated blocks")

    requests = [build_request(d) for d in meta["requests"]]
    by_rid: Dict[int, ServeRequest] = {r.request_id: r for r in requests}
    run = engine.start(requests)
    # Preserve the serialized arrival order exactly (inject() maintained
    # it pre-crash; re-sorting is equivalent but explicit is safer).
    run._arrivals = requests
    run._next_arrival = int(meta["run"]["next_arrival"])
    run._departed = {id(by_rid[rid]) for rid in meta["departed"]}
    run.clock = float(meta["run"]["clock"])
    run.tokens_generated = int(meta["run"]["tokens_generated"])
    run.peak_batch = int(meta["run"]["peak_batch"])

    sm = meta["scheduler"]
    scheduler = run.scheduler
    scheduler._vtime = {t: float(v) for t, v in sm["vtime"].items()}
    scheduler.preemptions = int(sm["preemptions"])
    scheduler.running = [by_rid[rid] for rid in sm["running"]]
    scheduler.finished = [by_rid[rid] for rid in sm["finished"]]
    scheduler._queues = {tenant: [by_rid[rid] for rid in rids]
                         for tenant, rids in sm["queues"].items()}

    # -- pool: free list (order matters), prefix index, arena bytes --
    pool._free = [int(b) for b in pm["free"]]
    tele = pm["telemetry"]
    pool.total_allocated = int(tele["total_allocated"])
    pool.total_released = int(tele["total_released"])
    pool.high_watermark = int(tele["high_watermark"])
    pool.prefix_hits = int(tele["prefix_hits"])
    pool.prefix_misses = int(tele["prefix_misses"])
    pool.shared_blocks_peak = int(tele["shared_blocks_peak"])
    entries: Dict[str, _PrefixEntry] = {}
    pool._prefix_index = {}
    for item in pm["prefix_index"]:
        entry = _PrefixEntry(bytes.fromhex(item["key"]), int(item["block"]),
                             int(item["refcount"]), bool(item["signs_packed"]))
        pool._prefix_index[entry.key] = entry
        entries[item["key"]] = entry

    used = [int(b) for b in pm["used"]]
    rows = _block_rows(used, pool.block_tokens)
    dtype = np.dtype(cfg.kv_dtype)
    kv_shape = (cfg.n_kv_heads, len(rows), cfg.head_dim)
    sign_shape = (cfg.n_kv_heads, len(rows), pool.sign_nbytes)
    for layer in range(cfg.n_layers):
        k_raw, v_raw, s_raw = arenas[3 * layer: 3 * layer + 3]
        pool.k_arenas[layer][:, rows] = \
            np.frombuffer(k_raw, dtype=dtype).reshape(kv_shape)
        pool.v_arenas[layer][:, rows] = \
            np.frombuffer(v_raw, dtype=dtype).reshape(kv_shape)
        pool.sign_arenas[layer][:, rows] = \
            np.frombuffer(s_raw, dtype=np.uint8).reshape(sign_shape)

    # -- live sessions: caches on the restored blocks, fresh backends --
    for request, data in zip(requests, meta["requests"]):
        cd = data["cache"]
        if cd is None:
            continue
        cache = PagedKVCache(pool)
        cache._blocks = [int(b) for b in cd["blocks"]]
        cache._rows = _block_rows(cache._blocks, pool.block_tokens)
        cache.contiguous = bool(cd["contiguous"])
        for layer_kv in cache.layers:
            layer_kv._len = int(cd["tokens"])
        cache._prefix_digest = bytes.fromhex(cd["prefix_digest"])
        cache._published_tokens = int(cd["published_tokens"])
        cache.prefix_signed_tokens = int(cd["prefix_signed_tokens"])
        for key_hex in cd["entry_digests"]:
            entry = entries[key_hex]
            cache._entry_by_block[entry.block] = entry
        if cd["sign_enabled"]:
            # Arena sign bytes are restored verbatim; mark the store
            # enabled so appends keep packing.  ``sign_rotations`` stays
            # None: a rotation-less backend's prepare_cache no-ops, and an
            # ITQ backend re-enables with its (seed-deterministic) bank,
            # rewriting identical bytes.
            cache._sign_cache_enabled = True
            for layer_kv in cache.layers:
                layer_kv._sign_enabled = True
        request.cache = cache
        backend = engine.backend_factory(request)
        if request.pinned_dense:
            backend = engine._dense_pin_of(backend)
        request.backend = backend
        restore_state = getattr(backend, "restore_durable_state", None)
        if data["backend_state"] is not None and callable(restore_state):
            restore_state(data["backend_state"])
    return run
