"""Durable serving: snapshots, write-ahead logging, and crash recovery.

Public surface:

- :class:`DurableRun` — wraps an engine run with periodic chain-hashed
  snapshots and an fsync-batched WAL of scheduler events.
- :func:`recover` — newest-valid-snapshot restore + verified WAL replay;
  resumes mid-decode bit-identically to an uninterrupted run.
- :class:`WriteAheadLog` / :func:`read_wal` — the log layer.
- :func:`write_snapshot` / :func:`read_snapshot` / :func:`restore_run` —
  the snapshot layer.

Crash points are scheduled with :class:`repro.system.faults.CrashPlan`;
the errors live in :mod:`repro.errors` (``DurabilityError`` family).
"""

from repro.durable.runner import DurableRun, RecoveryStats, recover
from repro.durable.snapshot import (build_request, read_snapshot,
                                    restore_run, serialize_request,
                                    write_snapshot)
from repro.durable.wal import (RECORD_KINDS, WalRecord, WriteAheadLog,
                               iter_step_buckets, read_wal)

__all__ = [
    "DurableRun", "RecoveryStats", "recover",
    "build_request", "read_snapshot", "restore_run", "serialize_request",
    "write_snapshot",
    "RECORD_KINDS", "WalRecord", "WriteAheadLog", "iter_step_buckets",
    "read_wal",
]
