"""Synthetic corpora standing in for Project Gutenberg and Wikitext2.

The paper evaluates perplexity on (a) long contiguous Project Gutenberg
books and (b) concatenated Wikitext2 passages.  Offline we synthesize both
shapes from a seeded Markov source with long-range copy bursts — the bursts
create genuinely long-range dependencies (the statistical signature of
induction-style attention) so that *distant-token retrieval matters*, which
is the property the LongSight experiments probe.
"""

from repro.data.synthetic import MarkovSource, pg_like, wiki2_like
from repro.data.tokenizer import CharTokenizer

__all__ = ["MarkovSource", "pg_like", "wiki2_like", "CharTokenizer"]
