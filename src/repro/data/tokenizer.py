"""A minimal byte-level tokenizer for the text-facing examples.

The experiments operate on synthetic token ids directly; this tokenizer
exists so the example applications can feed human-readable text through the
miniature models.
"""

from __future__ import annotations

import numpy as np


class CharTokenizer:
    """Byte-level tokenizer with ids folded into a fixed vocabulary.

    Bytes map to ids ``2 + (byte % (vocab_size - 2))``; ids 0 and 1 are
    reserved (separator / copy marker) to stay aligned with the synthetic
    corpora.  Decoding is best-effort (folding is lossy when
    ``vocab_size < 258``).
    """

    def __init__(self, vocab_size: int = 512) -> None:
        if vocab_size < 10:
            raise ValueError("vocab_size too small")
        self.vocab_size = vocab_size
        self._span = vocab_size - 2

    def encode(self, text: str) -> np.ndarray:
        data = text.encode("utf-8")
        return np.asarray([2 + (b % self._span) for b in data], dtype=np.int64)

    def decode(self, ids: np.ndarray) -> str:
        out = bytearray()
        for i in np.asarray(ids).reshape(-1):
            if i < 2:
                out.append(ord(" "))
            else:
                out.append(int(i - 2) % 256)
        return out.decode("utf-8", errors="replace")
