"""Seeded synthetic token streams with long-range structure.

Two corpus shapes mirror the paper's datasets:

- :func:`pg_like` — one long contiguous stream (Project Gutenberg books).
- :func:`wiki2_like` — short passages concatenated with separators
  (Wikitext2, "concatenate passages as needed" per Section 8.1.1).

Both draw from :class:`MarkovSource`: an order-1 Markov chain over a sparse
transition graph, interleaved with *copy bursts* that replay a span from
earlier in the stream.  Copy bursts are what give long contexts value — a
model that can attend to the matching earlier span predicts the burst almost
perfectly, so quality degrades measurably when sparse attention fails to
retrieve the right distant keys.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass
class MarkovSource:
    """Order-1 Markov token source with long-range copy bursts.

    Attributes:
        vocab_size: number of token ids (id 0 is reserved as a separator
            for passage-style corpora).
        branching: plausible successors per token.
        copy_prob: per-token probability of starting a copy burst.
        copy_len: (min, max) burst length.
        copy_back: (min, max) distance from the burst to its source span,
            drawn log-uniformly.  The heavy tail matters: nearby sources
            (within a training window) are what let a small model *learn*
            the induction mechanism, while distant sources are what make
            long contexts *valuable* at evaluation time — retrieval of the
            matching far-away span is exactly what LongSight's sparse
            attention must get right.
        copy_marker: token id emitted immediately before a burst; a learnable
            cue ("the following repeats earlier text") that lets even small
            models develop induction-style attention.
    """

    vocab_size: int = 512
    branching: int = 8
    copy_prob: float = 0.02
    copy_len: tuple[int, int] = (16, 48)
    copy_back: tuple[int, int] = (32, 65536)
    copy_marker: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vocab_size < self.branching + 2:
            raise ValueError("vocab too small for branching factor")
        rng = np.random.default_rng(self.seed)
        # Sparse successor graph: each token can be followed by `branching`
        # specific tokens with Dirichlet-distributed probabilities.
        self._successors = np.empty((self.vocab_size, self.branching), dtype=np.int64)
        self._probs = np.empty((self.vocab_size, self.branching))
        regular = np.arange(2, self.vocab_size)  # exclude separator + marker
        for tok in range(self.vocab_size):
            self._successors[tok] = rng.choice(regular, size=self.branching,
                                               replace=False)
            self._probs[tok] = rng.dirichlet(np.full(self.branching, 0.5))

    def generate(self, n_tokens: int, seed: int = 0) -> np.ndarray:
        """Generate a deterministic stream of ``n_tokens`` ids."""
        rng = np.random.default_rng((self.seed << 20) ^ seed)
        out = np.empty(n_tokens, dtype=np.int64)
        state = int(rng.integers(2, self.vocab_size))
        i = 0
        out[i] = state
        i += 1
        min_back = max(self.copy_back[0], self.copy_len[1] + 1)
        log_lo, log_hi = np.log(min_back), np.log(max(self.copy_back[1],
                                                      min_back + 1))
        while i < n_tokens:
            if i > min_back and rng.random() < self.copy_prob:
                # Copy burst: marker token, then replay an earlier span at a
                # log-uniform look-back distance (clipped to the history).
                length = int(rng.integers(*self.copy_len))
                back = int(np.exp(rng.uniform(log_lo, log_hi)))
                back = min(back, i - 1)
                start = max(0, i - back)
                if start + length >= i:
                    length = i - start - 1
                take = min(length, n_tokens - i - 1)
                if take > 0:
                    out[i] = self.copy_marker
                    i += 1
                    out[i : i + take] = out[start : start + take]
                    i += take
                    state = int(out[i - 1])
                    continue
            row = self._successors[state]
            state = int(rng.choice(row, p=self._probs[state]))
            out[i] = state
            i += 1
        return out


def pg_like(n_tokens: int, vocab_size: int = 512, seed: int = 0) -> np.ndarray:
    """One long contiguous stream (Project Gutenberg stand-in)."""
    source = MarkovSource(vocab_size=vocab_size, seed=97)
    return source.generate(n_tokens, seed=seed)


def wiki2_like(n_tokens: int, vocab_size: int = 512, seed: int = 0,
               passage_len: tuple[int, int] = (256, 1024)) -> np.ndarray:
    """Concatenated short passages separated by token 0 (Wikitext2 stand-in).

    Each passage restarts the Markov state, mimicking the topic breaks of
    concatenated Wikitext2 documents; copy bursts never cross a separator.
    """
    source = MarkovSource(vocab_size=vocab_size, seed=131, copy_prob=0.02)
    rng = np.random.default_rng(seed + 7)
    parts: list[np.ndarray] = []
    total = 0
    passage_idx = 0
    while total < n_tokens:
        length = int(rng.integers(*passage_len))
        piece = source.generate(length, seed=(seed << 10) + passage_idx)
        parts.append(piece)
        parts.append(np.zeros(1, dtype=np.int64))  # separator
        total += length + 1
        passage_idx += 1
    return np.concatenate(parts)[:n_tokens]
