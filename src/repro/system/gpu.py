"""GPU roofline model for decode-phase kernels (Section 8.2).

The paper measures real GPU time; we substitute a roofline with the same
peak numbers (Table 2).  Decode is dominated by memory traffic: weight
matrices stream once per token for the whole batch (GEMM amortization),
while attention streams each user's KV history individually
(vector-matrix, no reuse) — exactly the asymmetry that makes decode
attention the bottleneck (Section 2.1).
"""

from __future__ import annotations

import dataclasses

from repro.llm.config import ModelConfig
from repro.system.specs import GpuSpec, H100


@dataclasses.dataclass
class GpuLayerTimes:
    """Per-layer, per-token decode costs for a batch (nanoseconds)."""

    weight_gemm_ns: float
    attention_ns: float
    itq_ns: float
    merge_ns: float
    overhead_ns: float

    @property
    def total_ns(self) -> float:
        return (self.weight_gemm_ns + self.attention_ns + self.itq_ns
                + self.merge_ns + self.overhead_ns)


class GpuModel:
    """Roofline estimates for one GPU executing decode for ``n_users``."""

    def __init__(self, spec: GpuSpec = H100) -> None:
        self.spec = spec

    # -- building blocks -----------------------------------------------------------

    def _roofline_ns(self, flops: float, n_bytes: float) -> float:
        compute = flops / self.spec.flops
        memory = n_bytes / self.spec.hbm_bandwidth
        return max(compute, memory) * 1e9

    def layer_weight_bytes(self, config: ModelConfig) -> int:
        d = config.d_model
        params = (d * config.n_q_heads * config.head_dim
                  + 2 * d * config.kv_dim
                  + config.n_q_heads * config.head_dim * d
                  + 3 * d * config.d_ff)
        return params * config.dtype_bytes

    def weight_gemm_ns(self, config: ModelConfig, n_users: int) -> float:
        """QKV + output projection + FFN for one layer, whole batch.

        Weights stream once (batch-amortized); compute scales with users.
        """
        n_bytes = self.layer_weight_bytes(config)
        flops = 2.0 * (n_bytes / config.dtype_bytes) * n_users
        return self._roofline_ns(flops, n_bytes)

    def lm_head_ns(self, config: ModelConfig, n_users: int) -> float:
        """Final norm + unembedding GEMM per token."""
        n_bytes = config.vocab_size * config.d_model * config.dtype_bytes
        flops = 2.0 * config.vocab_size * config.d_model * n_users
        return self._roofline_ns(flops, n_bytes)

    def dense_attention_ns(self, config: ModelConfig, n_users: int,
                           context: int,
                           bandwidth_override: float | None = None) -> float:
        """Decode attention over ``context`` tokens per user (one layer).

        Memory-bound: K and V stream per user with no batch reuse.
        ``bandwidth_override`` lets the AttAcc baseline run the same
        traffic at HBM-PIM internal bandwidth.
        """
        n_bytes = 2.0 * context * config.kv_dim * config.dtype_bytes * n_users
        flops = (2.0 * context * config.n_q_heads * config.head_dim * 2.0
                 * n_users)
        if bandwidth_override is not None:
            compute = flops / self.spec.flops
            memory = n_bytes / bandwidth_override
            return max(compute, memory) * 1e9
        return self._roofline_ns(flops, n_bytes)

    def itq_ns(self, config: ModelConfig, n_users: int) -> float:
        """Runtime ITQ rotation of Q and K (Section 5.4: <3% of QKV cost)."""
        d = config.head_dim
        flops = 2.0 * d * d * (config.n_q_heads + config.n_kv_heads) * n_users
        n_bytes = (config.n_kv_heads * d * d * config.dtype_bytes
                   * config.n_layers / config.n_layers)  # rotation matrices
        return self._roofline_ns(flops, n_bytes)

    def merge_ns(self, config: ModelConfig, n_users: int, top_k: int) -> float:
        """Hybrid softmax + SV over the returned top-k (one layer).

        Streams k values per KV head per user from HBM (where the CXL
        engine deposited them) and accumulates.
        """
        n_bytes = (top_k * config.kv_dim * config.dtype_bytes * n_users)
        flops = 2.0 * top_k * config.n_q_heads * config.head_dim * n_users
        return self._roofline_ns(flops, n_bytes)

    # -- capacity -------------------------------------------------------------------

    def weight_bytes(self, config: ModelConfig) -> int:
        layers = self.layer_weight_bytes(config) * config.n_layers
        embed = config.vocab_size * config.d_model * config.dtype_bytes
        return layers + embed

    def kv_bytes(self, config: ModelConfig, context: int, n_users: int) -> int:
        return context * config.kv_bytes_per_token() * n_users

    def fits(self, config: ModelConfig, context: int, n_users: int) -> bool:
        """Does (weights + KV cache) fit in usable HBM?"""
        needed = self.weight_bytes(config) + self.kv_bytes(config, context,
                                                           n_users)
        return needed <= self.spec.usable_bytes

    def max_users(self, config: ModelConfig, context: int) -> int:
        """Largest batch whose KV cache fits alongside the weights."""
        free = self.spec.usable_bytes - self.weight_bytes(config)
        if free <= 0:
            return 0
        per_user = context * config.kv_bytes_per_token()
        return max(0, free // per_user) if per_user else 0
