"""Baseline serving systems for Figure 7 / Figure 10 comparisons.

All baselines share the synchronized-batch decode model: per generated
token, every layer executes its batched GEMMs plus per-user attention; the
per-token latency is the sum over layers, and aggregate throughput is
``n_users / latency``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.llm.config import ModelConfig
from repro.system.gpu import GpuModel
from repro.system.specs import GpuSpec, H100


@dataclasses.dataclass
class ServingPoint:
    """One (system, model, context, users) evaluation."""

    system: str
    model: str
    context: int
    n_users: int
    token_latency_s: float
    breakdown: Dict[str, float]  # per-token seconds by component

    @property
    def throughput_tps(self) -> float:
        """Aggregate decode tokens/second across all users."""
        return self.n_users / self.token_latency_s

    @property
    def per_user_tps(self) -> float:
        """Tokens/second/user (inverse per-token latency)."""
        return 1.0 / self.token_latency_s

    def as_row(self) -> dict:
        return {
            "system": self.system,
            "model": self.model,
            "context": self.context,
            "users": self.n_users,
            "throughput_tps": self.throughput_tps,
            "latency_ms": self.token_latency_s * 1e3,
        }


class DenseGpuSystem:
    """1..N GPUs running full dense attention, data-parallel across users.

    Data parallelism duplicates weights on every GPU but introduces no
    communication (Section 8.2); users split evenly, so the slowest GPU
    (the one with ``ceil(U / n_gpus)`` users) sets the token latency.
    """

    def __init__(self, n_gpus: int = 1, spec: GpuSpec = H100) -> None:
        if n_gpus < 1:
            raise ValueError("need at least one GPU")
        self.n_gpus = n_gpus
        self.gpu = GpuModel(spec)

    @property
    def name(self) -> str:
        return f"{self.n_gpus}-GPU"

    def max_users(self, config: ModelConfig, context: int) -> int:
        return self.gpu.max_users(config, context) * self.n_gpus

    # -- heterogeneous-context interface (serving simulator) -------------------

    def admits(self, config: ModelConfig, contexts) -> bool:
        """Do these per-user KV caches fit (greedy first-fit per GPU)?"""
        per_user = [c * config.kv_bytes_per_token() for c in contexts]
        free = self.gpu.spec.usable_bytes - self.gpu.weight_bytes(config)
        if free <= 0:
            return False
        gpus = [free] * self.n_gpus
        for need in sorted(per_user, reverse=True):
            best = max(range(self.n_gpus), key=lambda i: gpus[i])
            if gpus[best] < need:
                return False
            gpus[best] -= need
        return True

    def step_latency_s(self, config: ModelConfig, contexts) -> float:
        """One decode step for users with individual context lengths."""
        if not contexts:
            return 0.0
        per_gpu = -(-len(contexts) // self.n_gpus)
        gemm = self.gpu.weight_gemm_ns(config, per_gpu) * config.n_layers
        # Attention traffic is additive per user; split evenly over GPUs.
        attn = sum(self.gpu.dense_attention_ns(config, 1, c)
                   for c in contexts) / self.n_gpus * config.n_layers
        head = self.gpu.lm_head_ns(config, per_gpu)
        overhead = self.gpu.spec.kernel_overhead_ns * config.n_layers
        return (gemm + attn + head + overhead) * 1e-9

    def evaluate(self, config: ModelConfig, context: int,
                 n_users: int) -> Optional[ServingPoint]:
        """Per-token latency/throughput, or None if HBM cannot fit it."""
        per_gpu = -(-n_users // self.n_gpus)  # ceil
        if not self.gpu.fits(config, context, per_gpu):
            return None
        gemm = self.gpu.weight_gemm_ns(config, per_gpu) * config.n_layers
        attn = self.gpu.dense_attention_ns(config, per_gpu, context) \
            * config.n_layers
        head = self.gpu.lm_head_ns(config, per_gpu)
        overhead = self.gpu.spec.kernel_overhead_ns * config.n_layers
        total_ns = gemm + attn + head + overhead
        return ServingPoint(
            system=self.name, model=config.name, context=context,
            n_users=n_users, token_latency_s=total_ns * 1e-9,
            breakdown={
                "gemm_s": gemm * 1e-9,
                "attention_s": attn * 1e-9,
                "lm_head_s": head * 1e-9,
                "overhead_s": overhead * 1e-9,
            })


class AttAccSystem:
    """AttAcc-style baseline: dense decode attention on HBM-PIM.

    One H100 plus bank-level PIM in its HBM stacks: attention traffic runs
    at the PIM-internal bandwidth (all banks active) while GEMMs stay on
    the GPU cores.  Perplexity is exactly dense ("its perplexity [increase]
    is zero").  Capacity is still bounded by HBM.
    """

    #: Effective bank-level PIM bandwidth multiplier over external HBM
    #: bandwidth (AttAcc reports ~4x attention speedups from bank-level
    #: parallelism on HBM3).
    PIM_BANDWIDTH_SCALE = 4.0

    def __init__(self, spec: GpuSpec = H100) -> None:
        self.gpu = GpuModel(spec)
        self.pim_bandwidth = spec.hbm_bandwidth * self.PIM_BANDWIDTH_SCALE

    name = "AttAcc"

    def max_users(self, config: ModelConfig, context: int) -> int:
        return self.gpu.max_users(config, context)

    def evaluate(self, config: ModelConfig, context: int,
                 n_users: int) -> Optional[ServingPoint]:
        if not self.gpu.fits(config, context, n_users):
            return None
        gemm = self.gpu.weight_gemm_ns(config, n_users) * config.n_layers
        attn = self.gpu.dense_attention_ns(
            config, n_users, context,
            bandwidth_override=self.pim_bandwidth) * config.n_layers
        head = self.gpu.lm_head_ns(config, n_users)
        overhead = self.gpu.spec.kernel_overhead_ns * config.n_layers
        total_ns = gemm + attn + head + overhead
        return ServingPoint(
            system=self.name, model=config.name, context=context,
            n_users=n_users, token_latency_s=total_ns * 1e-9,
            breakdown={
                "gemm_s": gemm * 1e-9,
                "attention_s": attn * 1e-9,
                "lm_head_s": head * 1e-9,
                "overhead_s": overhead * 1e-9,
            })


class SlidingWindowGpuSystem:
    """Sliding-window attention on one GPU (Figure 10's software baseline).

    Attention cost covers only sinks + window; the KV cache can be evicted
    beyond the window, so capacity is bounded by the window, not the
    context.
    """

    def __init__(self, window: int = 1024, n_sink: int = 16,
                 spec: GpuSpec = H100) -> None:
        self.window = window
        self.n_sink = n_sink
        self.gpu = GpuModel(spec)

    @property
    def name(self) -> str:
        return f"SlidingWindow(W={self.window})"

    def max_users(self, config: ModelConfig, context: int) -> int:
        kept = min(context, self.window + self.n_sink)
        return self.gpu.max_users(config, kept)

    # -- heterogeneous-context interface (serving simulator) -------------------

    def _kept(self, context: int) -> int:
        return min(context, self.window + self.n_sink)

    def admits(self, config: ModelConfig, contexts) -> bool:
        """Do the retained sink+window KV caches fit in HBM?"""
        free = self.gpu.spec.usable_bytes - self.gpu.weight_bytes(config)
        if free <= 0:
            return False
        need = sum(self._kept(c) for c in contexts) \
            * config.kv_bytes_per_token()
        return need <= free

    def step_latency_s(self, config: ModelConfig, contexts) -> float:
        """One decode step for users with individual context lengths."""
        if not contexts:
            return 0.0
        n_users = len(contexts)
        gemm = self.gpu.weight_gemm_ns(config, n_users) * config.n_layers
        attn = sum(self.gpu.dense_attention_ns(config, 1, self._kept(c))
                   for c in contexts) * config.n_layers
        head = self.gpu.lm_head_ns(config, n_users)
        overhead = self.gpu.spec.kernel_overhead_ns * config.n_layers
        return (gemm + attn + head + overhead) * 1e-9

    def evaluate(self, config: ModelConfig, context: int,
                 n_users: int) -> Optional[ServingPoint]:
        kept = min(context, self.window + self.n_sink)
        if not self.gpu.fits(config, kept, n_users):
            return None
        gemm = self.gpu.weight_gemm_ns(config, n_users) * config.n_layers
        attn = self.gpu.dense_attention_ns(config, n_users, kept) \
            * config.n_layers
        head = self.gpu.lm_head_ns(config, n_users)
        overhead = self.gpu.spec.kernel_overhead_ns * config.n_layers
        total_ns = gemm + attn + head + overhead
        return ServingPoint(
            system=self.name, model=config.name, context=context,
            n_users=n_users, token_latency_s=total_ns * 1e-9,
            breakdown={
                "gemm_s": gemm * 1e-9,
                "attention_s": attn * 1e-9,
                "lm_head_s": head * 1e-9,
                "overhead_s": overhead * 1e-9,
            })
