"""Power and area model (Section 9.4).

LongSight leaves DReX's PFU untouched and only slightly grows the NMA
scratchpads, so the profile matches the DReX paper:

- each LPDDR5X package: up to 18.7 W peak,
- PFUs: 6.7% area overhead relative to the total DRAM die area,
- each NMA (16 nm): 15.1 mm^2, 1.072 W peak,
- device total: 8 packages + 8 NMAs ~= 158.2 W,
- DCC extensions: negligible.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.drex.geometry import DrexGeometry, DREX_DEFAULT


@dataclasses.dataclass(frozen=True)
class PowerAreaModel:
    """Published per-component power/area constants with aggregation."""

    geometry: DrexGeometry = DREX_DEFAULT
    package_peak_w: float = 18.7
    nma_peak_w: float = 1.072
    nma_area_mm2: float = 15.1
    pfu_area_overhead: float = 0.067  # fraction of DRAM die area
    nma_process_nm: int = 16
    h100_tdp_w: float = 700.0

    @property
    def drex_peak_w(self) -> float:
        """Total device peak power (paper: 158.2 W)."""
        return (self.geometry.n_packages * self.package_peak_w
                + self.geometry.n_nmas * self.nma_peak_w)

    @property
    def total_nma_area_mm2(self) -> float:
        return self.geometry.n_nmas * self.nma_area_mm2

    def system_peak_w(self, n_gpus: int = 1, with_drex: bool = True) -> float:
        """GPU(s) + optional DReX peak power."""
        total = n_gpus * self.h100_tdp_w
        if with_drex:
            total += self.drex_peak_w
        return total

    def offload_energy_j(self, offload_seconds: float,
                         active_packages: int = 8) -> float:
        """Upper-bound energy of one offload: peak power x busy time."""
        active = min(active_packages, self.geometry.n_packages)
        power = active * (self.package_peak_w + self.nma_peak_w)
        return power * offload_seconds

    def summary(self) -> Dict[str, float]:
        return {
            "package_peak_w": self.package_peak_w,
            "nma_peak_w": self.nma_peak_w,
            "nma_area_mm2": self.nma_area_mm2,
            "pfu_area_overhead": self.pfu_area_overhead,
            "drex_peak_w": self.drex_peak_w,
            "total_nma_area_mm2": self.total_nma_area_mm2,
        }
