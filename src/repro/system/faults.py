"""Seeded fault injection for the DReX offload path.

The paper's serving story (Sections 6-9) assumes a healthy device; this
module models what production sparse-attention stacks actually face — DCC
queue overflow, CXL stalls and bandwidth collapse, NMA hangs, sign-store
bit corruption, allocator pressure — so the hybrid algorithm's *graceful
degradation* to the dense sliding-window path can be exercised and
regression-tested instead of assumed.

Everything is deterministic: a declarative :class:`FaultPlan` (per-fault
rates + severity parameters + a seed) drives a :class:`FaultInjector`
whose single seeded RNG stream makes any faulted run bit-reproducible.
A zero-rate plan never draws from the RNG, so the supervised path with
``FaultPlan.none()`` is bit-identical to the unsupervised one.

Real-failure correspondence (see DESIGN.md for the full table):

- ``queue_full`` — the MMIO request FIFO (depth 512) has no slot because
  responses are drained too slowly or a user mix bursts.
- ``response_buffer`` — all 512 response buffers are bound/occupied
  (session churn racing unregistration).
- ``cxl_timeout`` — a lost/stalled CXL response; the GPU's poll never
  completes within its budget.
- ``cxl_degraded`` — link retraining / congestion collapses effective
  bandwidth by ``cxl_degradation_factor``.
- ``nma_stall`` — a near-memory accelerator wedges for ``nma_stall_ns``
  (refresh collision, scheduler livelock); surfaces as a latency spike
  that the supervisor's per-request timeout converts into a retry.
- ``kso_corruption`` — bit flips in a stored Key Sign Object (DRAM
  disturbance); detected by checksum, repaired by repacking signs from
  the intact Key Objects.
- ``capacity_pressure`` — the allocator transiently cannot place a Key
  Block group (fragmentation / competing tenants); staged tokens stay in
  the HBM window until pressure clears.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.drex.device import DrexDevice
from repro.errors import CapacityError, OffloadTimeoutError, QueueFullError

#: Canonical fault kinds (rate attribute is ``<kind>_rate`` on FaultPlan).
FAULT_KINDS = ("queue_full", "response_buffer", "cxl_timeout", "cxl_degraded",
               "nma_stall", "kso_corruption", "capacity_pressure")

#: Crash kinds a :class:`CrashPlan` can inject into a durable run
#: (consumed by :class:`repro.durable.DurableRun` at step boundaries).
CRASH_KINDS = ("kill_after_fsync", "kill_before_fsync", "torn_snapshot",
               "stale_wal")

#: Gray-failure kinds a :class:`GrayFailurePlan` can inject into a fleet
#: worker (consumed by :class:`repro.fleet.resilience.GrayRun`).  Unlike
#: crashes, a gray worker keeps *responding* — just slowly, not at all,
#: or intermittently — which is exactly what a liveness check misses.
GRAY_KINDS = ("slow_worker", "stuck_worker", "flapping_worker")


@dataclasses.dataclass(frozen=True)
class CrashPlan:
    """Deterministic worker-kill schedule for durable serving.

    Unlike the Bernoulli :class:`FaultPlan`, crashes are scheduled at an
    exact engine-step boundary so tests can kill at *every* event boundary
    and assert bit-identical recovery.  The kind decides what the
    simulated death leaves on disk:

    - ``kill_after_fsync``: the WAL is fully synced before the kill — the
      clean case, recovery replays everything.
    - ``kill_before_fsync``: the fsync-batched WAL tail is lost with the
      process; deterministic re-execution regenerates those records.
    - ``torn_snapshot``: the process dies mid-snapshot-write, leaving a
      truncated file whose chain-hash footer cannot verify; recovery must
      fall back to the previous valid snapshot.
    - ``stale_wal``: the on-disk WAL belongs to a different epoch than the
      snapshots (operator error / mixed durable dirs); recovery must
      reject its suffix instead of replaying garbage.
    """

    #: raise :class:`~repro.errors.WorkerKilledError` after executing this
    #: (1-based) durable step.
    kill_at_step: int = 1
    kind: str = "kill_after_fsync"
    #: fraction of the torn snapshot's bytes that survive on disk.
    torn_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.kill_at_step < 1:
            raise ValueError("kill_at_step must be >= 1")
        if self.kind not in CRASH_KINDS:
            raise ValueError(f"unknown crash kind: {self.kind!r} "
                             f"(one of {CRASH_KINDS})")
        if not 0.0 < self.torn_fraction < 1.0:
            raise ValueError("torn_fraction must be in (0, 1)")


@dataclasses.dataclass(frozen=True)
class GrayFailurePlan:
    """Deterministic gray-failure schedule for one fleet worker.

    Like :class:`CrashPlan`, everything is pinned to exact worker-step
    indices so any faulted fleet run is bit-reproducible.  Stalls are
    *simulated*: the wrapped run reports the stall seconds to the
    router's bounded-wait guard instead of sleeping, so tests stay fast
    and deterministic while exercising the same detection path.

    - ``slow_worker``: every step from ``start_step`` takes an extra
      ``stall_s`` simulated seconds (degraded host, thermal throttle,
      noisy neighbor).
    - ``stuck_worker``: from ``start_step`` the worker stops making any
      progress — steps return without doing work and report an infinite
      stall (wedged process, deadlocked I/O).
    - ``flapping_worker``: alternates ``period`` faulty steps (stalling
      ``stall_s``) with ``period`` healthy steps (intermittent link,
      GC-pause storms) — the classifier must not flap a worker straight
      to failed on one bad sample.
    """

    kind: str = "slow_worker"
    #: first (1-based) worker step the fault affects.
    start_step: int = 1
    #: simulated extra seconds per faulty step (ignored by stuck_worker,
    #: which always reports an infinite stall).
    stall_s: float = 2.0
    #: flapping half-period in steps (faulty for ``period``, then healthy
    #: for ``period``, repeating).
    period: int = 4
    #: step at which the fault clears for good; ``None`` = never.
    stop_step: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in GRAY_KINDS:
            raise ValueError(f"unknown gray-failure kind: {self.kind!r} "
                             f"(one of {GRAY_KINDS})")
        if self.start_step < 1:
            raise ValueError("start_step must be >= 1")
        if self.stall_s <= 0.0:
            raise ValueError("stall_s must be > 0")
        if self.period < 1:
            raise ValueError("period must be >= 1")
        if self.stop_step is not None and self.stop_step <= self.start_step:
            raise ValueError("stop_step must be > start_step")

    def stall_at(self, step: int) -> float:
        """Simulated stall seconds injected at (1-based) worker ``step``;
        ``inf`` means the step makes no progress at all."""
        if step < self.start_step:
            return 0.0
        if self.stop_step is not None and step >= self.stop_step:
            return 0.0
        if self.kind == "stuck_worker":
            return float("inf")
        if self.kind == "flapping_worker":
            phase = (step - self.start_step) // self.period
            return self.stall_s if phase % 2 == 0 else 0.0
        return self.stall_s


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """Declarative, seeded description of what to inject and how often.

    Rates are per-injection-point probabilities in ``[0, 1]``: request-path
    faults fire per offload attempt, ``capacity_pressure`` per staged flush.
    """

    queue_full_rate: float = 0.0
    response_buffer_rate: float = 0.0
    cxl_timeout_rate: float = 0.0
    cxl_degraded_rate: float = 0.0
    nma_stall_rate: float = 0.0
    kso_corruption_rate: float = 0.0
    capacity_pressure_rate: float = 0.0
    seed: int = 0

    # -- severity parameters --
    #: latency added to the device-side compute when an NMA stalls.
    nma_stall_ns: float = 20e6
    #: multiplier on the CXL value-read time under link degradation.
    cxl_degradation_factor: float = 8.0
    #: sign bits flipped per corruption event.
    kso_bits_flipped: int = 4

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = getattr(self, f"{kind}_rate")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1], got {rate}")
        if self.cxl_degradation_factor < 1.0:
            raise ValueError("cxl_degradation_factor must be >= 1")
        if self.kso_bits_flipped < 1:
            raise ValueError("kso_bits_flipped must be >= 1")

    def rate(self, kind: str) -> float:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind: {kind!r}")
        return getattr(self, f"{kind}_rate")

    @property
    def any_faults(self) -> bool:
        return any(self.rate(kind) > 0 for kind in FAULT_KINDS)

    # -- common plans --

    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """Healthy device: nothing fires, the RNG is never consumed."""
        return cls(seed=seed)

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """Every transient fault kind at the same rate (no corruption —
        mix in ``kso_corruption_rate`` explicitly when wanted)."""
        return cls(queue_full_rate=rate, response_buffer_rate=rate,
                   cxl_timeout_rate=rate, cxl_degraded_rate=rate,
                   nma_stall_rate=rate, seed=seed)

    @classmethod
    def total_failure(cls, seed: int = 0) -> "FaultPlan":
        """The device is gone: every offload times out.  LongSight must
        converge to the dense sliding-window baseline, not crash."""
        return cls(cxl_timeout_rate=1.0, seed=seed)


class FaultInjector:
    """Seeded Bernoulli trigger shared by all injection points.

    One RNG stream + a fixed consultation order per operation makes every
    faulted run reproducible from ``plan.seed`` alone.  Zero-rate kinds
    never draw, so adding injection points does not perturb existing
    sequences for plans that do not use them.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.counts: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    def fires(self, kind: str) -> bool:
        rate = self.plan.rate(kind)
        if rate <= 0.0:
            return False
        fired = bool(self.rng.random() < rate)
        if fired:
            self.counts[kind] += 1
        return fired

    @property
    def total_fired(self) -> int:
        return sum(self.counts.values())


class FaultInjectingDevice(DrexDevice):
    """A :class:`DrexDevice` whose request path consults a fault injector.

    Request-path faults fire per :meth:`execute` call in a fixed order
    (queue -> buffers -> corruption -> CXL timeout -> post-completion
    latency faults).  KSO corruption persists in the sign store until
    repaired — exactly like real DRAM disturbance — while the latency
    faults (NMA stall, link degradation) distort only the returned
    :class:`LatencyBreakdown`, never the computed top-k.
    """

    def __init__(self, *args, injector: FaultInjector, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.injector = injector

    def execute(self, request):
        inj = self.injector
        if inj.fires("queue_full"):
            raise QueueFullError(
                "injected: DCC request queue full (depth "
                f"{self.dcc.QUEUE_DEPTH})")
        if inj.fires("response_buffer"):
            raise QueueFullError(
                "injected: all DCC response buffers exhausted")
        if inj.fires("kso_corruption"):
            kv_head = int(inj.rng.integers(self.n_kv_heads))
            self.corrupt_kso(request.uid, request.layer, kv_head, inj.rng,
                             n_bits=inj.plan.kso_bits_flipped)
        if inj.fires("cxl_timeout"):
            raise OffloadTimeoutError(
                "injected: CXL response timed out (stalled link or lost "
                "completion)")
        response = super().execute(request)
        if inj.fires("nma_stall"):
            response.latency.rank_ns += inj.plan.nma_stall_ns
        if inj.fires("cxl_degraded"):
            response.latency.value_read_ns *= inj.plan.cxl_degradation_factor
        return response


def make_faulty_device(model_config, config, rotations=None,
                       plan: Optional[FaultPlan] = None
                       ) -> FaultInjectingDevice:
    """Build a fault-injecting device matching a model/algorithm config
    (same geometry the plain :class:`DrexOffloadBackend` would build)."""
    plan = plan or FaultPlan.none()
    return FaultInjectingDevice(
        n_layers=model_config.n_layers,
        n_kv_heads=model_config.n_kv_heads,
        n_q_heads=model_config.n_q_heads,
        head_dim=model_config.head_dim,
        thresholds=config.thresholds,
        rotations=rotations if config.use_itq else None,
        dtype_bytes=model_config.dtype_bytes,
        injector=FaultInjector(plan),
    )
