"""Hardware specifications (Table 2).

| Device | Description                                                    |
|--------|----------------------------------------------------------------|
| CPU    | 16 x Intel Xeon Max 9462 @ 3.5 GHz, 8 x 128 GB DDR5-4400       |
| GPU    | NVIDIA H100 SXM, 80 GB HBM3, 989 TFlop/s (BF16), 3.35 TB/s     |
| DReX   | 8 NMAs, 8,192 PFUs, 512 GB LPDDR5X, 26.11 TF/s, 1.1 TB/s NMAs, |
|        | 104.9 TB/s PFU-internal                                        |
"""

from __future__ import annotations

import dataclasses

from repro.drex.geometry import DrexGeometry, DREX_DEFAULT


@dataclasses.dataclass(frozen=True)
class GpuSpec:
    """An NPU for the roofline model."""

    name: str
    tflops: float              # dense BF16 peak
    hbm_bytes: int
    hbm_bandwidth: float       # bytes/s
    kernel_overhead_ns: float = 3000.0  # per-layer fixed launch/sync cost
    reserve_bytes: int = 6 * 1024**3    # runtime/activations headroom

    @property
    def flops(self) -> float:
        return self.tflops * 1e12

    @property
    def usable_bytes(self) -> int:
        return self.hbm_bytes - self.reserve_bytes


H100 = GpuSpec(
    name="H100-SXM",
    tflops=989.0,
    hbm_bytes=80 * 1024**3,
    hbm_bandwidth=3.35e12,
)


@dataclasses.dataclass(frozen=True)
class CpuSpec:
    """Host CPU (only its memory matters to the baselines)."""

    name: str = "2x Xeon Max 9462"
    cores: int = 16
    dram_bytes: int = 8 * 128 * 1024**3
    dram_bandwidth: float = 282e9
    tflops: float = 3.5


@dataclasses.dataclass(frozen=True)
class DrexSpec:
    """DReX headline numbers (Table 2); geometry carries the details."""

    geometry: DrexGeometry = DREX_DEFAULT
    nma_tflops_total: float = 26.11
    nma_bandwidth: float = 1.1e12
    pfu_bandwidth: float = 104.9e12

    @property
    def capacity_bytes(self) -> int:
        return self.geometry.capacity_bytes


@dataclasses.dataclass(frozen=True)
class SystemSpec:
    """The full evaluation platform."""

    cpu: CpuSpec = CpuSpec()
    gpu: GpuSpec = H100
    drex: DrexSpec = DrexSpec()


PAPER_SYSTEM = SystemSpec()
