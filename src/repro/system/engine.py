"""The LongSight serving engine performance model (Sections 6 and 9).

Execution per decode token, per layer (Figure 2b):

1. GPU computes QKV (+ runtime ITQ) and writes a Request Descriptor per
   user into the DCC queue (CXL submit).
2. GPU performs dense sink+window attention *in parallel with* the DReX
   offload (filter -> score -> rank) — the overlap the hybrid design buys.
3. GPU polls, pulls top-k scores/values over CXL, merges with the dense
   scores in one softmax, and runs output projection + FFN.

Per-layer time is therefore
``max(gpu_dense_side, drex_device + cxl_value_read) + merge + gemms``,
with three shared resources that saturate independently as users grow:
GPU (batched GEMMs + windows), the 8 NMAs (one offload unit per user x
KV head x slice segment), and the CXL link (one response per user).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional

from repro.core.config import LongSightConfig
from repro.drex.dram import LpddrTimings, LPDDR5X
from repro.drex.geometry import DrexGeometry, DREX_DEFAULT
from repro.drex.layout import rows_per_group
from repro.drex.timing import DrexTimingModel, LatencyBreakdown, OffloadCost
from repro.llm.config import ModelConfig
from repro.system.baselines import ServingPoint
from repro.system.cxl import CxlLink
from repro.system.gpu import GpuModel
from repro.system.specs import GpuSpec, H100

#: Average staging overhang: KV pairs wait in HBM until a group of 128 has
#: left the window (Section 6), so the dense region averages W + 64 tokens.
STAGING_OVERHANG = 64


class LongSightSystem:
    """One GPU + one DReX unit serving hybrid dense-sparse attention."""

    name = "LongSight"

    def __init__(self, ls_config: Optional[LongSightConfig] = None,
                 pass_rate: float = 0.05,
                 gpu_spec: GpuSpec = H100,
                 geometry: DrexGeometry = DREX_DEFAULT,
                 timings: LpddrTimings = LPDDR5X,
                 cxl: Optional[CxlLink] = None) -> None:
        """
        Args:
            ls_config: algorithm parameters (window, sinks, k, thresholds).
            pass_rate: expected fraction of sparse keys surviving SCF.  The
                paper's tuned configuration achieves a ~20x filter ratio;
                with k = 1,024 that corresponds to a pass rate of ~5%.
            cxl: link model (defaults to the module's CXL 5.0 x16 numbers).
        """
        self.ls = ls_config or LongSightConfig()
        self.pass_rate = pass_rate
        self.gpu = GpuModel(gpu_spec)
        self.geometry = geometry
        self.cxl = cxl or CxlLink()
        self.timing = DrexTimingModel(
            geometry, timings,
            cxl_bandwidth_gbps=self.cxl.bandwidth / 1e9,
            cxl_latency_ns=self.cxl.latency_ns)

    # -- capacity ---------------------------------------------------------------

    def sparse_tokens(self, context: int) -> int:
        """Tokens offloaded to DReX for one user at ``context``."""
        return max(0, context - self.ls.window - self.ls.n_sink)

    def drex_bytes_per_user(self, config: ModelConfig, context: int) -> int:
        """DReX footprint of one user (keys + values + sign objects)."""
        n = self.sparse_tokens(context)
        if n == 0:
            return 0
        groups = math.ceil(n / self.geometry.keys_per_key_block_group)
        rows = rows_per_group(config.head_dim, self.geometry,
                              config.dtype_bytes)
        per_head_layer = (groups * rows * self.geometry.row_bytes
                          * self.geometry.channels_per_package)
        return per_head_layer * config.n_kv_heads * config.n_layers

    def gpu_resident_tokens(self, context: int) -> int:
        """KV tokens kept in HBM per user: sinks + window + staging."""
        return min(context, self.ls.n_sink + self.ls.window + STAGING_OVERHANG)

    def max_users(self, config: ModelConfig, context: int) -> int:
        """Batch limit: DReX capacity, DCC queue depth, and GPU HBM."""
        gpu_users = self.gpu.max_users(config,
                                       self.gpu_resident_tokens(context))
        per_user = self.drex_bytes_per_user(config, context)
        if per_user == 0:
            drex_users = 512
        else:
            drex_users = self.geometry.capacity_bytes // per_user
        return int(min(512, gpu_users, drex_users))

    # -- DReX-side costs ------------------------------------------------------------

    def effective_top_k(self, context: int) -> int:
        """Values actually retrieved per KV head: min(k, expected survivors)."""
        n = self.sparse_tokens(context)
        return int(min(self.ls.top_k, max(0, round(self.pass_rate * n))))

    def _segments(self, context: int) -> tuple[int, int]:
        """(number of slice segments per head, keys per segment)."""
        n = self.sparse_tokens(context)
        if n == 0:
            return 0, 0
        cap = self.geometry.max_keys_per_context_slice
        segments = math.ceil(n / cap)
        return segments, math.ceil(n / segments)

    def offload_unit(self, config: ModelConfig, context: int) -> LatencyBreakdown:
        """Device-side latency of one package-segment of one head's offload."""
        segments, seg_keys = self._segments(context)
        if segments == 0:
            return LatencyBreakdown()
        group = config.gqa_group_size
        cost = OffloadCost(
            n_keys=seg_keys,
            n_survivors=max(1, round(self.pass_rate * seg_keys)),
            n_retrieved=self.effective_top_k(context) // segments,
            n_query_heads=group,
            head_dim=config.head_dim,
            top_k=self.ls.top_k,
            dtype_bytes=config.dtype_bytes)
        return self.timing.package_latency(cost)

    def value_bytes_per_user_layer(self, config: ModelConfig,
                                   context: int) -> float:
        """Response size: top-k scores+values per KV head (group-shared)."""
        k_eff = self.effective_top_k(context)
        per_entry = (config.head_dim * config.dtype_bytes
                     + config.dtype_bytes + 4)
        return config.n_kv_heads * k_eff * per_entry

    def drex_layer_latency_ns(self, config: ModelConfig, context: int,
                              n_users: int) -> float:
        """NMA occupancy per layer: offload units queued on 8 NMAs.

        Each user contributes ``n_kv_heads x segments`` package-units per
        layer; units spread across the 8 NMAs and execute serially per NMA.
        """
        segments, _ = self._segments(context)
        if segments == 0:
            return 0.0
        unit = self.offload_unit(config, context).compute_ns
        units_total = n_users * config.n_kv_heads * segments
        units_per_nma = math.ceil(units_total / self.geometry.n_nmas)
        return units_per_nma * unit

    def cxl_layer_latency_ns(self, config: ModelConfig, context: int,
                             n_users: int) -> float:
        """CXL occupancy per layer: requests out + responses back."""
        if self.sparse_tokens(context) == 0:
            return 0.0
        request_bytes = 16 + config.n_q_heads * config.head_dim \
            * config.dtype_bytes
        response_bytes = self.value_bytes_per_user_layer(config, context)
        return n_users * self.cxl.serialization_ns(
            request_bytes + response_bytes)

    # -- end-to-end ---------------------------------------------------------------

    def evaluate(self, config: ModelConfig, context: int,
                 n_users: int) -> Optional[ServingPoint]:
        """Per-token decode latency/throughput; None if over capacity."""
        if n_users > self.max_users(config, context):
            return None
        resident = self.gpu_resident_tokens(context)
        sparse = self.sparse_tokens(context)

        gemm = self.gpu.weight_gemm_ns(config, n_users)
        itq = self.gpu.itq_ns(config, n_users) if self.ls.use_itq else 0.0
        window_attn = self.gpu.dense_attention_ns(config, n_users, resident)
        k_eff = self.effective_top_k(context)
        merge = self.gpu.merge_ns(config, n_users, k_eff) if sparse else 0.0

        drex = self.drex_layer_latency_ns(config, context, n_users)
        cxl = self.cxl_layer_latency_ns(config, context, n_users)
        poll = self.cxl.polling_overhead_ns if sparse else 0.0

        # Value transfers for completed offloads overlap NMA compute of the
        # queued ones (Section 9.2), so the offload path is the slower of
        # the two occupancies; dense window attention overlaps it all.
        offload_path = max(drex, cxl) + poll if sparse else 0.0
        overlap_region = max(window_attn, offload_path)
        layer_ns = gemm + itq + overlap_region + merge \
            + self.gpu.spec.kernel_overhead_ns
        total_ns = layer_ns * config.n_layers + self.gpu.lm_head_ns(
            config, n_users)

        exposed_drex = max(0.0, offload_path - window_attn)
        return ServingPoint(
            system=self.name, model=config.name, context=context,
            n_users=n_users, token_latency_s=total_ns * 1e-9,
            breakdown={
                "gemm_s": (gemm + itq) * config.n_layers * 1e-9,
                "window_attention_s": window_attn * config.n_layers * 1e-9,
                "drex_s": drex * config.n_layers * 1e-9,
                "cxl_s": (cxl + poll) * config.n_layers * 1e-9,
                "exposed_offload_s": exposed_drex * config.n_layers * 1e-9,
                "merge_s": merge * config.n_layers * 1e-9,
                "lm_head_s": self.gpu.lm_head_ns(config, n_users) * 1e-9,
            })

    def bottleneck(self, config: ModelConfig, context: int,
                   n_users: int) -> str:
        """Which resource bounds the per-layer time (Figure 9's narrative)."""
        resident = self.gpu_resident_tokens(context)
        gpu_side = (self.gpu.weight_gemm_ns(config, n_users)
                    + self.gpu.dense_attention_ns(config, n_users, resident)
                    + self.gpu.merge_ns(config, n_users,
                                        self.effective_top_k(context)))
        drex = self.drex_layer_latency_ns(config, context, n_users)
        cxl = self.cxl_layer_latency_ns(config, context, n_users)
        costs = {"GPU": gpu_side, "DReX": drex, "CXL": cxl}
        return max(costs, key=costs.get)

    # -- heterogeneous-context interface (serving simulator) ----------------------

    def admits(self, config: ModelConfig, contexts) -> bool:
        """Capacity check for users with individual context lengths."""
        if len(contexts) > 512:
            return False
        drex_need = sum(self.drex_bytes_per_user(config, c) for c in contexts)
        if drex_need > self.geometry.capacity_bytes:
            return False
        gpu_resident = sum(self.gpu_resident_tokens(c) for c in contexts)
        gpu_need = self.gpu.weight_bytes(config) \
            + gpu_resident * config.kv_bytes_per_token()
        return gpu_need <= self.gpu.spec.usable_bytes

    def step_latency_s(self, config: ModelConfig, contexts) -> float:
        """One decode step for users with individual context lengths."""
        return self.step_latency_degraded_s(config, contexts, None)

    def step_latency_degraded_s(self, config: ModelConfig, contexts,
                                degraded) -> float:
        """One decode step where some sessions fell back to dense-only.

        ``degraded`` is a parallel sequence of booleans (or ``None`` for all
        healthy).  A degraded session still pays its dense sink+window
        attention but contributes nothing to the offload path — no runtime
        ITQ, no DReX occupancy, no CXL response, no merge.  With all-healthy
        flags this is exactly :meth:`step_latency_s`.
        """
        if not contexts:
            return 0.0
        n_users = len(contexts)
        if degraded is None:
            sparse_ctx = list(contexts)
        else:
            sparse_ctx = [c for c, d in zip(contexts, degraded) if not d]
        gemm = self.gpu.weight_gemm_ns(config, n_users)
        itq = self.gpu.itq_ns(config, len(sparse_ctx)) \
            if self.ls.use_itq and sparse_ctx else 0.0
        window_attn = sum(
            self.gpu.dense_attention_ns(config, 1,
                                        self.gpu_resident_tokens(c))
            for c in contexts)
        merge = sum(
            self.gpu.merge_ns(config, 1, self.effective_top_k(c))
            for c in sparse_ctx if self.sparse_tokens(c) > 0)
        drex = 0.0
        cxl = 0.0
        any_sparse = False
        for c in sparse_ctx:
            segments, _ = self._segments(c)
            if segments == 0:
                continue
            any_sparse = True
            unit = self.offload_unit(config, c).compute_ns
            units = config.n_kv_heads * segments
            drex += units * unit / self.geometry.n_nmas
            request_bytes = 16 + config.n_q_heads * config.head_dim \
                * config.dtype_bytes
            cxl += self.cxl.serialization_ns(
                request_bytes + self.value_bytes_per_user_layer(config, c))
        poll = self.cxl.polling_overhead_ns if any_sparse else 0.0
        offload_path = max(drex, cxl) + poll if any_sparse else 0.0
        layer_ns = gemm + itq + max(window_attn, offload_path) + merge \
            + self.gpu.spec.kernel_overhead_ns
        total_ns = layer_ns * config.n_layers \
            + self.gpu.lm_head_ns(config, n_users)
        return total_ns * 1e-9

    # -- discrete-event cross-validation -----------------------------------------

    def simulate_decode_layer(self, config: ModelConfig, context: int,
                              n_users: int, stagger_ns: float = 0.0):
        """Event-driven simulation of one decode layer's offloads.

        Builds the same per-package unit costs the analytical model uses
        and runs them through :class:`repro.drex.sched.DrexScheduler`,
        returning the :class:`repro.drex.sched.SimOutcome`.  Used to
        validate the analytical ``ceil(units/nmas)`` approximation and to
        measure per-request latency distributions / SLO attainment
        (Section 4's "few hundred microseconds" budget).
        """
        from repro.drex.sched import DrexScheduler, decode_step_jobs

        segments, _ = self._segments(context)
        if segments == 0:
            from repro.drex.sched import SimOutcome
            return SimOutcome(results=[], makespan_ns=0.0,
                              nma_busy_ns={}, cxl_busy_ns=0.0)
        unit = self.offload_unit(config, context).compute_ns
        transfer = self.cxl.serialization_ns(
            self.value_bytes_per_user_layer(config, context))
        jobs = decode_step_jobs(
            n_users=n_users, unit_compute_ns=unit,
            n_units_per_user=config.n_kv_heads * segments,
            value_transfer_ns=transfer, geometry=self.geometry,
            stagger_ns=stagger_ns)
        return DrexScheduler(self.geometry).simulate(jobs)

    # -- Figure 8 support ---------------------------------------------------------

    def single_offload_breakdown(self, config: ModelConfig,
                                 context: int) -> Dict[str, float]:
        """Latency components of one (user, layer) offload, single user.

        Heads proceed in parallel on their own packages; the value read is
        fully exposed (nothing to overlap with).  Nanoseconds.
        """
        segments, _ = self._segments(context)
        if segments == 0:
            return {k: 0.0 for k in ("address_gen", "filter", "bitmap_read",
                                     "score", "rank", "value_read")}
        unit = self.offload_unit(config, context)
        # A head chains over `segments` packages, executed in parallel when
        # NMAs are free (single user): latency ~= one unit + value read.
        chain_serial = math.ceil(
            segments * config.n_kv_heads / self.geometry.n_nmas)
        value_ns = self.cxl.serialization_ns(
            self.value_bytes_per_user_layer(config, context)) \
            + self.cxl.latency_ns
        parts = unit.components()
        return {
            "address_gen": parts["address_gen"] * chain_serial,
            "filter": parts["filter"] * chain_serial,
            "bitmap_read": parts["bitmap_read"] * chain_serial,
            "score": parts["score"] * chain_serial,
            "rank": parts["rank"] * chain_serial,
            "value_read": value_ns,
        }

    def saturated_offload_breakdown(self, config: ModelConfig,
                                    context: int) -> Dict[str, float]:
        """Per-offload amortized components when DReX is fully utilized.

        Value reads for earlier partitions overlap the dot-product phase of
        later ones (Section 9.2), so only the excess over compute is
        exposed.  Nanoseconds per (user, layer) offload.
        """
        single = self.single_offload_breakdown(config, context)
        compute = sum(v for k, v in single.items() if k != "value_read")
        exposed_value = max(0.0, single["value_read"] - compute)
        out = dict(single)
        out["value_read"] = exposed_value
        return out
