"""Multi-tenant serving simulation.

Section 4 emphasizes that LongSight's KV "vector database" is unusually
*dynamic*: per-user databases are created at prefill, grow every decode
step, and disappear when the session ends.  This simulator exercises that
dynamic regime end to end: sessions arrive over time with long prompts,
are admitted when capacity allows (DReX bytes + HBM + DCC queue for
LongSight; HBM only for GPU baselines), decode in synchronized batches
with *heterogeneous* context lengths, and release capacity on completion.

Time advances in decode steps whose duration comes from the analytical
models' ``step_latency_s`` — the simulator composes them with arrival /
admission / departure dynamics that the single-point Figure 7 analysis
cannot capture (admission queueing delay, utilization over time).
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import List, Optional, Protocol, Sequence

import numpy as np

from repro.llm.config import ModelConfig


class ServingSystem(Protocol):
    """What the simulator needs from a system model."""

    name: str

    def admits(self, config: ModelConfig, contexts: Sequence[int]) -> bool:
        ...

    def step_latency_s(self, config: ModelConfig,
                       contexts: Sequence[int]) -> float:
        ...


@dataclasses.dataclass(frozen=True)
class ServingFaultModel:
    """Session-level offload-failure dynamics for the simulator.

    Each decode step, every decoding session independently fails its
    offload with ``offload_failure_rate`` (one seeded draw per session per
    step, in deterministic batch order).  A failed step still generates a
    token — via the dense sliding-window fallback — but counts as degraded.
    After ``failures_to_backoff`` *consecutive* failures the session backs
    off: it leaves the batch, releases its capacity, and re-enters the
    admission queue ``backoff_s`` later.  A session that backs off more
    than ``max_backoffs`` times is *shed from the offload path*: it stays
    in the batch pinned to the dense sliding-window fallback and still
    decodes to completion — generation is never dropped, only degraded
    (and the shedding is reported, never silent).
    """

    offload_failure_rate: float = 0.0
    failures_to_backoff: int = 4
    backoff_s: float = 0.5
    max_backoffs: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.offload_failure_rate <= 1.0:
            raise ValueError("offload_failure_rate must be in [0, 1]")
        if self.failures_to_backoff < 1:
            raise ValueError("failures_to_backoff must be >= 1")
        if self.backoff_s < 0.0 or self.max_backoffs < 0:
            raise ValueError("backoff_s and max_backoffs must be >= 0")

    @property
    def any_faults(self) -> bool:
        return self.offload_failure_rate > 0.0


@dataclasses.dataclass
class Session:
    """One user request: a long prompt plus a decode budget."""

    session_id: int
    arrival_s: float
    prompt_tokens: int
    output_tokens: int

    # -- filled by the simulator --
    admitted_s: Optional[float] = None
    ready_s: Optional[float] = None   # prefill complete, decoding begins
    finished_s: Optional[float] = None
    generated: int = 0
    # -- fault dynamics --
    degraded_tokens: int = 0          # generated via the dense fallback
    consecutive_failures: int = 0
    offload_backoffs: int = 0
    reentry_s: Optional[float] = None  # re-admission eligibility after backoff
    shed: bool = False                 # pinned to dense-only after backoffs

    @property
    def context(self) -> int:
        """Current context length (prompt + generated so far)."""
        return self.prompt_tokens + self.generated

    @property
    def queueing_delay_s(self) -> Optional[float]:
        if self.admitted_s is None:
            return None
        return self.admitted_s - self.arrival_s

    @property
    def eligible_s(self) -> float:
        """When this session may (re-)enter admission."""
        return self.arrival_s if self.reentry_s is None else self.reentry_s


def poisson_workload(n_sessions: int, arrival_rate_per_s: float,
                     prompt_tokens: int, output_tokens: int,
                     seed: int = 0,
                     prompt_jitter: float = 0.25) -> List[Session]:
    """A seeded Poisson arrival trace with jittered prompt lengths."""
    rng = np.random.default_rng(seed)
    t = 0.0
    sessions = []
    for i in range(n_sessions):
        t += rng.exponential(1.0 / arrival_rate_per_s)
        jitter = 1.0 + prompt_jitter * (2 * rng.random() - 1)
        sessions.append(Session(
            session_id=i, arrival_s=t,
            prompt_tokens=max(1, int(prompt_tokens * jitter)),
            output_tokens=output_tokens))
    return sessions


@dataclasses.dataclass
class ServingReport:
    """Outcome of one simulation run."""

    system: str
    sessions: List[Session]
    sim_time_s: float
    tokens_generated: int
    peak_concurrency: int
    # -- fault dynamics --
    total_backoffs: int = 0
    step_latency_samples: List[float] = dataclasses.field(
        default_factory=list)

    @property
    def completed(self) -> List[Session]:
        return [s for s in self.sessions if s.finished_s is not None]

    @property
    def shed(self) -> List[Session]:
        return [s for s in self.sessions if s.shed]

    @property
    def throughput_tps(self) -> float:
        return self.tokens_generated / self.sim_time_s if self.sim_time_s \
            else 0.0

    @property
    def degraded_tokens(self) -> int:
        return sum(s.degraded_tokens for s in self.sessions)

    @property
    def degraded_token_fraction(self) -> float:
        """Fraction of generated tokens that used the dense fallback."""
        if self.tokens_generated == 0:
            return 0.0
        return self.degraded_tokens / self.tokens_generated

    @property
    def availability(self) -> float:
        """Fraction of completed sessions that kept sparse service (were
        never shed from the offload path onto the dense-only fallback)."""
        done = self.completed
        if not done:
            return 1.0
        return sum(1 for s in done if not s.shed) / len(done)

    def step_latency_percentile_s(self, q: float) -> float:
        if not self.step_latency_samples:
            return 0.0
        return float(np.percentile(self.step_latency_samples, q))

    @property
    def p50_step_latency_s(self) -> float:
        return self.step_latency_percentile_s(50.0)

    @property
    def p99_step_latency_s(self) -> float:
        return self.step_latency_percentile_s(99.0)

    def mean_queueing_delay_s(self) -> float:
        delays = [s.queueing_delay_s for s in self.sessions
                  if s.queueing_delay_s is not None]
        return float(np.mean(delays)) if delays else 0.0

    def mean_session_latency_s(self) -> float:
        done = self.completed
        if not done:
            return 0.0
        return float(np.mean([s.finished_s - s.arrival_s for s in done]))


class ServingSimulator:
    """Batch-synchronous decode with admission control and departures.

    Args:
        prefill: optional :class:`repro.system.prefill.PrefillModel`; when
            given, an admitted session occupies capacity immediately but
            only joins the decode batch after its prefill latency (prefill
            throughput is orders of magnitude above decode, Section 8.1.2,
            so it is modeled as overlapping the ongoing decode).
        faults: optional :class:`ServingFaultModel`; when given with a
            nonzero failure rate, sessions experience offload failures per
            the model (degraded tokens, backoff + re-admission, shedding).
            Sessions decoding a degraded step cost only their dense window
            when the system exposes ``step_latency_degraded_s``.
    """

    def __init__(self, system: ServingSystem, config: ModelConfig,
                 max_steps: int = 1_000_000, prefill=None,
                 faults: Optional[ServingFaultModel] = None) -> None:
        self.system = system
        self.config = config
        self.max_steps = max_steps
        self.prefill = prefill
        self.faults = faults

    def _prefill_s(self, session: Session) -> float:
        if self.prefill is None:
            return 0.0
        ls = getattr(self.system, "ls", None)
        return self.prefill.prefill(self.config, session.prompt_tokens,
                                    ls=ls).total_s

    def _try_admit(self, waiting: List[Session], active: List[Session],
                   now: float) -> None:
        """FIFO admission: admit the head of the queue while it fits."""
        while waiting:
            candidate = waiting[0]
            if candidate.eligible_s > now:
                break
            contexts = [s.context for s in active] + [candidate.context]
            if not self.system.admits(self.config, contexts):
                break
            if candidate.admitted_s is None:
                candidate.admitted_s = now
            candidate.ready_s = now + self._prefill_s(candidate)
            active.append(candidate)
            waiting.pop(0)

    @staticmethod
    def _requeue(waiting: List[Session], session: Session) -> None:
        """Insert a backed-off session keeping (eligible_s, id) order."""
        key = (session.eligible_s, session.session_id)
        index = 0
        while index < len(waiting) and \
                (waiting[index].eligible_s,
                 waiting[index].session_id) <= key:
            index += 1
        waiting.insert(index, session)

    def run(self, sessions: Sequence[Session]) -> ServingReport:
        """Simulate until every session completes (or max_steps)."""
        waiting = sorted(sessions,
                         key=lambda s: (s.eligible_s, s.session_id))
        # Reject sessions that can never be admitted even alone.
        for session in list(waiting):
            if not self.system.admits(self.config, [session.prompt_tokens
                                                    + session.output_tokens]):
                waiting.remove(session)
        faults = self.faults if self.faults is not None \
            and self.faults.any_faults else None
        fault_rng = np.random.default_rng(faults.seed) \
            if faults is not None else None
        degraded_step = getattr(self.system, "step_latency_degraded_s", None)
        active: List[Session] = []
        now = 0.0
        tokens = 0
        peak = 0
        total_backoffs = 0
        samples: List[float] = []
        for _ in range(self.max_steps):
            self._try_admit(waiting, active, now)
            decoding = [s for s in active if s.ready_s <= now]
            if not decoding:
                pending_times = [s.ready_s for s in active]
                if waiting:
                    pending_times.append(max(now, waiting[0].eligible_s))
                if not pending_times:
                    break
                now = max(now, min(pending_times))
                continue
            peak = max(peak, len(decoding))
            contexts = [s.context for s in decoding]
            # One seeded draw per non-shed decoding session, in batch
            # order, so the whole faulted trajectory is reproducible from
            # faults.seed.  Shed sessions are already pinned to dense-only.
            failed = [True if s.shed
                      else bool(fault_rng.random()
                                < faults.offload_failure_rate)
                      for s in decoding] if faults is not None else None
            if failed is not None and degraded_step is not None \
                    and any(failed):
                step = degraded_step(self.config, contexts, failed)
            else:
                step = self.system.step_latency_s(self.config, contexts)
            now += step
            samples.append(step)
            finished = []
            backed_off = []
            for i, session in enumerate(decoding):
                session.generated += 1
                tokens += 1
                if failed is not None:
                    if failed[i]:
                        session.degraded_tokens += 1
                        session.consecutive_failures += 1
                    else:
                        session.consecutive_failures = 0
                if session.generated >= session.output_tokens:
                    session.finished_s = now
                    finished.append(session)
                elif faults is not None and not session.shed \
                        and session.consecutive_failures \
                        >= faults.failures_to_backoff:
                    backed_off.append(session)
            for session in finished:
                active.remove(session)
            for session in backed_off:
                session.consecutive_failures = 0
                session.offload_backoffs += 1
                total_backoffs += 1
                if session.offload_backoffs > faults.max_backoffs:
                    # Shed from the offload path: the session stays in the
                    # batch pinned to the dense fallback and still finishes
                    # — reported in the outcome, never silently dropped.
                    session.shed = True
                else:
                    active.remove(session)
                    session.reentry_s = now + faults.backoff_s
                    self._requeue(waiting, session)
        return ServingReport(system=self.system.name,
                             sessions=list(sessions), sim_time_s=now,
                             tokens_generated=tokens,
                             peak_concurrency=peak,
                             total_backoffs=total_backoffs,
                             step_latency_samples=samples)
