"""Multi-tenant serving simulation.

Section 4 emphasizes that LongSight's KV "vector database" is unusually
*dynamic*: per-user databases are created at prefill, grow every decode
step, and disappear when the session ends.  This simulator exercises that
dynamic regime end to end: sessions arrive over time with long prompts,
are admitted when capacity allows (DReX bytes + HBM + DCC queue for
LongSight; HBM only for GPU baselines), decode in synchronized batches
with *heterogeneous* context lengths, and release capacity on completion.

Time advances in decode steps whose duration comes from the analytical
models' ``step_latency_s`` — the simulator composes them with arrival /
admission / departure dynamics that the single-point Figure 7 analysis
cannot capture (admission queueing delay, utilization over time).
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import List, Optional, Protocol, Sequence

import numpy as np

from repro.llm.config import ModelConfig


class ServingSystem(Protocol):
    """What the simulator needs from a system model."""

    name: str

    def admits(self, config: ModelConfig, contexts: Sequence[int]) -> bool:
        ...

    def step_latency_s(self, config: ModelConfig,
                       contexts: Sequence[int]) -> float:
        ...


@dataclasses.dataclass
class Session:
    """One user request: a long prompt plus a decode budget."""

    session_id: int
    arrival_s: float
    prompt_tokens: int
    output_tokens: int

    # -- filled by the simulator --
    admitted_s: Optional[float] = None
    ready_s: Optional[float] = None   # prefill complete, decoding begins
    finished_s: Optional[float] = None
    generated: int = 0

    @property
    def context(self) -> int:
        """Current context length (prompt + generated so far)."""
        return self.prompt_tokens + self.generated

    @property
    def queueing_delay_s(self) -> Optional[float]:
        if self.admitted_s is None:
            return None
        return self.admitted_s - self.arrival_s


def poisson_workload(n_sessions: int, arrival_rate_per_s: float,
                     prompt_tokens: int, output_tokens: int,
                     seed: int = 0,
                     prompt_jitter: float = 0.25) -> List[Session]:
    """A seeded Poisson arrival trace with jittered prompt lengths."""
    rng = np.random.default_rng(seed)
    t = 0.0
    sessions = []
    for i in range(n_sessions):
        t += rng.exponential(1.0 / arrival_rate_per_s)
        jitter = 1.0 + prompt_jitter * (2 * rng.random() - 1)
        sessions.append(Session(
            session_id=i, arrival_s=t,
            prompt_tokens=max(1, int(prompt_tokens * jitter)),
            output_tokens=output_tokens))
    return sessions


@dataclasses.dataclass
class ServingReport:
    """Outcome of one simulation run."""

    system: str
    sessions: List[Session]
    sim_time_s: float
    tokens_generated: int
    peak_concurrency: int

    @property
    def completed(self) -> List[Session]:
        return [s for s in self.sessions if s.finished_s is not None]

    @property
    def throughput_tps(self) -> float:
        return self.tokens_generated / self.sim_time_s if self.sim_time_s \
            else 0.0

    def mean_queueing_delay_s(self) -> float:
        delays = [s.queueing_delay_s for s in self.sessions
                  if s.queueing_delay_s is not None]
        return float(np.mean(delays)) if delays else 0.0

    def mean_session_latency_s(self) -> float:
        done = self.completed
        if not done:
            return 0.0
        return float(np.mean([s.finished_s - s.arrival_s for s in done]))


class ServingSimulator:
    """Batch-synchronous decode with admission control and departures.

    Args:
        prefill: optional :class:`repro.system.prefill.PrefillModel`; when
            given, an admitted session occupies capacity immediately but
            only joins the decode batch after its prefill latency (prefill
            throughput is orders of magnitude above decode, Section 8.1.2,
            so it is modeled as overlapping the ongoing decode).
    """

    def __init__(self, system: ServingSystem, config: ModelConfig,
                 max_steps: int = 1_000_000, prefill=None) -> None:
        self.system = system
        self.config = config
        self.max_steps = max_steps
        self.prefill = prefill

    def _prefill_s(self, session: Session) -> float:
        if self.prefill is None:
            return 0.0
        ls = getattr(self.system, "ls", None)
        return self.prefill.prefill(self.config, session.prompt_tokens,
                                    ls=ls).total_s

    def _try_admit(self, waiting: List[Session], active: List[Session],
                   now: float) -> None:
        """FIFO admission: admit the head of the queue while it fits."""
        while waiting:
            candidate = waiting[0]
            if candidate.arrival_s > now:
                break
            contexts = [s.context for s in active] + [candidate.context]
            if not self.system.admits(self.config, contexts):
                break
            candidate.admitted_s = now
            candidate.ready_s = now + self._prefill_s(candidate)
            active.append(candidate)
            waiting.pop(0)

    def run(self, sessions: Sequence[Session]) -> ServingReport:
        """Simulate until every session completes (or max_steps)."""
        waiting = sorted(sessions, key=lambda s: (s.arrival_s, s.session_id))
        # Reject sessions that can never be admitted even alone.
        for session in list(waiting):
            if not self.system.admits(self.config, [session.prompt_tokens
                                                    + session.output_tokens]):
                waiting.remove(session)
        active: List[Session] = []
        now = 0.0
        tokens = 0
        peak = 0
        for _ in range(self.max_steps):
            self._try_admit(waiting, active, now)
            decoding = [s for s in active if s.ready_s <= now]
            if not decoding:
                pending_times = [s.ready_s for s in active]
                if waiting:
                    pending_times.append(max(now, waiting[0].arrival_s))
                if not pending_times:
                    break
                now = max(now, min(pending_times))
                continue
            peak = max(peak, len(decoding))
            step = self.system.step_latency_s(
                self.config, [s.context for s in decoding])
            now += step
            finished = []
            for session in decoding:
                session.generated += 1
                tokens += 1
                if session.generated >= session.output_tokens:
                    session.finished_s = now
                    finished.append(session)
            for session in finished:
                active.remove(session)
        return ServingReport(system=self.system.name,
                             sessions=list(sessions), sim_time_s=now,
                             tokens_generated=tokens,
                             peak_concurrency=peak)
