"""Parameter sweeps and Pareto frontiers (Figures 4 and 10).

The paper sweeps (window W, top-k, SCF thresholds) per dataset/model and
plots accuracy against filter ratio (Figure 4) or normalized throughput
(Figure 10), reporting the Pareto frontier across all configurations.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Dict, Iterable, List, Sequence


@dataclasses.dataclass
class ParetoPoint:
    """One swept configuration in a 2-D quality/efficiency space."""

    x: float            # efficiency axis (filter ratio / normalized tput)
    y: float            # quality axis (accuracy relative to dense)
    label: str = ""
    config: Dict = dataclasses.field(default_factory=dict)


def pareto_frontier(points: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """Non-dominated subset (maximizing both axes), sorted by x.

    A point is dominated if another point is >= in both coordinates and
    strictly greater in at least one.
    """
    frontier: List[ParetoPoint] = []
    for p in sorted(points, key=lambda q: (-q.x, -q.y)):
        if not frontier or p.y > frontier[-1].y:
            frontier.append(p)
    return sorted(frontier, key=lambda q: q.x)


def grid(**axes: Iterable) -> List[Dict]:
    """Cartesian product of named axes as config dicts.

    >>> grid(window=[256, 1024], k=[128])
    [{'window': 256, 'k': 128}, {'window': 1024, 'k': 128}]
    """
    names = list(axes)
    combos = itertools.product(*(list(axes[name]) for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def sweep(configs: Sequence[Dict],
          evaluate: Callable[[Dict], ParetoPoint]) -> List[ParetoPoint]:
    """Evaluate every config; drop ones the evaluator rejects (None)."""
    points = []
    for config in configs:
        point = evaluate(config)
        if point is not None:
            points.append(point)
    return points
