"""Prefill-phase cost model (Section 6).

The paper evaluates only decode ("LongSight does not impact the
performance of the prefill phase") but its execution model specifies what
prefill does: the GPU runs compute-bound matrix-matrix kernels over the
prompt, accumulates KV in HBM, and — once past the window threshold —
prepares Key Sign / Key / Value Objects in groups of 128 and streams them
to DReX *off the critical path*.

This model quantifies that: GPU prefill time from a compute/memory
roofline (GEMMs linear in prompt length, attention quadratic), DReX
population time from object sizes over the CXL link, and the exposed
(non-overlapped) remainder.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.config import LongSightConfig
from repro.llm.config import ModelConfig
from repro.system.cxl import CxlLink
from repro.system.gpu import GpuModel
from repro.system.specs import GpuSpec, H100


@dataclasses.dataclass
class PrefillBreakdown:
    """Seconds spent in each prefill phase for one user."""

    gpu_gemm_s: float
    gpu_attention_s: float
    drex_write_s: float
    exposed_write_s: float

    @property
    def gpu_s(self) -> float:
        return self.gpu_gemm_s + self.gpu_attention_s

    @property
    def total_s(self) -> float:
        """Critical-path prefill latency: GPU work + exposed transfers."""
        return self.gpu_s + self.exposed_write_s


class PrefillModel:
    """Roofline prefill estimates for LongSight (and dense baselines)."""

    #: Objects stream in groups of 128 keys (Section 6).
    GROUP_TOKENS = 128

    def __init__(self, spec: GpuSpec = H100,
                 cxl: Optional[CxlLink] = None) -> None:
        self.gpu = GpuModel(spec)
        self.cxl = cxl or CxlLink()

    def gpu_gemm_s(self, config: ModelConfig, prompt: int) -> float:
        """Linear kernels (QKV, projections, FFN, unembed) over the prompt."""
        weight_bytes = (self.gpu.layer_weight_bytes(config) * config.n_layers
                        + config.vocab_size * config.d_model
                        * config.dtype_bytes)
        flops = 2.0 * (weight_bytes / config.dtype_bytes) * prompt
        return max(flops / self.gpu.spec.flops,
                   weight_bytes / self.gpu.spec.hbm_bandwidth)

    def gpu_attention_s(self, config: ModelConfig, prompt: int) -> float:
        """Causal self-attention over the prompt (quadratic FLOPs)."""
        flops = (2.0 * 2.0 * config.n_q_heads * config.head_dim
                 * prompt * prompt / 2.0 * config.n_layers)
        kv_bytes = prompt * config.kv_bytes_per_token()
        return max(flops / self.gpu.spec.flops,
                   kv_bytes / self.gpu.spec.hbm_bandwidth)

    def drex_object_bytes(self, config: ModelConfig, prompt: int,
                          ls: LongSightConfig) -> int:
        """Key Sign + Key + Value Object bytes shipped to DReX."""
        offloaded = max(0, prompt - ls.window - ls.n_sink)
        groups = -(-offloaded // self.GROUP_TOKENS)
        tokens = groups * self.GROUP_TOKENS
        sign = tokens * config.head_dim // 8
        kv = 2 * tokens * config.head_dim * config.dtype_bytes
        return (sign + kv) * config.n_kv_heads * config.n_layers

    def prefill(self, config: ModelConfig, prompt: int,
                ls: Optional[LongSightConfig] = None) -> PrefillBreakdown:
        """Prefill breakdown; ``ls=None`` models a dense baseline (no DReX)."""
        gemm = self.gpu_gemm_s(config, prompt)
        attention = self.gpu_attention_s(config, prompt)
        if ls is None:
            return PrefillBreakdown(gemm, attention, 0.0, 0.0)
        write = self.cxl.serialization_ns(
            self.drex_object_bytes(config, prompt, ls)) * 1e-9
        # Transfers overlap GPU compute (separate kernels/DMA, Section 6);
        # only the excess over compute is exposed.
        exposed = max(0.0, write - (gemm + attention))
        return PrefillBreakdown(gemm, attention, write, exposed)
