"""System integration and performance modeling (Sections 6, 8.2, 9).

Combines an H100 roofline model, a CXL link model and the DReX timing
model into end-to-end decode-phase throughput/latency estimates for:

- 1-GPU and 2-GPU (data-parallel) dense baselines,
- AttAcc-style HBM-PIM dense attention,
- sliding-window attention on a GPU,
- LongSight (GPU dense window + DReX sparse offload with overlap).

These drive the Figure 7/8/9/10 benchmarks.  As in the paper, only the
decode phase is modeled ("LongSight does not impact the performance of the
prefill phase", Section 8.1.2).
"""

from repro.system.specs import GpuSpec, H100, SystemSpec, PAPER_SYSTEM
from repro.system.cxl import CxlLink
from repro.system.gpu import GpuModel
from repro.system.baselines import (
    ServingPoint,
    DenseGpuSystem,
    AttAccSystem,
    SlidingWindowGpuSystem,
)
from repro.system.engine import LongSightSystem
from repro.system.power import PowerAreaModel
from repro.system.sweep import pareto_frontier, ParetoPoint

__all__ = [
    "GpuSpec",
    "H100",
    "SystemSpec",
    "PAPER_SYSTEM",
    "CxlLink",
    "GpuModel",
    "ServingPoint",
    "DenseGpuSystem",
    "AttAccSystem",
    "SlidingWindowGpuSystem",
    "LongSightSystem",
    "PowerAreaModel",
    "pareto_frontier",
    "ParetoPoint",
]
