"""Degradation-aware supervision of the DReX offload path.

:class:`OffloadSupervisor` wraps a :class:`DrexDevice` the way a
production serving engine wraps an accelerator: bounded retries with
exponential backoff + jitter, a per-request timeout on the simulated
device latency, KSO checksum verification with repack-from-KV repair, and
— when the budget is exhausted — a recorded (never silent) degradation
signal that the caller turns into dense sliding-window-only attention.

:class:`SupervisedOffloadBackend` is the end-to-end integration: a
:class:`DrexOffloadBackend` whose offload dispatch and staging flush run
under supervision against a :class:`FaultInjectingDevice`.  With
``FaultPlan.none()`` it is bit-identical to the unsupervised backend;
with ``FaultPlan.total_failure()`` every sparse-eligible token falls back
to the dense path and generation still completes — the correctness anchor
that FlashAttention-style dense kernels provide real sparse systems.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.core.config import LongSightConfig
from repro.core.itq import ItqRotations
from repro.core.metrics import FilterStats
from repro.drex.backend import DrexOffloadBackend
from repro.drex.descriptors import RequestDescriptor, ResponseDescriptor
from repro.errors import (CorruptedKsoError, OffloadTimeoutError, QueueFullError,
                          ReproError)
from repro.llm.config import ModelConfig
from repro.obs import Obs, resolve_obs
from repro.system.faults import FaultInjector, FaultPlan, make_faulty_device


@dataclasses.dataclass(frozen=True)
class SupervisorPolicy:
    """Retry/timeout/repair policy for supervised offloads."""

    #: additional attempts after the first failure (0 = degrade immediately).
    max_retries: int = 3
    #: backoff before retry ``i`` is ``base * multiplier**i``, jittered.
    base_backoff_ns: float = 2_000.0
    backoff_multiplier: float = 2.0
    #: uniform jitter fraction: each backoff is scaled by ``1 +/- jitter``.
    jitter: float = 0.25
    #: per-request budget on the simulated device latency; a completed
    #: offload slower than this counts as timed out (None disables).
    timeout_ns: Optional[float] = 10e6
    #: verify KSO checksums after each offload and discard tainted results.
    verify_kso: bool = True
    #: repair corrupted KSOs by repacking signs from the stored keys.
    repair_kso: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")


@dataclasses.dataclass
class SupervisorStats:
    """Telemetry the supervisor accumulates across a run."""

    attempts: int = 0
    succeeded: int = 0
    retries: int = 0
    degraded: int = 0
    timeouts: int = 0
    queue_full: int = 0
    corrupted_heads: int = 0
    repairs: int = 0
    flush_deferrals: int = 0
    backoff_ns: float = 0.0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


class OffloadSupervisor:
    """Retry / verify / repair / degrade wrapper around one device."""

    def __init__(self, device, policy: Optional[SupervisorPolicy] = None,
                 seed: int = 0, obs: Optional[Obs] = None) -> None:
        self.device = device
        self.policy = policy or SupervisorPolicy()
        #: jitter stream, independent of the injector's fault stream so the
        #: two never perturb each other's determinism.
        self.rng = np.random.default_rng(seed)
        self.stats = SupervisorStats()
        self.obs = resolve_obs(obs)

    def _bump(self, name: str, amount=1) -> None:
        """Mirror a :class:`SupervisorStats` increment into the registry."""
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter("offload." + name).inc(amount)

    # -- internals ---------------------------------------------------------------

    def _check_kso(self, request: RequestDescriptor) -> None:
        """Verify (and repair) the request's sign stores; raise on taint."""
        bad = self.device.corrupted_ksos(request.uid, request.layer)
        if not bad:
            return
        self.stats.corrupted_heads += len(bad)
        self._bump("corrupted_heads", len(bad))
        if self.policy.repair_kso:
            for kv_head in bad:
                self.device.repair_kso(request.uid, request.layer, kv_head)
                self.stats.repairs += 1
            self._bump("repairs", len(bad))
        raise CorruptedKsoError(
            f"KSO checksum failed for uid={request.uid} "
            f"layer={request.layer} kv_heads={bad}"
            + (" (repaired from Key Objects)" if self.policy.repair_kso
               else ""))

    def _attempt(self, request: RequestDescriptor) -> ResponseDescriptor:
        """One supervised attempt: execute, verify integrity, check budget."""
        response = self.device.execute(request)
        if self.policy.verify_kso:
            # Corruption may have landed during this very offload; a tainted
            # sign store means the returned top-k cannot be trusted.
            self._check_kso(request)
        timeout = self.policy.timeout_ns
        if timeout is not None and response.latency is not None \
                and response.latency.total_ns > timeout:
            raise OffloadTimeoutError(
                f"offload exceeded per-request budget: "
                f"{response.latency.total_ns:.0f} ns > {timeout:.0f} ns")
        return response

    def _backoff(self, attempt: int) -> float:
        policy = self.policy
        delay = policy.base_backoff_ns * policy.backoff_multiplier ** attempt
        if policy.jitter > 0.0:
            delay *= 1.0 + policy.jitter * (2.0 * self.rng.random() - 1.0)
        return delay

    # -- public API --------------------------------------------------------------

    def execute(self, request: RequestDescriptor
                ) -> Optional[ResponseDescriptor]:
        """Run one offload under supervision.

        Returns the response, with accumulated retry backoff charged to its
        ``latency.queue_ns``, or ``None`` once the retry budget is spent —
        the caller's signal to degrade this token to the dense path.
        """
        backoff_total = 0.0
        for attempt in range(self.policy.max_retries + 1):
            self.stats.attempts += 1
            self._bump("attempts")
            try:
                response = self._attempt(request)
            except OffloadTimeoutError:
                self.stats.timeouts += 1  # injected stall or budget overrun
                self._bump("timeouts")
            except QueueFullError:
                self.stats.queue_full += 1
                self._bump("queue_full")
            except CorruptedKsoError:
                pass  # counted (and repaired) in _check_kso
            except ReproError:
                pass  # any other operational failure: retry, then degrade
            else:
                self.stats.succeeded += 1
                self._bump("succeeded")
                if backoff_total > 0.0 and response.latency is not None:
                    response.latency.queue_ns += backoff_total
                return response
            if attempt < self.policy.max_retries:
                self.stats.retries += 1
                self._bump("retries")
                delay = self._backoff(attempt)
                backoff_total += delay
                self.stats.backoff_ns += delay
                self._bump("backoff_ns", delay)
        self.stats.degraded += 1
        self._bump("degraded")
        return None

    def flush_allowed(self) -> bool:
        """Gate for staged KV flushes (allocator capacity pressure).

        A blocked flush is not an error: tokens stay staged in the HBM
        window (attended densely) until pressure clears on a later step.
        """
        injector = getattr(self.device, "injector", None)
        if injector is not None and injector.fires("capacity_pressure"):
            self.stats.flush_deferrals += 1
            self._bump("flush_deferrals")
            return False
        return True


class SupervisedOffloadBackend(DrexOffloadBackend):
    """The functional DReX offload path, end to end, under supervision.

    Drop-in for :class:`DrexOffloadBackend`: same attention protocol, same
    results when healthy, but every offload and flush runs through an
    :class:`OffloadSupervisor` against a fault-injecting device.  Degraded
    tokens are recorded in ``degraded_log`` / ``degraded_tokens`` (see the
    base class) and attend via the dense sliding-window region only.
    """

    def __init__(self, model_config: ModelConfig, config: LongSightConfig,
                 rotations: Optional[ItqRotations] = None,
                 plan: Optional[FaultPlan] = None,
                 policy: Optional[SupervisorPolicy] = None,
                 uid: int = 0, flush_granularity: int = 128,
                 stats: Optional[FilterStats] = None,
                 supervisor_seed: int = 0) -> None:
        if config.use_itq and rotations is None:
            raise ValueError("use_itq requires rotations")
        device = make_faulty_device(model_config, config, rotations=rotations,
                                    plan=plan)
        super().__init__(model_config, config, rotations=rotations,
                         device=device, uid=uid,
                         flush_granularity=flush_granularity, stats=stats)
        self.supervisor = OffloadSupervisor(device, policy,
                                            seed=supervisor_seed)

    @property
    def injector(self) -> FaultInjector:
        return self.device.injector

    def _offload(self, request: RequestDescriptor
                 ) -> Optional[ResponseDescriptor]:
        return self.supervisor.execute(request)

    def _flush_gate(self, layer: int, n_new: int) -> bool:
        return self.supervisor.flush_allowed()

    # -- durable serving hooks ---------------------------------------------------

    def durable_state(self) -> dict:
        """JSON-safe state a snapshot needs to resume this backend
        bit-identically (see :mod:`repro.durable`).

        Captures both seeded RNG streams (fault injector + supervisor
        jitter), their accumulated telemetry, and the degradation record.
        The device-side KV/sign stores are *not* captured: the restored
        backend's ``_flushed`` watermarks reset to ``n_sink``, and the
        next forward's catch-up flush rebuilds identical device content
        because the flush watermark is a pure function of the cache
        length.  Exactness preconditions: ``capacity_pressure_rate == 0``
        (deferred flushes would desync the watermark) and no unrepaired
        KSO corruption outstanding at the crash.
        """
        from repro.drex.timing import LatencyBreakdown
        injector = self.injector
        supervisor = self.supervisor
        return {
            "injector_rng": injector.rng.bit_generator.state,
            "injector_counts": dict(injector.counts),
            "supervisor_rng": supervisor.rng.bit_generator.state,
            "supervisor_stats": supervisor.stats.as_dict(),
            "total_latency": dataclasses.asdict(self.total_latency),
            "n_offloads": self.n_offloads,
            "sparse_token_attempts": self.sparse_token_attempts,
            "degraded_tokens": self.degraded_tokens,
            "degraded_log": [[int(layer), int(pos)]
                             for layer, pos in self.degraded_log],
        }

    def restore_durable_state(self, state: dict) -> None:
        """Inverse of :meth:`durable_state` on a freshly built backend."""
        from repro.drex.timing import LatencyBreakdown
        injector = self.injector
        supervisor = self.supervisor
        injector.rng.bit_generator.state = state["injector_rng"]
        injector.counts = {k: int(v)
                           for k, v in state["injector_counts"].items()}
        supervisor.rng.bit_generator.state = state["supervisor_rng"]
        supervisor.stats = SupervisorStats(**state["supervisor_stats"])
        self.total_latency = LatencyBreakdown(**state["total_latency"])
        self.n_offloads = int(state["n_offloads"])
        self.sparse_token_attempts = int(state["sparse_token_attempts"])
        self.degraded_tokens = int(state["degraded_tokens"])
        self.degraded_log = [(int(layer), int(pos))
                             for layer, pos in state["degraded_log"]]
