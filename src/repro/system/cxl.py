"""CXL link model (Sections 2.2 and 8.2).

The paper emulates CXL on a dual-socket Xeon and folds memory-copy and
polling overheads into its model; we parameterize the same three costs:
propagation latency, link bandwidth, and the GPU-side polling loop that
watches the DCC's Polling Register.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class CxlLink:
    """A CXL Type-3 load/store link between the GPU and DReX.

    Defaults approximate a CXL 3.x (PCIe 6.0 x16) attach — the generation a
    2025 compute-enabled expander would ship with: ~100 GB/s effective per
    direction and ~600 ns one-way access latency (public Pond/CXL-emulation
    measurements), with a polling-discovery overhead of half the mean
    polling interval plus the MMIO read.
    """

    bandwidth: float = 100e9       # bytes/s, per direction
    latency_ns: float = 600.0      # one-way load/store access
    polling_interval_ns: float = 1000.0

    def transfer_ns(self, n_bytes: float) -> float:
        """Latency + serialization for one transfer."""
        return self.latency_ns + n_bytes / self.bandwidth * 1e9

    def serialization_ns(self, n_bytes: float) -> float:
        """Pure occupancy of the link (for shared-bandwidth accounting)."""
        return n_bytes / self.bandwidth * 1e9

    @property
    def polling_overhead_ns(self) -> float:
        """Expected completion-discovery delay of the GPU polling loop."""
        return self.polling_interval_ns / 2.0 + self.latency_ns
