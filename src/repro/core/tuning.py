"""Hyper-parameter tuning loops (Section 8.1.3).

Two tuners mirror the paper's methodology:

- :func:`tune_top_k` — "we set the thresholds to zero, and adjust k to
  increase perplexity by 0.5–1% compared to the base model."
- :func:`tune_thresholds` — "We initialize all thresholds such that no Keys
  are filtered.  We iteratively increase the thresholds for KV heads with
  the lowest filtering ratios.  This process continues until the perplexity
  exceeds a predefined threshold (5%), at which point we record the filter
  ratio from the prior iteration."
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import LongSightConfig
from repro.core.hybrid import LongSightAttention
from repro.core.itq import ItqRotations
from repro.core.metrics import FilterStats
from repro.llm.model import Transformer
from repro.llm.perplexity import perplexity, perplexity_increase


def evaluate(model: Transformer, tokens: np.ndarray, config: LongSightConfig,
             rotations: Optional[ItqRotations] = None,
             block_size: int = 256,
             n_stat_heads: Optional[int] = None) -> Tuple[float, FilterStats]:
    """Perplexity and filter statistics for one configuration.

    ``n_stat_heads`` selects the stats resolution (defaults to KV heads;
    pass ``n_q_heads`` for the per-query-head granularity ablation).
    """
    stats = FilterStats(model.config.n_layers,
                        n_stat_heads or model.config.n_kv_heads)
    backend = LongSightAttention(config, rotations=rotations, stats=stats)
    ppl = perplexity(model, tokens, backend=backend, block_size=block_size)
    return ppl, stats


def tune_top_k(model: Transformer, tokens: np.ndarray,
               base_config: LongSightConfig, dense_ppl: float,
               max_increase: float = 0.01,
               candidates: Optional[List[int]] = None,
               rotations: Optional[ItqRotations] = None) -> int:
    """Smallest k (from descending powers of two) within the quality budget.

    Thresholds are forced to zero so only the top-k cap limits quality,
    exactly as in the paper's k-selection step.

    Returns the chosen k; falls back to the largest candidate if even that
    violates the budget.
    """
    if candidates is None:
        k_max = min(LongSightConfig.MAX_HARDWARE_TOP_K, len(tokens))
        candidates = []
        k = k_max
        while k >= 16:
            candidates.append(k)
            k //= 2
    candidates = sorted(set(candidates), reverse=True)
    chosen = candidates[0]
    for k in candidates:
        config = base_config.replace(top_k=k, thresholds=0)
        ppl, _ = evaluate(model, tokens, config, rotations=rotations)
        if perplexity_increase(ppl, dense_ppl) <= max_increase:
            chosen = k
        else:
            break
    return chosen


@dataclasses.dataclass
class ThresholdTuneResult:
    """Outcome of the threshold tuning loop."""

    thresholds: np.ndarray  # (n_layers, n_kv_heads)
    perplexity: float
    filter_ratio: float
    iterations: int
    history: List[Tuple[float, float]]  # (perplexity, filter_ratio) per step


def tune_thresholds(model: Transformer, tokens: np.ndarray,
                    base_config: LongSightConfig, dense_ppl: float,
                    max_increase: float = 0.05, step: Optional[int] = None,
                    max_iterations: int = 64,
                    rotations: Optional[ItqRotations] = None,
                    granularity: str = "kv_head",
                    init_threshold: float = 0.0) -> ThresholdTuneResult:
    """Per-(layer, head) SCF threshold tuning.

    Greedy loop: evaluate, then raise the threshold of the (layer, head)
    with the *lowest* filter ratio by ``step`` sign bits; stop (and revert)
    as soon as perplexity rises more than ``max_increase`` over dense, or
    when every threshold saturates at the head dimension.

    Args:
        step: threshold increment in matching-bit units; defaults to
            ``head_dim // 16`` (>= 1).
        granularity: ``"kv_head"`` (the paper's choice) or ``"q_head"``
            (the finer granularity the paper found unstable, Section 5.1).
        init_threshold: starting threshold for every head.  The paper
            initializes at 0 ("no Keys are filtered"); a warm start at
            ``head_dim // 2`` — chance-level concordance, which only drops
            keys scoring below a random vector — reaches the same plateau
            in far fewer (expensive) evaluation iterations.  The first
            evaluation still validates the warm start against the budget,
            and the loop reverts to the best-known-good point as usual.
    """
    if granularity not in ("kv_head", "q_head"):
        raise ValueError("granularity must be 'kv_head' or 'q_head'")
    per_q = granularity == "q_head"
    n_heads = model.config.n_q_heads if per_q else model.config.n_kv_heads
    d = model.config.head_dim
    if step is None:
        step = max(1, d // 16)
    shape = (model.config.n_layers, n_heads)
    thresholds = np.full(shape, float(init_threshold))
    best = None
    history: List[Tuple[float, float]] = []
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        config = base_config.replace(thresholds=thresholds.copy(),
                                     per_q_head_thresholds=per_q)
        ppl, stats = evaluate(model, tokens, config, rotations=rotations,
                              n_stat_heads=n_heads)
        history.append((ppl, stats.filter_ratio))
        if perplexity_increase(ppl, dense_ppl) > max_increase:
            break  # revert to `best`, recorded from the prior iteration
        best = ThresholdTuneResult(
            thresholds=thresholds.copy(), perplexity=ppl,
            filter_ratio=stats.filter_ratio, iterations=iterations,
            history=history,
        )
        ratios = stats.per_head_filter_ratio.copy()
        ratios[thresholds >= d] = np.inf  # saturated heads can't be raised
        if not np.isfinite(ratios).any():
            break
        target = np.unravel_index(int(np.argmin(ratios)), shape)
        thresholds[target] = min(d, thresholds[target] + step)
    if best is None:
        # Even the all-pass configuration violates the budget (tiny k);
        # report it anyway so callers can flag the config as infeasible.
        config = base_config.replace(thresholds=np.zeros(shape),
                                     per_q_head_thresholds=per_q)
        ppl, stats = evaluate(model, tokens, config, rotations=rotations,
                              n_stat_heads=n_heads)
        best = ThresholdTuneResult(np.zeros(shape), ppl, stats.filter_ratio,
                                   iterations, history)
    else:
        best = dataclasses.replace(best, history=history, iterations=iterations)
    return best


def meets_quality_target(ppl: float, dense_ppl: float,
                         max_increase: float = 0.05) -> bool:
    """Paper's Figure 3 gate: within ``max_increase`` of dense perplexity."""
    return perplexity_increase(ppl, dense_ppl) <= max_increase
