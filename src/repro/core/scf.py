"""Sign-Concordance Filtering (SCF), Section 5.1.

SCF keeps a key ``K`` for query ``Q`` when enough of their sign bits agree::

    SCF(Q, K, TH) = TH <= D - sum_i( sign(Q[i]) XOR sign(K[i]) )

Two implementations are provided:

- a vectorized float path (:func:`concordance`) used by the algorithm
  experiments, exploiting ``matches = (D + s_q . s_k) / 2`` for +/-1 signs;
- a bit-packed path (:func:`pack_signs`, :func:`concordance_packed`) that
  mirrors what DReX's PIM Filter Units actually compute (XOR + popcount on
  one-bit Key Sign Objects).  The two are verified to agree bit-exactly.
"""

from __future__ import annotations

import numpy as np


def sign_bits(x: np.ndarray) -> np.ndarray:
    """One-bit quantization: True where the dimension is non-negative.

    The paper quantizes "based on the sign bit of the full-precision data
    representation"; IEEE sign-bit semantics make 0.0 positive.
    """
    return np.asarray(x) >= 0


def sign_pm1(x: np.ndarray) -> np.ndarray:
    """Signs as +/-1 floats (+1 where non-negative)."""
    return np.where(sign_bits(x), 1.0, -1.0)


def concordance(q: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Number of agreeing sign bits between every query and key.

    Args:
        q: ``(..., n_q, D)`` full-precision queries (signs are extracted
            internally, so pre-quantized +/-1 input gives the same result).
        k: ``(..., n_k, D)`` full-precision keys.

    Returns:
        Integer array ``(..., n_q, n_k)`` of matching-sign counts in
        ``[0, D]``.
    """
    d = q.shape[-1]
    if k.shape[-1] != d:
        raise ValueError("query/key dimension mismatch")
    sq = sign_pm1(q).astype(np.float32)
    sk = sign_pm1(k).astype(np.float32)
    return concordance_from_signs(sq, sk, d)


def concordance_from_signs(sq: np.ndarray, sk: np.ndarray,
                           d: int) -> np.ndarray:
    """:func:`concordance` for signs already extracted as +/-1 float32.

    Lets callers share one key-sign extraction across a GQA group (or feed
    an unpacked sign store) instead of re-deriving it per query head.
    """
    # float32 is exact here: the matmul accumulates d terms of +/-1, and
    # integers up to 2^24 are exactly representable.
    dots = np.matmul(sq, np.swapaxes(sk, -1, -2))
    return np.rint((d + dots) / 2.0).astype(np.int64)


def scf_filter(q: np.ndarray, k: np.ndarray, threshold: float) -> np.ndarray:
    """Boolean pass mask: ``concordance >= threshold`` (Section 5.1).

    Threshold 0 passes everything; threshold ``D`` passes only keys whose
    signs agree with the query's on every dimension.
    """
    return concordance(q, k) >= threshold


# --- bit-packed path (hardware-faithful) -----------------------------------


def pack_signs(x: np.ndarray) -> np.ndarray:
    """Pack sign bits of ``(..., n, D)`` vectors into uint8 words.

    This is the Key Sign Object representation stored in DReX DRAM: one bit
    per dimension, padded to a whole number of bytes.
    """
    bits = sign_bits(x).astype(np.uint8)
    return np.packbits(bits, axis=-1)


def unpack_signs_pm1(packed: np.ndarray, d: int) -> np.ndarray:
    """Inverse of :func:`pack_signs` as +/-1 float32 vectors.

    Lets a packed sign store feed the BLAS float path of
    :func:`concordance` (whose sign extraction is idempotent on +/-1
    input), which beats XOR+popcount for large query blocks.
    """
    bits = np.unpackbits(packed, axis=-1, count=d)
    return bits.astype(np.float32) * 2.0 - 1.0


#: Byte -> number-of-set-bits lookup, fallback for numpy < 2.0.
_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)],
                           dtype=np.uint8)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _popcount(x: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint8 array."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(x)
    return _POPCOUNT_TABLE[x]


def concordance_packed(q_packed: np.ndarray, k_packed: np.ndarray,
                       d: int) -> np.ndarray:
    """Matching-sign counts from packed sign words (XOR + popcount).

    Args:
        q_packed: ``(n_q, n_bytes)`` packed query signs.
        k_packed: ``(n_k, n_bytes)`` packed key signs.
        d: true vector dimension (pad bits beyond ``d`` must be zero in both
            inputs, which :func:`pack_signs` guarantees since ``packbits``
            zero-pads; pad-bit XOR is then always 0).

    Returns:
        ``(n_q, n_k)`` integer counts, identical to :func:`concordance`.
    """
    return concordance_packed_many(q_packed, k_packed, d)


def concordance_packed_many(q_packed: np.ndarray, k_packed: np.ndarray,
                            d: int) -> np.ndarray:
    """Batched :func:`concordance_packed` over arbitrary leading axes.

    Args:
        q_packed: ``(..., n_q, n_bytes)`` packed query signs.
        k_packed: ``(..., n_k, n_bytes)`` packed key signs; leading axes
            broadcast against ``q_packed``'s (e.g. one key store shared by a
            whole GQA group).
        d: true vector dimension (pad bits must be zero, see
            :func:`concordance_packed`).

    Returns:
        ``(..., n_q, n_k)`` integer counts, identical per slice to
        :func:`concordance_packed`.  This is the hot kernel of the decode
        fast path: it consumes the KV cache's incremental sign store
        directly, so no per-query sign extraction of the key history is
        needed.
    """
    xor = np.bitwise_xor(q_packed[..., :, None, :], k_packed[..., None, :, :])
    if _HAS_BITWISE_COUNT and xor.shape[-1] % 8 == 0:
        # Count 64 bits per popcount instruction instead of 8: the xor
        # result is freshly materialized (hence contiguous), so whole bytes
        # reinterpret losslessly as uint64 words.
        words = xor.view(np.uint64)
        mismatches = np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
    else:
        mismatches = _popcount(xor).sum(axis=-1, dtype=np.int64)
    return d - mismatches


def scf_filter_packed(q_packed: np.ndarray, k_packed: np.ndarray, d: int,
                      threshold: float) -> np.ndarray:
    """Packed-representation twin of :func:`scf_filter`."""
    return concordance_packed(q_packed, k_packed, d) >= threshold
