"""Sign-Concordance Filtering (SCF), Section 5.1.

SCF keeps a key ``K`` for query ``Q`` when enough of their sign bits agree::

    SCF(Q, K, TH) = TH <= D - sum_i( sign(Q[i]) XOR sign(K[i]) )

Two implementations are provided:

- a vectorized float path (:func:`concordance`) used by the algorithm
  experiments, exploiting ``matches = (D + s_q . s_k) / 2`` for +/-1 signs;
- a bit-packed path (:func:`pack_signs`, :func:`concordance_packed`) that
  mirrors what DReX's PIM Filter Units actually compute (XOR + popcount on
  one-bit Key Sign Objects).  The two are verified to agree bit-exactly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def sign_bits(x: np.ndarray) -> np.ndarray:
    """One-bit quantization: True where the dimension is non-negative.

    The paper quantizes "based on the sign bit of the full-precision data
    representation"; IEEE sign-bit semantics make 0.0 positive.
    """
    return np.asarray(x) >= 0


def sign_pm1(x: np.ndarray) -> np.ndarray:
    """Signs as +/-1 floats (+1 where non-negative)."""
    return np.where(sign_bits(x), 1.0, -1.0)


def concordance(q: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Number of agreeing sign bits between every query and key.

    Args:
        q: ``(..., n_q, D)`` full-precision queries (signs are extracted
            internally, so pre-quantized +/-1 input gives the same result).
        k: ``(..., n_k, D)`` full-precision keys.

    Returns:
        Integer array ``(..., n_q, n_k)`` of matching-sign counts in
        ``[0, D]``.
    """
    d = q.shape[-1]
    if k.shape[-1] != d:
        raise ValueError("query/key dimension mismatch")
    sq = sign_pm1(q).astype(np.float32)
    sk = sign_pm1(k).astype(np.float32)
    return concordance_from_signs(sq, sk, d)


def concordance_from_signs(sq: np.ndarray, sk: np.ndarray,
                           d: int) -> np.ndarray:
    """:func:`concordance` for signs already extracted as +/-1 float32.

    Lets callers share one key-sign extraction across a GQA group (or feed
    an unpacked sign store) instead of re-deriving it per query head.
    """
    # float32 is exact here: the matmul accumulates d terms of +/-1, and
    # integers up to 2^24 are exactly representable.
    dots = np.matmul(sq, np.swapaxes(sk, -1, -2))
    return np.rint((d + dots) / 2.0).astype(np.int64)


def scf_filter(q: np.ndarray, k: np.ndarray, threshold: float) -> np.ndarray:
    """Boolean pass mask: ``concordance >= threshold`` (Section 5.1).

    Threshold 0 passes everything; threshold ``D`` passes only keys whose
    signs agree with the query's on every dimension.
    """
    return concordance(q, k) >= threshold


# --- bit-packed path (hardware-faithful) -----------------------------------


def pack_signs(x: np.ndarray) -> np.ndarray:
    """Pack sign bits of ``(..., n, D)`` vectors into uint8 words.

    This is the Key Sign Object representation stored in DReX DRAM: one bit
    per dimension, padded to a whole number of bytes.
    """
    bits = sign_bits(x).astype(np.uint8)
    return np.packbits(bits, axis=-1)


def unpack_signs_pm1(packed: np.ndarray, d: int) -> np.ndarray:
    """Inverse of :func:`pack_signs` as +/-1 float32 vectors.

    Lets a packed sign store feed the BLAS float path of
    :func:`concordance` (whose sign extraction is idempotent on +/-1
    input), which beats XOR+popcount for large query blocks.
    """
    bits = np.unpackbits(packed, axis=-1, count=d)
    return bits.astype(np.float32) * 2.0 - 1.0


#: Byte -> number-of-set-bits lookup, fallback for numpy < 2.0.
_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)],
                           dtype=np.uint8)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _popcount(x: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint8 array."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(x)
    return _POPCOUNT_TABLE[x]


def concordance_packed(q_packed: np.ndarray, k_packed: np.ndarray,
                       d: int) -> np.ndarray:
    """Matching-sign counts from packed sign words (XOR + popcount).

    Args:
        q_packed: ``(n_q, n_bytes)`` packed query signs.
        k_packed: ``(n_k, n_bytes)`` packed key signs.
        d: true vector dimension (pad bits beyond ``d`` must be zero in both
            inputs, which :func:`pack_signs` guarantees since ``packbits``
            zero-pads; pad-bit XOR is then always 0).

    Returns:
        ``(n_q, n_k)`` integer counts, identical to :func:`concordance`.
    """
    return concordance_packed_many(q_packed, k_packed, d)


def concordance_packed_many(q_packed: np.ndarray, k_packed: np.ndarray,
                            d: int) -> np.ndarray:
    """Batched :func:`concordance_packed` over arbitrary leading axes.

    Args:
        q_packed: ``(..., n_q, n_bytes)`` packed query signs.
        k_packed: ``(..., n_k, n_bytes)`` packed key signs; leading axes
            broadcast against ``q_packed``'s (e.g. one key store shared by a
            whole GQA group).
        d: true vector dimension (pad bits must be zero, see
            :func:`concordance_packed`).

    Returns:
        ``(..., n_q, n_k)`` integer counts, identical per slice to
        :func:`concordance_packed`.  This is the hot kernel of the decode
        fast path: it consumes the KV cache's incremental sign store
        directly, so no per-query sign extraction of the key history is
        needed.
    """
    return d - mismatches_packed(q_packed, k_packed).astype(np.int64)


def mismatches_packed(q_packed: np.ndarray, k_packed: np.ndarray
                      ) -> np.ndarray:
    """Per-pair mismatching-bit counts from packed signs (XOR + popcount).

    The raw form of :func:`concordance_packed_many` —
    ``concordance = d - mismatches`` — in the narrowest dtype the count
    fits (uint8 for one 64-bit word, uint16 beyond).  Thresholding callers
    (``conc >= thr  <=>  mismatches <= d - thr``) use it directly to skip
    the int64 conversion pass; this matters in the tiled prefill loop
    where the count array is the single largest temporary.

    When both inputs' byte axes are contiguous multiples of 8, the packed
    bytes reinterpret losslessly as uint64 words and each word pair costs
    one XOR + one popcount instruction.
    """
    nb = q_packed.shape[-1]
    if (_HAS_BITWISE_COUNT and nb and nb % 8 == 0
            and q_packed.strides[-1] == 1 and k_packed.strides[-1] == 1):
        qw = q_packed.view(np.uint64)
        kw = k_packed.view(np.uint64)
        acc = np.bitwise_count(qw[..., :, None, 0] ^ kw[..., None, :, 0])
        if nb > 8:
            acc = acc.astype(np.uint16)
            for word in range(1, nb // 8):
                acc += np.bitwise_count(qw[..., :, None, word]
                                        ^ kw[..., None, :, word])
        return acc
    xor = np.bitwise_xor(q_packed[..., :, None, :], k_packed[..., None, :, :])
    return _popcount(xor).sum(axis=-1, dtype=np.uint16)


def scf_filter_packed(q_packed: np.ndarray, k_packed: np.ndarray, d: int,
                      threshold: float) -> np.ndarray:
    """Packed-representation twin of :func:`scf_filter`."""
    return concordance_packed(q_packed, k_packed, d) >= threshold


# --- session-batched path (serving hot loop) --------------------------------


class SignScratch:
    """One growable byte buffer reused across layers and decode steps.

    The session-batched concordance kernel needs a padded
    ``(n_sessions, n_kv_heads, max_ctx, n_bytes)`` staging area for the
    ragged per-session key-sign stores.  Allocating it per layer per step
    churns the allocator (every decode step of every layer would request a
    multi-megabyte array at long context); instead callers hold one
    :class:`SignScratch` and borrow views of the required shape.  The
    backing buffer only ever grows (geometrically), so steady-state decode
    performs zero allocations here.
    """

    def __init__(self) -> None:
        self._buf = np.empty(0, dtype=np.uint8)
        #: number of backing-buffer (re)allocations — observability for the
        #: allocator-churn regression tests.
        self.allocations = 0

    def borrow(self, shape: tuple) -> np.ndarray:
        """A C-contiguous uint8 view of ``shape`` over the shared buffer.

        Contents are unspecified (callers overwrite the region they read);
        the view is only valid until the next :meth:`borrow`.
        """
        n = 1
        for dim in shape:
            n *= int(dim)
        if n > self._buf.size:
            cap = 1 << max(10, (n - 1).bit_length())
            self._buf = np.empty(cap, dtype=np.uint8)
            self.allocations += 1
        return self._buf[:n].reshape(shape)


def concordance_packed_sessions(q_packed: np.ndarray, key_signs, d: int,
                                scratch: Optional[SignScratch] = None
                                ) -> np.ndarray:
    """Ragged-session concordance in **one** packed XOR+popcount call.

    The serving engine decodes a whole continuous batch per step; filtering
    each session with its own :func:`concordance_packed_many` call pays the
    numpy dispatch overhead ``n_sessions * n_layers`` times per step.  This
    kernel pads every session's packed key store into one staging buffer
    and runs a single batched XOR+popcount over
    ``(n_sessions, n_kv_heads, G, n_q, max_ctx)``.

    Args:
        q_packed: ``(n_sessions, ..., n_q, n_bytes)`` packed query signs
            (identical shape across sessions — one decode query each).
        key_signs: sequence of ``(n_kv_heads, n_ctx_i, n_bytes)`` packed
            key stores, one per session, with ragged ``n_ctx_i``.
        d: true vector dimension.
        scratch: optional :class:`SignScratch`; when omitted the padded
            staging buffer is freshly allocated.

    Returns:
        ``(n_sessions, ..., n_q, max_ctx)`` int64 counts.  Row ``i`` is
        bit-identical to ``concordance_packed_many`` on session ``i`` over
        its first ``n_ctx_i`` columns; entries beyond a session's length
        are unspecified and must be sliced off by the caller.
    """
    n_sessions = len(key_signs)
    if q_packed.shape[0] != n_sessions:
        raise ValueError("one query-sign slab per session required")
    lengths = [ks.shape[-2] for ks in key_signs]
    max_ctx = max(lengths) if lengths else 0
    n_kv_heads, _, n_bytes = key_signs[0].shape
    shape = (n_sessions, n_kv_heads, max_ctx, n_bytes)
    padded = scratch.borrow(shape) if scratch is not None \
        else np.empty(shape, dtype=np.uint8)
    for i, ks in enumerate(key_signs):
        padded[i, :, : lengths[i]] = ks
    # Insert a broadcast axis so every session's key store pairs with all
    # of its GQA group's query heads: (S, Hkv, 1, max_ctx, nb).
    return concordance_packed_many(q_packed, padded[:, :, None], d)
