"""Configuration for LongSight's hybrid attention."""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

import numpy as np

ThresholdLike = Union[int, float, np.ndarray]


@dataclasses.dataclass
class LongSightConfig:
    """Hyper-parameters of the hybrid dense–sparse attention algorithm.

    Defaults follow Section 8.1.3 of the paper: a 1,024-token dense sliding
    window, 16 attention-sink tokens, top-k of 1,024, and per-KV-head SCF
    thresholds (0 disables filtering).

    Attributes:
        window: dense sliding-window size ``W`` (most recent tokens kept on
            the GPU).
        n_sink: attention-sink tokens from the start of the context, always
            attended densely.
        top_k: maximum sparse keys/values retrieved per query head
            (hardware cap: 1,024).
        thresholds: SCF threshold(s); scalar, or an array broadcastable to
            ``(n_layers, n_kv_heads)`` — or ``(n_layers, n_q_heads)`` when
            ``per_q_head_thresholds`` is set.  A key passes when at least
            ``threshold`` of its sign bits agree with the query's.
        use_itq: whether to apply learned ITQ rotations before sign
            extraction (requires rotations to be fitted / supplied).
        per_q_head_thresholds: resolve thresholds per *query* head instead
            of per KV head.  The paper found this finer granularity
            "introduced instability in our threshold tuning algorithm"
            (Section 5.1) and settled on per-KV-head; both are supported
            here so that finding can be reproduced
            (``benchmarks/test_ablation_granularity.py``).
        prefilter: which cheap candidate pre-filter backs the sparse
            region: ``"scf"`` (sign-concordance, the paper's exact-recall
            mechanism) or ``"antidiag"`` (XAttention-style antidiagonal
            block scoring — approximate, see
            :mod:`repro.core.antidiag`).  Resolved by
            :func:`repro.core.hybrid.make_backend`.
        prefill_tile: K/V tile size of the IO-aware (FlashAttention-style)
            prefill path.  Query blocks whose context exceeds the tile
            stream keys, values, and packed signs tile by tile instead of
            materializing ``(n_queries, n_ctx)`` score/mask arrays; 0
            disables tiling (always take the monolithic path).
        antidiag_block: key-block granularity of the antidiagonal scorer.
        antidiag_stride: antidiagonal sampling stride ``S`` (the scorer
            sums scores along every ``S``-th antidiagonal of each block).
        antidiag_tau: cumulative softmax mass the selected blocks must
            reach (XAttention's threshold parameter).
        antidiag_max_blocks: hard cap on selected sparse blocks per query
            block (bounds worst-case cost).
    """

    window: int = 1024
    n_sink: int = 16
    top_k: int = 1024
    thresholds: ThresholdLike = 0
    use_itq: bool = False
    per_q_head_thresholds: bool = False
    prefilter: str = "scf"
    prefill_tile: int = 4096
    antidiag_block: int = 64
    antidiag_stride: int = 8
    antidiag_tau: float = 0.9
    antidiag_max_blocks: int = 64

    MAX_HARDWARE_TOP_K = 1024

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1 (queries must see themselves)")
        if self.n_sink < 0:
            raise ValueError("n_sink must be >= 0")
        if self.top_k < 0:
            raise ValueError("top_k must be >= 0")
        if self.prefilter not in ("scf", "antidiag"):
            raise ValueError("prefilter must be 'scf' or 'antidiag'")
        if self.prefill_tile < 0:
            raise ValueError("prefill_tile must be >= 0 (0 disables tiling)")
        if self.antidiag_block < 1 or self.antidiag_stride < 1:
            raise ValueError("antidiag block/stride must be >= 1")
        if self.antidiag_stride > self.antidiag_block:
            raise ValueError("antidiag_stride must not exceed antidiag_block")
        if self.antidiag_block % self.antidiag_stride != 0:
            raise ValueError("antidiag_block must be a multiple of "
                             "antidiag_stride")
        if not 0.0 < self.antidiag_tau <= 1.0:
            raise ValueError("antidiag_tau must be in (0, 1]")
        if self.antidiag_max_blocks < 1:
            raise ValueError("antidiag_max_blocks must be >= 1")

    def threshold_for(self, layer: int, kv_head: int,
                      q_head: Optional[int] = None) -> float:
        """Resolve the SCF threshold for one (layer, head).

        With ``per_q_head_thresholds`` the last axis indexes query heads
        (``q_head`` required); otherwise it indexes KV heads.
        """
        head = kv_head
        if self.per_q_head_thresholds:
            if q_head is None:
                raise ValueError("per_q_head_thresholds requires q_head")
            head = q_head
        t = np.asarray(self.thresholds)
        if t.ndim == 0:
            return float(t)
        if t.ndim == 1:
            return float(t[head])
        return float(t[layer, head])

    def replace(self, **kwargs) -> "LongSightConfig":
        """Return a copy with fields overridden."""
        return dataclasses.replace(self, **kwargs)
