"""Configuration for LongSight's hybrid attention."""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

import numpy as np

ThresholdLike = Union[int, float, np.ndarray]


@dataclasses.dataclass
class LongSightConfig:
    """Hyper-parameters of the hybrid dense–sparse attention algorithm.

    Defaults follow Section 8.1.3 of the paper: a 1,024-token dense sliding
    window, 16 attention-sink tokens, top-k of 1,024, and per-KV-head SCF
    thresholds (0 disables filtering).

    Attributes:
        window: dense sliding-window size ``W`` (most recent tokens kept on
            the GPU).
        n_sink: attention-sink tokens from the start of the context, always
            attended densely.
        top_k: maximum sparse keys/values retrieved per query head
            (hardware cap: 1,024).
        thresholds: SCF threshold(s); scalar, or an array broadcastable to
            ``(n_layers, n_kv_heads)`` — or ``(n_layers, n_q_heads)`` when
            ``per_q_head_thresholds`` is set.  A key passes when at least
            ``threshold`` of its sign bits agree with the query's.
        use_itq: whether to apply learned ITQ rotations before sign
            extraction (requires rotations to be fitted / supplied).
        per_q_head_thresholds: resolve thresholds per *query* head instead
            of per KV head.  The paper found this finer granularity
            "introduced instability in our threshold tuning algorithm"
            (Section 5.1) and settled on per-KV-head; both are supported
            here so that finding can be reproduced
            (``benchmarks/test_ablation_granularity.py``).
    """

    window: int = 1024
    n_sink: int = 16
    top_k: int = 1024
    thresholds: ThresholdLike = 0
    use_itq: bool = False
    per_q_head_thresholds: bool = False

    MAX_HARDWARE_TOP_K = 1024

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1 (queries must see themselves)")
        if self.n_sink < 0:
            raise ValueError("n_sink must be >= 0")
        if self.top_k < 0:
            raise ValueError("top_k must be >= 0")

    def threshold_for(self, layer: int, kv_head: int,
                      q_head: Optional[int] = None) -> float:
        """Resolve the SCF threshold for one (layer, head).

        With ``per_q_head_thresholds`` the last axis indexes query heads
        (``q_head`` required); otherwise it indexes KV heads.
        """
        head = kv_head
        if self.per_q_head_thresholds:
            if q_head is None:
                raise ValueError("per_q_head_thresholds requires q_head")
            head = q_head
        t = np.asarray(self.thresholds)
        if t.ndim == 0:
            return float(t)
        if t.ndim == 1:
            return float(t[head])
        return float(t[layer, head])

    def replace(self, **kwargs) -> "LongSightConfig":
        """Return a copy with fields overridden."""
        return dataclasses.replace(self, **kwargs)
