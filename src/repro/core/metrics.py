"""Filter-ratio and sparsity accounting (Figure 3's y-axis).

The paper defines the *KV cache filter ratio* as "the ratio of the total
number of KV entries accessed during the dense attention baseline to the
number of Keys accessed after filtering and k Keys and Values retrieved
after Top-k selection", measured over the non-window (sparse) region.

Concretely, per query and per KV head over the ``N`` sparse-region tokens:

- dense baseline accesses: ``2 N``   (every key and every value),
- LongSight accesses: ``N_pass + 2 k_ret``  (keys scored after the sign
  filter, plus the full-precision keys and values returned for the top-k),

and ``filter_ratio = 2N / (N_pass + 2 k_ret)``.  Sparsity relates as
``1 - 1/filter_ratio`` (consistent with Section 5.4's "91.92% sparsity, a
filter ratio of 12.4x").
"""

from __future__ import annotations

import numpy as np


class FilterStats:
    """Accumulates per-(layer, KV head) sparse-access counters."""

    def __init__(self, n_layers: int, n_kv_heads: int) -> None:
        self.n_layers = n_layers
        self.n_kv_heads = n_kv_heads
        shape = (n_layers, n_kv_heads)
        self.candidates = np.zeros(shape, dtype=np.int64)
        self.passed = np.zeros(shape, dtype=np.int64)
        self.retrieved = np.zeros(shape, dtype=np.int64)
        self.queries = np.zeros(shape, dtype=np.int64)

    def reset(self) -> None:
        for counter in (self.candidates, self.passed, self.retrieved, self.queries):
            counter[:] = 0

    def update(self, layer: int, kv_head: int, candidates: int, passed: int,
               retrieved: int, queries: int = 1) -> None:
        """Record one (or a block of) sparse retrieval(s)."""
        if passed > candidates:
            raise ValueError("passed cannot exceed candidates")
        if retrieved > passed:
            raise ValueError("retrieved cannot exceed passed")
        self.candidates[layer, kv_head] += candidates
        self.passed[layer, kv_head] += passed
        self.retrieved[layer, kv_head] += retrieved
        self.queries[layer, kv_head] += queries

    # -- aggregates ------------------------------------------------------------

    @staticmethod
    def _ratio(candidates: np.ndarray, passed: np.ndarray,
               retrieved: np.ndarray) -> np.ndarray:
        dense = 2.0 * candidates
        sparse = passed + 2.0 * retrieved
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(sparse > 0, dense / np.maximum(sparse, 1e-12), 1.0)
        return np.where(candidates > 0, ratio, 1.0)

    @property
    def filter_ratio(self) -> float:
        """Overall non-window KV cache filter ratio (>= 1 means savings)."""
        return float(self._ratio(self.candidates.sum(), self.passed.sum(),
                                 self.retrieved.sum()))

    @property
    def per_head_filter_ratio(self) -> np.ndarray:
        """``(n_layers, n_kv_heads)`` filter ratios (1.0 where unused)."""
        return self._ratio(self.candidates, self.passed, self.retrieved)

    @property
    def pass_rate(self) -> float:
        """Fraction of sparse candidates surviving the sign filter."""
        total = self.candidates.sum()
        return float(self.passed.sum() / total) if total else 1.0

    @property
    def sparsity(self) -> float:
        """Fraction of non-window KV accesses avoided: ``1 - 1/filter_ratio``."""
        return 1.0 - 1.0 / self.filter_ratio

    def merge(self, other: "FilterStats") -> None:
        """Accumulate another stats object into this one."""
        if (other.n_layers, other.n_kv_heads) != (self.n_layers, self.n_kv_heads):
            raise ValueError("shape mismatch")
        self.candidates += other.candidates
        self.passed += other.passed
        self.retrieved += other.retrieved
        self.queries += other.queries

    def summary(self) -> dict:
        """Plain-dict snapshot for logging/benchmark tables."""
        return {
            "filter_ratio": self.filter_ratio,
            "sparsity": self.sparsity,
            "pass_rate": self.pass_rate,
            "candidates": int(self.candidates.sum()),
            "passed": int(self.passed.sum()),
            "retrieved": int(self.retrieved.sum()),
        }
