"""XAttention-style antidiagonal block-scoring pre-filter backend.

An alternative to sign-concordance filtering (:mod:`repro.core.scf`) for
ranking the offloaded sparse region: keys are grouped into fixed blocks
and each block's importance for a query is estimated from **strided
antidiagonal sums** of its keys.  For block ``b`` with stride ``S``, the
cache maintains residue sums

    K_sum[b, s] = sum of keys j in block b with (j mod B) mod S == s

and a query at position ``p`` scores block ``b`` as
``q . K_sum[b, (S - 1 - p) mod S]``.  Consecutive queries rotate through
the residue classes, so the sampled (query, key) pairs sweep the
antidiagonals of each (query block x key block) score tile — the pattern
XAttention showed is the strongest cheap predictor of block attention
mass.  Per query, blocks are ranked by softmax weight and selected until
their cumulative mass reaches ``antidiag_tau`` (capped at
``antidiag_max_blocks``); all columns of the selected blocks are then
attended exactly, together with the dense sinks + sliding window, under
one softmax.

Cost per query: one dot against ``n_ctx / B`` summary vectors instead of
``n_ctx`` keys — an ``S/B`` fraction of the dense score work — plus exact
attention over at most ``max_blocks * B`` retrieved columns.

**Approximation envelope** (unlike SCF + exact top-k, which loses nothing
the threshold does not discard):

- selection is block-granular: a high-scoring key inside a low-scoring
  block is missed;
- blocks straddling the sliding-window frontier of a query are not
  candidates for it (only *fully* past blocks are scored), so up to
  ``B - 1`` sparse columns nearest the window are unreachable for that
  query;
- the trailing partial block's residue sums cover fewer keys and score
  proportionally low.

With ``antidiag_tau = 1.0`` and an unbounded block budget every candidate
block is selected, which makes the attended set exactly the causal
sinks + window + all fully-past blocks; when block boundaries align with
the sparse region this equals full dense attention (the exactness anchor
used by the tests).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.core.config import LongSightConfig
from repro.core.hybrid import SlidingWindowAttention, _record_split, \
    _region_masks
from repro.core.metrics import FilterStats
from repro.obs import Obs, resolve_obs
from repro.llm.ops import softmax

if TYPE_CHECKING:
    from repro.llm.kv_cache import KVCache


def block_summaries_from_keys(k: np.ndarray, block: int,
                              stride: int) -> np.ndarray:
    """Antidiagonal residue sums computed directly from raw keys.

    The stateless twin of the cache's incremental
    :class:`~repro.llm.kv_cache.BlockSummary` store, for callers that have
    the keys in hand (``forward``) or a cache without the summary hook.

    Args:
        k: ``(n_kv_heads, n_ctx, head_dim)`` keys.
        block: key-block size ``B``.
        stride: antidiagonal stride ``S`` (must divide ``B``).

    Returns:
        ``(n_kv_heads, n_blocks, stride, head_dim)`` sums over
        ``ceil(n_ctx / B)`` blocks; the trailing partial block sums only
        the keys that exist.
    """
    if block % stride != 0:
        raise ValueError("block must be a multiple of stride")
    n_kv_heads, n_ctx, head_dim = k.shape
    n_blocks = -(-n_ctx // block)
    pad = n_blocks * block - n_ctx
    if pad:
        k = np.concatenate(
            [k, np.zeros((n_kv_heads, pad, head_dim), dtype=k.dtype)], axis=1)
    # In-block offset l = a*S + s  =>  l mod S == s: summing axis `a`
    # leaves exactly the residue classes.
    return k.reshape(n_kv_heads, n_blocks, block // stride, stride,
                     head_dim).sum(axis=2)


class AntidiagonalAttention:
    """Hybrid dense+sparse attention with antidiagonal block selection.

    Drop-in peer of :class:`~repro.core.hybrid.LongSightAttention` behind
    the same duck-typed hooks (``prepare_cache`` / ``forward_cached`` /
    ``forward`` / ``dense_fallback``), selected by
    ``config.prefilter == "antidiag"`` via
    :func:`~repro.core.hybrid.make_backend`.  It exposes **no**
    ``forward_cached_batch`` hook, so the serving engine automatically
    keeps its sessions out of session-batched decode groups.

    Args:
        config: algorithm hyper-parameters; the ``antidiag_*`` fields
            drive selection, ``window``/``n_sink`` the dense region.
            SCF-specific fields (thresholds, ITQ, ``top_k``) are unused.
        stats: optional :class:`FilterStats`; ``passed`` and ``retrieved``
            both count retrieved sparse columns (there is no separate
            top-k stage after block selection).
        obs: observability bundle; ``None`` binds the process default.

    Like the SCF backend it is stateless across calls apart from
    ``stats`` and the optional ``selection_capture`` debug dict mapping
    ``(layer, q_head)`` to the selected sparse-column mask.
    """

    def __init__(self, config: LongSightConfig,
                 stats: Optional[FilterStats] = None,
                 obs: Optional[Obs] = None) -> None:
        self.config = config
        self.stats = stats
        self.obs = resolve_obs(obs)
        self.selection_capture: Optional[
            Dict[Tuple[int, int], np.ndarray]] = None
        self._dense_fallback: Optional[SlidingWindowAttention] = None

    # -- cache integration ----------------------------------------------------

    def prepare_cache(self, cache: "KVCache") -> None:
        """Enable the cache's incremental block-summary store.

        Duck-typed like the sign cache: caches without the hook still
        work — ``forward_cached`` falls back to recomputing summaries
        from the raw keys per call.
        """
        enable = getattr(cache, "enable_block_summary", None)
        if enable is not None:
            enable(self.config.antidiag_block, self.config.antidiag_stride)

    def forward_cached(self, layer: int, q: np.ndarray,
                       cache: "KVCache") -> np.ndarray:
        """Cache-aware forward: consumes the summary store when present."""
        kv = cache.layers[layer]
        if getattr(kv, "block_summary_enabled", False):
            summaries = kv.block_summaries
        else:
            summaries = block_summaries_from_keys(
                kv.keys, self.config.antidiag_block,
                self.config.antidiag_stride)
        return self._forward(layer, q, kv.keys, kv.values, summaries)

    # -- protocol entry point -------------------------------------------------

    def forward(self, layer: int, q: np.ndarray, k: np.ndarray,
                v: np.ndarray) -> np.ndarray:
        summaries = block_summaries_from_keys(
            k, self.config.antidiag_block, self.config.antidiag_stride)
        return self._forward(layer, q, k, v, summaries)

    # -- degradation target ---------------------------------------------------

    def dense_fallback(self) -> SlidingWindowAttention:
        """Sinks + window with this config's geometry (correctness anchor)."""
        if self._dense_fallback is None:
            self._dense_fallback = SlidingWindowAttention(
                window=self.config.window, n_sink=self.config.n_sink)
        return self._dense_fallback

    def forward_dense_only(self, layer: int, q: np.ndarray, k: np.ndarray,
                           v: np.ndarray) -> np.ndarray:
        """Hybrid attention with the sparse component dropped (degraded)."""
        return self.dense_fallback().forward(layer, q, k, v)

    # -- core -----------------------------------------------------------------

    def _select_blocks(self, bscores: np.ndarray, valid: np.ndarray
                       ) -> np.ndarray:
        """Per-row block choice: top softmax mass >= tau, capped.

        Args:
            bscores: ``(n_q, n_blocks)`` scaled block scores.
            valid: ``(n_q, n_blocks)`` candidacy mask (fully-past blocks).

        Returns:
            ``(n_q, n_blocks)`` boolean selection, a subset of ``valid``.
        """
        cfg = self.config
        masked = np.where(valid, bscores, -np.inf)
        any_valid = valid.any(axis=1)
        # Rows with no candidates get a finite filler so softmax stays
        # NaN-free; their selections are zeroed by `& valid` below.
        probs = softmax(np.where(any_valid[:, None], masked, 0.0), axis=-1)
        # Descending score; argsort of the negated scores is stable, so
        # equal scores (and the -inf invalid tail) break toward lower
        # block indices — selection is deterministic.
        order = np.argsort(-masked, axis=1, kind="stable")
        sorted_probs = np.take_along_axis(probs, order, axis=1)
        csum = np.cumsum(sorted_probs, axis=1)
        # Keep a block while the mass accumulated *before* it is < tau:
        # the first block always qualifies, the one crossing tau is the
        # last kept.
        sel_sorted = (csum - sorted_probs) < cfg.antidiag_tau
        sel_sorted &= np.arange(bscores.shape[1])[None, :] \
            < cfg.antidiag_max_blocks
        sel_sorted &= np.take_along_axis(valid, order, axis=1)
        selected = np.zeros_like(sel_sorted)
        np.put_along_axis(selected, order, sel_sorted, axis=1)
        return selected

    def _forward(self, layer: int, q: np.ndarray, k: np.ndarray,
                 v: np.ndarray, summaries: np.ndarray) -> np.ndarray:
        cfg = self.config
        bsize, stride = cfg.antidiag_block, cfg.antidiag_stride
        n_q_heads, n_new, head_dim = q.shape
        n_kv_heads, n_ctx, _ = k.shape
        group = n_q_heads // n_kv_heads
        scale = 1.0 / np.sqrt(head_dim)
        q_positions = np.arange(n_ctx - n_new, n_ctx)
        metrics = self.obs.metrics
        tracer = self.obs.tracer

        # Dense region, gathered: sinks plus the union of the query rows'
        # sliding windows (per-row clipping happens via the region masks).
        sink_end = min(cfg.n_sink, n_ctx)
        win_start = max(sink_end, n_ctx - n_new - cfg.window + 1)
        dense_cols = np.concatenate(
            [np.arange(sink_end), np.arange(win_start, n_ctx)])
        dense_mask, _ = _region_masks(q_positions, n_ctx, cfg.n_sink,
                                      cfg.window, key_positions=dense_cols)

        # Candidate blocks: fully earlier than every-queried window start
        # they may serve, i.e. block b is scorable for row p iff
        # (b+1)*B - 1 <= p - window.  Blocks beyond the latest row's
        # window can serve no one and are not even scored.
        nb_cand = min(summaries.shape[1],
                      max(0, (n_ctx - 1) - cfg.window + 1) // bsize)
        candidates = int(np.clip(
            q_positions - cfg.window - cfg.n_sink + 1, 0, None).sum())
        any_sparse = nb_cand > 0 and candidates > 0

        if any_sparse:
            block_last = (np.arange(nb_cand) + 1) * bsize - 1
            valid = block_last[None, :] <= (q_positions - cfg.window)[:, None]
            # Sparse columns below n_sink are attended densely as sinks;
            # keep their blocks scorable (the sums include sink keys — an
            # accepted approximation) but never re-attend dense columns.
            resid = (stride - 1 - q_positions) % stride

        out = np.empty((n_q_heads, n_new, head_dim))
        passed_total = 0
        block_offsets = np.arange(bsize)
        for kv_head in range(n_kv_heads):
            if any_sparse:
                summ = summaries[kv_head, :nb_cand]      # (nb, S, d)
            for g in range(group):
                h = kv_head * group + g
                qh = q[h]
                cols_sparse = np.arange(0)
                if any_sparse:
                    with tracer.span("antidiag_select", layer=layer,
                                     n_blocks=nb_cand):
                        bscores = np.empty((n_new, nb_cand))
                        for rr in np.unique(resid):
                            rows = np.nonzero(resid == rr)[0]
                            bscores[rows] = qh[rows] @ summ[:, rr].T
                        sel = self._select_blocks(bscores * scale, valid)
                    # Gather only this head's selected blocks: per-head
                    # column sets stay O(max_blocks * B) instead of the
                    # union across all heads.
                    chosen = np.nonzero(sel.any(axis=0))[0]
                    cols_sparse = (chosen[:, None] * bsize
                                   + block_offsets[None, :]).ravel()
                retrieved = 0
                if cols_sparse.size:
                    _, sparse_m2 = _region_masks(
                        q_positions, n_ctx, cfg.n_sink, cfg.window,
                        key_positions=cols_sparse)
                    cols_all = np.concatenate([dense_cols, cols_sparse])
                    # A gathered column is attended sparsely iff its block
                    # is selected for the row AND the column is in the
                    # row's sparse region — dense columns that also appear
                    # in a selected block stay exclusively dense, so no
                    # column is double-counted.
                    sparse_attend = sel[:, cols_sparse // bsize] & sparse_m2
                    attend = np.concatenate([dense_mask, sparse_attend],
                                            axis=1)
                    retrieved = int(sparse_attend.sum())
                    if self.selection_capture is not None:
                        sel_mask = np.zeros((n_new, n_ctx), dtype=bool)
                        sel_mask[:, cols_sparse] = sparse_attend
                        self.selection_capture[(layer, h)] = sel_mask
                else:
                    cols_all = dense_cols
                    attend = dense_mask
                    if self.selection_capture is not None:
                        self.selection_capture[(layer, h)] = \
                            np.zeros((n_new, n_ctx), dtype=bool)
                passed_total += retrieved
                if self.stats is not None:
                    per_q = (self.stats.n_kv_heads == n_q_heads
                             and n_q_heads != n_kv_heads)
                    self.stats.update(
                        layer, h if per_q else kv_head,
                        candidates=candidates, passed=retrieved,
                        retrieved=retrieved, queries=n_new)
                with tracer.span("antidiag_attend", layer=layer,
                                 columns=int(cols_all.shape[0])):
                    kg = k[kv_head, cols_all]
                    vg = v[kv_head, cols_all]
                    scores = (qh @ kg.T) * scale
                    final = np.where(attend, scores, -np.inf)
                    probs = softmax(final, axis=-1)
                    out[h] = probs @ vg
        if metrics.enabled:
            _record_split(metrics, n_q_heads * n_new,
                          int(dense_mask.sum()) * n_q_heads,
                          candidates * n_q_heads if any_sparse else 0,
                          passed_total, passed_total)
        return out
