"""The LongSight algorithm: hybrid dense–sparse attention (Section 5).

The pipeline has three stages, mirroring retrieval from a vector database:

1. **Filtering** — :mod:`repro.core.scf` excludes prior tokens' keys whose
   sign bits disagree with the query's beyond a per-KV-head threshold
   (Sign-Concordance Filtering, the operation DReX's in-DRAM PFUs execute).
2. **Scoring** — full-precision dot products for surviving keys (executed
   by DReX's near-memory accelerators).
3. **Ranking** — top-k selection of attention scores
   (:mod:`repro.core.topk`).

:class:`repro.core.hybrid.LongSightAttention` combines the sparse pipeline
with a dense sliding window and attention-sink tokens, and plugs into the
transformer substrate as an attention backend — the software analogue of the
paper's ``LongSightAttn`` PyTorch module.  :mod:`repro.core.itq` supplies
the learned rotations that fix the sign-bit imbalance of clustered Llama
keys, and :mod:`repro.core.tuning` implements the paper's hyper-parameter
tuning loops (Section 8.1.3).
"""

from repro.core.config import LongSightConfig
from repro.core.scf import (sign_bits, concordance, scf_filter, pack_signs,
                            concordance_packed, concordance_packed_many)
from repro.core.itq import learn_itq_rotation, ItqRotations, fit_itq
from repro.core.topk import top_k_indices
from repro.core.sparse import sparse_retrieve, SparseResult
from repro.core.hybrid import LongSightAttention, SlidingWindowAttention
from repro.core.metrics import FilterStats
from repro.core.tuning import tune_thresholds, tune_top_k

__all__ = [
    "LongSightConfig",
    "sign_bits",
    "concordance",
    "scf_filter",
    "pack_signs",
    "concordance_packed",
    "concordance_packed_many",
    "learn_itq_rotation",
    "ItqRotations",
    "fit_itq",
    "top_k_indices",
    "sparse_retrieve",
    "SparseResult",
    "LongSightAttention",
    "SlidingWindowAttention",
    "FilterStats",
    "tune_thresholds",
    "tune_top_k",
]
