"""Iterative Quantization (ITQ) rotations, Section 5.4.

SCF assumes sign bits are balanced; Llama K/Q representations cluster, which
starves the filter.  ITQ (Gong & Lazebnik, CVPR'11) learns an orthogonal
rotation ``R`` minimizing the binary quantization error
``|| sign(VR) - VR ||_F^2``.  Because ``R`` is orthogonal it preserves dot
products exactly — scores are unaffected; only the sign-bit geometry
improves.

Per the paper, one rotation is trained per (layer, KV head) on a ~1K-token
sample of *post-RoPE* keys and queries ("positional embeddings break
distance invariance, so ITQ cannot be fused into the projection layers").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.scf import sign_pm1
from repro.llm.model import DenseBackend, Transformer


def random_rotation(d: int, seed: int = 0) -> np.ndarray:
    """A Haar-ish random orthogonal matrix via QR of a Gaussian."""
    rng = np.random.default_rng(seed)
    q, r = np.linalg.qr(rng.normal(size=(d, d)))
    return q * np.sign(np.diag(r))


def quantization_loss(vectors: np.ndarray, rotation: np.ndarray) -> float:
    """Mean squared distance between rotated vectors and their sign codes."""
    projected = vectors @ rotation
    return float(np.mean(np.square(sign_pm1(projected) - projected)))


def learn_itq_rotation(vectors: np.ndarray, n_iter: int = 50,
                       seed: int = 0) -> np.ndarray:
    """Learn an orthogonal ``(D, D)`` ITQ rotation for ``(N, D)`` samples.

    Alternates the two ITQ steps: fix R, set codes ``B = sign(VR)``; fix B,
    solve the orthogonal Procrustes problem ``min_R ||B - VR||`` via SVD of
    ``V^T B``.  The loss is non-increasing (property-tested).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise ValueError("expected (N, D) sample matrix")
    d = vectors.shape[1]
    rotation = random_rotation(d, seed)
    for _ in range(n_iter):
        codes = sign_pm1(vectors @ rotation)
        u, _, vt = np.linalg.svd(vectors.T @ codes)
        rotation = u @ vt
    return rotation


class ItqRotations:
    """Per-(layer, KV head) rotation bank.

    Stored as ``(n_layers, n_kv_heads, D, D)``; identity by default.
    """

    def __init__(self, n_layers: int, n_kv_heads: int, head_dim: int) -> None:
        self.n_layers = n_layers
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        eye = np.eye(head_dim)
        self.matrices = np.broadcast_to(
            eye, (n_layers, n_kv_heads, head_dim, head_dim)).copy()

    def set(self, layer: int, kv_head: int, rotation: np.ndarray) -> None:
        if rotation.shape != (self.head_dim, self.head_dim):
            raise ValueError("rotation shape mismatch")
        self.matrices[layer, kv_head] = rotation

    def get(self, layer: int, kv_head: int) -> np.ndarray:
        return self.matrices[layer, kv_head]

    def apply(self, layer: int, kv_head: int, x: np.ndarray) -> np.ndarray:
        """Rotate ``(..., D)`` vectors for sign extraction."""
        return x @ self.matrices[layer, kv_head]


class _RecordingBackend:
    """Dense backend that captures post-RoPE Q/K per layer for ITQ fitting."""

    def __init__(self, n_layers: int) -> None:
        self._dense = DenseBackend()
        self.queries: list[list[np.ndarray]] = [[] for _ in range(n_layers)]
        self.keys: list[Optional[np.ndarray]] = [None] * n_layers

    def forward(self, layer: int, q: np.ndarray, k: np.ndarray,
                v: np.ndarray) -> np.ndarray:
        self.queries[layer].append(q.copy())
        self.keys[layer] = k.copy()  # cumulative history; final call has all
        return self._dense.forward(layer, q, k, v)


def fit_itq(model: Transformer, tokens: np.ndarray, n_iter: int = 50,
            seed: int = 0) -> ItqRotations:
    """Fit per-(layer, KV head) rotations from a short token sample.

    Runs the model once over ``tokens`` (paper: a 1K-token sequence),
    collects post-RoPE keys and queries, and trains a rotation per KV head
    on the union of that head's keys and its group's queries.  Requires no
    task-specific data and is fast (the paper reports under a minute for
    Llama-3-8B; seconds here).
    """
    config = model.config
    recorder = _RecordingBackend(config.n_layers)
    model.forward_full(np.asarray(tokens), backend=recorder)
    rotations = ItqRotations(config.n_layers, config.n_kv_heads, config.head_dim)
    group = config.gqa_group_size
    for layer in range(config.n_layers):
        q_all = np.concatenate(recorder.queries[layer], axis=1)  # (Hq, n, d)
        k_all = recorder.keys[layer]  # (Hkv, n, d)
        for kv_head in range(config.n_kv_heads):
            q_heads = q_all[kv_head * group : (kv_head + 1) * group]
            sample = np.concatenate(
                [k_all[kv_head]] + [q_heads[g] for g in range(group)], axis=0)
            rotation = learn_itq_rotation(sample, n_iter=n_iter,
                                          seed=seed + 31 * layer + kv_head)
            rotations.set(layer, kv_head, rotation)
    return rotations
