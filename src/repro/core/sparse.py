"""The reference sparse retrieval pipeline: filter -> score -> rank.

:func:`sparse_retrieve` is the clean per-request form of what a DReX offload
computes for one (user, layer, KV head): given query vector(s) and that
head's offloaded key/value history, return the top-k keys by dot-product
score.  The functional DReX device model
(:mod:`repro.drex.device`) is property-tested to return exactly this result.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.core.scf import scf_filter
from repro.core.topk import top_k_indices


@dataclasses.dataclass
class SparseResult:
    """Outcome of one sparse retrieval for one query vector.

    Attributes:
        indices: positions (into the offloaded region) of the selected keys,
            sorted by descending score.
        scores: raw (unscaled) dot-product scores of those keys.
        n_candidates: size of the offloaded region examined.
        n_passed: keys surviving the sign-concordance filter.
    """

    indices: np.ndarray
    scores: np.ndarray
    n_candidates: int
    n_passed: int

    @property
    def n_retrieved(self) -> int:
        return len(self.indices)


def sparse_retrieve(query: np.ndarray, keys: np.ndarray, threshold: float,
                    k: int, rotation: Optional[np.ndarray] = None) -> SparseResult:
    """Filter, score and rank one query against a key set.

    Args:
        query: ``(D,)`` post-RoPE query vector.
        keys: ``(N, D)`` post-RoPE keys of the offloaded region.
        threshold: SCF threshold for this KV head.
        k: top-k size.
        rotation: optional ITQ rotation applied (to both sides) before sign
            extraction; scoring always uses the unrotated vectors, which is
            equivalent since the rotation is orthogonal.

    Returns:
        :class:`SparseResult`; ``indices`` is empty when nothing passes.
    """
    query = np.asarray(query, dtype=np.float64)
    keys = np.asarray(keys, dtype=np.float64)
    if query.ndim != 1 or keys.ndim != 2 or keys.shape[1] != query.shape[0]:
        raise ValueError("expected query (D,) and keys (N, D)")
    n = keys.shape[0]
    if n == 0:
        empty = np.empty(0)
        return SparseResult(empty.astype(np.int64), empty, 0, 0)

    if rotation is not None:
        q_f, k_f = query @ rotation, keys @ rotation
    else:
        q_f, k_f = query, keys
    passed = scf_filter(q_f[None, :], k_f, threshold)[0]
    n_passed = int(passed.sum())

    scores = keys @ query
    masked = np.where(passed, scores, -np.inf)
    idx = top_k_indices(masked, k)
    return SparseResult(indices=idx, scores=scores[idx],
                        n_candidates=n, n_passed=n_passed)
