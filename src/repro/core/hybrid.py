"""Hybrid dense–sparse attention backends (Sections 5.3 and 6).

:class:`LongSightAttention` is the software analogue of the paper's
``LongSightAttn`` PyTorch module: per query it attends densely to
``n_sink`` early tokens plus the ``window`` most recent tokens (what the GPU
keeps in HBM) and sparsely — via SCF filtering and top-k — to everything in
between (what lives in DReX).  A single softmax then runs over the combined
dense + sparse score set, exactly as in Figure 2b step 6.

Two implementations of the same algorithm live side by side:

- the **fast path** (default): one sign/rotation extraction per KV head
  shared by its whole GQA group, consuming the KV cache's incremental sign
  store when available (``LayerKV.packed_signs`` — the software analogue of
  DReX reusing stored Key Sign Objects for every query).  Decode-sized
  query blocks run fully head-batched with a packed XOR+popcount
  concordance kernel; prefill-sized blocks use a per-head pipeline with
  cache-resident temporaries and BLAS sign-matmul concordance;
- the **reference path** (``use_fast_path=False``): the original per-head
  Python loop, kept as the correctness oracle.  The two are equivalent —
  selected key sets match exactly and outputs match to float round-off
  (``tests/core/test_fast_equivalence.py``).

:class:`SlidingWindowAttention` is the StreamingLLM-style baseline of
Section 8.2 / Figure 10: sinks + window only, no sparse component.  It
gathers just the sink+window columns, so its per-query cost is O(window),
not O(context).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.core.config import LongSightConfig
from repro.core.itq import ItqRotations
from repro.core.metrics import FilterStats
from repro.obs import Obs, resolve_obs
from repro.core.scf import (concordance, concordance_from_signs,
                            concordance_packed_many, pack_signs, sign_pm1,
                            unpack_signs_pm1)
from repro.core.topk import top_k_mask
from repro.llm.ops import softmax

if TYPE_CHECKING:
    from repro.llm.kv_cache import KVCache

#: Largest query-block size handled by the fully head-batched fast path
#: with the packed XOR+popcount concordance kernel.  Larger (prefill-sized)
#: blocks switch to a per-head pipeline whose (n_new, n_ctx) temporaries
#: stay cache-resident — batching them into one (Hkv, G, n_new, n_ctx)
#: array was measured ~2x slower end to end — and whose concordance runs as
#: one BLAS sign-matmul per head, sharing a single key-sign extraction (or
#: the unpacked sign store) across each GQA group.
_PACKED_CONC_MAX_NEW = 32

#: Filter-ratio histogram edges: log-spaced 1x..1000x savings.
_RATIO_EDGES = tuple(float(e) for e in np.geomspace(1.0, 1000.0, 31))


def _record_split(metrics, queries: int, dense_accesses: int,
                  candidates: int, passed: int, selected: int) -> None:
    """Record one forward's dense-window vs. sparse-topk access split.

    ``filter_ratio`` follows the paper's definition over the sparse
    region (see :mod:`repro.core.metrics`): dense baseline accesses
    ``2N`` vs. ``N_pass + 2 k_ret`` after filtering — one histogram
    sample per instrumented forward ("per step" at decode time).
    """
    metrics.counter("attention.forwards").inc()
    metrics.counter("attention.queries").inc(queries)
    metrics.counter("attention.dense.accesses").inc(dense_accesses)
    metrics.counter("attention.sparse.candidates").inc(candidates)
    metrics.counter("attention.sparse.passed").inc(passed)
    metrics.counter("attention.sparse.selected").inc(selected)
    if candidates:
        ratio = 2.0 * candidates / max(passed + 2.0 * selected, 1e-12)
        metrics.histogram("attention.filter_ratio",
                          edges=_RATIO_EDGES).observe(ratio)


def _region_masks(q_positions: np.ndarray, n_ctx: int, n_sink: int,
                  window: int,
                  key_positions: Optional[np.ndarray] = None
                  ) -> tuple[np.ndarray, np.ndarray]:
    """(dense, sparse-candidate) boolean masks, each ``(n_q, n_keys)``.

    ``dense`` covers sinks plus the sliding window (clipped causally);
    ``sparse`` is the causal remainder — the region LongSight offloads.
    By default keys are the full context ``0..n_ctx-1``; ``key_positions``
    restricts the masks to a gathered subset of columns (used by the
    O(window) sliding-window baseline).
    """
    if key_positions is None:
        j = np.arange(n_ctx)[None, :]
    else:
        j = np.asarray(key_positions)[None, :]
    p = np.asarray(q_positions)[:, None]
    causal = j <= p
    dense = ((j < n_sink) | (j > p - window)) & causal
    sparse = causal & ~dense
    return dense, sparse


class LongSightAttention:
    """Hybrid dense+sparse attention backend for :class:`Transformer`.

    Args:
        config: algorithm hyper-parameters (window, sinks, k, thresholds).
        rotations: optional ITQ rotation bank; required when
            ``config.use_itq`` is set.
        stats: optional :class:`FilterStats` to accumulate access counters
            into (callers typically reset it between measurements).
        use_fast_path: run the head-batched/packed implementation (default);
            ``False`` selects the per-head reference loop.
        obs: observability bundle; ``None`` binds the process-global
            default (metrics on, tracing off).  Metrics never change the
            computation — outputs are bit-identical either way.

    The backend is stateless across calls apart from ``stats`` and the
    optional ``selection_capture`` debug dict: when set to a dictionary,
    every forward stores the selected sparse-key mask per
    ``(layer, q_head)`` — the equivalence suite uses this to compare the
    two paths' selections bit-for-bit.
    """

    def __init__(self, config: LongSightConfig,
                 rotations: Optional[ItqRotations] = None,
                 stats: Optional[FilterStats] = None,
                 use_fast_path: bool = True,
                 obs: Optional[Obs] = None) -> None:
        if config.use_itq and rotations is None:
            raise ValueError("use_itq requires an ItqRotations bank")
        self.config = config
        self.rotations = rotations
        self.stats = stats
        self.use_fast_path = use_fast_path
        self.obs = resolve_obs(obs)
        self.selection_capture: Optional[Dict[Tuple[int, int], np.ndarray]] = None
        self._dense_fallback: Optional["SlidingWindowAttention"] = None
        # Per-(layer, heads) threshold stacks, rebuilt if the config's
        # thresholds object is swapped (tuning replaces whole configs, so
        # identity is a sufficient staleness check).  One backend instance
        # is shared by every session of a serving batch; without the memo
        # the packed decode path re-runs the python head loops for each
        # (session, layer, token).
        self._threshold_cache: Dict[Tuple[int, int, int], np.ndarray] = {}
        self._threshold_cache_key: Optional[int] = None

    # -- cache integration ----------------------------------------------------

    def prepare_cache(self, cache: "KVCache") -> None:
        """Enable the cache's incremental sign store for this backend.

        Called by :class:`Transformer` before prefill/decode (duck-typed
        hook).  Idempotent; a no-op on the reference path, which never
        consumes packed signs.
        """
        if self.use_fast_path:
            cache.enable_sign_cache(
                self.rotations if self.config.use_itq else None)

    def forward_cached(self, layer: int, q: np.ndarray,
                       cache: "KVCache") -> np.ndarray:
        """Cache-aware forward: consumes the sign store when compatible."""
        kv = cache.layers[layer]
        if not self.use_fast_path:
            return self._forward_reference(layer, q, kv.keys, kv.values)
        key_signs = None
        expected = self.rotations if self.config.use_itq else None
        if kv.sign_cache_enabled and cache.sign_rotations is expected:
            key_signs = kv.packed_signs
        return self._forward_fast(layer, q, kv.keys, kv.values, key_signs)

    # -- protocol entry point -------------------------------------------------

    def forward(self, layer: int, q: np.ndarray, k: np.ndarray,
                v: np.ndarray) -> np.ndarray:
        if self.use_fast_path:
            return self._forward_fast(layer, q, k, v, None)
        return self._forward_reference(layer, q, k, v)

    # -- degradation target ---------------------------------------------------

    def dense_fallback(self) -> "SlidingWindowAttention":
        """The correctness anchor when the sparse path is unavailable.

        Sinks + sliding window with this config's geometry — exactly what
        the hybrid algorithm computes when the offload contributes nothing.
        The offload supervisor degrades to this per token when a DReX
        device fails past its retry budget; it is also the exact software
        semantics of a supervised backend at 100% offload failure.
        """
        if self._dense_fallback is None:
            self._dense_fallback = SlidingWindowAttention(
                window=self.config.window, n_sink=self.config.n_sink)
        return self._dense_fallback

    def forward_dense_only(self, layer: int, q: np.ndarray, k: np.ndarray,
                           v: np.ndarray) -> np.ndarray:
        """Hybrid attention with the sparse component dropped (degraded)."""
        return self.dense_fallback().forward(layer, q, k, v)

    # -- shared helpers -------------------------------------------------------

    def _stats_per_q(self, n_q_heads: int, n_kv_heads: int) -> bool:
        # Stats may be tracked at KV-head or query-head resolution; the
        # stats object's head-axis width decides (the finer resolution is
        # used by the threshold-granularity ablation).
        return (self.stats is not None
                and self.stats.n_kv_heads == n_q_heads
                and n_q_heads != n_kv_heads)

    # -- fast path ------------------------------------------------------------

    def _forward_fast(self, layer: int, q: np.ndarray, k: np.ndarray,
                      v: np.ndarray,
                      key_signs: Optional[np.ndarray]) -> np.ndarray:
        """Head-batched hybrid attention.

        ``key_signs`` is an optional ``(n_kv_heads, n_ctx, n_bytes)`` packed
        sign store (already rotated when ITQ is on); when absent, signs are
        extracted here once per KV head — still shared by the whole GQA
        group, never recomputed per query head.  Query blocks larger than
        ``_PACKED_CONC_MAX_NEW`` (prefill) divert to
        :meth:`_forward_fast_large`.

        Batching note: every matmul keeps one gemm per (kv_head, q_head)
        slice with the same row count as the reference loop, so results are
        bit-identical to it (merging a GQA group into a single gemm would
        change blocking and drift in the last ulp).
        """
        if q.shape[1] > _PACKED_CONC_MAX_NEW:
            return self._forward_fast_large(layer, q, k, v, key_signs)
        cfg = self.config
        n_q_heads, n_new, head_dim = q.shape
        n_kv_heads, n_ctx, _ = k.shape
        group = n_q_heads // n_kv_heads
        scale = 1.0 / np.sqrt(head_dim)
        q_positions = np.arange(n_ctx - n_new, n_ctx)
        dense_mask, sparse_mask = _region_masks(
            q_positions, n_ctx, cfg.n_sink, cfg.window)
        any_sparse = bool(sparse_mask.any())

        q5 = q.reshape(n_kv_heads, group, n_new, head_dim)
        kt = np.swapaxes(k, -1, -2)[:, None]          # (Hkv, 1, d, n_ctx)
        scores = np.matmul(q5, kt) * scale            # (Hkv, G, n_new, n_ctx)

        if any_sparse:
            if cfg.use_itq:
                rot = self.rotations.matrices[layer]  # (Hkv, d, d)
                q_f = np.matmul(q5, rot[:, None])
            else:
                q_f = q5
            with self.obs.tracer.span("scf_filter", layer=layer):
                q_signs = pack_signs(q_f)             # (Hkv, G, n_new, nb)
                if key_signs is None:
                    keys_f = np.matmul(k, rot) if cfg.use_itq else k
                    key_signs = pack_signs(keys_f)    # (Hkv, n_ctx, nb)
                conc = concordance_packed_many(
                    q_signs, key_signs[:, None], head_dim)
                thresholds = self._threshold_stack(layer, n_kv_heads, group)
                pass_mask = sparse_mask & (conc >= thresholds)
                sparse_scores = np.where(pass_mask, scores, -np.inf)
                selected = top_k_mask(sparse_scores, cfg.top_k)
            attend = dense_mask | selected
            metrics = self.obs.metrics
            if metrics.enabled:
                _record_split(
                    metrics, n_q_heads * n_new,
                    int(dense_mask.sum()) * n_q_heads,
                    int(sparse_mask.sum()) * n_q_heads,
                    int(pass_mask.sum()), int(selected.sum()))
            if self.stats is not None:
                per_q = self._stats_per_q(n_q_heads, n_kv_heads)
                candidates = int(sparse_mask.sum())
                passed = pass_mask.sum(axis=(2, 3))
                retrieved = selected.sum(axis=(2, 3))
                for kv_head in range(n_kv_heads):
                    for g in range(group):
                        h = kv_head * group + g
                        self.stats.update(
                            layer, h if per_q else kv_head,
                            candidates=candidates,
                            passed=int(passed[kv_head, g]),
                            retrieved=int(retrieved[kv_head, g]),
                            queries=n_new,
                        )
            if self.selection_capture is not None:
                for kv_head in range(n_kv_heads):
                    for g in range(group):
                        h = kv_head * group + g
                        self.selection_capture[(layer, h)] = \
                            selected[kv_head, g].copy()
        else:
            attend = np.broadcast_to(dense_mask, scores.shape)
            metrics = self.obs.metrics
            if metrics.enabled:
                _record_split(metrics, n_q_heads * n_new,
                              int(dense_mask.sum()) * n_q_heads, 0, 0, 0)

        final = np.where(attend, scores, -np.inf)
        probs = softmax(final, axis=-1)
        out = np.matmul(probs, v[:, None])            # (Hkv, G, n_new, d)
        return out.reshape(n_q_heads, n_new, head_dim)

    def _forward_fast_large(self, layer: int, q: np.ndarray, k: np.ndarray,
                            v: np.ndarray,
                            key_signs: Optional[np.ndarray]) -> np.ndarray:
        """Fast path for prefill-sized query blocks.

        Per-head 2-D pipeline (cache-resident temporaries) with the
        redundant work of the reference loop hoisted out: key signs are
        extracted once per KV head — read straight back out of the packed
        sign store when available — and the candidate count is computed
        once per block.  Every remaining expression matches the reference
        loop's operation for operation, so outputs are bit-identical to it.
        """
        cfg = self.config
        n_q_heads, n_new, head_dim = q.shape
        n_kv_heads, n_ctx, _ = k.shape
        group = n_q_heads // n_kv_heads
        scale = 1.0 / np.sqrt(head_dim)
        q_positions = np.arange(n_ctx - n_new, n_ctx)
        dense_mask, sparse_mask = _region_masks(
            q_positions, n_ctx, cfg.n_sink, cfg.window)
        any_sparse = bool(sparse_mask.any())
        neg_inf = -np.inf
        stats_per_q = self._stats_per_q(n_q_heads, n_kv_heads)

        if any_sparse:
            candidates = int(sparse_mask.sum())
            q5 = q.reshape(n_kv_heads, group, n_new, head_dim)
            if cfg.use_itq:
                rot = self.rotations.matrices[layer]  # (Hkv, d, d)
                q_f = np.matmul(q5, rot[:, None])
            else:
                q_f = q5

        metrics = self.obs.metrics
        passed_total = selected_total = 0
        out = np.empty_like(q)
        for kv_head in range(n_kv_heads):
            keys = k[kv_head]
            values = v[kv_head]
            if any_sparse:
                if key_signs is not None:
                    sk = unpack_signs_pm1(key_signs[kv_head], head_dim)
                else:
                    keys_f = (keys @ self.rotations.get(layer, kv_head)
                              if cfg.use_itq else keys)
                    sk = sign_pm1(keys_f).astype(np.float32)
            for g in range(group):
                h = kv_head * group + g
                scores = (q[h] @ keys.T) * scale
                if any_sparse:
                    threshold = cfg.threshold_for(layer, kv_head, h)
                    sq = sign_pm1(q_f[kv_head, g]).astype(np.float32)
                    conc = concordance_from_signs(sq, sk, head_dim)
                    pass_mask = sparse_mask & (conc >= threshold)
                    sparse_scores = np.where(pass_mask, scores, neg_inf)
                    selected = top_k_mask(sparse_scores, cfg.top_k)
                    attend = dense_mask | selected
                    if metrics.enabled:
                        passed_total += int(pass_mask.sum())
                        selected_total += int(selected.sum())
                    if self.stats is not None:
                        self.stats.update(
                            layer, h if stats_per_q else kv_head,
                            candidates=candidates,
                            passed=int(pass_mask.sum()),
                            retrieved=int(selected.sum()),
                            queries=n_new,
                        )
                    if self.selection_capture is not None:
                        self.selection_capture[(layer, h)] = selected.copy()
                else:
                    attend = dense_mask
                scores[~attend] = neg_inf
                out[h] = softmax(scores, axis=-1) @ values
        if metrics.enabled:
            _record_split(metrics, n_q_heads * n_new,
                          int(dense_mask.sum()) * n_q_heads,
                          (candidates * n_q_heads) if any_sparse else 0,
                          passed_total, selected_total)
        return out

    def _threshold_stack(self, layer: int, n_kv_heads: int,
                         group: int) -> np.ndarray:
        """Per-head thresholds broadcastable over ``(Hkv, G, n_q, n_ctx)``.

        Memoized per (layer, head geometry); the memo is dropped whenever
        ``config.thresholds`` is replaced with a different object.
        """
        cfg = self.config
        if self._threshold_cache_key != id(cfg.thresholds):
            self._threshold_cache.clear()
            self._threshold_cache_key = id(cfg.thresholds)
        key = (layer, n_kv_heads, group)
        cached = self._threshold_cache.get(key)
        if cached is not None:
            return cached
        th = np.empty((n_kv_heads, group, 1, 1))
        for kv_head in range(n_kv_heads):
            for g in range(group):
                th[kv_head, g] = cfg.threshold_for(
                    layer, kv_head, kv_head * group + g)
        self._threshold_cache[key] = th
        return th

    # -- reference path -------------------------------------------------------

    def _forward_reference(self, layer: int, q: np.ndarray, k: np.ndarray,
                           v: np.ndarray) -> np.ndarray:
        cfg = self.config
        n_q_heads, n_new, head_dim = q.shape
        n_kv_heads, n_ctx, _ = k.shape
        group = n_q_heads // n_kv_heads
        scale = 1.0 / np.sqrt(head_dim)
        q_positions = np.arange(n_ctx - n_new, n_ctx)
        dense_mask, sparse_mask = _region_masks(
            q_positions, n_ctx, cfg.n_sink, cfg.window)
        any_sparse = bool(sparse_mask.any())
        neg_inf = -np.inf
        stats_per_q = self._stats_per_q(n_q_heads, n_kv_heads)
        candidates = int(sparse_mask.sum()) if any_sparse else 0
        metrics = self.obs.metrics
        passed_total = selected_total = 0

        out = np.empty_like(q)
        for kv_head in range(n_kv_heads):
            keys = k[kv_head]
            values = v[kv_head]
            if cfg.use_itq:
                rot = self.rotations.get(layer, kv_head)
                keys_f = keys @ rot
            else:
                keys_f = keys
            for g in range(group):
                h = kv_head * group + g
                threshold = cfg.threshold_for(layer, kv_head, h)
                scores = (q[h] @ keys.T) * scale
                if any_sparse:
                    q_f = q[h] @ rot if cfg.use_itq else q[h]
                    conc = concordance(q_f, keys_f)
                    pass_mask = sparse_mask & (conc >= threshold)
                    sparse_scores = np.where(pass_mask, scores, neg_inf)
                    selected = top_k_mask(sparse_scores, cfg.top_k)
                    attend = dense_mask | selected
                    if metrics.enabled:
                        passed_total += int(pass_mask.sum())
                        selected_total += int(selected.sum())
                    if self.stats is not None:
                        self.stats.update(
                            layer, h if stats_per_q else kv_head,
                            candidates=candidates,
                            passed=int(pass_mask.sum()),
                            retrieved=int(selected.sum()),
                            queries=n_new,
                        )
                    if self.selection_capture is not None:
                        self.selection_capture[(layer, h)] = selected.copy()
                else:
                    attend = dense_mask
                scores[~attend] = neg_inf
                out[h] = softmax(scores, axis=-1) @ values
        if metrics.enabled:
            _record_split(metrics, n_q_heads * n_new,
                          int(dense_mask.sum()) * n_q_heads,
                          candidates * n_q_heads, passed_total,
                          selected_total)
        return out


class SlidingWindowAttention:
    """Dense sinks + sliding window only (StreamingLLM-style baseline).

    Only the sink and window columns are gathered and scored, so the cost
    per query is O(n_sink + window + n_new), independent of context length.
    """

    def __init__(self, window: int = 1024, n_sink: int = 16) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.n_sink = n_sink

    def forward(self, layer: int, q: np.ndarray, k: np.ndarray,
                v: np.ndarray) -> np.ndarray:
        n_q_heads, n_new, head_dim = q.shape
        n_kv_heads, n_ctx, _ = k.shape
        group = n_q_heads // n_kv_heads
        scale = 1.0 / np.sqrt(head_dim)
        q_positions = np.arange(n_ctx - n_new, n_ctx)
        # Union of dense columns across the query block: sinks plus the
        # window of the *oldest* query in the block.
        sink_end = min(self.n_sink, n_ctx)
        start = max(sink_end, n_ctx - n_new - self.window + 1)
        cols = np.concatenate([np.arange(sink_end), np.arange(start, n_ctx)])
        dense_mask, _ = _region_masks(q_positions, n_ctx, self.n_sink,
                                      self.window, key_positions=cols)
        kg = k[:, cols]                                # (Hkv, n_cols, d)
        vg = v[:, cols]
        q5 = q.reshape(n_kv_heads, group, n_new, head_dim)
        scores = np.matmul(q5, np.swapaxes(kg, -1, -2)[:, None]) * scale
        final = np.where(dense_mask, scores, -np.inf)
        probs = softmax(final, axis=-1)
        out = np.matmul(probs, vg[:, None])
        return out.reshape(n_q_heads, n_new, head_dim)
