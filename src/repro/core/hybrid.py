"""Hybrid dense–sparse attention backends (Sections 5.3 and 6).

:class:`LongSightAttention` is the software analogue of the paper's
``LongSightAttn`` PyTorch module: per query it attends densely to
``n_sink`` early tokens plus the ``window`` most recent tokens (what the GPU
keeps in HBM) and sparsely — via SCF filtering and top-k — to everything in
between (what lives in DReX).  A single softmax then runs over the combined
dense + sparse score set, exactly as in Figure 2b step 6.

:class:`SlidingWindowAttention` is the StreamingLLM-style baseline of
Section 8.2 / Figure 10: sinks + window only, no sparse component.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import LongSightConfig
from repro.core.itq import ItqRotations
from repro.core.metrics import FilterStats
from repro.core.scf import concordance
from repro.core.topk import top_k_mask
from repro.llm.ops import softmax


def _region_masks(q_positions: np.ndarray, n_ctx: int, n_sink: int,
                  window: int) -> tuple[np.ndarray, np.ndarray]:
    """(dense, sparse-candidate) boolean masks, each ``(n_q, n_ctx)``.

    ``dense`` covers sinks plus the sliding window (clipped causally);
    ``sparse`` is the causal remainder — the region LongSight offloads.
    """
    j = np.arange(n_ctx)[None, :]
    p = np.asarray(q_positions)[:, None]
    causal = j <= p
    dense = ((j < n_sink) | (j > p - window)) & causal
    sparse = causal & ~dense
    return dense, sparse


class LongSightAttention:
    """Hybrid dense+sparse attention backend for :class:`Transformer`.

    Args:
        config: algorithm hyper-parameters (window, sinks, k, thresholds).
        rotations: optional ITQ rotation bank; required when
            ``config.use_itq`` is set.
        stats: optional :class:`FilterStats` to accumulate access counters
            into (callers typically reset it between measurements).

    The backend is stateless across calls apart from ``stats``.
    """

    def __init__(self, config: LongSightConfig,
                 rotations: Optional[ItqRotations] = None,
                 stats: Optional[FilterStats] = None) -> None:
        if config.use_itq and rotations is None:
            raise ValueError("use_itq requires an ItqRotations bank")
        self.config = config
        self.rotations = rotations
        self.stats = stats

    def forward(self, layer: int, q: np.ndarray, k: np.ndarray,
                v: np.ndarray) -> np.ndarray:
        cfg = self.config
        n_q_heads, n_new, head_dim = q.shape
        n_kv_heads, n_ctx, _ = k.shape
        group = n_q_heads // n_kv_heads
        scale = 1.0 / np.sqrt(head_dim)
        q_positions = np.arange(n_ctx - n_new, n_ctx)
        dense_mask, sparse_mask = _region_masks(
            q_positions, n_ctx, cfg.n_sink, cfg.window)
        any_sparse = bool(sparse_mask.any())
        neg_inf = -np.inf

        # Stats may be tracked at KV-head or query-head resolution; the
        # stats object's head-axis width decides (the finer resolution is
        # used by the threshold-granularity ablation).
        stats_per_q = (self.stats is not None
                       and self.stats.n_kv_heads == n_q_heads
                       and n_q_heads != n_kv_heads)

        out = np.empty_like(q)
        for kv_head in range(n_kv_heads):
            keys = k[kv_head]
            values = v[kv_head]
            if cfg.use_itq:
                rot = self.rotations.get(layer, kv_head)
                keys_f = keys @ rot
            else:
                keys_f = keys
            for g in range(group):
                h = kv_head * group + g
                threshold = cfg.threshold_for(layer, kv_head, h)
                scores = (q[h] @ keys.T) * scale
                if any_sparse:
                    q_f = q[h] @ rot if cfg.use_itq else q[h]
                    conc = concordance(q_f, keys_f)
                    pass_mask = sparse_mask & (conc >= threshold)
                    sparse_scores = np.where(pass_mask, scores, neg_inf)
                    selected = top_k_mask(sparse_scores, cfg.top_k)
                    attend = dense_mask | selected
                    if self.stats is not None:
                        self.stats.update(
                            layer, h if stats_per_q else kv_head,
                            candidates=int(sparse_mask.sum()),
                            passed=int(pass_mask.sum()),
                            retrieved=int(selected.sum()),
                            queries=n_new,
                        )
                else:
                    attend = dense_mask
                scores[~attend] = neg_inf
                out[h] = softmax(scores, axis=-1) @ values
        return out


class SlidingWindowAttention:
    """Dense sinks + sliding window only (StreamingLLM-style baseline)."""

    def __init__(self, window: int = 1024, n_sink: int = 16) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.n_sink = n_sink

    def forward(self, layer: int, q: np.ndarray, k: np.ndarray,
                v: np.ndarray) -> np.ndarray:
        n_q_heads, n_new, head_dim = q.shape
        n_kv_heads, n_ctx, _ = k.shape
        group = n_q_heads // n_kv_heads
        scale = 1.0 / np.sqrt(head_dim)
        q_positions = np.arange(n_ctx - n_new, n_ctx)
        dense_mask, _ = _region_masks(q_positions, n_ctx, self.n_sink, self.window)
        out = np.empty_like(q)
        for h in range(n_q_heads):
            kv_head = h // group
            scores = (q[h] @ k[kv_head].T) * scale
            final = np.where(dense_mask, scores, -np.inf)
            out[h] = softmax(final, axis=-1) @ v[kv_head]
        return out
