"""Hybrid dense–sparse attention backends (Sections 5.3 and 6).

:class:`LongSightAttention` is the software analogue of the paper's
``LongSightAttn`` PyTorch module: per query it attends densely to
``n_sink`` early tokens plus the ``window`` most recent tokens (what the GPU
keeps in HBM) and sparsely — via SCF filtering and top-k — to everything in
between (what lives in DReX).  A single softmax then runs over the combined
dense + sparse score set, exactly as in Figure 2b step 6.

Two implementations of the same algorithm live side by side:

- the **fast path** (default): one sign/rotation extraction per KV head
  shared by its whole GQA group, consuming the KV cache's incremental sign
  store when available (``LayerKV.packed_signs`` — the software analogue of
  DReX reusing stored Key Sign Objects for every query).  Decode-sized
  query blocks run fully head-batched with a packed XOR+popcount
  concordance kernel; prefill-sized blocks use a per-head pipeline with
  cache-resident temporaries and BLAS sign-matmul concordance;
- the **reference path** (``use_fast_path=False``): the original per-head
  Python loop, kept as the correctness oracle.  The two are equivalent —
  selected key sets match exactly and outputs match to float round-off
  (``tests/core/test_fast_equivalence.py``).

:class:`SlidingWindowAttention` is the StreamingLLM-style baseline of
Section 8.2 / Figure 10: sinks + window only, no sparse component.  It
gathers just the sink+window columns, so its per-query cost is O(window),
not O(context).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.core.config import LongSightConfig
from repro.core.itq import ItqRotations
from repro.core.metrics import FilterStats
from repro.obs import Obs, resolve_obs
from repro.core.scf import (concordance, concordance_from_signs,
                            concordance_packed_many,
                            concordance_packed_sessions, mismatches_packed,
                            pack_signs, sign_pm1, unpack_signs_pm1)
from repro.core.topk import top_k_mask
from repro.llm.ops import softmax

if TYPE_CHECKING:
    from repro.llm.kv_cache import KVCache

#: Largest query-block size handled by the fully head-batched fast path
#: with the packed XOR+popcount concordance kernel.  Larger (prefill-sized)
#: blocks switch to a per-head pipeline whose (n_new, n_ctx) temporaries
#: stay cache-resident — batching them into one (Hkv, G, n_new, n_ctx)
#: array was measured ~2x slower end to end — and whose concordance runs as
#: one BLAS sign-matmul per head, sharing a single key-sign extraction (or
#: the unpacked sign store) across each GQA group.
_PACKED_CONC_MAX_NEW = 32

#: Filter-ratio histogram edges: log-spaced 1x..1000x savings.
_RATIO_EDGES = tuple(float(e) for e in np.geomspace(1.0, 1000.0, 31))


def _record_split(metrics, queries: int, dense_accesses: int,
                  candidates: int, passed: int, selected: int) -> None:
    """Record one forward's dense-window vs. sparse-topk access split.

    ``filter_ratio`` follows the paper's definition over the sparse
    region (see :mod:`repro.core.metrics`): dense baseline accesses
    ``2N`` vs. ``N_pass + 2 k_ret`` after filtering — one histogram
    sample per instrumented forward ("per step" at decode time).
    """
    metrics.counter("attention.forwards").inc()
    metrics.counter("attention.queries").inc(queries)
    metrics.counter("attention.dense.accesses").inc(dense_accesses)
    metrics.counter("attention.sparse.candidates").inc(candidates)
    metrics.counter("attention.sparse.passed").inc(passed)
    metrics.counter("attention.sparse.selected").inc(selected)
    if candidates:
        ratio = 2.0 * candidates / max(passed + 2.0 * selected, 1e-12)
        metrics.histogram("attention.filter_ratio",
                          edges=_RATIO_EDGES).observe(ratio)


def _region_masks(q_positions: np.ndarray, n_ctx: int, n_sink: int,
                  window: int,
                  key_positions: Optional[np.ndarray] = None
                  ) -> tuple[np.ndarray, np.ndarray]:
    """(dense, sparse-candidate) boolean masks, each ``(n_q, n_keys)``.

    ``dense`` covers sinks plus the sliding window (clipped causally);
    ``sparse`` is the causal remainder — the region LongSight offloads.
    By default keys are the full context ``0..n_ctx-1``; ``key_positions``
    restricts the masks to a gathered subset of columns (used by the
    O(window) sliding-window baseline).
    """
    if key_positions is None:
        j = np.arange(n_ctx)[None, :]
    else:
        j = np.asarray(key_positions)[None, :]
    p = np.asarray(q_positions)[:, None]
    causal = j <= p
    dense = ((j < n_sink) | (j > p - window)) & causal
    sparse = causal & ~dense
    return dense, sparse


class LongSightAttention:
    """Hybrid dense+sparse attention backend for :class:`Transformer`.

    Args:
        config: algorithm hyper-parameters (window, sinks, k, thresholds).
        rotations: optional ITQ rotation bank; required when
            ``config.use_itq`` is set.
        stats: optional :class:`FilterStats` to accumulate access counters
            into (callers typically reset it between measurements).
        use_fast_path: run the head-batched/packed implementation (default);
            ``False`` selects the per-head reference loop.
        obs: observability bundle; ``None`` binds the process-global
            default (metrics on, tracing off).  Metrics never change the
            computation — outputs are bit-identical either way.

    The backend is stateless across calls apart from ``stats`` and the
    optional ``selection_capture`` debug dict: when set to a dictionary,
    every forward stores the selected sparse-key mask per
    ``(layer, q_head)`` — the equivalence suite uses this to compare the
    two paths' selections bit-for-bit.
    """

    def __init__(self, config: LongSightConfig,
                 rotations: Optional[ItqRotations] = None,
                 stats: Optional[FilterStats] = None,
                 use_fast_path: bool = True,
                 obs: Optional[Obs] = None) -> None:
        if config.use_itq and rotations is None:
            raise ValueError("use_itq requires an ItqRotations bank")
        self.config = config
        self.rotations = rotations
        self.stats = stats
        self.use_fast_path = use_fast_path
        self.obs = resolve_obs(obs)
        self.selection_capture: Optional[Dict[Tuple[int, int], np.ndarray]] = None
        self._dense_fallback: Optional["SlidingWindowAttention"] = None
        # Per-(layer, heads) threshold stacks, rebuilt if the config's
        # thresholds object is swapped (tuning replaces whole configs, so
        # identity is a sufficient staleness check).  One backend instance
        # is shared by every session of a serving batch; without the memo
        # the packed decode path re-runs the python head loops for each
        # (session, layer, token).
        self._threshold_cache: Dict[Tuple[int, int, int], np.ndarray] = {}
        self._threshold_cache_key: Optional[int] = None

    def with_config(self, config: LongSightConfig) -> "LongSightAttention":
        """A variant backend with swapped retrieval knobs, shared state.

        The serving brownout ladder serves some tokens at reduced
        ``top_k`` / raised ``thresholds``; both are query-time knobs (the
        stored packed-sign layout is identical across variants), so the
        variant can read the same KV cache.  Rotations and the obs bundle
        are shared; stats/selection capture are not (variants are
        transient quality levels, not measurement subjects).
        """
        return LongSightAttention(config, rotations=self.rotations,
                                  use_fast_path=self.use_fast_path,
                                  obs=self.obs)

    # -- cache integration ----------------------------------------------------

    def prepare_cache(self, cache: "KVCache") -> None:
        """Enable the cache's incremental sign store for this backend.

        Called by :class:`Transformer` before prefill/decode (duck-typed
        hook).  Idempotent; a no-op on the reference path, which never
        consumes packed signs.
        """
        if self.use_fast_path:
            cache.enable_sign_cache(
                self.rotations if self.config.use_itq else None)

    def forward_cached(self, layer: int, q: np.ndarray,
                       cache: "KVCache") -> np.ndarray:
        """Cache-aware forward: consumes the sign store when compatible."""
        kv = cache.layers[layer]
        if not self.use_fast_path:
            return self._forward_reference(layer, q, kv.keys, kv.values)
        key_signs = None
        expected = self.rotations if self.config.use_itq else None
        if kv.sign_cache_enabled and cache.sign_rotations is expected:
            key_signs = kv.packed_signs
        return self._forward_fast(layer, q, kv.keys, kv.values, key_signs)

    def decode_batch_compatible(self) -> bool:
        """May this backend join a session-batched decode filter call?

        The batched kernel reproduces the fast path bit-for-bit, so only
        the reference loop and debug selection capture opt a session out.
        """
        return self.use_fast_path and self.selection_capture is None

    def forward_cached_batch(self, layer: int, qs, caches, backends=None,
                             scratch=None):
        """Decode-step attention for many sessions, one filter kernel call.

        The serving analogue of :meth:`forward_cached`: ``qs[i]`` is
        session ``i``'s single-token query block and ``caches[i]`` its KV
        cache.  Scores, top-k, and softmax stay per-session (identical
        GEMM shapes — see :meth:`_forward_fast`'s batching note), but the
        packed-sign XOR+popcount concordance runs **once** for the whole
        batch across sessions *and* heads, padding the ragged per-session
        key-sign stores into ``scratch``.  Outputs are bit-identical to
        calling :meth:`forward_cached` per session.

        Args:
            layer: decoder layer index.
            qs: per-session ``(n_q_heads, 1, head_dim)`` query blocks.
            caches: per-session KV caches (plain or paged).
            backends: per-session :class:`LongSightAttention` instances
                (default: ``self`` serves every session); each session's
                thresholds/rotations/stats resolve through its own backend.
            scratch: optional :class:`~repro.core.scf.SignScratch` reused
                across layers and steps for the padded key-sign staging.

        Returns:
            list of ``(n_q_heads, 1, head_dim)`` outputs, one per session.
        """
        n_sessions = len(qs)
        if backends is None:
            backends = [self] * n_sessions
        outputs: list = [None] * n_sessions

        # Per-session geometry and region masks (cheap at n_new=1).  Scores
        # are NOT computed here: the gathered attend below scores only the
        # dense and filter-passing columns, so the batch never pays a
        # full-context gemm per session.
        per = []
        sparse_sessions = []
        for i in range(n_sessions):
            backend = backends[i]
            cfg = backend.config
            q = qs[i]
            kv = caches[i].layers[layer]
            n_q_heads, n_new, head_dim = q.shape
            if n_new != 1:
                raise ValueError("forward_cached_batch is decode-only "
                                 "(one query per session)")
            n_kv_heads = kv.keys.shape[0]
            group = n_q_heads // n_kv_heads
            n_ctx = kv.keys.shape[1]
            q_positions = np.arange(n_ctx - 1, n_ctx)
            dense_mask, sparse_mask = _region_masks(
                q_positions, n_ctx, cfg.n_sink, cfg.window)
            q5 = q.reshape(n_kv_heads, group, 1, head_dim)
            entry = {"backend": backend, "kv": kv, "cache": caches[i],
                     "q5": q5, "dense": dense_mask,
                     "sparse": sparse_mask, "n_ctx": n_ctx,
                     "geometry": (n_kv_heads, group, head_dim)}
            per.append(entry)
            if bool(sparse_mask.any()):
                sparse_sessions.append(i)

        # One packed concordance call across every session with candidates.
        conc_by_session = {}
        if sparse_sessions:
            tracer = self.obs.tracer
            with tracer.span("scf_filter_batch", layer=layer,
                             sessions=len(sparse_sessions)):
                q_signs = []
                key_signs = []
                for i in sparse_sessions:
                    entry = per[i]
                    backend = entry["backend"]
                    cfg = backend.config
                    kv = entry["kv"]
                    if cfg.use_itq:
                        rot = backend.rotations.matrices[layer]
                        q_f = np.matmul(entry["q5"], rot[:, None])
                    else:
                        q_f = entry["q5"]
                    q_signs.append(pack_signs(q_f))
                    expected = backend.rotations if cfg.use_itq else None
                    if kv.sign_cache_enabled \
                            and entry["cache"].sign_rotations is expected:
                        key_signs.append(kv.packed_signs)
                    else:
                        keys_f = np.matmul(kv.keys, rot) if cfg.use_itq \
                            else kv.keys
                        key_signs.append(pack_signs(keys_f))
                head_dim = per[sparse_sessions[0]]["geometry"][2]
                conc = concordance_packed_sessions(
                    np.stack(q_signs), key_signs, head_dim, scratch=scratch)
                for slot, i in enumerate(sparse_sessions):
                    conc_by_session[i] = conc[slot, ..., : per[i]["n_ctx"]]

        # Per-session selection, softmax, and output — the *same* gathered
        # attend as :meth:`_forward_fast`, so solo and batched decode stay
        # bit-identical by construction.
        for i in range(n_sessions):
            entry = per[i]
            backend = entry["backend"]
            n_kv_heads, group, _ = entry["geometry"]
            conc = conc_by_session.get(i)
            thresholds = backend._threshold_stack(layer, n_kv_heads, group) \
                if conc is not None else None
            outputs[i] = backend._attend_small_gathered(
                layer, entry["q5"], entry["kv"].keys, entry["kv"].values,
                conc, entry["dense"], entry["sparse"], thresholds)
        return outputs

    # -- protocol entry point -------------------------------------------------

    def forward(self, layer: int, q: np.ndarray, k: np.ndarray,
                v: np.ndarray) -> np.ndarray:
        if self.use_fast_path:
            return self._forward_fast(layer, q, k, v, None)
        return self._forward_reference(layer, q, k, v)

    # -- degradation target ---------------------------------------------------

    def dense_fallback(self) -> "SlidingWindowAttention":
        """The correctness anchor when the sparse path is unavailable.

        Sinks + sliding window with this config's geometry — exactly what
        the hybrid algorithm computes when the offload contributes nothing.
        The offload supervisor degrades to this per token when a DReX
        device fails past its retry budget; it is also the exact software
        semantics of a supervised backend at 100% offload failure.
        """
        if self._dense_fallback is None:
            self._dense_fallback = SlidingWindowAttention(
                window=self.config.window, n_sink=self.config.n_sink)
        return self._dense_fallback

    def forward_dense_only(self, layer: int, q: np.ndarray, k: np.ndarray,
                           v: np.ndarray) -> np.ndarray:
        """Hybrid attention with the sparse component dropped (degraded)."""
        return self.dense_fallback().forward(layer, q, k, v)

    # -- shared helpers -------------------------------------------------------

    def _stats_per_q(self, n_q_heads: int, n_kv_heads: int) -> bool:
        # Stats may be tracked at KV-head or query-head resolution; the
        # stats object's head-axis width decides (the finer resolution is
        # used by the threshold-granularity ablation).
        return (self.stats is not None
                and self.stats.n_kv_heads == n_q_heads
                and n_q_heads != n_kv_heads)

    # -- fast path ------------------------------------------------------------

    def _forward_fast(self, layer: int, q: np.ndarray, k: np.ndarray,
                      v: np.ndarray,
                      key_signs: Optional[np.ndarray]) -> np.ndarray:
        """Head-batched hybrid attention.

        ``key_signs`` is an optional ``(n_kv_heads, n_ctx, n_bytes)`` packed
        sign store (already rotated when ITQ is on); when absent, signs are
        extracted here once per KV head — still shared by the whole GQA
        group, never recomputed per query head.  Query blocks larger than
        ``_PACKED_CONC_MAX_NEW`` (prefill) divert to
        :meth:`_forward_fast_large`.

        Batching note: every matmul keeps one gemm per (kv_head, q_head)
        slice with the same row count as the reference loop, so results are
        bit-identical to it (merging a GQA group into a single gemm would
        change blocking and drift in the last ulp).

        Small blocks run the concordance filter *before* any score work and
        then score only the dense-union and filter-passing columns
        (:meth:`_attend_small_gathered`) — the software twin of DReX's PIM
        Filter Units, which never compute scores for filtered-out keys.
        At long context this is what makes decode O(passed) instead of
        O(n_ctx) in float work.
        """
        if q.shape[1] > _PACKED_CONC_MAX_NEW:
            return self._forward_fast_large(layer, q, k, v, key_signs)
        cfg = self.config
        n_q_heads, n_new, head_dim = q.shape
        n_kv_heads, n_ctx, _ = k.shape
        group = n_q_heads // n_kv_heads
        q_positions = np.arange(n_ctx - n_new, n_ctx)
        dense_mask, sparse_mask = _region_masks(
            q_positions, n_ctx, cfg.n_sink, cfg.window)
        q5 = q.reshape(n_kv_heads, group, n_new, head_dim)

        conc = thresholds = None
        if bool(sparse_mask.any()):
            if cfg.use_itq:
                rot = self.rotations.matrices[layer]  # (Hkv, d, d)
                q_f = np.matmul(q5, rot[:, None])
            else:
                q_f = q5
            with self.obs.tracer.span("scf_filter", layer=layer):
                q_signs = pack_signs(q_f)             # (Hkv, G, n_new, nb)
                if key_signs is None:
                    keys_f = np.matmul(k, rot) if cfg.use_itq else k
                    key_signs = pack_signs(keys_f)    # (Hkv, n_ctx, nb)
                conc = concordance_packed_many(
                    q_signs, key_signs[:, None], head_dim)
            thresholds = self._threshold_stack(layer, n_kv_heads, group)
        return self._attend_small_gathered(layer, q5, k, v, conc,
                                           dense_mask, sparse_mask,
                                           thresholds)

    def _attend_small_gathered(self, layer: int, q5: np.ndarray,
                               k: np.ndarray, v: np.ndarray,
                               conc: Optional[np.ndarray],
                               dense_mask: np.ndarray,
                               sparse_mask: np.ndarray,
                               thresholds: Optional[np.ndarray]
                               ) -> np.ndarray:
        """Selection, softmax, and output over gathered columns only.

        Shared tail of the small-block fast path and the session-batched
        decode path (:meth:`forward_cached_batch` calls it per session with
        the batched kernel's concordance slice), which keeps solo and
        batched decode bit-identical by construction.

        Scores are computed per KV head over the union of dense columns
        and that head's filter-passing columns — never the full context.
        Selections are exactly those of full-width scoring: gathering
        preserves ascending column order, so :func:`top_k_mask`'s
        lower-index tie-break picks the same keys, and the softmax over
        the gathered set equals the masked full-width softmax (dropped
        columns contribute exactly-zero terms).

        Args:
            q5: ``(n_kv_heads, group, n_new, head_dim)`` queries.
            conc: ``(n_kv_heads, group, n_new, n_ctx)`` concordance counts,
                or ``None`` when the context has no sparse region.
            thresholds: broadcastable threshold stack (required with
                ``conc``).

        Returns:
            ``(n_q_heads, n_new, head_dim)`` attention output.
        """
        cfg = self.config
        n_kv_heads, group, n_new, head_dim = q5.shape
        n_ctx = k.shape[1]
        n_q_heads = n_kv_heads * group
        scale = 1.0 / np.sqrt(head_dim)
        pass_full = sparse_mask & (conc >= thresholds) \
            if conc is not None else None
        dense_any = dense_mask.any(axis=0)
        candidates = int(sparse_mask.sum()) if pass_full is not None else 0
        per_q = self._stats_per_q(n_q_heads, n_kv_heads)
        passed_total = 0
        selected_total = 0
        out = np.empty((n_q_heads, n_new, head_dim))
        for kv_head in range(n_kv_heads):
            if pass_full is not None:
                cols = np.nonzero(
                    dense_any | pass_full[kv_head].any(axis=(0, 1)))[0]
            else:
                cols = np.nonzero(dense_any)[0]
            kg = k[kv_head, cols]
            vg = v[kv_head, cols]
            dense_g = dense_mask[:, cols]
            for g in range(group):
                h = kv_head * group + g
                scores = (q5[kv_head, g] @ kg.T) * scale
                if pass_full is not None:
                    pass_g = pass_full[kv_head, g][:, cols]
                    sparse_scores = np.where(pass_g, scores, -np.inf)
                    selected = top_k_mask(sparse_scores, cfg.top_k)
                    attend = dense_g | selected
                    n_passed = int(pass_g.sum())
                    n_selected = int(selected.sum())
                    passed_total += n_passed
                    selected_total += n_selected
                    if self.stats is not None:
                        self.stats.update(
                            layer, h if per_q else kv_head,
                            candidates=candidates, passed=n_passed,
                            retrieved=n_selected, queries=n_new)
                    if self.selection_capture is not None:
                        sel_full = np.zeros((n_new, n_ctx), dtype=bool)
                        sel_full[:, cols] = selected
                        self.selection_capture[(layer, h)] = sel_full
                else:
                    attend = dense_g
                final = np.where(attend, scores, -np.inf)
                probs = softmax(final, axis=-1)
                out[h] = probs @ vg
        metrics = self.obs.metrics
        if metrics.enabled:
            _record_split(metrics, n_q_heads * n_new,
                          int(dense_mask.sum()) * n_q_heads,
                          candidates * n_q_heads if pass_full is not None
                          else 0,
                          passed_total, selected_total)
        return out

    def _forward_fast_large(self, layer: int, q: np.ndarray, k: np.ndarray,
                            v: np.ndarray,
                            key_signs: Optional[np.ndarray]) -> np.ndarray:
        """Fast path for prefill-sized query blocks.

        Per-head 2-D pipeline (cache-resident temporaries) with the
        redundant work of the reference loop hoisted out: key signs are
        extracted once per KV head — read straight back out of the packed
        sign store when available — and the candidate count is computed
        once per block.  Every remaining expression matches the reference
        loop's operation for operation, so outputs are bit-identical to it.

        Contexts beyond ``config.prefill_tile`` divert to the IO-aware
        tiled pipeline (:meth:`_forward_fast_tiled`), which never
        materializes ``(n_new, n_ctx)`` float temporaries.
        """
        cfg = self.config
        if cfg.prefill_tile and k.shape[1] > cfg.prefill_tile:
            return self._forward_fast_tiled(layer, q, k, v, key_signs)
        n_q_heads, n_new, head_dim = q.shape
        n_kv_heads, n_ctx, _ = k.shape
        group = n_q_heads // n_kv_heads
        scale = 1.0 / np.sqrt(head_dim)
        q_positions = np.arange(n_ctx - n_new, n_ctx)
        dense_mask, sparse_mask = _region_masks(
            q_positions, n_ctx, cfg.n_sink, cfg.window)
        any_sparse = bool(sparse_mask.any())
        neg_inf = -np.inf
        stats_per_q = self._stats_per_q(n_q_heads, n_kv_heads)

        if any_sparse:
            candidates = int(sparse_mask.sum())
            q5 = q.reshape(n_kv_heads, group, n_new, head_dim)
            if cfg.use_itq:
                rot = self.rotations.matrices[layer]  # (Hkv, d, d)
                q_f = np.matmul(q5, rot[:, None])
            else:
                q_f = q5

        metrics = self.obs.metrics
        passed_total = selected_total = 0
        out = np.empty_like(q)
        for kv_head in range(n_kv_heads):
            keys = k[kv_head]
            values = v[kv_head]
            if any_sparse:
                if key_signs is not None:
                    sk = unpack_signs_pm1(key_signs[kv_head], head_dim)
                else:
                    keys_f = (keys @ self.rotations.get(layer, kv_head)
                              if cfg.use_itq else keys)
                    sk = sign_pm1(keys_f).astype(np.float32)
            for g in range(group):
                h = kv_head * group + g
                scores = (q[h] @ keys.T) * scale
                if any_sparse:
                    threshold = cfg.threshold_for(layer, kv_head, h)
                    sq = sign_pm1(q_f[kv_head, g]).astype(np.float32)
                    conc = concordance_from_signs(sq, sk, head_dim)
                    pass_mask = sparse_mask & (conc >= threshold)
                    sparse_scores = np.where(pass_mask, scores, neg_inf)
                    selected = top_k_mask(sparse_scores, cfg.top_k)
                    attend = dense_mask | selected
                    if metrics.enabled:
                        passed_total += int(pass_mask.sum())
                        selected_total += int(selected.sum())
                    if self.stats is not None:
                        self.stats.update(
                            layer, h if stats_per_q else kv_head,
                            candidates=candidates,
                            passed=int(pass_mask.sum()),
                            retrieved=int(selected.sum()),
                            queries=n_new,
                        )
                    if self.selection_capture is not None:
                        self.selection_capture[(layer, h)] = selected.copy()
                else:
                    attend = dense_mask
                scores[~attend] = neg_inf
                out[h] = softmax(scores, axis=-1) @ values
        if metrics.enabled:
            _record_split(metrics, n_q_heads * n_new,
                          int(dense_mask.sum()) * n_q_heads,
                          (candidates * n_q_heads) if any_sparse else 0,
                          passed_total, selected_total)
        return out

    def _forward_fast_tiled(self, layer: int, q: np.ndarray, k: np.ndarray,
                            v: np.ndarray,
                            key_signs: Optional[np.ndarray]) -> np.ndarray:
        """IO-aware tiled prefill (FlashAttention-style K/V streaming).

        The monolithic paths materialize ``(n_new, n_ctx)`` score, mask,
        and concordance arrays per head — at 64k–256k context those
        temporaries blow past every cache level and dominate prefill time.
        This pipeline keeps the working set bounded by the tile size:

        - the **dense** region gathers only the sink+window columns
          (O(window) per query, like :class:`SlidingWindowAttention`);
        - the **sparse** region streams key tiles of ``config.prefill_tile``
          columns: per tile, packed XOR+popcount mismatch counts
          (:func:`~repro.core.scf.mismatches_packed`, word-at-a-time)
          decide which candidates pass — thresholded directly as
          ``mismatches <= d - thr`` in their narrow dtype — scores are
          computed only for columns where some row passes, and a per-row
          top-k pool of (score, column) pairs is merged via
          :func:`top_k_mask` over ``pool ++ tile``.
          Candidates that cannot beat the pool's current k-th best score
          are pruned before the merge (they lose any tie to an
          earlier-column pool entry), so steady-state merges stay small;
        - one final softmax runs over dense ∪ pooled columns with gathered
          values — scores of unselected keys are never revisited.

        The streaming merge selects exactly the keys the monolithic path
        selects: pool and tile entries are kept in ascending column order,
        so relative index order in the merged array equals global column
        order and :func:`top_k_mask`'s lower-index tie-break is preserved;
        ``-inf``-scored pool sentinels are never selected.  Outputs match
        the monolithic path to float round-off (the single softmax sums
        the same finite terms in a different grouping), and selections
        match exactly — ``tests/core/test_tiled_prefill.py``.
        """
        cfg = self.config
        n_q_heads, n_new, head_dim = q.shape
        n_kv_heads, n_ctx, _ = k.shape
        group = n_q_heads // n_kv_heads
        scale = 1.0 / np.sqrt(head_dim)
        q_positions = np.arange(n_ctx - n_new, n_ctx)
        neg_inf = -np.inf
        tile = cfg.prefill_tile
        top_k = cfg.top_k
        stats_per_q = self._stats_per_q(n_q_heads, n_kv_heads)

        # Dense region: union of sink + window columns across the block.
        sink_end = min(cfg.n_sink, n_ctx)
        win_start = max(sink_end, n_ctx - n_new - cfg.window + 1)
        dense_cols = np.concatenate([np.arange(sink_end),
                                     np.arange(win_start, n_ctx)])
        dense_mask, _ = _region_masks(q_positions, n_ctx, cfg.n_sink,
                                      cfg.window, key_positions=dense_cols)
        n_dense = len(dense_cols)

        # Sparse candidate span: row p may select columns in
        # [n_sink, p - window]; the union over the block is [lo, hi).
        span_lo = cfg.n_sink
        span_hi = max(span_lo, n_ctx - cfg.window)
        any_sparse = span_hi > span_lo
        # Same count the monolithic paths get from sparse_mask.sum().
        candidates = int(np.clip(q_positions - cfg.window - cfg.n_sink + 1,
                                 0, None).sum()) if any_sparse else 0
        any_sparse = any_sparse and candidates > 0

        if any_sparse:
            q5 = q.reshape(n_kv_heads, group, n_new, head_dim)
            if cfg.use_itq:
                rot_bank = self.rotations.matrices[layer]  # (Hkv, d, d)
                q_f = np.matmul(q5, rot_bank[:, None])
            else:
                q_f = q5
            q_signs = pack_signs(q_f)                 # (Hkv, G, n_new, nb)
            # Row limit of the candidate region: col <= position - window.
            cand_hi = (q_positions - cfg.window)[:, None]

        metrics = self.obs.metrics
        passed_total = selected_total = 0
        out = np.empty_like(q)
        for kv_head in range(n_kv_heads):
            keys = k[kv_head]
            values = v[kv_head]
            if any_sparse:
                # Per-row pools of the best-k (score, column) pairs seen so
                # far, kept in ascending column order; column n_ctx marks an
                # empty slot (score -inf, sorts after every real column).
                pool_scores = np.full((group, n_new, top_k), neg_inf)
                pool_cols = np.full((group, n_new, top_k), n_ctx,
                                    dtype=np.int64)
                passed_g = np.zeros(group, dtype=np.int64)
                # conc >= thr  <=>  mismatches <= d - thr, so the packed
                # counts threshold directly in their narrow dtype.
                mism_thresholds = [
                    head_dim - cfg.threshold_for(layer, kv_head,
                                                 kv_head * group + g)
                    for g in range(group)]
                for t0 in range(span_lo, span_hi, tile):
                    t1 = min(t0 + tile, span_hi)
                    cols_t = np.arange(t0, t1)
                    cand_t = cols_t[None, :] <= cand_hi   # (n_new, T)
                    if key_signs is not None:
                        sk_t = key_signs[kv_head, t0:t1]
                    else:
                        keys_f_t = (keys[t0:t1] @ rot_bank[kv_head]
                                    if cfg.use_itq else keys[t0:t1])
                        sk_t = pack_signs(keys_f_t)
                    mism_t = mismatches_packed(q_signs[kv_head],
                                               sk_t[None])   # (G, n_new, T)
                    for g in range(group):
                        pass_t = cand_t & (mism_t[g] <= mism_thresholds[g])
                        n_pass = int(pass_t.sum())
                        passed_g[g] += n_pass
                        if n_pass == 0 or not top_k:
                            continue          # tile contributes nothing
                        h = kv_head * group + g
                        # Score only the columns where some row passed.
                        cols_any = pass_t.any(axis=0)
                        sub = np.nonzero(cols_any)[0]
                        scores_s = (q[h] @ keys[t0 + sub].T) * scale
                        # Prune candidates that cannot enter the pool: the
                        # pool's k-th best (its min; -inf while not full)
                        # wins any tie via its earlier column.
                        thr_row = pool_scores[g].min(axis=1)
                        survive = pass_t[:, sub] \
                            & (scores_s > thr_row[:, None])
                        alive = survive.any(axis=0)
                        if not bool(alive.any()):
                            continue
                        scores_s = scores_s[:, alive]
                        cand_scores = np.where(survive[:, alive], scores_s,
                                               neg_inf)
                        cand_cols = np.broadcast_to(
                            t0 + sub[alive], cand_scores.shape)
                        merged_s = np.concatenate(
                            [pool_scores[g], cand_scores], axis=1)
                        merged_c = np.concatenate(
                            [pool_cols[g], cand_cols], axis=1)
                        keep = top_k_mask(merged_s, top_k)
                        kept_c = np.where(keep, merged_c, n_ctx)
                        order = np.argsort(kept_c, axis=1,
                                           kind="stable")[:, :top_k]
                        pool_cols[g] = np.take_along_axis(kept_c, order,
                                                          axis=1)
                        pool_scores[g] = np.take_along_axis(
                            np.where(keep, merged_s, neg_inf), order, axis=1)
                passed_total += int(passed_g.sum())

            kg = keys[dense_cols]
            vg = values[dense_cols]
            for g in range(group):
                h = kv_head * group + g
                d_scores = (q[h] @ kg.T) * scale
                d_scores = np.where(dense_mask, d_scores, neg_inf)
                if any_sparse:
                    sel_cols = pool_cols[g]
                    sel_scores = pool_scores[g]
                    valid = sel_cols < n_ctx
                    retrieved = int(valid.sum())
                    if metrics.enabled:
                        selected_total += retrieved
                    if self.stats is not None:
                        self.stats.update(
                            layer, h if stats_per_q else kv_head,
                            candidates=candidates,
                            passed=int(passed_g[g]),
                            retrieved=retrieved,
                            queries=n_new,
                        )
                    if self.selection_capture is not None:
                        sel_mask = np.zeros((n_new, n_ctx), dtype=bool)
                        rows, slots = np.nonzero(valid)
                        sel_mask[rows, sel_cols[rows, slots]] = True
                        self.selection_capture[(layer, h)] = sel_mask
                    combined = np.concatenate([d_scores, sel_scores], axis=1)
                else:
                    combined = d_scores
                probs = softmax(combined, axis=-1)
                out_h = probs[:, :n_dense] @ vg
                if any_sparse and top_k:
                    v_sel = values[np.minimum(sel_cols, n_ctx - 1)]
                    out_h += np.einsum("nk,nkd->nd", probs[:, n_dense:],
                                       v_sel)
                out[h] = out_h
        if metrics.enabled:
            _record_split(metrics, n_q_heads * n_new,
                          int(dense_mask.sum()) * n_q_heads,
                          candidates * n_q_heads if any_sparse else 0,
                          passed_total, selected_total)
        return out

    def _threshold_stack(self, layer: int, n_kv_heads: int,
                         group: int) -> np.ndarray:
        """Per-head thresholds broadcastable over ``(Hkv, G, n_q, n_ctx)``.

        Memoized per (layer, head geometry); the memo is dropped whenever
        ``config.thresholds`` is replaced with a different object.
        """
        cfg = self.config
        if self._threshold_cache_key != id(cfg.thresholds):
            self._threshold_cache.clear()
            self._threshold_cache_key = id(cfg.thresholds)
        key = (layer, n_kv_heads, group)
        cached = self._threshold_cache.get(key)
        if cached is not None:
            return cached
        th = np.empty((n_kv_heads, group, 1, 1))
        for kv_head in range(n_kv_heads):
            for g in range(group):
                th[kv_head, g] = cfg.threshold_for(
                    layer, kv_head, kv_head * group + g)
        self._threshold_cache[key] = th
        return th

    # -- reference path -------------------------------------------------------

    def _forward_reference(self, layer: int, q: np.ndarray, k: np.ndarray,
                           v: np.ndarray) -> np.ndarray:
        cfg = self.config
        n_q_heads, n_new, head_dim = q.shape
        n_kv_heads, n_ctx, _ = k.shape
        group = n_q_heads // n_kv_heads
        scale = 1.0 / np.sqrt(head_dim)
        q_positions = np.arange(n_ctx - n_new, n_ctx)
        dense_mask, sparse_mask = _region_masks(
            q_positions, n_ctx, cfg.n_sink, cfg.window)
        any_sparse = bool(sparse_mask.any())
        neg_inf = -np.inf
        stats_per_q = self._stats_per_q(n_q_heads, n_kv_heads)
        candidates = int(sparse_mask.sum()) if any_sparse else 0
        metrics = self.obs.metrics
        passed_total = selected_total = 0

        out = np.empty_like(q)
        for kv_head in range(n_kv_heads):
            keys = k[kv_head]
            values = v[kv_head]
            if cfg.use_itq:
                rot = self.rotations.get(layer, kv_head)
                keys_f = keys @ rot
            else:
                keys_f = keys
            for g in range(group):
                h = kv_head * group + g
                threshold = cfg.threshold_for(layer, kv_head, h)
                scores = (q[h] @ keys.T) * scale
                if any_sparse:
                    q_f = q[h] @ rot if cfg.use_itq else q[h]
                    conc = concordance(q_f, keys_f)
                    pass_mask = sparse_mask & (conc >= threshold)
                    sparse_scores = np.where(pass_mask, scores, neg_inf)
                    selected = top_k_mask(sparse_scores, cfg.top_k)
                    attend = dense_mask | selected
                    if metrics.enabled:
                        passed_total += int(pass_mask.sum())
                        selected_total += int(selected.sum())
                    if self.stats is not None:
                        self.stats.update(
                            layer, h if stats_per_q else kv_head,
                            candidates=candidates,
                            passed=int(pass_mask.sum()),
                            retrieved=int(selected.sum()),
                            queries=n_new,
                        )
                    if self.selection_capture is not None:
                        self.selection_capture[(layer, h)] = selected.copy()
                else:
                    attend = dense_mask
                scores[~attend] = neg_inf
                out[h] = softmax(scores, axis=-1) @ values
        if metrics.enabled:
            _record_split(metrics, n_q_heads * n_new,
                          int(dense_mask.sum()) * n_q_heads,
                          candidates * n_q_heads, passed_total,
                          selected_total)
        return out


class SlidingWindowAttention:
    """Dense sinks + sliding window only (StreamingLLM-style baseline).

    Only the sink and window columns are gathered and scored, so the cost
    per query is O(n_sink + window + n_new), independent of context length.
    """

    def __init__(self, window: int = 1024, n_sink: int = 16) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.n_sink = n_sink

    def forward(self, layer: int, q: np.ndarray, k: np.ndarray,
                v: np.ndarray) -> np.ndarray:
        n_q_heads, n_new, head_dim = q.shape
        n_kv_heads, n_ctx, _ = k.shape
        group = n_q_heads // n_kv_heads
        scale = 1.0 / np.sqrt(head_dim)
        q_positions = np.arange(n_ctx - n_new, n_ctx)
        # Union of dense columns across the query block: sinks plus the
        # window of the *oldest* query in the block.
        sink_end = min(self.n_sink, n_ctx)
        start = max(sink_end, n_ctx - n_new - self.window + 1)
        cols = np.concatenate([np.arange(sink_end), np.arange(start, n_ctx)])
        dense_mask, _ = _region_masks(q_positions, n_ctx, self.n_sink,
                                      self.window, key_positions=cols)
        kg = k[:, cols]                                # (Hkv, n_cols, d)
        vg = v[:, cols]
        q5 = q.reshape(n_kv_heads, group, n_new, head_dim)
        scores = np.matmul(q5, np.swapaxes(kg, -1, -2)[:, None]) * scale
        final = np.where(dense_mask, scores, -np.inf)
        probs = softmax(final, axis=-1)
        out = np.matmul(probs, vg[:, None])
        return out.reshape(n_q_heads, n_new, head_dim)


def make_backend(config: LongSightConfig,
                 rotations: Optional[ItqRotations] = None,
                 stats: Optional[FilterStats] = None,
                 use_fast_path: bool = True,
                 obs: Optional[Obs] = None):
    """Build the attention backend selected by ``config.prefilter``.

    The two pre-filter families share the duck-typed
    ``prepare_cache`` / ``forward_cached`` / ``forward`` /
    ``dense_fallback`` hooks, so callers can swap them by config alone:

    - ``"scf"``: :class:`LongSightAttention` — sign-concordance filtering
      plus exact top-k (the paper's mechanism).
    - ``"antidiag"``: :class:`~repro.core.antidiag.AntidiagonalAttention`
      — XAttention-style antidiagonal block scoring (``rotations`` and
      ``use_fast_path`` do not apply and are ignored).
    """
    if config.prefilter == "antidiag":
        # Deferred import: repro.core.antidiag imports this module.
        from repro.core.antidiag import AntidiagonalAttention
        return AntidiagonalAttention(config, stats=stats, obs=obs)
    return LongSightAttention(config, rotations=rotations, stats=stats,
                              use_fast_path=use_fast_path, obs=obs)
