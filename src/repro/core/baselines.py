"""Software sparse-attention baselines (Section 3.1's related work).

The paper argues qualitatively against Reformer-style LSH filtering and
NSA/DynaX-style block sparsity; these executable baselines make the
comparison quantitative on the same substrate (see
``benchmarks/test_algo_comparison.py``):

- :class:`LshAttention` — Reformer-like: random-hyperplane LSH buckets per
  head; a query attends only to prior keys sharing a bucket in at least
  one hashing round (plus a local window for stability).  Per-token
  overhead is linear, and bucket collisions are probabilistic — exactly
  the trade-offs Section 3.1 describes.
- :class:`BlockSparseAttention` — NSA/DynaX-like: the context is split
  into fixed blocks; per query, block *summaries* (mean-pooled keys) are
  scored and the top-B blocks attended in full, plus a sliding window.
  Coarse granularity caps achievable sparsity ("blockwise selection ...
  imposes a limitation on the achievable overall sparsity").

Both record the same access statistics as LongSight so filter ratios are
directly comparable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.hybrid import _region_masks
from repro.core.metrics import FilterStats
from repro.core.topk import top_k_mask
from repro.llm.ops import softmax


class LshAttention:
    """Reformer-style LSH-filtered attention backend.

    Args:
        n_hashes: independent hashing rounds (more rounds -> higher recall,
            lower sparsity).
        n_bits: hyperplanes per round; buckets = 2^n_bits.
        window: always-dense local window (Reformer attends within chunks;
            a small window plays the same stabilizing role here).
        seed: hyperplane seed (fixed per backend so decode is consistent).
    """

    def __init__(self, n_hashes: int = 2, n_bits: int = 4, window: int = 8,
                 n_sink: int = 0, seed: int = 0,
                 stats: Optional[FilterStats] = None) -> None:
        if n_bits < 1 or n_hashes < 1:
            raise ValueError("need at least one hash round and one bit")
        self.n_hashes = n_hashes
        self.n_bits = n_bits
        self.window = window
        self.n_sink = n_sink
        self.seed = seed
        self.stats = stats
        self._planes: dict[tuple[int, int], np.ndarray] = {}

    def _hyperplanes(self, layer: int, head_dim: int) -> np.ndarray:
        key = (layer, head_dim)
        if key not in self._planes:
            rng = np.random.default_rng(self.seed + 1009 * layer)
            self._planes[key] = rng.normal(
                size=(self.n_hashes, head_dim, self.n_bits))
        return self._planes[key]

    def _bucket_codes(self, x: np.ndarray, planes: np.ndarray) -> np.ndarray:
        """(rounds, n, ) integer bucket ids for vectors ``x (n, d)``."""
        bits = (np.einsum("nd,rdb->rnb", x, planes) >= 0)
        weights = 1 << np.arange(self.n_bits)
        return bits @ weights

    def forward(self, layer: int, q: np.ndarray, k: np.ndarray,
                v: np.ndarray) -> np.ndarray:
        n_q_heads, n_new, head_dim = q.shape
        n_kv_heads, n_ctx, _ = k.shape
        group = n_q_heads // n_kv_heads
        scale = 1.0 / np.sqrt(head_dim)
        q_positions = np.arange(n_ctx - n_new, n_ctx)
        dense_mask, candidate_mask = _region_masks(
            q_positions, n_ctx, self.n_sink, self.window)
        planes = self._hyperplanes(layer, head_dim)
        out = np.empty_like(q)
        for kv_head in range(n_kv_heads):
            keys = k[kv_head]
            values = v[kv_head]
            key_codes = self._bucket_codes(keys, planes)  # (rounds, n_ctx)
            for g in range(group):
                h = kv_head * group + g
                query_codes = self._bucket_codes(q[h], planes)  # (r, n_new)
                match = (query_codes[:, :, None]
                         == key_codes[:, None, :]).any(axis=0)
                attend = dense_mask | (candidate_mask & match)
                scores = (q[h] @ keys.T) * scale
                scores[~attend] = -np.inf
                out[h] = softmax(scores, axis=-1) @ values
                if self.stats is not None:
                    kept = candidate_mask & match
                    self.stats.update(
                        layer, kv_head,
                        candidates=int(candidate_mask.sum()),
                        passed=int(kept.sum()),
                        retrieved=int(kept.sum()),
                        queries=n_new)
        return out


class BlockSparseAttention:
    """NSA/DynaX-style block-sparse attention backend.

    Args:
        block_size: context block granularity.
        top_blocks: blocks attended in full per query.
        window: dense sliding window (NSA's third branch).
    """

    def __init__(self, block_size: int = 64, top_blocks: int = 4,
                 window: int = 8, n_sink: int = 0,
                 stats: Optional[FilterStats] = None) -> None:
        if block_size < 1 or top_blocks < 0:
            raise ValueError("invalid block configuration")
        self.block_size = block_size
        self.top_blocks = top_blocks
        self.window = window
        self.n_sink = n_sink
        self.stats = stats

    def forward(self, layer: int, q: np.ndarray, k: np.ndarray,
                v: np.ndarray) -> np.ndarray:
        n_q_heads, n_new, head_dim = q.shape
        n_kv_heads, n_ctx, _ = k.shape
        group = n_q_heads // n_kv_heads
        scale = 1.0 / np.sqrt(head_dim)
        q_positions = np.arange(n_ctx - n_new, n_ctx)
        dense_mask, candidate_mask = _region_masks(
            q_positions, n_ctx, self.n_sink, self.window)
        n_blocks = -(-n_ctx // self.block_size)
        block_of = np.arange(n_ctx) // self.block_size
        out = np.empty_like(q)
        for kv_head in range(n_kv_heads):
            keys = k[kv_head]
            values = v[kv_head]
            # Block summaries: mean key per block (compressed attention).
            sums = np.zeros((n_blocks, head_dim))
            np.add.at(sums, block_of, keys)
            counts = np.bincount(block_of, minlength=n_blocks)[:, None]
            summaries = sums / np.maximum(counts, 1)
            for g in range(group):
                h = kv_head * group + g
                block_scores = q[h] @ summaries.T  # (n_new, n_blocks)
                # A block is selectable only if it contains candidates.
                selectable = np.zeros((n_new, n_blocks), dtype=bool)
                np.logical_or.at(selectable.T, block_of, candidate_mask.T)
                block_scores = np.where(selectable, block_scores, -np.inf)
                chosen = top_k_mask(block_scores, self.top_blocks)
                token_sel = chosen[:, block_of] & candidate_mask
                attend = dense_mask | token_sel
                scores = (q[h] @ keys.T) * scale
                scores[~attend] = -np.inf
                out[h] = softmax(scores, axis=-1) @ values
                if self.stats is not None:
                    self.stats.update(
                        layer, kv_head,
                        candidates=int(candidate_mask.sum()),
                        passed=int(token_sel.sum()),
                        retrieved=int(token_sel.sum()),
                        queries=n_new)
        return out
