"""Deterministic top-k selection over attention scores (Section 5.1).

This is the "ranking" stage of the sparse pipeline; in hardware it runs on
the NMA's top-k sorting unit (maximum supported k is 1,024).
"""

from __future__ import annotations

import numpy as np


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries of a 1-D score vector.

    Deterministic: ties broken by lower index first.  Entries equal to
    ``-inf`` are treated as absent (never selected), so callers can mask
    filtered-out candidates with ``-inf``.

    Returns:
        Sorted-by-descending-score index array of length
        ``min(k, #finite entries)``.
    """
    scores = np.asarray(scores)
    if scores.ndim != 1:
        raise ValueError("top_k_indices expects a 1-D score vector")
    finite = np.isfinite(scores)
    n_valid = int(finite.sum())
    take = min(k, n_valid)
    if take == 0:
        return np.empty(0, dtype=np.int64)
    # argsort on (-score, index) gives a deterministic total order.
    order = np.lexsort((np.arange(len(scores)), -scores))
    order = order[finite[order]]
    return order[:take].astype(np.int64)


def top_k_mask(scores: np.ndarray, k: int) -> np.ndarray:
    """Row-wise top-k as a boolean mask over the last axis.

    ``scores`` is ``(..., n_candidates)`` with ``-inf`` marking
    non-candidates; the result marks at most ``k`` True entries per row.
    Any number of leading axes is supported, so whole ``(n_heads, n_q,
    n_ctx)`` stacks select in one call — the hybrid fast path and blockwise
    perplexity evaluation both rely on this.  Ties at the k-th boundary are
    broken by lower index, matching :func:`top_k_indices`, and each row's
    result is identical to the 2-D form regardless of batching.
    """
    scores = np.asarray(scores)
    n_c = scores.shape[-1]
    mask = np.zeros(scores.shape, dtype=bool)
    if k <= 0 or n_c == 0:
        return mask
    finite = np.isfinite(scores)
    if k >= n_c:
        return finite
    # Exact O(n) selection: take everything strictly above the k-th value,
    # then fill remaining slots with boundary-tied entries in index order.
    kth = -np.partition(-scores, k - 1, axis=-1)[..., k - 1 : k]
    above = scores > kth
    tied = scores == kth
    slots = k - above.sum(axis=-1, keepdims=True)
    fill = tied & (np.cumsum(tied, axis=-1) <= slots)
    mask = (above | fill) & finite
    return mask
