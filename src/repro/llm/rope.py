"""Rotary positional embeddings (RoPE), rotate-half convention.

The paper's models apply RoPE to queries and keys before attention; this
matters to LongSight because ITQ must be applied *after* RoPE (Section 5.4:
"positional embeddings break distance invariance, ITQ cannot be fused into
the linear projection layers").

We use the rotate-half convention (as in the reference Llama code): the head
dimension is split into two halves ``(x1, x2)`` and position ``p`` rotates
plane ``i`` (formed by dims ``i`` and ``i + d/2``) by angle
``p * theta^(-2i/d)``.
"""

from __future__ import annotations

import numpy as np


def rope_frequencies(head_dim: int, theta: float = 10000.0) -> np.ndarray:
    """Per-plane inverse frequencies, shape ``(head_dim // 2,)``."""
    exponents = np.arange(0, head_dim, 2, dtype=np.float64) / head_dim
    return theta ** -exponents


def rope_cos_sin(positions: np.ndarray, head_dim: int,
                 theta: float = 10000.0) -> tuple[np.ndarray, np.ndarray]:
    """cos/sin tables for ``positions``; each has shape ``(n, head_dim//2)``."""
    freqs = rope_frequencies(head_dim, theta)
    angles = np.asarray(positions, dtype=np.float64)[:, None] * freqs[None, :]
    return np.cos(angles), np.sin(angles)


def apply_rope(x: np.ndarray, positions: np.ndarray,
               theta: float = 10000.0) -> np.ndarray:
    """Rotate ``x`` by its positions.

    Args:
        x: ``(..., n, head_dim)`` queries or keys; the second-to-last axis
            indexes tokens.
        positions: ``(n,)`` integer positions of those tokens.
        theta: RoPE base.

    Returns:
        Array of the same shape.  With halves ``x1 = x[..., :d/2]`` and
        ``x2 = x[..., d/2:]``, the result is
        ``[x1 * cos - x2 * sin, x2 * cos + x1 * sin]``.
    """
    head_dim = x.shape[-1]
    half = head_dim // 2
    cos, sin = rope_cos_sin(positions, head_dim, theta)
    x1 = x[..., :half]
    x2 = x[..., half:]
    out = np.empty(x.shape, dtype=np.float64)
    out[..., :half] = x1 * cos - x2 * sin
    out[..., half:] = x2 * cos + x1 * sin
    return out
