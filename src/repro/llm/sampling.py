"""Token sampling for the example applications."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.llm.kv_cache import KVCache
from repro.llm.model import AttentionBackend, Transformer
from repro.llm.ops import softmax


def generate(model: Transformer, prompt: np.ndarray, n_new: int,
             backend: Optional[AttentionBackend] = None,
             temperature: float = 0.0, seed: int = 0,
             cache: Optional[KVCache] = None) -> np.ndarray:
    """Autoregressively generate ``n_new`` tokens after ``prompt``.

    ``temperature == 0`` is greedy decoding; otherwise softmax sampling.
    Returns only the newly generated tokens.
    """
    rng = np.random.default_rng(seed)
    cache = cache if cache is not None else KVCache(model.config)
    logits = model.prefill(np.asarray(prompt), cache, backend=backend)
    out = []
    for _ in range(n_new):
        if temperature <= 0.0:
            token = int(np.argmax(logits))
        else:
            probs = softmax(logits / temperature)
            token = int(rng.choice(len(probs), p=probs))
        out.append(token)
        logits = model.decode_step(token, cache, backend=backend)
    return np.asarray(out, dtype=np.int64)
