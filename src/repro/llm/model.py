"""The transformer substrate: weights, inference model, trainable model.

Three pieces live here:

- :func:`init_weights` — deterministic weight initialization shared by the
  inference and training paths.
- :class:`Transformer` — plain-numpy inference model with a pluggable
  attention backend (dense by default; LongSight's hybrid backend plugs in
  here, mirroring how the paper replaces the HuggingFace attention module
  with ``LongSightAttn``).
- :class:`TrainableTransformer` — autograd-based twin used only for the
  brief pre-training that gives the miniature models realistic attention
  structure.  Its forward pass is verified to match :class:`Transformer`.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

import numpy as np

from repro.llm import autograd as ag
from repro.llm import ops
from repro.llm.config import ModelConfig
from repro.llm.kv_cache import KVCache
from repro.llm.rope import apply_rope

Weights = Dict[str, np.ndarray]


def init_weights(config: ModelConfig, seed: int = 0) -> Weights:
    """Gaussian-initialized weights for ``config`` (std 0.02, seeded)."""
    rng = np.random.default_rng(seed)
    d = config.d_model

    def w(*shape: int) -> np.ndarray:
        return rng.normal(0.0, 0.02, size=shape)

    weights: Weights = {"embed": w(config.vocab_size, d), "final_norm": np.ones(d)}
    if not config.tie_embeddings:
        weights["lm_head"] = w(d, config.vocab_size)
    for i in range(config.n_layers):
        weights[f"attn_norm.{i}"] = np.ones(d)
        weights[f"ffn_norm.{i}"] = np.ones(d)
        weights[f"wq.{i}"] = w(d, config.n_q_heads * config.head_dim)
        weights[f"wk.{i}"] = w(d, config.kv_dim)
        weights[f"wv.{i}"] = w(d, config.kv_dim)
        if config.qk_bias:
            # A deliberate offset: induces the clustered (sign-imbalanced)
            # key geometry of real Llama checkpoints (see ModelConfig).
            weights[f"bq.{i}"] = rng.normal(0.0, 0.3,
                                            config.n_q_heads * config.head_dim)
            weights[f"bk.{i}"] = rng.normal(0.4, 0.3, config.kv_dim)
        weights[f"wo.{i}"] = w(config.n_q_heads * config.head_dim, d)
        weights[f"w_gate.{i}"] = w(d, config.d_ff)
        weights[f"w_up.{i}"] = w(d, config.d_ff)
        weights[f"w_down.{i}"] = w(config.d_ff, d)
    return weights


class AttentionBackend(Protocol):
    """Per-layer attention strategy.

    The model hands the backend post-RoPE queries for the *new* tokens and
    the full post-RoPE key/value history (GQA layout); the backend returns
    per-query-head outputs.  This is the seam where LongSight replaces dense
    attention.
    """

    def forward(self, layer: int, q: np.ndarray, k: np.ndarray,
                v: np.ndarray) -> np.ndarray:
        """Compute attention outputs.

        Args:
            layer: decoder layer index.
            q: ``(n_q_heads, n_new, head_dim)`` queries; query ``t`` sits at
                absolute position ``n_ctx - n_new + t``.
            k: ``(n_kv_heads, n_ctx, head_dim)`` full key history.
            v: ``(n_kv_heads, n_ctx, head_dim)`` full value history.

        Returns:
            ``(n_q_heads, n_new, head_dim)`` outputs.
        """
        ...


class DenseBackend:
    """Reference dense causal attention (the paper's GPU-only baseline)."""

    def forward(self, layer: int, q: np.ndarray, k: np.ndarray,
                v: np.ndarray) -> np.ndarray:
        n_q_heads, n_new, head_dim = q.shape
        n_kv_heads, n_ctx, _ = k.shape
        group = n_q_heads // n_kv_heads
        mask = ops.causal_mask(n_new, n_ctx)
        scale = 1.0 / np.sqrt(head_dim)
        out = np.empty_like(q)
        for h in range(n_q_heads):
            kv_h = h // group
            scores = (q[h] @ k[kv_h].T) * scale
            scores = np.where(mask, scores, -np.inf)
            out[h] = ops.softmax(scores, axis=-1) @ v[kv_h]
        return out


class Transformer:
    """Inference-only decoder-only transformer.

    Supports two modes:

    - :meth:`forward_full` — teacher-forced pass over a whole sequence,
      used for perplexity evaluation (queries can be processed in blocks so
      sparse backends stay vectorized).
    - :meth:`prefill` / :meth:`decode_step` — KV-cache-based generation.
    """

    def __init__(self, config: ModelConfig, weights: Optional[Weights] = None,
                 seed: int = 0) -> None:
        self.config = config
        self.weights = weights if weights is not None else init_weights(config, seed)
        # Lazily-built packed-sign staging buffer shared by every layer of
        # every decode_step_batch call (see repro.core.scf.SignScratch).
        self._decode_scratch = None

    # -- shared per-layer math ------------------------------------------------

    def _qkv(self, layer: int, x: np.ndarray,
             positions: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Project ``x`` (n, d_model) to post-RoPE q/k and raw v (head-major)."""
        c, w = self.config, self.weights
        q = x @ w[f"wq.{layer}"]
        k = x @ w[f"wk.{layer}"]
        v = x @ w[f"wv.{layer}"]
        if c.qk_bias:
            q = q + w[f"bq.{layer}"]
            k = k + w[f"bk.{layer}"]
        n = x.shape[0]
        q = q.reshape(n, c.n_q_heads, c.head_dim).transpose(1, 0, 2)
        k = k.reshape(n, c.n_kv_heads, c.head_dim).transpose(1, 0, 2)
        v = v.reshape(n, c.n_kv_heads, c.head_dim).transpose(1, 0, 2)
        q = apply_rope(q, positions, c.rope_theta)
        k = apply_rope(k, positions, c.rope_theta)
        return q, k, v

    def _attn_project(self, layer: int, x: np.ndarray, positions: np.ndarray,
                      cache: KVCache) -> np.ndarray:
        """Pre-attention half of a layer: norm, QKV, cache append.

        Returns the post-RoPE queries; keys/values land in the cache.
        """
        c, w = self.config, self.weights
        h = ops.rms_norm(x, w[f"attn_norm.{layer}"], c.norm_eps)
        q, k, v = self._qkv(layer, h, positions)
        cache.append(layer, k, v)
        return q

    def _attn_dispatch(self, layer: int, q: np.ndarray, cache: KVCache,
                       backend: AttentionBackend) -> np.ndarray:
        """Run the attention backend for one session's query block."""
        # Cache-aware backends (duck-typed) get the cache itself, so they
        # can consume incrementally maintained metadata such as the packed
        # sign store instead of recomputing it from the raw keys.
        fwd_cached = getattr(backend, "forward_cached", None)
        if fwd_cached is not None:
            return fwd_cached(layer, q, cache)
        return backend.forward(layer, q, cache.layers[layer].keys,
                               cache.layers[layer].values)

    def _attn_finish(self, layer: int, x: np.ndarray,
                     attn: np.ndarray) -> np.ndarray:
        """Post-attention half of a layer: output projection and FFN."""
        c, w = self.config, self.weights
        n = x.shape[0]
        attn = attn.transpose(1, 0, 2).reshape(n, c.n_q_heads * c.head_dim)
        x = x + attn @ w[f"wo.{layer}"]
        h = ops.rms_norm(x, w[f"ffn_norm.{layer}"], c.norm_eps)
        x = x + ops.swiglu(h, w[f"w_gate.{layer}"], w[f"w_up.{layer}"],
                           w[f"w_down.{layer}"])
        return x

    def _layer(self, layer: int, x: np.ndarray, positions: np.ndarray,
               cache: KVCache, backend: AttentionBackend) -> np.ndarray:
        q = self._attn_project(layer, x, positions, cache)
        attn = self._attn_dispatch(layer, q, cache, backend)
        return self._attn_finish(layer, x, attn)

    @staticmethod
    def _prepare_cache(cache: KVCache, backend: AttentionBackend) -> None:
        """Let the backend set up per-cache state (e.g. the sign cache)."""
        prepare = getattr(backend, "prepare_cache", None)
        if prepare is not None:
            prepare(cache)

    def _unembed(self, x: np.ndarray) -> np.ndarray:
        c, w = self.config, self.weights
        x = ops.rms_norm(x, w["final_norm"], c.norm_eps)
        head = w["embed"].T if c.tie_embeddings else w["lm_head"]
        return x @ head

    # -- public API -------------------------------------------------------------

    def forward_full(self, tokens: np.ndarray,
                     backend: Optional[AttentionBackend] = None,
                     block_size: int = 256) -> np.ndarray:
        """Teacher-forced logits for every position of ``tokens``.

        The sequence is fed through in query blocks of ``block_size`` with a
        growing KV cache, so backends see exactly the causal structure they
        would during generation while staying vectorized.

        Returns:
            ``(len(tokens), vocab)`` logits.
        """
        backend = backend or DenseBackend()
        tokens = np.asarray(tokens)
        n = len(tokens)
        cache = KVCache(self.config)
        cache.reserve(n)
        self._prepare_cache(cache, backend)
        logits = np.empty((n, self.config.vocab_size))
        for start in range(0, n, block_size):
            stop = min(start + block_size, n)
            x = self.weights["embed"][tokens[start:stop]]
            positions = np.arange(start, stop)
            for layer in range(self.config.n_layers):
                x = self._layer(layer, x, positions, cache, backend)
            logits[start:stop] = self._unembed(x)
        return logits

    def prefill(self, tokens: np.ndarray, cache: KVCache,
                backend: Optional[AttentionBackend] = None,
                block_size: int = 256) -> np.ndarray:
        """Populate ``cache`` from a prompt; return logits of the last token."""
        backend = backend or DenseBackend()
        tokens = np.asarray(tokens)
        start0 = len(cache)
        # One up-front allocation for the whole prompt instead of repeated
        # doubling-and-copying during blockwise prefill.
        cache.reserve(start0 + len(tokens))
        self._prepare_cache(cache, backend)
        last = None
        for start in range(0, len(tokens), block_size):
            stop = min(start + block_size, len(tokens))
            x = self.weights["embed"][tokens[start:stop]]
            positions = np.arange(start0 + start, start0 + stop)
            for layer in range(self.config.n_layers):
                x = self._layer(layer, x, positions, cache, backend)
            last = x[-1:]
        return self._unembed(last)[0]

    def decode_step(self, token: int, cache: KVCache,
                    backend: Optional[AttentionBackend] = None) -> np.ndarray:
        """One autoregressive step; returns next-token logits ``(vocab,)``."""
        backend = backend or DenseBackend()
        self._prepare_cache(cache, backend)
        x = self.weights["embed"][np.asarray([token])]
        positions = np.arange(len(cache), len(cache) + 1)
        for layer in range(self.config.n_layers):
            x = self._layer(layer, x, positions, cache, backend)
        return self._unembed(x)[0]

    def _decode_batch_groups(self, backends) -> list:
        """Indices of sessions eligible for one batched filter call.

        Sessions group by exact backend class; a class joins when it
        exposes the duck-typed ``forward_cached_batch`` hook and each
        instance reports ``decode_batch_compatible()``.  Groups of one
        fall back to the ordinary per-session dispatch.
        """
        groups: Dict[type, list] = {}
        for i, backend in enumerate(backends):
            if getattr(backend, "forward_cached_batch", None) is None:
                continue
            compatible = getattr(backend, "decode_batch_compatible", None)
            if compatible is None or not compatible():
                continue
            groups.setdefault(type(backend), []).append(i)
        return [idxs for idxs in groups.values() if len(idxs) > 1]

    def decode_step_batch(self, tokens, caches,
                          backends=None) -> list:
        """One decode step for many independent sessions (layer-major).

        The multi-session analogue of :meth:`decode_step` used by the
        continuous-batching serving engine: sessions are traversed
        layer-major (all sessions' layer 0, then layer 1, ...), so each
        layer's weight matrices are touched once per step instead of once
        per session.  Every per-session GEMM keeps exactly the shapes
        and order of :meth:`decode_step` — merging sessions into one GEMM
        would change BLAS blocking and drift in the last ulp — so the
        logits of each session are bit-identical to stepping it alone.

        Attention *filtering*, however, is session-batched: backends that
        expose the duck-typed ``forward_cached_batch`` hook (the hybrid
        fast path) have their packed-sign concordance for the whole decode
        batch computed in one XOR+popcount kernel call per layer, staged
        through one preallocated :class:`~repro.core.scf.SignScratch`
        buffer that is reused across layers and steps.  The hook's
        contract requires bit-identical outputs to per-session dispatch.

        Args:
            tokens: one pending token id per session.
            caches: one KV cache per session (plain or paged).
            backends: a single shared backend, a per-session sequence, or
                ``None`` for dense attention.

        Returns:
            list of ``(vocab,)`` next-token logits, one per session.
        """
        n = len(tokens)
        if len(caches) != n:
            raise ValueError("tokens and caches must be parallel")
        if backends is None or not isinstance(backends, (list, tuple)):
            backends = [backends or DenseBackend()] * n
        elif len(backends) != n:
            raise ValueError("need one backend per session")
        for cache, backend in zip(caches, backends):
            self._prepare_cache(cache, backend)
        batch_groups = self._decode_batch_groups(backends)
        if batch_groups and self._decode_scratch is None:
            # Deferred import: repro.llm must not depend on repro.core at
            # module load (the cores import the llm substrate).
            from repro.core.scf import SignScratch

            self._decode_scratch = SignScratch()
        xs = [self.weights["embed"][np.asarray([token])] for token in tokens]
        positions = [np.arange(len(cache), len(cache) + 1)
                     for cache in caches]
        for layer in range(self.config.n_layers):
            qs = [self._attn_project(layer, xs[i], positions[i], caches[i])
                  for i in range(n)]
            attns: list = [None] * n
            for idxs in batch_groups:
                lead = backends[idxs[0]]
                outs = lead.forward_cached_batch(
                    layer, [qs[i] for i in idxs], [caches[i] for i in idxs],
                    backends=[backends[i] for i in idxs],
                    scratch=self._decode_scratch)
                for i, out in zip(idxs, outs):
                    attns[i] = out
            for i in range(n):
                if attns[i] is None:
                    attns[i] = self._attn_dispatch(layer, qs[i], caches[i],
                                                   backends[i])
                xs[i] = self._attn_finish(layer, xs[i], attns[i])
        return [self._unembed(x)[0] for x in xs]


class TrainableTransformer:
    """Autograd twin of :class:`Transformer`, dense attention only."""

    def __init__(self, config: ModelConfig, weights: Optional[Weights] = None,
                 seed: int = 0) -> None:
        self.config = config
        base = weights if weights is not None else init_weights(config, seed)
        self.params: Dict[str, ag.Tensor] = {
            name: ag.Tensor(value, requires_grad=True)
            for name, value in base.items()
        }

    def export_weights(self) -> Weights:
        """Plain-numpy weights consumable by :class:`Transformer`."""
        return {name: p.data.copy() for name, p in self.params.items()}

    def _rope(self, x: ag.Tensor, positions: np.ndarray) -> ag.Tensor:
        from repro.llm.rope import rope_cos_sin

        half = self.config.head_dim // 2
        cos, sin = rope_cos_sin(positions, self.config.head_dim,
                                self.config.rope_theta)
        x1 = x[..., :half]
        x2 = x[..., half:]
        return ag.concat([x1 * cos - x2 * sin, x2 * cos + x1 * sin], axis=-1)

    def forward(self, tokens: np.ndarray) -> ag.Tensor:
        """Logits for a batch: ``tokens (B, T)`` -> Tensor ``(B, T, vocab)``."""
        c, p = self.config, self.params
        tokens = np.asarray(tokens)
        batch, t = tokens.shape
        positions = np.arange(t)
        mask_bias = np.where(ops.causal_mask(t, t), 0.0, -1e9)
        scale = 1.0 / np.sqrt(c.head_dim)
        kv_map = np.repeat(np.arange(c.n_kv_heads), c.gqa_group_size)

        x = ag.embedding(p["embed"], tokens)
        for i in range(c.n_layers):
            h = ag.rms_norm(x, p[f"attn_norm.{i}"], c.norm_eps)
            q = h @ p[f"wq.{i}"]
            k = h @ p[f"wk.{i}"]
            v = h @ p[f"wv.{i}"]
            if c.qk_bias:
                q = q + p[f"bq.{i}"]
                k = k + p[f"bk.{i}"]
            q = q.reshape(batch, t, c.n_q_heads, c.head_dim)
            k = k.reshape(batch, t, c.n_kv_heads, c.head_dim)
            v = v.reshape(batch, t, c.n_kv_heads, c.head_dim)
            q = q.transpose(0, 2, 1, 3)  # (B, Hq, T, dh)
            k = k.transpose(0, 2, 1, 3)
            v = v.transpose(0, 2, 1, 3)
            q = self._rope(q, positions)
            k = self._rope(k, positions)
            k = k[:, kv_map]  # GQA: expand KV heads to query heads
            v = v[:, kv_map]
            scores = (q @ k.swapaxes(-1, -2)) * scale + mask_bias
            attn = scores.softmax(axis=-1) @ v
            attn = attn.transpose(0, 2, 1, 3).reshape(
                batch, t, c.n_q_heads * c.head_dim)
            x = x + attn @ p[f"wo.{i}"]
            h = ag.rms_norm(x, p[f"ffn_norm.{i}"], c.norm_eps)
            ffn = ((h @ p[f"w_gate.{i}"]).silu() * (h @ p[f"w_up.{i}"])) \
                @ p[f"w_down.{i}"]
            x = x + ffn
        x = ag.rms_norm(x, p["final_norm"], c.norm_eps)
        if c.tie_embeddings:
            return x @ p["embed"].swapaxes(0, 1)
        return x @ p["lm_head"]

    def loss(self, tokens: np.ndarray) -> ag.Tensor:
        """Next-token cross-entropy over a batch ``(B, T)``."""
        logits = self.forward(tokens[:, :-1])
        return ag.softmax_cross_entropy(logits, tokens[:, 1:])
