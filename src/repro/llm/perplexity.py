"""Long-context perplexity evaluation (the paper's primary quality metric).

Section 8.1.1: perplexity over long contiguous sequences is used instead of
downstream tasks because it scales to arbitrary context lengths and directly
measures whether the model exploits the full context.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.llm.model import AttentionBackend, Transformer
from repro.llm.ops import log_softmax


def nll_per_token(model: Transformer, tokens: np.ndarray,
                  backend: Optional[AttentionBackend] = None,
                  block_size: int = 256,
                  burn_in: int = 0) -> np.ndarray:
    """Per-position negative log-likelihood of the next token.

    Position ``t`` scores the prediction of ``tokens[t + 1]`` given
    ``tokens[: t + 1]``.  The first ``burn_in`` predictions are dropped
    (useful to exclude the cold-start region when comparing backends).

    Returns:
        1-D array of length ``len(tokens) - 1 - burn_in``.
    """
    tokens = np.asarray(tokens)
    logits = model.forward_full(tokens, backend=backend, block_size=block_size)
    logp = log_softmax(logits[:-1], axis=-1)
    nll = -logp[np.arange(len(tokens) - 1), tokens[1:]]
    return nll[burn_in:]


def perplexity(model: Transformer, tokens: np.ndarray,
               backend: Optional[AttentionBackend] = None,
               block_size: int = 256,
               burn_in: int = 0) -> float:
    """exp(mean NLL) of ``tokens`` under ``model`` with ``backend``."""
    return float(np.exp(np.mean(
        nll_per_token(model, tokens, backend, block_size, burn_in))))


def perplexity_increase(sparse_ppl: float, dense_ppl: float) -> float:
    """Relative perplexity increase of a sparse configuration over dense.

    The paper's quality gates are phrased this way: "perplexity is within 5%
    of full dense attention" (Figure 3) and "a 1% perplexity increase"
    (Section 5.4).
    """
    return sparse_ppl / dense_ppl - 1.0
