"""Cached, deterministic trained miniatures for experiments and benches.

Training a miniature takes tens of seconds; every benchmark needs the same
checkpoints, so :func:`trained_model` memoizes in-process and persists
weights as ``.npz`` under ``<repo>/.cache/models``.
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.synthetic import pg_like
from repro.llm.config import ModelConfig, SIM_MODELS
from repro.llm.model import Transformer, Weights
from repro.llm.training import train

_MEMO: Dict[Tuple[str, int, int], Transformer] = {}

#: Default training recipe per sim model (steps, batch, seq_len, lr).
#: seq_len must comfortably exceed the shortest copy-burst look-back so the
#: induction mechanism is learnable from training windows.
_RECIPES = {
    "llama-sim-small": dict(steps=1200, batch_size=8, seq_len=256, lr=3e-3),
    "llama-sim-base": dict(steps=1000, batch_size=8, seq_len=256, lr=2e-3),
}


def cache_dir() -> pathlib.Path:
    """Directory for persisted checkpoints (override: REPRO_CACHE_DIR)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        path = pathlib.Path(env)
    else:
        path = pathlib.Path(__file__).resolve().parents[3] / ".cache" / "models"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _load(path: pathlib.Path) -> Optional[Weights]:
    if not path.exists():
        return None
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def trained_model(name: str = "llama-sim-small", steps: Optional[int] = None,
                  seed: int = 0, corpus_tokens: int = 400_000) -> Transformer:
    """A deterministic trained miniature.

    Args:
        name: a ``SIM_MODELS`` key.
        steps: override training steps (default: per-model recipe).
        seed: training seed.
        corpus_tokens: size of the PG-like training stream.

    Returns:
        An inference :class:`Transformer`.  Identical arguments always give
        identical weights (in-process memo, then on-disk ``.npz``).
    """
    if name not in SIM_MODELS:
        raise KeyError(f"unknown sim model {name!r}; options: {sorted(SIM_MODELS)}")
    config = SIM_MODELS[name]
    recipe = dict(_RECIPES[name])
    if steps is not None:
        recipe["steps"] = steps
    key = (name, recipe["steps"], seed)
    if key in _MEMO:
        return _MEMO[key]
    path = cache_dir() / f"{name}-s{recipe['steps']}-seed{seed}.npz"
    weights = _load(path)
    if weights is None:
        tokens = pg_like(corpus_tokens, vocab_size=config.vocab_size, seed=seed)
        result = train(config, tokens, seed=seed, **recipe)
        weights = result.weights
        np.savez(path, **weights)
    model = Transformer(config, weights=weights)
    _MEMO[key] = model
    return model


def untrained_model(name: str = "llama-sim-small", seed: int = 0) -> Transformer:
    """A randomly initialized miniature (for tests that don't need training)."""
    config = SIM_MODELS[name]
    return Transformer(config, seed=seed)
