"""A small reverse-mode autograd engine over numpy.

Only the operations needed to train the transformer substrate are
implemented, but each is a proper broadcast-aware primitive with a gradient
verified against finite differences (``tests/llm/test_autograd.py``).

Usage::

    a = Tensor(np.random.randn(3, 4), requires_grad=True)
    b = Tensor(np.random.randn(4, 2), requires_grad=True)
    loss = (a @ b).sum()
    loss.backward()
    # a.grad, b.grad now hold dloss/da, dloss/db
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus gradient bookkeeping."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(self, data: ArrayLike, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._parents: tuple[Tensor, ...] = ()
        self._backward: Optional[Callable[[np.ndarray], None]] = None

    # -- basics -------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (must be scalar unless grad given)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        seen: set[int] = set()

        def visit(t: Tensor) -> None:
            if id(t) in seen:
                return
            seen.add(id(t))
            for p in t._parents:
                visit(p)
            topo.append(t)

        visit(self)
        grads: dict[int, np.ndarray] = {id(self): np.asarray(grad, dtype=np.float64)}
        for t in reversed(topo):
            g = grads.pop(id(t), None)
            if g is None:
                continue
            if t.requires_grad:
                t._accumulate(g)
            if t._backward is not None:
                for parent, pg in t._backward(g):
                    if id(parent) in grads:
                        grads[id(parent)] += pg
                    else:
                        grads[id(parent)] = pg

    # -- operator helpers ----------------------------------------------------

    @staticmethod
    def _lift(x: Union["Tensor", ArrayLike]) -> "Tensor":
        return x if isinstance(x, Tensor) else Tensor(x)

    @staticmethod
    def _node(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], list]) -> "Tensor":
        out = Tensor(data)
        tracked = tuple(p for p in parents if p.requires_grad or p._parents)
        if tracked:
            out._parents = tracked
            out._backward = lambda g: [
                (p, pg) for p, pg in backward(g) if p in tracked
            ]
        return out

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        return self._node(
            self.data + other.data,
            (self, other),
            lambda g: [
                (self, _unbroadcast(g, self.shape)),
                (other, _unbroadcast(g, other.shape)),
            ],
        )

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return self._node(-self.data, (self,), lambda g: [(self, -g)])

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        return self._node(
            self.data * other.data,
            (self, other),
            lambda g: [
                (self, _unbroadcast(g * other.data, self.shape)),
                (other, _unbroadcast(g * self.data, other.shape)),
            ],
        )

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        return self * other ** -1.0

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data ** exponent
        return self._node(
            data,
            (self,),
            lambda g: [(self, g * exponent * self.data ** (exponent - 1.0))],
        )

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._lift(other)

        def backward(g: np.ndarray) -> list:
            ga = np.matmul(g, np.swapaxes(other.data, -1, -2))
            gb = np.matmul(np.swapaxes(self.data, -1, -2), g)
            return [
                (self, _unbroadcast(ga, self.shape)),
                (other, _unbroadcast(gb, other.shape)),
            ]

        return self._node(np.matmul(self.data, other.data), (self, other), backward)

    # -- shape ops -----------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        old = self.shape
        return self._node(
            self.data.reshape(shape),
            (self,),
            lambda g: [(self, g.reshape(old))],
        )

    def transpose(self, *axes: int) -> "Tensor":
        inv = np.argsort(axes)
        return self._node(
            self.data.transpose(axes),
            (self,),
            lambda g: [(self, g.transpose(inv))],
        )

    def swapaxes(self, a: int, b: int) -> "Tensor":
        return self._node(
            np.swapaxes(self.data, a, b),
            (self,),
            lambda g: [(self, np.swapaxes(g, a, b))],
        )

    def __getitem__(self, key) -> "Tensor":
        def backward(g: np.ndarray) -> list:
            full = np.zeros_like(self.data)
            np.add.at(full, key, g)
            return [(self, full)]

        return self._node(self.data[key], (self,), backward)

    # -- reductions ----------------------------------------------------------

    def sum(self, axis: Optional[Union[int, tuple]] = None,
            keepdims: bool = False) -> "Tensor":
        def backward(g: np.ndarray) -> list:
            if axis is None:
                return [(self, np.broadcast_to(g, self.shape).copy())]
            g_exp = g if keepdims else np.expand_dims(g, axis)
            return [(self, np.broadcast_to(g_exp, self.shape).copy())]

        return self._node(self.data.sum(axis=axis, keepdims=keepdims),
                          (self,), backward)

    def mean(self, axis: Optional[Union[int, tuple]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- nonlinearities --------------------------------------------------------

    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        return self._node(data, (self,), lambda g: [(self, g * data)])

    def log(self) -> "Tensor":
        return self._node(np.log(self.data), (self,),
                          lambda g: [(self, g / self.data)])

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def silu(self) -> "Tensor":
        sig = 1.0 / (1.0 + np.exp(-self.data))
        data = self.data * sig

        def backward(g: np.ndarray) -> list:
            return [(self, g * (sig * (1.0 + self.data * (1.0 - sig))))]

        return self._node(data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        y = e / e.sum(axis=axis, keepdims=True)

        def backward(g: np.ndarray) -> list:
            dot = (g * y).sum(axis=axis, keepdims=True)
            return [(self, y * (g - dot))]

        return self._node(y, (self,), backward)


# -- composite / free functions ------------------------------------------------


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = list(tensors)
    sizes = [t.shape[axis] for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray) -> list:
        splits = np.cumsum(sizes)[:-1]
        parts = np.split(g, splits, axis=axis)
        return list(zip(tensors, parts))

    return Tensor._node(data, tensors, backward)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``weight[indices]`` with scatter-add gradient."""
    idx = np.asarray(indices)

    def backward(g: np.ndarray) -> list:
        full = np.zeros_like(weight.data)
        np.add.at(full, idx, g)
        return [(weight, full)]

    return Tensor._node(weight.data[idx], (weight,), backward)


def rms_norm(x: Tensor, weight: Tensor, eps: float = 1e-5) -> Tensor:
    """RMSNorm built from primitives (matches :func:`repro.llm.ops.rms_norm`)."""
    ms = (x * x).mean(axis=-1, keepdims=True)
    return x * ((ms + eps) ** -0.5) * weight


def softmax_cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy of integer ``targets`` under ``logits``.

    Fused for numerical stability; the gradient is
    ``(softmax(logits) - onehot) / N``.
    """
    t = np.asarray(targets).reshape(-1)
    flat_shape = (-1, logits.shape[-1])
    x = logits.data.reshape(flat_shape)
    n = x.shape[0]
    shifted = x - x.max(axis=1, keepdims=True)
    logz = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logp = shifted - logz
    loss = -logp[np.arange(n), t].mean()

    def backward(g: np.ndarray) -> list:
        p = np.exp(logp)
        p[np.arange(n), t] -= 1.0
        grad = (float(g) / n) * p
        return [(logits, grad.reshape(logits.shape))]

    return Tensor._node(np.asarray(loss), (logits,), backward)


def no_grad_array(t: Union[Tensor, np.ndarray]) -> np.ndarray:
    """Plain numpy view of a tensor or array."""
    return t.data if isinstance(t, Tensor) else np.asarray(t)
