"""Adam optimizer and training loop for the miniature models.

The paper evaluates on pretrained Llama-3 checkpoints; offline we cannot
load those, so the algorithm experiments run on miniatures *briefly trained*
on synthetic corpora.  Training is what gives the attention maps their
realistic structure (peaked scores, induction-style long-range copying,
attention sinks) — randomly initialized weights would make every sparsity
experiment vacuous.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.llm.autograd import Tensor
from repro.llm.config import ModelConfig
from repro.llm.model import TrainableTransformer, Weights


class Adam:
    """Standard Adam with bias correction and global-norm gradient clipping."""

    def __init__(self, params: Dict[str, Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.95),
                 eps: float = 1e-8, clip_norm: float = 1.0) -> None:
        self.params = params
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.clip_norm = clip_norm
        self.step_count = 0
        self._m = {k: np.zeros_like(p.data) for k, p in params.items()}
        self._v = {k: np.zeros_like(p.data) for k, p in params.items()}

    def zero_grad(self) -> None:
        for p in self.params.values():
            p.grad = None

    def _clip(self) -> float:
        total = 0.0
        for p in self.params.values():
            if p.grad is not None:
                total += float(np.sum(np.square(p.grad)))
        norm = math.sqrt(total)
        if self.clip_norm and norm > self.clip_norm:
            scale = self.clip_norm / (norm + 1e-12)
            for p in self.params.values():
                if p.grad is not None:
                    p.grad *= scale
        return norm

    def step(self, lr: Optional[float] = None) -> float:
        """Apply one update; returns the pre-clip gradient norm."""
        lr = self.lr if lr is None else lr
        norm = self._clip()
        self.step_count += 1
        t = self.step_count
        bc1 = 1.0 - self.beta1 ** t
        bc2 = 1.0 - self.beta2 ** t
        for name, p in self.params.items():
            if p.grad is None:
                continue
            m = self._m[name]
            v = self._v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(p.grad)
            p.data -= lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
        return norm


def cosine_schedule(base_lr: float, warmup: int, total: int) -> Callable[[int], float]:
    """Linear warmup then cosine decay to 10% of ``base_lr``."""

    def lr_at(step: int) -> float:
        if step < warmup:
            return base_lr * (step + 1) / max(1, warmup)
        progress = (step - warmup) / max(1, total - warmup)
        return base_lr * (0.1 + 0.9 * 0.5 * (1.0 + math.cos(math.pi * progress)))

    return lr_at


@dataclasses.dataclass
class TrainResult:
    """Outcome of a training run."""

    weights: Weights
    losses: List[float]

    @property
    def final_loss(self) -> float:
        return self.losses[-1]


def sample_batches(tokens: np.ndarray, batch_size: int, seq_len: int,
                   rng: np.random.Generator):
    """Yield random ``(batch_size, seq_len + 1)`` windows forever."""
    n = len(tokens)
    if n < seq_len + 1:
        raise ValueError("token stream shorter than one training window")
    while True:
        starts = rng.integers(0, n - seq_len - 1, size=batch_size)
        yield np.stack([tokens[s : s + seq_len + 1] for s in starts])


def train(config: ModelConfig, tokens: np.ndarray, steps: int = 300,
          batch_size: int = 8, seq_len: int = 128, lr: float = 3e-3,
          seed: int = 0,
          log: Optional[Callable[[int, float], None]] = None) -> TrainResult:
    """Train a miniature model on a token stream.

    Args:
        config: model architecture (use a ``LLAMA_SIM_*`` preset).
        tokens: 1-D integer token stream.
        steps: optimizer steps.
        batch_size / seq_len: training window shape.
        lr: peak learning rate (cosine schedule, 10% warmup).
        seed: controls init and batch sampling; runs are deterministic.
        log: optional ``(step, loss)`` callback.

    Returns:
        :class:`TrainResult` with final weights and the loss trace.
    """
    rng = np.random.default_rng(seed + 1)
    model = TrainableTransformer(config, seed=seed)
    opt = Adam(model.params, lr=lr)
    schedule = cosine_schedule(lr, warmup=max(1, steps // 10), total=steps)
    batches = sample_batches(np.asarray(tokens), batch_size, seq_len, rng)
    losses: List[float] = []
    for step in range(steps):
        batch = next(batches)
        opt.zero_grad()
        loss = model.loss(batch)
        loss.backward()
        opt.step(lr=schedule(step))
        losses.append(float(loss.data))
        if log is not None:
            log(step, losses[-1])
    return TrainResult(weights=model.export_weights(), losses=losses)
