"""Decoder-only transformer substrate (numpy).

This subpackage is the stand-in for the paper's HuggingFace Llama-3 models.
It implements the same architecture family (GQA attention, RoPE positional
embeddings, RMSNorm, SwiGLU feed-forward) entirely in numpy, together with a
small reverse-mode autograd engine and an Adam training loop so that
miniature models can be *trained* (not just randomly initialized) before the
sparse-attention experiments run on them.

Public entry points:

- :class:`repro.llm.config.ModelConfig` and the presets in
  :mod:`repro.llm.config` (paper-scale and simulation-scale).
- :class:`repro.llm.model.Transformer` — inference model with pluggable
  attention backends and a KV cache.
- :class:`repro.llm.training.Trainer` — trains a model on a token stream.
- :func:`repro.llm.perplexity.perplexity` — long-context perplexity.
- :func:`repro.llm.zoo.trained_model` — cached, deterministic trained
  miniatures used by the benchmarks.
"""

from repro.llm.config import (
    ModelConfig,
    LLAMA3_1B,
    LLAMA3_8B,
    LLAMA_SIM_SMALL,
    LLAMA_SIM_BASE,
)
from repro.llm.model import Transformer
from repro.llm.kv_cache import KVCache
from repro.llm.perplexity import perplexity

__all__ = [
    "ModelConfig",
    "LLAMA3_1B",
    "LLAMA3_8B",
    "LLAMA_SIM_SMALL",
    "LLAMA_SIM_BASE",
    "Transformer",
    "KVCache",
    "perplexity",
]
