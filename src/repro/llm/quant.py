"""BF16 storage emulation.

Table 1 lists BF16 quantization for both models, and Section 4 notes that
in-memory sign filtering "is compatible with any signed data type" —
because BF16 shares IEEE-754's sign bit, rounding K/V to BF16 never changes
a sign bit, so SCF behaves identically on quantized and full-precision
keys (property-tested in ``tests/llm/test_quant.py``).

Numpy has no native bfloat16; we emulate it exactly by truncating/rounding
a float32 to its upper 16 bits (round-to-nearest-even on the dropped
mantissa bits), then viewing back as float32.
"""

from __future__ import annotations

import numpy as np


def to_bf16(x: np.ndarray) -> np.ndarray:
    """Round to bfloat16 precision (returned as float32-compatible array).

    Uses round-to-nearest-even on the low 16 mantissa bits, matching
    hardware BF16 conversion.
    """
    f32 = np.asarray(x, dtype=np.float32)
    bits = f32.view(np.uint32)
    # Round-to-nearest-even: add 0x7FFF + LSB of the surviving mantissa.
    lsb = (bits >> 16) & 1
    rounded = bits + 0x7FFF + lsb
    out = (rounded & 0xFFFF0000).view(np.float32)
    # Preserve NaN/Inf payloads (the rounding add could overflow them).
    special = ~np.isfinite(f32)
    if special.any():
        out = np.where(special, (bits & 0xFFFF0000).view(np.float32), out)
    return out.astype(np.float64)


def bf16_error_bound(x: np.ndarray) -> np.ndarray:
    """Elementwise upper bound on |x - bf16(x)|: half a ULP at 8 mantissa
    bits, i.e. ``|x| * 2^-8``."""
    return np.abs(np.asarray(x)) * 2.0 ** -8


class Bf16KVStore:
    """A drop-in wrapper that stores appended K/V blocks at BF16 precision.

    Used by experiments that want the storage datatype of the paper's
    system while the compute path stays float64.
    """

    def __init__(self) -> None:
        self._keys: list[np.ndarray] = []
        self._values: list[np.ndarray] = []

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        self._keys.append(to_bf16(keys))
        self._values.append(to_bf16(values))

    @property
    def keys(self) -> np.ndarray:
        return np.concatenate(self._keys) if self._keys else np.empty((0, 0))

    @property
    def values(self) -> np.ndarray:
        return np.concatenate(self._values) if self._values \
            else np.empty((0, 0))

    def __len__(self) -> int:
        return sum(len(k) for k in self._keys)
