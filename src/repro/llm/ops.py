"""Pure-numpy functional building blocks for the inference path.

Everything here is stateless and operates on plain ``np.ndarray`` values.
The training path uses the autograd wrappers in :mod:`repro.llm.autograd`;
these functions define the reference forward semantics that both paths
must agree on (see ``tests/llm/test_model_equivalence.py``).
"""

from __future__ import annotations

import numpy as np


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Root-mean-square layer norm (no mean subtraction), as in Llama."""
    rms = np.sqrt(np.mean(np.square(x), axis=-1, keepdims=True) + eps)
    return x / rms * weight


def silu(x: np.ndarray) -> np.ndarray:
    """Sigmoid-weighted linear unit: ``x * sigmoid(x)``."""
    return x / (1.0 + np.exp(-x))


def swiglu(x: np.ndarray, w_gate: np.ndarray, w_up: np.ndarray,
           w_down: np.ndarray) -> np.ndarray:
    """SwiGLU feed-forward: ``(silu(x @ Wg) * (x @ Wu)) @ Wd``."""
    return (silu(x @ w_gate) * (x @ w_up)) @ w_down


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Mean cross-entropy of integer ``targets`` under ``logits``.

    ``logits`` has shape ``(..., vocab)`` and ``targets`` the matching
    leading shape.
    """
    logp = log_softmax(logits, axis=-1)
    flat = logp.reshape(-1, logp.shape[-1])
    idx = targets.reshape(-1)
    return float(-np.mean(flat[np.arange(flat.shape[0]), idx]))


def causal_mask(n_q: int, n_k: int) -> np.ndarray:
    """Boolean mask, True where query i may attend key j.

    Queries are assumed to be the *last* ``n_q`` positions of a length
    ``n_k`` context, which covers both prefill (``n_q == n_k``) and decode
    (``n_q == 1``).
    """
    if n_q > n_k:
        raise ValueError("cannot have more queries than keys in causal mask")
    q_pos = np.arange(n_k - n_q, n_k)[:, None]
    k_pos = np.arange(n_k)[None, :]
    return k_pos <= q_pos


def attention(q: np.ndarray, k: np.ndarray, v: np.ndarray,
              mask: np.ndarray | None = None,
              scale: float | None = None) -> np.ndarray:
    """Scaled dot-product attention for a single head.

    Args:
        q: ``(n_q, d)`` queries.
        k: ``(n_k, d)`` keys.
        v: ``(n_k, dv)`` values.
        mask: optional ``(n_q, n_k)`` boolean mask (True = attend).
        scale: score scale; defaults to ``1/sqrt(d)``.

    Returns:
        ``(n_q, dv)`` attention output.
    """
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    scores = (q @ k.T) * scale
    if mask is not None:
        scores = np.where(mask, scores, -np.inf)
    return softmax(scores, axis=-1) @ v


def repeat_kv(x: np.ndarray, group_size: int) -> np.ndarray:
    """Expand ``(n_kv_heads, ...)`` KV tensors to ``(n_q_heads, ...)``.

    Each KV head is repeated ``group_size`` times so that grouped-query
    attention can be computed with per-head dense math.
    """
    return np.repeat(x, group_size, axis=0)
