"""Model configurations.

Two tiers of configuration live here:

- Paper-scale presets (:data:`LLAMA3_1B`, :data:`LLAMA3_8B`) mirror Table 1
  of the paper. They are used by the analytical performance model, which
  never executes the network and therefore can afford the real dimensions.
- Simulation-scale presets (:data:`LLAMA_SIM_SMALL`, :data:`LLAMA_SIM_BASE`)
  are architecturally identical miniatures (same GQA ratio, RoPE, SwiGLU)
  that are small enough to train and evaluate in numpy. The algorithm-level
  experiments (filter ratio, perplexity trade-offs) run on these.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters for a decoder-only transformer.

    Attributes mirror the Llama-3 family: ``n_q_heads`` query heads share
    ``n_kv_heads`` key/value heads (grouped-query attention), every head has
    dimension ``head_dim``, and the model dimension is
    ``n_q_heads * head_dim``.
    """

    name: str
    vocab_size: int
    n_layers: int
    n_q_heads: int
    n_kv_heads: int
    head_dim: int
    d_ff: int
    rope_theta: float = 10000.0
    norm_eps: float = 1e-5
    dtype_bytes: int = 2  # BF16 storage, as in the paper's Table 1.
    #: Numpy dtype used by the *executed* KV cache (:mod:`repro.llm.kv_cache`).
    #: float32 halves cache memory traffic versus the float64 default numpy
    #: arithmetic would give; ``dtype_bytes`` above stays the *analytical*
    #: model's storage width (BF16) and is unaffected.
    kv_dtype: str = "float32"
    tie_embeddings: bool = True
    #: Add bias terms to the Q/K projections.  The simulation-scale models
    #: enable this to induce the *clustered key distribution* the paper
    #: observes in Llama-3 (Section 5.4) — a pre-RoPE key bias survives in
    #: the low-frequency RoPE dimensions, skewing sign bits exactly the way
    #: ITQ is designed to fix.  Tiny isotropic models trained from Gaussian
    #: init stay sign-balanced otherwise, which would make the ITQ
    #: experiments vacuous.
    qk_bias: bool = False

    def __post_init__(self) -> None:
        if self.n_q_heads % self.n_kv_heads != 0:
            raise ValueError(
                f"n_q_heads ({self.n_q_heads}) must be a multiple of "
                f"n_kv_heads ({self.n_kv_heads})"
            )
        if self.head_dim % 2 != 0:
            raise ValueError("head_dim must be even for RoPE")
        if np.dtype(self.kv_dtype).kind != "f":
            raise ValueError("kv_dtype must be a floating-point dtype")

    @property
    def d_model(self) -> int:
        """Model (residual stream) dimension."""
        return self.n_q_heads * self.head_dim

    @property
    def gqa_group_size(self) -> int:
        """Number of query heads sharing each KV head."""
        return self.n_q_heads // self.n_kv_heads

    @property
    def kv_dim(self) -> int:
        """Total key (or value) dimension per token, across KV heads."""
        return self.n_kv_heads * self.head_dim

    def kv_bytes_per_token(self) -> int:
        """Bytes of KV cache appended per token (keys + values, all layers)."""
        return 2 * self.kv_dim * self.dtype_bytes * self.n_layers

    def n_params(self) -> int:
        """Approximate parameter count (weights only, no biases)."""
        d = self.d_model
        per_layer = (
            d * self.n_q_heads * self.head_dim  # Wq
            + 2 * d * self.kv_dim  # Wk, Wv
            + self.n_q_heads * self.head_dim * d  # Wo
            + 3 * d * self.d_ff  # W1 (gate), W3 (up), W2 (down)
            + 2 * d  # norms
        )
        embed = self.vocab_size * d
        head = 0 if self.tie_embeddings else self.vocab_size * d
        return embed + head + self.n_layers * per_layer + d  # final norm


# --- Paper-scale presets (Table 1) -----------------------------------------

LLAMA3_1B = ModelConfig(
    name="llama-3-1b",
    vocab_size=128_256,
    n_layers=16,
    n_q_heads=32,
    n_kv_heads=8,
    head_dim=64,
    d_ff=8192,
    rope_theta=500000.0,
)

LLAMA3_8B = ModelConfig(
    name="llama-3-8b",
    vocab_size=128_256,
    n_layers=32,
    n_q_heads=32,
    n_kv_heads=8,
    head_dim=128,
    d_ff=14336,
    rope_theta=500000.0,
)

# --- Simulation-scale presets ----------------------------------------------
# Architecturally faithful miniatures: GQA with a 4:1 query:KV head ratio
# (matching Llama-3's 32:8), RoPE, SwiGLU.  SMALL stands in for Llama-3-1B
# and BASE for Llama-3-8B in the algorithm experiments; BASE has double the
# head dimension, mirroring the 64 -> 128 step between the real models.

LLAMA_SIM_SMALL = ModelConfig(
    name="llama-sim-small",
    vocab_size=512,
    n_layers=3,
    n_q_heads=8,
    n_kv_heads=2,
    head_dim=16,
    d_ff=256,
    qk_bias=True,
)

LLAMA_SIM_BASE = ModelConfig(
    name="llama-sim-base",
    vocab_size=512,
    n_layers=4,
    n_q_heads=8,
    n_kv_heads=2,
    head_dim=32,
    d_ff=512,
    qk_bias=True,
)

PAPER_MODELS = {m.name: m for m in (LLAMA3_1B, LLAMA3_8B)}
SIM_MODELS = {m.name: m for m in (LLAMA_SIM_SMALL, LLAMA_SIM_BASE)}

#: Which miniature stands in for which paper model in algorithm experiments.
SIM_FOR_PAPER = {
    "llama-3-1b": LLAMA_SIM_SMALL,
    "llama-3-8b": LLAMA_SIM_BASE,
}
