"""Per-layer, per-KV-head key/value cache.

The cache is the object LongSight splits in two: the most recent ``W``
entries stay "on the GPU" (dense window) while the remainder is offloaded to
DReX.  :meth:`KVCache.window_view` and :meth:`KVCache.offloaded_view` expose
exactly that split.
"""

from __future__ import annotations

import numpy as np

from repro.llm.config import ModelConfig


class LayerKV:
    """Growable K/V store for one decoder layer.

    Keys and values are stored as ``(n_kv_heads, n_tokens, head_dim)``
    arrays.  Appending amortizes reallocation by doubling capacity.
    """

    def __init__(self, n_kv_heads: int, head_dim: int,
                 initial_capacity: int = 64) -> None:
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self._capacity = max(1, initial_capacity)
        self._len = 0
        self._k = np.zeros((n_kv_heads, self._capacity, head_dim), dtype=np.float64)
        self._v = np.zeros((n_kv_heads, self._capacity, head_dim), dtype=np.float64)

    def __len__(self) -> int:
        return self._len

    def _grow(self, needed: int) -> None:
        new_cap = self._capacity
        while new_cap < needed:
            new_cap *= 2
        k = np.zeros((self.n_kv_heads, new_cap, self.head_dim), dtype=np.float64)
        v = np.zeros_like(k)
        k[:, : self._len] = self._k[:, : self._len]
        v[:, : self._len] = self._v[:, : self._len]
        self._k, self._v, self._capacity = k, v, new_cap

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append keys/values for one or more tokens.

        ``k`` and ``v`` have shape ``(n_kv_heads, n_new, head_dim)``.
        """
        if k.shape != v.shape:
            raise ValueError("key and value shapes must match")
        if k.shape[0] != self.n_kv_heads or k.shape[2] != self.head_dim:
            raise ValueError(
                f"expected (n_kv_heads={self.n_kv_heads}, n, "
                f"head_dim={self.head_dim}), got {k.shape}"
            )
        n_new = k.shape[1]
        if self._len + n_new > self._capacity:
            self._grow(self._len + n_new)
        self._k[:, self._len : self._len + n_new] = k
        self._v[:, self._len : self._len + n_new] = v
        self._len += n_new

    @property
    def keys(self) -> np.ndarray:
        """``(n_kv_heads, n_tokens, head_dim)`` view of all keys."""
        return self._k[:, : self._len]

    @property
    def values(self) -> np.ndarray:
        """``(n_kv_heads, n_tokens, head_dim)`` view of all values."""
        return self._v[:, : self._len]


class KVCache:
    """KV cache spanning all decoder layers for one user/sequence."""

    def __init__(self, config: ModelConfig) -> None:
        self.config = config
        self.layers = [
            LayerKV(config.n_kv_heads, config.head_dim)
            for _ in range(config.n_layers)
        ]

    def __len__(self) -> int:
        """Number of cached tokens (identical across layers)."""
        return len(self.layers[0])

    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        self.layers[layer].append(k, v)

    def window_view(self, layer: int, window: int,
                    n_sink: int = 0) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(keys, values, positions) of the dense region: sinks + recent window.

        Mirrors what LongSight keeps in GPU HBM: ``n_sink`` attention-sink
        tokens from the start of the context plus the ``window`` most recent
        tokens.  Regions are clipped, never overlapping: if the context is
        shorter than ``n_sink + window`` everything is dense.
        """
        n = len(self.layers[layer])
        kv = self.layers[layer]
        if n <= n_sink + window:
            pos = np.arange(n)
            return kv.keys, kv.values, pos
        sink_pos = np.arange(n_sink)
        recent_pos = np.arange(n - window, n)
        pos = np.concatenate([sink_pos, recent_pos])
        k = kv.keys[:, pos]
        v = kv.values[:, pos]
        return k, v, pos

    def offloaded_view(self, layer: int, window: int,
                       n_sink: int = 0) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(keys, values, positions) of the sparse region offloaded to DReX.

        Complement of :meth:`window_view`: tokens that are neither sinks nor
        inside the recent window.  Empty if the context fits densely.
        """
        n = len(self.layers[layer])
        kv = self.layers[layer]
        if n <= n_sink + window:
            empty_k = kv.keys[:, :0]
            return empty_k, empty_k.copy(), np.arange(0)
        pos = np.arange(n_sink, n - window)
        return kv.keys[:, pos], kv.values[:, pos], pos
