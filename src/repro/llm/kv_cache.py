"""Per-layer, per-KV-head key/value cache with an incremental sign cache.

The cache is the object LongSight splits in two: the most recent ``W``
entries stay "on the GPU" (dense window) while the remainder is offloaded to
DReX.  :meth:`KVCache.window_view` and :meth:`KVCache.offloaded_view` expose
exactly that split.

The *sign cache* is the software analogue of DReX's Key Sign Objects
(Section 5.1): one bit per key dimension, extracted (after the optional ITQ
rotation) exactly once when the key is appended and bit-packed into uint8
words.  Query-time filtering then reduces to XOR + popcount against this
store — no per-query re-quantization of the key history.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.llm.config import ModelConfig

if TYPE_CHECKING:
    from repro.core.itq import ItqRotations


class BlockSummary:
    """Incremental antidiagonal block summaries over logical key positions.

    The XAttention-style pre-filter (:mod:`repro.core.antidiag`) scores a
    key block for a query by dotting the query with the sum of every
    ``stride``-th key of the block.  This store maintains those strided
    residue sums **incrementally**: key block ``b`` covers logical tokens
    ``[b*block, (b+1)*block)`` and ``sums[h, b, s]`` is the sum of its
    keys whose in-block offset is congruent to ``s`` (mod ``stride``).
    Appending a token folds it into exactly one ``(block, residue)`` cell,
    so the amortized cost per token is one vector add — the same
    "maintained once at append time, consumed by every query" discipline
    as the packed sign store.
    """

    def __init__(self, n_kv_heads: int, head_dim: int, block: int,
                 stride: int, dtype: np.dtype = np.float32) -> None:
        if block < 1 or stride < 1 or block % stride != 0:
            raise ValueError("block must be a positive multiple of stride")
        self.block = block
        self.stride = stride
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.dtype = np.dtype(dtype)
        # Flat (n_kv_heads, n_blocks * stride, head_dim) accumulator so
        # scattered adds index one axis; viewed 4-D by `summaries`.
        self._sums = np.zeros((n_kv_heads, 0, head_dim), dtype=self.dtype)
        self._len = 0

    def __len__(self) -> int:
        """Number of tokens folded into the summaries so far."""
        return self._len

    def _reserve_tokens(self, n_tokens: int) -> None:
        need_cells = -(-n_tokens // self.block) * self.stride
        if need_cells <= self._sums.shape[1]:
            return
        cells = max(need_cells, 2 * self._sums.shape[1])
        sums = np.zeros((self.n_kv_heads, cells, self.head_dim),
                        dtype=self.dtype)
        sums[:, : self._sums.shape[1]] = self._sums
        self._sums = sums

    def update(self, k: np.ndarray, start: int) -> None:
        """Fold keys for logical positions ``[start, start + n_new)`` in.

        ``start`` must equal the number of tokens already summarized —
        every position is folded exactly once, in order.
        """
        if start != self._len:
            raise ValueError(
                f"summaries cover [0, {self._len}); got start={start}")
        n_new = k.shape[1]
        if n_new == 0:
            return
        self._reserve_tokens(start + n_new)
        idx = np.arange(start, start + n_new)
        cell = (idx // self.block) * self.stride \
            + (idx % self.block) % self.stride
        for h in range(self.n_kv_heads):
            np.add.at(self._sums[h], cell, k[h])
        self._len += n_new

    @property
    def summaries(self) -> np.ndarray:
        """``(n_kv_heads, n_blocks, stride, head_dim)`` residue sums.

        Covers ``ceil(len / block)`` blocks; the trailing block may be
        partial (it sums only the tokens appended so far).
        """
        n_blocks = -(-self._len // self.block)
        return self._sums[:, : n_blocks * self.stride].reshape(
            self.n_kv_heads, n_blocks, self.stride, self.head_dim)


class LayerKV:
    """Growable K/V store for one decoder layer.

    Keys and values are stored as ``(n_kv_heads, n_tokens, head_dim)``
    arrays.  Appending amortizes reallocation by doubling capacity;
    :meth:`reserve` pre-allocates for a known prompt length so prefill never
    copies.  When the sign cache is enabled, appending also packs the new
    keys' (rotated) sign bits — incrementally, exactly once per token.
    """

    def __init__(self, n_kv_heads: int, head_dim: int,
                 initial_capacity: int = 64,
                 dtype: np.dtype = np.float32) -> None:
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.dtype = np.dtype(dtype)
        self._capacity = max(1, initial_capacity)
        self._len = 0
        self._k = np.zeros((n_kv_heads, self._capacity, head_dim), dtype=self.dtype)
        self._v = np.zeros((n_kv_heads, self._capacity, head_dim), dtype=self.dtype)
        #: number of capacity-growing reallocations performed so far
        self.n_grows = 0
        # sign cache state (disabled until enable_sign_cache is called)
        self._sign_rot: Optional[np.ndarray] = None
        self._signs: Optional[np.ndarray] = None
        self._sign_nbytes = (head_dim + 7) // 8
        #: cumulative count of tokens whose signs have been packed; an
        #: incremental cache packs each token exactly once, so after any
        #: sequence of appends this equals the number of tokens seen since
        #: the cache was enabled (plus the backlog packed at enable time).
        self.signs_packed_total = 0
        # antidiagonal block-summary state (see enable_block_summary)
        self._block_summary: Optional[BlockSummary] = None
        self._freed = False

    def __len__(self) -> int:
        return self._len

    @property
    def freed(self) -> bool:
        """True once :meth:`free` released this layer's storage."""
        return self._freed

    def free(self) -> None:
        """Release the K/V (and sign) storage of a finished session.

        Serving engines hold one cache per live session; without a release
        path a completed session keeps its whole arena alive until the
        Python object dies.  After ``free()`` the layer is empty and holds
        only minimal placeholders; any further append raises.  Idempotent.
        """
        if self._freed:
            return
        self._len = 0
        self._capacity = 1
        self._k = np.zeros((self.n_kv_heads, 1, self.head_dim),
                           dtype=self.dtype)
        self._v = np.zeros_like(self._k)
        if self._signs is not None:
            self._signs = np.zeros((self.n_kv_heads, 1, self._sign_nbytes),
                                   dtype=np.uint8)
        self._block_summary = None
        self._freed = True

    def _check_not_freed(self) -> None:
        if self._freed:
            raise RuntimeError("LayerKV was freed; sessions must not append "
                               "after release")

    def _grow(self, needed: int) -> None:
        new_cap = self._capacity
        while new_cap < needed:
            new_cap *= 2
        k = np.zeros((self.n_kv_heads, new_cap, self.head_dim), dtype=self.dtype)
        v = np.zeros_like(k)
        k[:, : self._len] = self._k[:, : self._len]
        v[:, : self._len] = self._v[:, : self._len]
        self._k, self._v, self._capacity = k, v, new_cap
        if self._signs is not None:
            signs = np.zeros((self.n_kv_heads, new_cap, self._sign_nbytes),
                             dtype=np.uint8)
            signs[:, : self._len] = self._signs[:, : self._len]
            self._signs = signs
        self.n_grows += 1

    def reserve(self, capacity: int) -> None:
        """Pre-allocate for ``capacity`` tokens (one realloc at most)."""
        self._check_not_freed()
        if capacity > self._capacity:
            self._grow(capacity)

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append keys/values for one or more tokens.

        ``k`` and ``v`` have shape ``(n_kv_heads, n_new, head_dim)``.
        """
        self._check_not_freed()
        if k.shape != v.shape:
            raise ValueError("key and value shapes must match")
        if k.shape[0] != self.n_kv_heads or k.shape[2] != self.head_dim:
            raise ValueError(
                f"expected (n_kv_heads={self.n_kv_heads}, n, "
                f"head_dim={self.head_dim}), got {k.shape}"
            )
        n_new = k.shape[1]
        if self._len + n_new > self._capacity:
            self._grow(self._len + n_new)
        self._k[:, self._len : self._len + n_new] = k
        self._v[:, self._len : self._len + n_new] = v
        if self._signs is not None and n_new > 0:
            self._pack_range(self._len, self._len + n_new)
        if self._block_summary is not None and n_new > 0:
            self._block_summary.update(k, self._len)
        self._len += n_new

    # -- sign cache -----------------------------------------------------------

    @property
    def sign_cache_enabled(self) -> bool:
        return self._signs is not None

    def enable_sign_cache(self, rotations: Optional[np.ndarray] = None) -> None:
        """Start maintaining packed (rotated) key signs on every append.

        Args:
            rotations: optional ``(n_kv_heads, head_dim, head_dim)`` ITQ
                rotation stack applied before sign extraction (``None`` for
                raw signs).  Keys already in the cache are packed once as a
                backlog; subsequent appends pack only the new tokens.
        """
        if rotations is not None and rotations.shape != (
                self.n_kv_heads, self.head_dim, self.head_dim):
            raise ValueError("rotation stack shape mismatch")
        self._sign_rot = rotations
        self._signs = np.zeros(
            (self.n_kv_heads, self._capacity, self._sign_nbytes), dtype=np.uint8)
        if self._len:
            self._pack_range(0, self._len)

    def _pack_range(self, start: int, stop: int) -> None:
        """Pack signs for stored keys in ``[start, stop)`` (exactly once)."""
        # Deferred import: repro.core.itq imports this module transitively.
        from repro.core.scf import pack_signs

        keys = self._k[:, start:stop]
        if self._sign_rot is not None:
            keys = np.matmul(keys, self._sign_rot)
        self._signs[:, start:stop] = pack_signs(keys)
        self.signs_packed_total += stop - start

    @property
    def packed_signs(self) -> np.ndarray:
        """``(n_kv_heads, n_tokens, n_sign_bytes)`` packed rotated key signs.

        Raises if the sign cache has not been enabled.
        """
        if self._signs is None:
            raise RuntimeError("sign cache not enabled; call enable_sign_cache")
        return self._signs[:, : self._len]

    # -- antidiagonal block summaries -----------------------------------------

    @property
    def block_summary_enabled(self) -> bool:
        return self._block_summary is not None

    def enable_block_summary(self, block: int, stride: int) -> None:
        """Start maintaining antidiagonal residue sums on every append.

        Keys already in the cache are folded in once as a backlog;
        subsequent appends fold only the new tokens (the
        :class:`BlockSummary` counterpart of :meth:`enable_sign_cache`).
        Re-enabling with the same geometry is a no-op; changing the
        geometry rebuilds the summaries from the stored keys.
        """
        if (self._block_summary is not None
                and self._block_summary.block == block
                and self._block_summary.stride == stride):
            return
        self._block_summary = BlockSummary(
            self.n_kv_heads, self.head_dim, block, stride, dtype=self.dtype)
        if self._len:
            self._block_summary.update(self._k[:, : self._len], 0)

    @property
    def block_summaries(self) -> np.ndarray:
        """``(n_kv_heads, n_blocks, stride, head_dim)`` residue sums.

        Raises if :meth:`enable_block_summary` has not been called.
        """
        if self._block_summary is None:
            raise RuntimeError(
                "block summaries not enabled; call enable_block_summary")
        return self._block_summary.summaries

    # -- views ----------------------------------------------------------------

    @property
    def keys(self) -> np.ndarray:
        """``(n_kv_heads, n_tokens, head_dim)`` view of all keys."""
        return self._k[:, : self._len]

    @property
    def values(self) -> np.ndarray:
        """``(n_kv_heads, n_tokens, head_dim)`` view of all values."""
        return self._v[:, : self._len]


class KVCache:
    """KV cache spanning all decoder layers for one user/sequence.

    Storage dtype comes from ``config.kv_dtype`` (default float32 — halves
    memory traffic versus the float64 the simulator used historically).
    """

    def __init__(self, config: ModelConfig) -> None:
        self.config = config
        dtype = np.dtype(config.kv_dtype)
        self.layers = [
            LayerKV(config.n_kv_heads, config.head_dim, dtype=dtype)
            for _ in range(config.n_layers)
        ]
        #: the ItqRotations bank the sign cache was enabled with (None when
        #: disabled or when raw signs are cached); identity lets backends
        #: check compatibility before consuming packed signs.
        self.sign_rotations: Optional["ItqRotations"] = None
        self._sign_cache_enabled = False

    def __len__(self) -> int:
        """Number of cached tokens (identical across layers)."""
        return len(self.layers[0])

    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        self.layers[layer].append(k, v)

    def reserve(self, capacity: int) -> None:
        """Pre-allocate every layer for ``capacity`` tokens."""
        for layer in self.layers:
            layer.reserve(capacity)

    @property
    def freed(self) -> bool:
        """True once :meth:`free` released every layer's storage."""
        return all(layer.freed for layer in self.layers)

    def free(self) -> None:
        """Release all per-layer storage of a finished session (idempotent).

        The session-release half of the cache lifecycle: serving engines
        call this when a request completes so the memory (or, for pooled
        subclasses, the arena blocks) returns immediately instead of
        waiting for garbage collection.  A freed cache must not be
        appended to again.
        """
        for layer in self.layers:
            layer.free()

    @property
    def sign_cache_enabled(self) -> bool:
        return self._sign_cache_enabled

    def enable_sign_cache(
            self, rotations: Optional["ItqRotations"] = None) -> None:
        """Enable the per-layer sign cache (idempotent for the same bank).

        Args:
            rotations: optional :class:`~repro.core.itq.ItqRotations` whose
                per-(layer, KV head) matrices are applied before packing.
        """
        if self._sign_cache_enabled and self.sign_rotations is rotations:
            return
        for i, layer in enumerate(self.layers):
            layer.enable_sign_cache(
                rotations.matrices[i] if rotations is not None else None)
        self.sign_rotations = rotations
        self._sign_cache_enabled = True

    @property
    def block_summary_enabled(self) -> bool:
        return all(layer.block_summary_enabled for layer in self.layers)

    def enable_block_summary(self, block: int, stride: int) -> None:
        """Enable antidiagonal block summaries on every layer (idempotent)."""
        for layer in self.layers:
            layer.enable_block_summary(block, stride)

    def window_view(self, layer: int, window: int,
                    n_sink: int = 0) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(keys, values, positions) of the dense region: sinks + recent window.

        Mirrors what LongSight keeps in GPU HBM: ``n_sink`` attention-sink
        tokens from the start of the context plus the ``window`` most recent
        tokens.  Regions are clipped, never overlapping: if the context is
        shorter than ``n_sink + window`` everything is dense.
        """
        n = len(self.layers[layer])
        kv = self.layers[layer]
        if n <= n_sink + window:
            pos = np.arange(n)
            return kv.keys, kv.values, pos
        sink_pos = np.arange(n_sink)
        recent_pos = np.arange(n - window, n)
        pos = np.concatenate([sink_pos, recent_pos])
        k = kv.keys[:, pos]
        v = kv.values[:, pos]
        return k, v, pos

    def offloaded_view(self, layer: int, window: int,
                       n_sink: int = 0) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(keys, values, positions) of the sparse region offloaded to DReX.

        Complement of :meth:`window_view`: tokens that are neither sinks nor
        inside the recent window.  Empty if the context fits densely.
        """
        n = len(self.layers[layer])
        kv = self.layers[layer]
        if n <= n_sink + window:
            empty_k = kv.keys[:, :0]
            return empty_k, empty_k.copy(), np.arange(0)
        pos = np.arange(n_sink, n - window)
        return kv.keys[:, pos], kv.values[:, pos], pos
