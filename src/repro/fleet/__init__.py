"""repro.fleet: sharded multi-worker serving over prefix-cached pools.

One :class:`~repro.serve.engine.ServeEngine` is the ceiling a single
paged KV pool imposes; the fleet layer shards serving across N workers —
each an engine with its own pool, scheduler, and metrics registry — and
routes requests with session affinity plus load/locality-aware placement
(prefer the worker already holding the request's longest cached prompt
prefix).  When a worker's pool exhausts, its preemption victims are
*migrated* to a sibling worker instead of being re-queued locally or
shed: migration reuses the recompute-resume discipline (re-prefill
``prompt + outputs[:-1]``, replay the last token), so relocated sessions
stay bit-identical to an uninterrupted solo run.

Layout:

- :mod:`repro.fleet.router` — :class:`FleetWorker`, :class:`FleetRouter`
  (placement, migration, the lockstep-laggard stepping loop, gray-failure
  failover);
- :mod:`repro.fleet.resilience` — :class:`HealthMonitor` /
  :class:`HealthPolicy` / :class:`WorkerState` (phi-accrual-style
  suspicion over step latencies) and :class:`GrayRun` (deterministic
  gray-failure injection);
- :mod:`repro.fleet.report` — :class:`FleetReport` (per-worker
  :class:`~repro.serve.events.ServeReport` reduction plus the merged
  :class:`~repro.obs.MetricsRegistry`).
"""

from repro.fleet.report import FleetReport
from repro.fleet.resilience import (GrayRun, HealthMonitor, HealthPolicy,
                                    WorkerHealth, WorkerState)
from repro.fleet.router import FleetRouter, FleetWorker, make_worker

__all__ = [
    "FleetReport",
    "FleetRouter",
    "FleetWorker",
    "GrayRun",
    "HealthMonitor",
    "HealthPolicy",
    "WorkerHealth",
    "WorkerState",
    "make_worker",
]
