"""Fleet routing: placement, migration, and the lockstep stepping loop.

The router owns N workers and drives their :class:`~repro.serve.engine.
EngineRun` loops on one coherent timeline: each outer iteration steps the
**laggard** (the busy worker with the smallest clock), so worker clocks
advance together and cross-worker decisions (dispatch, migration) are
made against comparable times — the multi-queue analogue of the single
engine's event loop.

Placement, in priority order:

1. **Session affinity** — a request carrying a ``session`` key goes to
   the worker already serving that session (its KV blocks, sign store,
   and prefix index live there).
2. **Prefix locality** — otherwise prefer the worker whose prefix index
   holds the longest cached prefix of the request's prompt (attachable
   blocks beat free blocks: they save prefill work *and* pool space).
3. **Load** — ties break to the worker with the most free blocks net of
   blocks already promised to its queued work.

Migration is cross-worker preemption: the source engine detaches the
victim exactly as local preemption does (blocks freed, state QUEUED,
generated tokens kept), and the router re-injects it into the target
worker, where the standard resume path re-prefills ``prompt +
outputs[:-1]`` and replays the last token — bit-identical to an
uninterrupted run.  A per-request migration cap prevents ping-pong; a
request over its cap is re-queued (or shed) locally by the source.
"""

from __future__ import annotations

import pathlib
from typing import Callable, Dict, List, Optional, Sequence

from repro.durable import DurableRun, RecoveryStats, recover
from repro.errors import WorkerKilledError
from repro.llm.model import Transformer
from repro.obs import MetricsRegistry, Obs, Tracer, resolve_obs
from repro.serve.engine import ServeEngine, TimingModel
from repro.serve.paged_kv import PagedKVPool
from repro.serve.scheduler import ServeRequest, SloPolicy
from repro.system.faults import CrashPlan

from repro.fleet.report import FleetReport


class FleetWorker:
    """One serving shard: an engine plus its identity in the fleet."""

    def __init__(self, worker_id: int, engine: ServeEngine,
                 engine_factory: Optional[
                     Callable[[], ServeEngine]] = None,
                 durable_dir: Optional[pathlib.Path] = None) -> None:
        self.worker_id = worker_id
        self.engine = engine
        self.run = None  # EngineRun/DurableRun, router-owned during a run
        #: rebuilds a fresh engine after a crash (restore loads into it).
        self.engine_factory = engine_factory
        #: where this worker's snapshots + WAL live; None = not durable.
        self.durable_dir = None if durable_dir is None \
            else pathlib.Path(durable_dir)

    @property
    def pool(self) -> PagedKVPool:
        return self.engine.pool

    @property
    def obs(self) -> Obs:
        return self.engine.obs


def make_worker(worker_id: int, model: Transformer, backend_factory,
                n_blocks: int, block_tokens: int = 16,
                policy: Optional[SloPolicy] = None,
                timing_factory: Optional[
                    Callable[[Obs], TimingModel]] = None,
                prefill_block_size: int = 256,
                max_steps: int = 1_000_000,
                durable_root: Optional[pathlib.Path] = None) -> FleetWorker:
    """Build a worker with its own prefix-cached pool and metrics registry.

    Every worker gets a private enabled :class:`MetricsRegistry` (tracing
    off) so per-worker counters merge associatively into the fleet report;
    ``timing_factory`` receives that bundle so analytic timing attribution
    lands in the owning worker's registry.

    With ``durable_root`` set, the worker serves durably out of
    ``durable_root/worker<id>`` (snapshots + WAL) and carries an engine
    factory so the router can rebuild it from disk after a crash — the
    factory builds a *fresh* pool and registry each call, exactly like a
    restarted process.
    """
    def build() -> ServeEngine:
        obs = Obs(MetricsRegistry(enabled=True), Tracer(enabled=False))
        pool = PagedKVPool(model.config, n_blocks, block_tokens,
                           prefix_caching=True, obs=obs)
        timing = timing_factory(obs) if timing_factory is not None else None
        return ServeEngine(model, pool, backend_factory, policy=policy,
                           timing=timing, name=f"worker{worker_id}",
                           prefill_block_size=prefill_block_size,
                           max_steps=max_steps, obs=obs)

    durable_dir = None if durable_root is None \
        else pathlib.Path(durable_root) / f"worker{worker_id}"
    return FleetWorker(worker_id, build(), engine_factory=build,
                       durable_dir=durable_dir)


class FleetRouter:
    """Route requests over N workers; shed/migrate on pool exhaustion.

    Args:
        workers: the serving shards (distinct pools; same model family
            and backend family, or prefix sharing would not be valid).
        max_migrations: per-request cross-worker relocation budget; a
            request over budget falls back to the source worker's local
            preemption/shed handling.
        obs: router-level bundle for fleet counters (``fleet.dispatched``,
            ``fleet.migrations``); worker metrics live in each worker's
            own registry.
        max_steps: hard bound on total worker steps across the run.
    """

    def __init__(self, workers: Sequence[FleetWorker],
                 max_migrations: int = 3,
                 obs: Optional[Obs] = None,
                 max_steps: int = 4_000_000,
                 snapshot_every: int = 8,
                 crash_plans: Optional[Dict[int, CrashPlan]] = None) -> None:
        if not workers:
            raise ValueError("a fleet needs at least one worker")
        ids = [w.worker_id for w in workers]
        if len(ids) != len(set(ids)):
            raise ValueError("worker ids must be unique")
        pools = {id(w.pool) for w in workers}
        if len(pools) != len(workers):
            raise ValueError("workers must not share a KV pool")
        self.workers = list(workers)
        self.max_migrations = max_migrations
        self.obs = resolve_obs(obs)
        self.max_steps = max_steps
        self.snapshot_every = snapshot_every
        self.crash_plans = dict(crash_plans or {})
        self._affinity: Dict[str, FleetWorker] = {}
        self.migrations = 0
        self.worker_restores = 0
        self.recoveries: List[RecoveryStats] = []

    # -- the fleet loop -------------------------------------------------------

    def run(self, requests: Sequence[ServeRequest]) -> FleetReport:
        """Serve ``requests`` across the fleet; returns the fleet report."""
        for worker in self.workers:
            if worker.durable_dir is not None:
                worker.run = DurableRun(
                    worker.engine, [], worker.durable_dir,
                    snapshot_every=self.snapshot_every,
                    crash=self.crash_plans.get(worker.worker_id))
            else:
                worker.run = worker.engine.start([])
            self._install_handler(worker)
        pending = sorted(requests,
                         key=lambda r: (r.arrival_s, r.request_id))
        next_dispatch = 0
        try:
            for _ in range(self.max_steps):
                busy = [w for w in self.workers if not w.run.idle]
                if not busy and next_dispatch >= len(pending):
                    break
                # Dispatch every arrival at or before the laggard's clock:
                # placement decisions are made in arrival order, against
                # pool/prefix state no worker has stepped past yet.
                frontier = min((w.run.clock for w in busy),
                               default=pending[next_dispatch].arrival_s
                               if next_dispatch < len(pending) else 0.0)
                while next_dispatch < len(pending) \
                        and pending[next_dispatch].arrival_s <= frontier:
                    self._dispatch(pending[next_dispatch])
                    next_dispatch += 1
                busy = [w for w in self.workers if not w.run.idle]
                if not busy:
                    continue
                laggard = min(busy,
                              key=lambda w: (w.run.clock, w.worker_id))
                try:
                    laggard.run.step()
                except WorkerKilledError:
                    self._recover_worker(laggard)
            else:
                raise RuntimeError(
                    f"fleet did not converge within {self.max_steps} steps")
        finally:
            for worker in self.workers:
                worker.engine.migrate_handler = None
        return self._report()

    # -- placement ------------------------------------------------------------

    def _dispatch(self, request: ServeRequest) -> None:
        worker = self._place(request)
        if request.session is not None:
            self._affinity[request.session] = worker
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter("fleet.dispatched").inc()
            metrics.counter(
                f"fleet.worker{worker.worker_id}.dispatched").inc()
        worker.run.inject(request)

    def _place(self, request: ServeRequest) -> FleetWorker:
        """Pick the worker to serve ``request`` (see module docstring)."""
        if request.session is not None \
                and request.session in self._affinity:
            return self._affinity[request.session]
        fits = [w for w in self.workers
                if self._session_blocks(w, request) <= w.pool.n_blocks]
        if not fits:
            # Nobody can ever hold it; let worker 0's admission shed it
            # through the standard impossible-fit path.
            return self.workers[0]
        prompt = request.prompt
        return max(fits, key=lambda w: (
            w.pool.longest_prefix_tokens(prompt),
            self._free_score(w),
            -w.worker_id))

    @staticmethod
    def _session_blocks(worker: FleetWorker,
                        request: ServeRequest) -> int:
        """Worst-case block demand of the whole session on this worker."""
        return worker.pool.blocks_for_tokens(
            len(request.prompt) + request.max_new_tokens)

    def _free_score(self, worker: FleetWorker) -> int:
        """Free blocks net of prompt blocks promised to queued work."""
        pool = worker.pool
        queued = list(worker.run.scheduler.queued) + worker.run.pending
        promised = sum(pool.blocks_for_tokens(len(r.resume_tokens))
                       for r in queued)
        return pool.n_free - promised

    # -- crash recovery -------------------------------------------------------

    def _install_handler(self, worker: FleetWorker) -> None:
        """Install the migrate hook, durable-wrapped when applicable so
        departures already delivered pre-crash are not re-migrated."""
        handler = self._handler_for(worker)
        wrap = getattr(worker.run, "wrap_migrate_handler", None)
        worker.engine.migrate_handler = handler if wrap is None \
            else wrap(handler)

    def _recover_worker(self, worker: FleetWorker) -> None:
        """Restore a killed durable worker in place: fresh engine, state
        loaded from its durable directory, sessions kept — the fleet
        alternative to migrating everything off a dead shard.  The
        affinity map stays valid because the :class:`FleetWorker` object
        (and its sessions' home) does not change."""
        if worker.engine_factory is None or worker.durable_dir is None:
            raise  # not durable: the kill is fatal; re-raise it
        worker.engine.migrate_handler = None
        worker.engine = worker.engine_factory()
        worker.run, stats = recover(worker.durable_dir, worker.engine,
                                    snapshot_every=self.snapshot_every)
        self._install_handler(worker)
        self.worker_restores += 1
        self.recoveries.append(stats)
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter("fleet.worker_restores").inc()
            metrics.counter(
                f"fleet.worker{worker.worker_id}.restores").inc()

    # -- migration ------------------------------------------------------------

    def _handler_for(self, source: FleetWorker):
        """The migrate hook installed on ``source``'s engine.

        Receives sessions the source would otherwise preempt-requeue or
        capacity-shed, already detached (blocks freed, state QUEUED).
        Returns ``True`` after re-injecting the session into a target
        worker; ``False`` keeps it on the source (local requeue or shed).
        """
        def handler(request: ServeRequest) -> bool:
            if request.migrations >= self.max_migrations:
                return False
            target = self._migration_target(source, request)
            if target is None:
                return False
            request.migrations += 1
            request.events.migrations += 1
            self.migrations += 1
            metrics = self.obs.metrics
            if metrics.enabled:
                metrics.counter("fleet.migrations").inc()
            source_metrics = source.obs.metrics
            if source_metrics.enabled:
                source_metrics.counter("serve.migrated_out").inc()
            target_metrics = target.obs.metrics
            if target_metrics.enabled:
                target_metrics.counter("serve.migrated_in").inc()
            # The relocated session cannot restart before the moment the
            # source released it; events keep the original arrival for
            # TTFT accounting.
            request.arrival_s = max(request.arrival_s, source.run.clock)
            if request.session is not None:
                self._affinity[request.session] = target
            source.run.note_departure(request)
            target.run.inject(request)
            return True

        return handler

    def _migration_target(self, source: FleetWorker,
                          request: ServeRequest) -> Optional[FleetWorker]:
        """A sibling that can admit the session *now*, or ``None``.

        Requiring immediate admission capacity (resume-prompt blocks free
        on the target) keeps migration from bouncing a session between
        two saturated workers.
        """
        candidates = []
        for worker in self.workers:
            if worker is source:
                continue
            pool = worker.pool
            if self._session_blocks(worker, request) > pool.n_blocks:
                continue
            resume_blocks = pool.blocks_for_tokens(
                len(request.resume_tokens))
            if resume_blocks > pool.n_free:
                continue
            candidates.append(worker)
        if not candidates:
            return None
        return max(candidates, key=lambda w: (
            w.pool.longest_prefix_tokens(request.prompt),
            self._free_score(w),
            -w.worker_id))

    # -- reduction ------------------------------------------------------------

    def _report(self) -> FleetReport:
        reports = [w.run.finish() for w in self.workers]
        # Per-worker registries are private, so the associative merge
        # reduces exactly the fleet's own instruments; router-level
        # counters (fleet.dispatched, fleet.migrations) stay in the
        # router's bundle, which may be the shared process default.
        merged = MetricsRegistry(enabled=True)
        for worker in self.workers:
            merged.merge(worker.obs.metrics)
        return FleetReport(
            workers=reports,
            metrics=merged,
            migrations=self.migrations,
            prefix_hits=sum(w.pool.prefix_hits for w in self.workers),
            prefix_misses=sum(w.pool.prefix_misses for w in self.workers),
            shared_blocks_peak=sum(w.pool.shared_blocks_peak
                                   for w in self.workers),
        )
