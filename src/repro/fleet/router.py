"""Fleet routing: placement, migration, and the lockstep stepping loop.

The router owns N workers and drives their :class:`~repro.serve.engine.
EngineRun` loops on one coherent timeline: each outer iteration steps the
**laggard** (the busy worker with the smallest clock), so worker clocks
advance together and cross-worker decisions (dispatch, migration) are
made against comparable times — the multi-queue analogue of the single
engine's event loop.

Placement, in priority order:

1. **Session affinity** — a request carrying a ``session`` key goes to
   the worker already serving that session (its KV blocks, sign store,
   and prefix index live there).
2. **Prefix locality** — otherwise prefer the worker whose prefix index
   holds the longest cached prefix of the request's prompt (attachable
   blocks beat free blocks: they save prefill work *and* pool space).
3. **Load** — ties break to the worker with the most free blocks net of
   blocks already promised to its queued work.

Migration is cross-worker preemption: the source engine detaches the
victim exactly as local preemption does (blocks freed, state QUEUED,
generated tokens kept), and the router re-injects it into the target
worker, where the standard resume path re-prefills ``prompt +
outputs[:-1]`` and replays the last token — bit-identical to an
uninterrupted run.  A per-request migration cap prevents ping-pong; a
request over its cap is re-queued (or shed) locally by the source.

Resilience (see :mod:`repro.fleet.resilience`): every guarded step feeds
a :class:`HealthMonitor` with the worker's observed latency (wall time
plus any simulated :class:`GrayRun` stall).  A SUSPECT worker is drained
— no new placements, stepped only as an occasional hedged probe so the
healthy laggard keeps the fleet moving — and self-heals when its
suspicion drops.  A FAILED worker is *failed over*: its newest durable
snapshot + WAL suffix are recovered into a fresh engine and every live
session is shipped to a healthy sibling (recompute migration from the
intact in-memory run when no verifiable snapshot exists).  With no live
sibling left the bounded-wait guard raises
:class:`~repro.errors.WorkerStalledError` instead of hanging the loop.
"""

from __future__ import annotations

import pathlib
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.durable import DurableRun, RecoveryStats, recover
from repro.errors import (SnapshotCorruptError, WorkerKilledError,
                          WorkerStalledError)
from repro.llm.model import Transformer
from repro.obs import MetricsRegistry, Obs, Tracer, resolve_obs
from repro.serve.engine import ServeEngine, TimingModel
from repro.serve.paged_kv import PagedKVPool
from repro.serve.scheduler import ServeRequest, SloPolicy
from repro.system.faults import CrashPlan, GrayFailurePlan

from repro.fleet.report import FleetReport
from repro.fleet.resilience import (GrayRun, HealthMonitor, HealthPolicy,
                                    WorkerState)


class FleetWorker:
    """One serving shard: an engine plus its identity in the fleet."""

    def __init__(self, worker_id: int, engine: ServeEngine,
                 engine_factory: Optional[
                     Callable[[], ServeEngine]] = None,
                 durable_dir: Optional[pathlib.Path] = None) -> None:
        self.worker_id = worker_id
        self.engine = engine
        self.run = None  # EngineRun/DurableRun, router-owned during a run
        #: rebuilds a fresh engine after a crash (restore loads into it).
        self.engine_factory = engine_factory
        #: where this worker's snapshots + WAL live; None = not durable.
        self.durable_dir = None if durable_dir is None \
            else pathlib.Path(durable_dir)

    @property
    def pool(self) -> PagedKVPool:
        return self.engine.pool

    @property
    def obs(self) -> Obs:
        return self.engine.obs


def make_worker(worker_id: int, model: Transformer, backend_factory,
                n_blocks: int, block_tokens: int = 16,
                policy: Optional[SloPolicy] = None,
                timing_factory: Optional[
                    Callable[[Obs], TimingModel]] = None,
                prefill_block_size: int = 256,
                max_steps: int = 1_000_000,
                durable_root: Optional[pathlib.Path] = None) -> FleetWorker:
    """Build a worker with its own prefix-cached pool and metrics registry.

    Every worker gets a private enabled :class:`MetricsRegistry` (tracing
    off) so per-worker counters merge associatively into the fleet report;
    ``timing_factory`` receives that bundle so analytic timing attribution
    lands in the owning worker's registry.

    With ``durable_root`` set, the worker serves durably out of
    ``durable_root/worker<id>`` (snapshots + WAL) and carries an engine
    factory so the router can rebuild it from disk after a crash — the
    factory builds a *fresh* pool and registry each call, exactly like a
    restarted process.
    """
    def build() -> ServeEngine:
        obs = Obs(MetricsRegistry(enabled=True), Tracer(enabled=False))
        pool = PagedKVPool(model.config, n_blocks, block_tokens,
                           prefix_caching=True, obs=obs)
        timing = timing_factory(obs) if timing_factory is not None else None
        return ServeEngine(model, pool, backend_factory, policy=policy,
                           timing=timing, name=f"worker{worker_id}",
                           prefill_block_size=prefill_block_size,
                           max_steps=max_steps, obs=obs)

    durable_dir = None if durable_root is None \
        else pathlib.Path(durable_root) / f"worker{worker_id}"
    return FleetWorker(worker_id, build(), engine_factory=build,
                       durable_dir=durable_dir)


class FleetRouter:
    """Route requests over N workers; shed/migrate on pool exhaustion.

    Args:
        workers: the serving shards (distinct pools; same model family
            and backend family, or prefix sharing would not be valid).
        max_migrations: per-request cross-worker relocation budget; a
            request over budget falls back to the source worker's local
            preemption/shed handling.
        obs: router-level bundle for fleet counters (``fleet.dispatched``,
            ``fleet.migrations``); worker metrics live in each worker's
            own registry.
        max_steps: hard bound on total worker steps across the run.
        gray_plans: per-worker :class:`GrayFailurePlan` schedules; the
            worker's run is wrapped in a :class:`GrayRun` proxy so its
            simulated stalls drive the real detection path.
        health: suspicion-model knobs (:class:`HealthPolicy` defaults
            when ``None`` — monitoring is always on; with wall steps in
            the milliseconds the deadline floor keeps it inert).
    """

    def __init__(self, workers: Sequence[FleetWorker],
                 max_migrations: int = 3,
                 obs: Optional[Obs] = None,
                 max_steps: int = 4_000_000,
                 snapshot_every: int = 8,
                 crash_plans: Optional[Dict[int, CrashPlan]] = None,
                 gray_plans: Optional[Dict[int, GrayFailurePlan]] = None,
                 health: Optional[HealthPolicy] = None) -> None:
        if not workers:
            raise ValueError("a fleet needs at least one worker")
        ids = [w.worker_id for w in workers]
        if len(ids) != len(set(ids)):
            raise ValueError("worker ids must be unique")
        pools = {id(w.pool) for w in workers}
        if len(pools) != len(workers):
            raise ValueError("workers must not share a KV pool")
        self.workers = list(workers)
        self.max_migrations = max_migrations
        self.obs = resolve_obs(obs)
        self.max_steps = max_steps
        self.snapshot_every = snapshot_every
        self.crash_plans = dict(crash_plans or {})
        self.gray_plans = dict(gray_plans or {})
        self.monitor = HealthMonitor(health)
        self._affinity: Dict[str, FleetWorker] = {}
        self.migrations = 0
        self.worker_restores = 0
        self.recoveries: List[RecoveryStats] = []
        self.failovers = 0
        self.failover_sessions = 0
        self.failover_latency_s: List[float] = []

    # -- the fleet loop -------------------------------------------------------

    def run(self, requests: Sequence[ServeRequest]) -> FleetReport:
        """Serve ``requests`` across the fleet; returns the fleet report."""
        for worker in self.workers:
            if worker.durable_dir is not None:
                worker.run = DurableRun(
                    worker.engine, [], worker.durable_dir,
                    snapshot_every=self.snapshot_every,
                    crash=self.crash_plans.get(worker.worker_id))
            else:
                worker.run = worker.engine.start([])
            plan = self.gray_plans.get(worker.worker_id)
            if plan is not None:
                worker.run = GrayRun(worker.run, plan)
            self._install_handler(worker)
            self.monitor.attach(worker.worker_id, worker.obs.metrics)
        pending = sorted(requests,
                         key=lambda r: (r.arrival_s, r.request_id))
        next_dispatch = 0
        probe_every = self.monitor.policy.probe_every
        step_key = lambda w: (w.run.clock, w.worker_id)  # noqa: E731
        try:
            for iteration in range(1, self.max_steps + 1):
                active = [w for w in self.workers
                          if self._worker_state(w) is not WorkerState.FAILED]
                busy = [w for w in active if not w.run.idle]
                if not busy and next_dispatch >= len(pending):
                    break
                # Dispatch every arrival at or before the laggard's clock:
                # placement decisions are made in arrival order, against
                # pool/prefix state no worker has stepped past yet.
                frontier = min((w.run.clock for w in busy),
                               default=pending[next_dispatch].arrival_s
                               if next_dispatch < len(pending) else 0.0)
                while next_dispatch < len(pending) \
                        and pending[next_dispatch].arrival_s <= frontier:
                    self._dispatch(pending[next_dispatch])
                    next_dispatch += 1
                active = [w for w in self.workers
                          if self._worker_state(w) is not WorkerState.FAILED]
                busy = [w for w in active if not w.run.idle]
                if not busy:
                    continue
                healthy_busy = [w for w in busy if self._worker_state(w)
                                is WorkerState.HEALTHY]
                suspect_busy = [w for w in busy if w not in healthy_busy]
                if healthy_busy:
                    self._guarded_step(min(healthy_busy, key=step_key))
                    # Hedged probe: a suspect is stepped off the critical
                    # path so it can prove recovery (or finish failing)
                    # without the healthy laggard ever waiting on it.
                    if suspect_busy and iteration % probe_every == 0:
                        self._guarded_step(min(suspect_busy, key=step_key))
                else:
                    # Only suspects hold live work: probing the suspect
                    # laggard is the sole way forward.
                    self._guarded_step(min(suspect_busy, key=step_key))
            else:
                raise RuntimeError(
                    f"fleet did not converge within {self.max_steps} steps")
        finally:
            for worker in self.workers:
                worker.engine.migrate_handler = None
        return self._report()

    # -- placement ------------------------------------------------------------

    def _dispatch(self, request: ServeRequest) -> None:
        worker = self._place(request)
        if request.session is not None:
            self._affinity[request.session] = worker
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter("fleet.dispatched").inc()
            metrics.counter(
                f"fleet.worker{worker.worker_id}.dispatched").inc()
        worker.run.inject(request)

    def _worker_state(self, worker: FleetWorker) -> WorkerState:
        return self.monitor.state_or_healthy(worker.worker_id)

    def _place(self, request: ServeRequest) -> FleetWorker:
        """Pick the worker to serve ``request`` (see module docstring).

        SUSPECT workers are drained — they keep their sessions (affinity
        still binds, suspicion usually self-heals) but take no *new*
        placements while any healthy worker exists; FAILED workers take
        nothing.
        """
        if request.session is not None \
                and request.session in self._affinity:
            home = self._affinity[request.session]
            if self._worker_state(home) is not WorkerState.FAILED:
                return home
        candidates = [w for w in self.workers
                      if self._worker_state(w) is not WorkerState.FAILED]
        if not candidates:           # unreachable: the last failure raises
            candidates = [self.workers[0]]
        healthy = [w for w in candidates
                   if self._worker_state(w) is WorkerState.HEALTHY]
        pool = healthy or candidates
        fits = [w for w in pool
                if self._session_blocks(w, request) <= w.pool.n_blocks]
        if not fits:
            # Nobody can ever hold it; let the first live worker's
            # admission shed it through the standard impossible-fit path.
            return pool[0]
        prompt = request.prompt
        return max(fits, key=lambda w: (
            w.pool.longest_prefix_tokens(prompt),
            self._free_score(w),
            -w.worker_id))

    @staticmethod
    def _session_blocks(worker: FleetWorker,
                        request: ServeRequest) -> int:
        """Worst-case block demand of the whole session on this worker."""
        return worker.pool.blocks_for_tokens(
            len(request.prompt) + request.max_new_tokens)

    def _free_score(self, worker: FleetWorker) -> int:
        """Free blocks net of prompt blocks promised to queued work."""
        pool = worker.pool
        queued = list(worker.run.scheduler.queued) + worker.run.pending
        promised = sum(pool.blocks_for_tokens(len(r.resume_tokens))
                       for r in queued)
        return pool.n_free - promised

    # -- crash recovery -------------------------------------------------------

    def _install_handler(self, worker: FleetWorker) -> None:
        """Install the migrate hook, durable-wrapped when applicable so
        departures already delivered pre-crash are not re-migrated."""
        handler = self._handler_for(worker)
        wrap = getattr(worker.run, "wrap_migrate_handler", None)
        worker.engine.migrate_handler = handler if wrap is None \
            else wrap(handler)

    def _recover_worker(self, worker: FleetWorker) -> None:
        """Restore a killed durable worker in place: fresh engine, state
        loaded from its durable directory, sessions kept — the fleet
        alternative to migrating everything off a dead shard.  The
        affinity map stays valid because the :class:`FleetWorker` object
        (and its sessions' home) does not change."""
        if worker.engine_factory is None or worker.durable_dir is None:
            raise  # not durable: the kill is fatal; re-raise it
        worker.engine.migrate_handler = None
        old_metrics = worker.obs.metrics
        worker.engine = worker.engine_factory()
        worker.run, stats = recover(worker.durable_dir, worker.engine,
                                    snapshot_every=self.snapshot_every)
        # Health instruments (fleet.*) are router-owned, never replayed:
        # transplant them across the engine swap so the latency baseline
        # and suspicion counters survive into the merged fleet report.
        if worker.obs.metrics.enabled:
            worker.obs.metrics.merge_prefixed(old_metrics, "fleet.")
        self.monitor.attach(worker.worker_id, worker.obs.metrics)
        plan = self.gray_plans.get(worker.worker_id)
        if plan is not None:
            worker.run = GrayRun(worker.run, plan)
        self._install_handler(worker)
        self.worker_restores += 1
        self.recoveries.append(stats)
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter("fleet.worker_restores").inc()
            metrics.counter(
                f"fleet.worker{worker.worker_id}.restores").inc()

    # -- gray failure: bounded wait + failover --------------------------------

    def _guarded_step(self, worker: FleetWorker) -> None:
        """Step ``worker`` under the bounded-wait guard: observed latency
        (wall plus simulated stall) feeds the health monitor; a FAILED
        verdict triggers failover (or :class:`WorkerStalledError` when no
        live sibling remains)."""
        t0 = time.perf_counter()
        try:
            worker.run.step()
        except WorkerKilledError:
            self._recover_worker(worker)
            return  # recovery time is not a step-latency sample
        wall = time.perf_counter() - t0
        consume = getattr(worker.run, "consume_stall", None)
        stall = consume() if callable(consume) else 0.0
        observed = wall + stall
        _, after = self.monitor.observe(worker.worker_id, observed)
        if after is WorkerState.FAILED:
            self._fail_worker(worker, observed_s=observed)

    def _fail_worker(self, worker: FleetWorker,
                     observed_s: float = 0.0) -> None:
        """Fail ``worker`` over: recover its durable state into a fresh
        engine and ship every live session to a healthy sibling.

        The durable path is true failover — newest verified snapshot plus
        WAL suffix, with the wedged run's unflushed records fenced off
        (``drop_unsynced``) exactly as if the process were unreachable.
        Without a verifiable snapshot (or a durable dir at all) the
        sessions recompute-migrate off the intact in-memory run instead.
        Either way departures are exactly-once: pending departures already
        delivered pre-failure are consumed, not re-shipped.
        """
        self.monitor.mark_failed(worker.worker_id)
        siblings = [w for w in self.workers if w is not worker
                    and self._worker_state(w) is not WorkerState.FAILED]
        deadline = self.monitor.deadline_s(worker.worker_id)
        if not siblings:
            raise WorkerStalledError(
                f"worker {worker.worker_id} stalled ({observed_s:.3f}s "
                f"step vs {deadline:.3f}s deadline) with no live sibling "
                "to fail over to",
                worker_id=worker.worker_id, deadline_s=deadline,
                observed_s=observed_s)
        t0 = time.perf_counter()
        run = worker.run
        inner = run.inner if isinstance(run, GrayRun) else run
        worker.engine.migrate_handler = None
        recovered = False
        if worker.durable_dir is not None \
                and worker.engine_factory is not None:
            wal = getattr(inner, "wal", None)
            if wal is not None:
                # Fence the wedged run: its unflushed records never land
                # and it can no longer write to the durable directory.
                wal.drop_unsynced()
                wal.close()
            old_metrics = worker.obs.metrics
            try:
                engine = worker.engine_factory()
                new_run, stats = recover(worker.durable_dir, engine,
                                         snapshot_every=self.snapshot_every)
            except SnapshotCorruptError:
                pass         # no verifiable snapshot: recompute-migrate
            else:
                worker.engine = engine
                worker.run = new_run
                self.recoveries.append(stats)
                if engine.obs.metrics.enabled:
                    engine.obs.metrics.merge_prefixed(old_metrics, "fleet.")
                recovered = True
        if not recovered:
            # The raw in-memory run: for a fenced durable victim the
            # DurableRun can no longer log, so drain beneath it.
            worker.run = getattr(inner, "run", inner)
        moved = self._drain_sessions(worker, worker.run)
        latency = time.perf_counter() - t0
        self.failovers += 1
        self.failover_sessions += moved
        self.failover_latency_s.append(latency)
        metrics = self.obs.metrics
        if metrics.enabled:
            metrics.counter("fleet.failovers").inc()
            metrics.counter(f"fleet.worker{worker.worker_id}.failovers").inc()
            metrics.counter("fleet.failover_sessions").inc(moved)
            metrics.histogram("fleet.failover_latency_s",
                              track_values=True).observe(latency)
        wmetrics = worker.obs.metrics
        if wmetrics.enabled:
            wmetrics.counter("fleet.failovers").inc()
            wmetrics.counter("fleet.failover_recovered" if recovered
                             else "fleet.failover_recomputed").inc()

    def _drain_sessions(self, victim: FleetWorker, run) -> int:
        """Move every live session off ``run`` to failover targets."""
        scheduler = run.scheduler
        clock = run.clock
        pending_dep = set(getattr(run, "_pending_departures", ()) or ())
        engine_run = getattr(run, "run", run)
        already_gone = getattr(engine_run, "_departed", set())
        sessions: List[ServeRequest] = []
        for request in list(scheduler.running):
            scheduler.detach(request)
            sessions.append(request)
        sessions.extend(scheduler.drain_queued())
        sessions.extend(run.pending)
        moved = 0
        for request in sessions:
            if id(request) in already_gone:
                continue
            if request.request_id in pending_dep:
                # Delivered to its target before the failure; consuming
                # the pending departure keeps accounting exactly-once.
                run.note_departure(request)
                continue
            target = self._failover_target(victim, request)
            request.arrival_s = max(request.arrival_s, clock)
            if request.session is not None:
                self._affinity[request.session] = target
            request.events.migrations += 1
            run.note_departure(request)
            target.run.inject(request)
            tmetrics = target.obs.metrics
            if tmetrics.enabled:
                tmetrics.counter("serve.failover_in").inc()
            moved += 1
        return moved

    def _failover_target(self, victim: FleetWorker,
                         request: ServeRequest) -> FleetWorker:
        """Best live sibling for a drained session: HEALTHY before
        SUSPECT, then the standard prefix-locality / load ranking; a
        session no sibling can ever hold still lands somewhere and sheds
        through the target's impossible-fit admission path."""
        candidates = [w for w in self.workers if w is not victim
                      and self._worker_state(w) is not WorkerState.FAILED]
        healthy = [w for w in candidates
                   if self._worker_state(w) is WorkerState.HEALTHY]
        pool = healthy or candidates
        fits = [w for w in pool
                if self._session_blocks(w, request) <= w.pool.n_blocks]
        return max(fits or pool, key=lambda w: (
            w.pool.longest_prefix_tokens(request.prompt),
            self._free_score(w),
            -w.worker_id))

    # -- migration ------------------------------------------------------------

    def _handler_for(self, source: FleetWorker):
        """The migrate hook installed on ``source``'s engine.

        Receives sessions the source would otherwise preempt-requeue or
        capacity-shed, already detached (blocks freed, state QUEUED).
        Returns ``True`` after re-injecting the session into a target
        worker; ``False`` keeps it on the source (local requeue or shed).
        """
        def handler(request: ServeRequest) -> bool:
            if request.migrations >= self.max_migrations:
                return False
            target = self._migration_target(source, request)
            if target is None:
                return False
            request.migrations += 1
            request.events.migrations += 1
            self.migrations += 1
            metrics = self.obs.metrics
            if metrics.enabled:
                metrics.counter("fleet.migrations").inc()
            source_metrics = source.obs.metrics
            if source_metrics.enabled:
                source_metrics.counter("serve.migrated_out").inc()
            target_metrics = target.obs.metrics
            if target_metrics.enabled:
                target_metrics.counter("serve.migrated_in").inc()
            # The relocated session cannot restart before the moment the
            # source released it; events keep the original arrival for
            # TTFT accounting.
            request.arrival_s = max(request.arrival_s, source.run.clock)
            if request.session is not None:
                self._affinity[request.session] = target
            source.run.note_departure(request)
            target.run.inject(request)
            return True

        return handler

    def _migration_target(self, source: FleetWorker,
                          request: ServeRequest) -> Optional[FleetWorker]:
        """A sibling that can admit the session *now*, or ``None``.

        Requiring immediate admission capacity (resume-prompt blocks free
        on the target) keeps migration from bouncing a session between
        two saturated workers.
        """
        candidates = []
        for worker in self.workers:
            if worker is source:
                continue
            if self._worker_state(worker) is WorkerState.FAILED:
                continue
            pool = worker.pool
            if self._session_blocks(worker, request) > pool.n_blocks:
                continue
            resume_blocks = pool.blocks_for_tokens(
                len(request.resume_tokens))
            if resume_blocks > pool.n_free:
                continue
            candidates.append(worker)
        if not candidates:
            return None
        return max(candidates, key=lambda w: (
            self._worker_state(w) is WorkerState.HEALTHY,
            w.pool.longest_prefix_tokens(request.prompt),
            self._free_score(w),
            -w.worker_id))

    # -- reduction ------------------------------------------------------------

    def _report(self) -> FleetReport:
        reports = [w.run.finish() for w in self.workers]
        # Per-worker registries are private, so the associative merge
        # reduces exactly the fleet's own instruments; router-level
        # counters (fleet.dispatched, fleet.migrations) stay in the
        # router's bundle, which may be the shared process default.
        merged = MetricsRegistry(enabled=True)
        for worker in self.workers:
            merged.merge(worker.obs.metrics)
        return FleetReport(
            workers=reports,
            metrics=merged,
            migrations=self.migrations,
            prefix_hits=sum(w.pool.prefix_hits for w in self.workers),
            prefix_misses=sum(w.pool.prefix_misses for w in self.workers),
            shared_blocks_peak=sum(w.pool.shared_blocks_peak
                                   for w in self.workers),
            failovers=self.failovers,
            failover_sessions=self.failover_sessions,
            failover_latency_s=list(self.failover_latency_s),
            worker_suspects=self.monitor.suspect_transitions,
            worker_restores=self.worker_restores,
        )
