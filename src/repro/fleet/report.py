"""Fleet-level reduction of per-worker serve reports.

Each worker finishes its run with a normal
:class:`~repro.serve.events.ServeReport` over the requests it retired
(a migrated session is reported by the worker it *ended* on, so every
request appears exactly once fleet-wide).  :class:`FleetReport` reduces
those: clocks reduce by max (workers ran concurrently on one timeline),
token counts by sum, SLO percentiles exactly over the pooled events, and
the per-worker metrics registries through the associative
:meth:`~repro.obs.MetricsRegistry.merge`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.obs import MetricsRegistry, exact_percentile
from repro.serve.events import RequestEvents, ServeReport


@dataclasses.dataclass
class FleetReport:
    """Outcome of one :class:`~repro.fleet.router.FleetRouter` run."""

    workers: List[ServeReport]
    #: associative reduction of every worker's private registry.
    metrics: MetricsRegistry
    migrations: int
    prefix_hits: int
    prefix_misses: int
    #: sum of per-pool shared-block peaks (pools are disjoint, so this is
    #: the fleet's peak resident shared footprint up to step skew).
    shared_blocks_peak: int
    #: resilience accounting (defaults keep hand-built reports working).
    failovers: int = 0
    failover_sessions: int = 0
    failover_latency_s: List[float] = dataclasses.field(
        default_factory=list)
    worker_suspects: int = 0
    worker_restores: int = 0

    # -- pooled views ---------------------------------------------------------

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    @property
    def events(self) -> List[RequestEvents]:
        return [e for report in self.workers for e in report.events]

    @property
    def makespan_s(self) -> float:
        """Fleet wall time: the slowest worker's clock."""
        return max((report.clock_s for report in self.workers),
                   default=0.0)

    @property
    def tokens_generated(self) -> int:
        return sum(report.tokens_generated for report in self.workers)

    @property
    def throughput_tps(self) -> float:
        """Aggregate decode tokens per second of fleet time."""
        span = self.makespan_s
        return self.tokens_generated / span if span else 0.0

    @property
    def completed(self) -> int:
        return sum(len(report.completed) for report in self.workers)

    @property
    def shed(self) -> int:
        return sum(len(report.shed) for report in self.workers)

    @property
    def rejected(self) -> int:
        return sum(len(report.rejected) for report in self.workers)

    @property
    def preemptions(self) -> int:
        return sum(report.preemptions for report in self.workers)

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of full-block prefix lookups served from the cache."""
        total = self.prefix_hits + self.prefix_misses
        return self.prefix_hits / total if total else 0.0

    @property
    def availability(self) -> float:
        """Fraction of arrived requests that completed un-shed fleet-wide
        (rejected/shed count against it; an empty run is vacuously up)."""
        events = self.events
        if not events:
            return 1.0
        served = sum(1 for e in events
                     if e.finished_s is not None and not e.shed)
        return served / len(events)

    @property
    def failover_latency_max_s(self) -> float:
        return max(self.failover_latency_s, default=0.0)

    # -- brownout (pooled per-token attribution) ------------------------------

    @property
    def brownout_stage_tokens(self) -> Dict[int, int]:
        pooled: Dict[int, int] = {}
        for e in self.events:
            for stage, count in e.brownout_tokens.items():
                pooled[stage] = pooled.get(stage, 0) + count
        return dict(sorted(pooled.items()))

    @property
    def brownout_tokens(self) -> int:
        return sum(self.brownout_stage_tokens.values())

    @property
    def brownout_token_fraction(self) -> float:
        total = self.tokens_generated
        return self.brownout_tokens / total if total else 0.0

    # -- SLO metrics (exact, over the pooled events) --------------------------

    def _ttfts(self, tenant: Optional[str] = None) -> List[float]:
        return [e.ttft_s for e in self.events if e.ttft_s is not None
                and (tenant is None or e.tenant == tenant)]

    def _tpots(self, tenant: Optional[str] = None) -> List[float]:
        return [e.tpot_s for e in self.events if e.tpot_s is not None
                and (tenant is None or e.tenant == tenant)]

    def ttft_percentile_s(self, q: float,
                          tenant: Optional[str] = None) -> float:
        return exact_percentile(self._ttfts(tenant), q)

    def tpot_percentile_s(self, q: float,
                          tenant: Optional[str] = None) -> float:
        return exact_percentile(self._tpots(tenant), q)

    @property
    def tenants(self) -> List[str]:
        seen: List[str] = []
        for e in self.events:
            if e.tenant not in seen:
                seen.append(e.tenant)
        return sorted(seen)

    def tenant_summary(self) -> Dict[str, Dict]:
        """Per-tenant fleet SLO metrics (exact percentiles)."""
        out: Dict[str, Dict] = {}
        for tenant in self.tenants:
            mine = [e for e in self.events if e.tenant == tenant]
            out[tenant] = {
                "requests": len(mine),
                "completed": sum(1 for e in mine
                                 if e.finished_s is not None),
                "rejected": sum(1 for e in mine if e.rejected),
                "migrations": sum(e.migrations for e in mine),
                "ttft_p50_s": self.ttft_percentile_s(50.0, tenant),
                "ttft_p99_s": self.ttft_percentile_s(99.0, tenant),
                "tpot_p50_s": self.tpot_percentile_s(50.0, tenant),
                "tpot_p99_s": self.tpot_percentile_s(99.0, tenant),
            }
        return out

    def as_dict(self) -> Dict:
        """JSON-ready summary (the per-point payload of BENCH_fleet)."""
        return {
            "workers": self.n_workers,
            "makespan_s": self.makespan_s,
            "tokens_generated": self.tokens_generated,
            "throughput_tps": self.throughput_tps,
            "ttft_p50_s": self.ttft_percentile_s(50.0),
            "ttft_p99_s": self.ttft_percentile_s(99.0),
            "tpot_p50_s": self.tpot_percentile_s(50.0),
            "tpot_p99_s": self.tpot_percentile_s(99.0),
            "completed": self.completed,
            "shed": self.shed,
            "rejected": self.rejected,
            "preemptions": self.preemptions,
            "migrations": self.migrations,
            "availability": self.availability,
            "health": {
                "failovers": self.failovers,
                "failover_sessions": self.failover_sessions,
                "failover_latency_s": list(self.failover_latency_s),
                "failover_latency_max_s": self.failover_latency_max_s,
                "worker_suspects": self.worker_suspects,
                "worker_restores": self.worker_restores,
            },
            "brownout": {
                "stage_tokens": {str(s): n for s, n
                                 in self.brownout_stage_tokens.items()},
                "token_fraction": self.brownout_token_fraction,
            },
            "prefix": {
                "hits": self.prefix_hits,
                "misses": self.prefix_misses,
                "hit_rate": self.prefix_hit_rate,
                "shared_blocks_peak": self.shared_blocks_peak,
            },
            "tenants": self.tenant_summary(),
            "per_worker": [report.as_dict() for report in self.workers],
        }
