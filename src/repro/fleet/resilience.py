"""Fleet health: gray-failure detection and the worker suspicion model.

A crashed worker raises; a *gray* worker does something worse — it keeps
answering, just slowly, intermittently, or not at all, and a lockstep
dispatch loop that always waits for the laggard will happily wait on it
forever.  This module gives the router the three pieces it needs to stop
doing that:

- :class:`GrayFailurePlan` (in :mod:`repro.system.faults`) schedules
  deterministic gray failures; :class:`GrayRun` injects them by wrapping
  a worker's run behind the same router-facing surface (``idle`` /
  ``clock`` / ``step`` / ``inject`` / ...).  Stalls are **simulated**:
  the wrapped step reports its stall seconds through
  :meth:`GrayRun.consume_stall` instead of sleeping, so chaos tests are
  fast and bit-reproducible while driving the real detection path.
- :class:`HealthMonitor` classifies each worker HEALTHY / SUSPECT /
  FAILED from its observed step latencies: a **phi-accrual-style
  suspicion score** (phi = -log10 of the survival probability of the
  observed latency under a normal model of the worker's recent healthy
  samples, kept in a ``repro.obs`` ``fleet.step_latency_s`` histogram in
  the worker's own registry) plus a hard **step deadline** derived from
  the healthy p95 (factor + floor, or a fixed policy override).
- Verdict semantics the router enforces: a SUSPECT worker is *drained*
  (no new placements, stepped only as an occasional hedged probe so the
  healthy laggard always makes progress) and recovers to HEALTHY when
  its suspicion drops; a FAILED worker (consecutive deadline misses) is
  failed over — its sessions leave via the durable snapshot + WAL path
  or recompute migration (see ``router._fail_worker``).

The deadline baseline is fed only with *within-deadline* samples: a
worker stalling at 2 s must not drag its own p95 — and therefore its own
deadline — up until the stall looks normal (the classic self-licking
feedback loop of naive adaptive timeouts).  Deadline-missing samples are
recorded separately (``fleet.step_latency_stalled_s``,
``fleet.step_deadline_miss``) so the merged fleet report still sees them.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Dict, Optional, Tuple

from repro.obs import Histogram, MetricsRegistry, exact_percentile
from repro.system.faults import GrayFailurePlan


class WorkerState(enum.Enum):
    HEALTHY = "healthy"
    SUSPECT = "suspect"
    FAILED = "failed"


@dataclasses.dataclass(frozen=True)
class HealthPolicy:
    """Knobs of the suspicion model and the bounded-wait guard.

    Attributes:
        window: healthy step-latency samples the normal model is fit
            over (sliding window of the most recent).
        min_samples: below this many healthy samples phi is 0 — a cold
            worker is given the benefit of the doubt (the deadline floor
            still guards against a wedge during warmup).
        suspect_phi: suspicion score at or above which a worker is
            classified SUSPECT (drained + hedge-probed, not failed).
        fail_phi: suspicion score at or above which an observation
            counts as a *strike* even without a deadline miss, provided
            the wait is material (>= half the deadline) — a fast worker
            can wedge relative to its own baseline long before the
            absolute deadline, but sub-deadline-scale spikes (snapshot
            fsync) must never accumulate into a failover.
        step_deadline_s: fixed per-step deadline override; ``None``
            derives it as ``max(deadline_floor_s, deadline_factor *
            healthy_p95)``.
        deadline_factor: multiplier on the healthy-window p95 latency.
        deadline_floor_s: minimum derived deadline — keeps warmup jitter
            and sub-millisecond tiny-model steps from tripping the guard.
        fail_after_deadline_misses: consecutive strikes (deadline misses
            or phi >= ``fail_phi``) that escalate SUSPECT to FAILED — a
            single strike only suspects, so one GC pause, snapshot
            fsync, or flap does not trigger a failover.
        probe_every: hedged-probe cadence — a SUSPECT worker is stepped
            once per this many router iterations, off the critical path.
    """

    window: int = 64
    min_samples: int = 8
    suspect_phi: float = 5.0
    fail_phi: float = 12.0
    step_deadline_s: Optional[float] = None
    deadline_factor: float = 20.0
    deadline_floor_s: float = 0.25
    fail_after_deadline_misses: int = 2
    probe_every: int = 4

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if self.min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        if not 0.0 < self.suspect_phi <= self.fail_phi:
            raise ValueError("need 0 < suspect_phi <= fail_phi")
        if self.step_deadline_s is not None and self.step_deadline_s <= 0:
            raise ValueError("step_deadline_s must be > 0")
        if self.deadline_factor < 1.0:
            raise ValueError("deadline_factor must be >= 1")
        if self.deadline_floor_s <= 0.0:
            raise ValueError("deadline_floor_s must be > 0")
        if self.fail_after_deadline_misses < 1:
            raise ValueError("fail_after_deadline_misses must be >= 1")
        if self.probe_every < 1:
            raise ValueError("probe_every must be >= 1")


class WorkerHealth:
    """One worker's latency baseline and current verdict."""

    def __init__(self, worker_id: int, policy: HealthPolicy,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.worker_id = worker_id
        self.policy = policy
        self.metrics = metrics
        self.state = WorkerState.HEALTHY
        self.deadline_misses = 0
        self.last_phi = 0.0
        # The healthy baseline lives in the worker's own registry so the
        # distribution survives into the merged fleet report.
        if metrics is not None and metrics.enabled:
            self.baseline = metrics.histogram("fleet.step_latency_s",
                                              track_values=True)
        else:
            self.baseline = Histogram("fleet.step_latency_s",
                                      track_values=True)

    # -- the suspicion score --------------------------------------------------

    def _window(self):
        values = self.baseline.values or []
        return values[-self.policy.window:]

    def phi(self, observed_s: float) -> float:
        """-log10 survival probability of ``observed_s`` under a normal
        model of the recent healthy window (phi-accrual style).

        The std floor is ``max(std, mean)``: tiny-model step times jitter
        multiplicatively (allocator, GC), so anything under ~5x the mean
        scores low and a simulated multi-second stall scores enormous.
        """
        samples = self._window()
        if len(samples) < self.policy.min_samples:
            return 0.0
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        std = max(math.sqrt(var), mean, 1e-6)
        z = (observed_s - mean) / std
        if z <= 0.0:
            return 0.0
        survival = 0.5 * math.erfc(z / math.sqrt(2.0))
        return -math.log10(max(survival, 1e-300))

    def deadline_s(self) -> float:
        if self.policy.step_deadline_s is not None:
            return self.policy.step_deadline_s
        samples = self._window()
        p95 = 0.0
        if len(samples) >= self.policy.min_samples:
            p95 = exact_percentile(samples, 95.0)
        return max(self.policy.deadline_floor_s,
                   self.policy.deadline_factor * p95)


class HealthMonitor:
    """Classify workers HEALTHY / SUSPECT / FAILED from step latencies.

    SUSPECT is recomputed per observation (a transient spike self-heals
    on the next healthy sample — required for flapping workers); FAILED
    is sticky and only ever set by consecutive deadline misses, an
    extreme phi, or an explicit :meth:`mark_failed`.
    """

    def __init__(self, policy: Optional[HealthPolicy] = None) -> None:
        self.policy = policy or HealthPolicy()
        self._health: Dict[int, WorkerHealth] = {}
        self.suspect_transitions = 0
        self.failures = 0

    def attach(self, worker_id: int,
               metrics: Optional[MetricsRegistry] = None) -> WorkerHealth:
        health = WorkerHealth(worker_id, self.policy, metrics)
        self._health[worker_id] = health
        return health

    def health(self, worker_id: int) -> WorkerHealth:
        return self._health[worker_id]

    def state(self, worker_id: int) -> WorkerState:
        return self._health[worker_id].state

    def state_or_healthy(self, worker_id: int) -> WorkerState:
        """State of a worker, HEALTHY when never attached (a router can
        consult the monitor before or without wiring it up)."""
        health = self._health.get(worker_id)
        return WorkerState.HEALTHY if health is None else health.state

    def deadline_s(self, worker_id: int) -> float:
        return self._health[worker_id].deadline_s()

    def observe(self, worker_id: int, observed_s: float
                ) -> Tuple[WorkerState, WorkerState]:
        """Fold one observed step latency in; returns (before, after)."""
        health = self._health[worker_id]
        policy = self.policy
        before = health.state
        if before is WorkerState.FAILED:
            return before, before
        deadline = health.deadline_s()
        metrics = health.metrics
        if observed_s > deadline:
            health.deadline_misses += 1
            health.last_phi = math.inf
            if metrics is not None and metrics.enabled:
                metrics.counter("fleet.step_deadline_miss").inc()
                if math.isfinite(observed_s):
                    metrics.histogram(
                        "fleet.step_latency_stalled_s").observe(observed_s)
            if health.deadline_misses >= policy.fail_after_deadline_misses:
                health.state = WorkerState.FAILED
            else:
                health.state = WorkerState.SUSPECT
        else:
            health.last_phi = health.phi(observed_s)
            if health.last_phi >= policy.fail_phi \
                    and observed_s >= 0.5 * deadline:
                # An extreme outlier vs the worker's own baseline is a
                # strike, not an instant failure: strikes only count in
                # the regime where the absolute wait is material (>= half
                # the deadline), so a millisecond snapshot-fsync spike
                # over a microsecond baseline suspects at most, while a
                # wedged worker keeps striking its way to FAILED.
                health.deadline_misses += 1
                if health.deadline_misses \
                        >= policy.fail_after_deadline_misses:
                    health.state = WorkerState.FAILED
                else:
                    health.state = WorkerState.SUSPECT
            elif health.last_phi >= policy.suspect_phi:
                health.state = WorkerState.SUSPECT
                # Outliers are judged against the baseline but do not
                # join it, or a creeping slowdown would normalize itself.
            else:
                health.deadline_misses = 0
                health.state = WorkerState.HEALTHY
                health.baseline.observe(observed_s)
        after = health.state
        if before is not WorkerState.SUSPECT \
                and after is WorkerState.SUSPECT:
            self.suspect_transitions += 1
            if metrics is not None and metrics.enabled:
                metrics.counter("fleet.worker_suspect").inc()
        if before is not WorkerState.FAILED and after is WorkerState.FAILED:
            self.failures += 1
        return before, after

    def mark_failed(self, worker_id: int) -> None:
        health = self._health[worker_id]
        if health.state is not WorkerState.FAILED:
            self.failures += 1
        health.state = WorkerState.FAILED


class GrayRun:
    """Run proxy that injects a :class:`GrayFailurePlan` into a worker.

    Wraps an ``EngineRun`` / ``DurableRun`` behind the identical
    router-facing surface; everything except :meth:`step` delegates to
    the inner run, so durable wrappers, migration handlers, and report
    plumbing all keep working.  A stuck step performs **no inner work**
    (the wedge happens before the engine makes progress) and reports an
    infinite stall; slow/flapping steps do the real work and report the
    plan's stall seconds on top.
    """

    def __init__(self, inner, plan: GrayFailurePlan) -> None:
        self.inner = inner
        self.plan = plan
        self.gray_steps = 0
        self._last_stall_s = 0.0

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    @property
    def idle(self) -> bool:
        return self.inner.idle

    @property
    def clock(self) -> float:
        return self.inner.clock

    def step(self) -> bool:
        self.gray_steps += 1
        stall = self.plan.stall_at(self.gray_steps)
        self._last_stall_s = stall
        if math.isinf(stall):
            return True
        return self.inner.step()

    def consume_stall(self) -> float:
        """Simulated stall seconds of the last step (read-and-reset)."""
        stall, self._last_stall_s = self._last_stall_s, 0.0
        return stall
