"""Cross-module integration tests: the whole serving story at tiny scale."""

import numpy as np
import pytest

from repro.core import LongSightConfig, LongSightAttention, FilterStats, fit_itq
from repro.core.tuning import tune_thresholds
from repro.data.synthetic import pg_like
from repro.drex.backend import DrexOffloadBackend
from repro.llm.kv_cache import KVCache
from repro.llm.model import Transformer
from repro.llm.perplexity import perplexity
from repro.llm.sampling import generate
from repro.llm.training import train
from tests.conftest import TINY


@pytest.fixture(scope="module")
def trained():
    tokens = pg_like(20000, vocab_size=TINY.vocab_size, seed=0)
    result = train(TINY, tokens, steps=60, batch_size=4, seq_len=96, seed=0)
    return Transformer(TINY, result.weights), tokens


class TestTrainedPipeline:
    def test_training_beats_uniform(self, trained):
        model, tokens = trained
        ppl = perplexity(model, tokens[:512])
        assert ppl < TINY.vocab_size * 0.7  # clearly better than uniform

    def test_sparse_close_to_dense_on_trained_model(self, trained):
        model, tokens = trained
        eval_tokens = tokens[:512]
        dense = perplexity(model, eval_tokens)
        config = LongSightConfig(window=32, n_sink=4, top_k=64,
                                 thresholds=TINY.head_dim // 2)
        sparse = perplexity(model, eval_tokens,
                            backend=LongSightAttention(config))
        assert sparse / dense < 1.30

    def test_tuning_on_trained_model_filters_something(self, trained):
        model, tokens = trained
        eval_tokens = tokens[:384]
        dense = perplexity(model, eval_tokens)
        config = LongSightConfig(window=32, n_sink=4, top_k=32)
        result = tune_thresholds(model, eval_tokens, config, dense,
                                 max_increase=0.10, step=2, max_iterations=5)
        assert result.filter_ratio > 1.0


class TestGenerationWithDrex:
    def test_generation_matches_software_hybrid(self, trained):
        """Autoregressive generation through the functional DReX device
        must match the software hybrid token-for-token."""
        model, tokens = trained
        prompt = tokens[:60]
        config = LongSightConfig(window=8, n_sink=4, top_k=8, thresholds=4)
        sw = generate(model, prompt, n_new=10,
                      backend=LongSightAttention(config))
        hw = generate(model, prompt, n_new=10,
                      backend=DrexOffloadBackend(TINY, config,
                                                 flush_granularity=1))
        np.testing.assert_array_equal(sw, hw)

    def test_generation_with_itq_and_group_flush(self, trained):
        model, tokens = trained
        rotations = fit_itq(model, tokens[:64], n_iter=3)
        config = LongSightConfig(window=8, n_sink=4, top_k=16, thresholds=5,
                                 use_itq=True)
        backend = DrexOffloadBackend(TINY, config, rotations=rotations,
                                     flush_granularity=16)
        out = generate(model, tokens[:80], n_new=6, backend=backend)
        assert out.shape == (6,)
        assert backend.n_offloads > 0


class TestMultiUserDevice:
    def test_users_are_isolated(self, trained, rng):
        """Two users' databases must not bleed into each other."""
        from repro.drex.descriptors import RequestDescriptor
        from repro.drex.device import DrexDevice

        device = DrexDevice(TINY.n_layers, TINY.n_kv_heads, TINY.n_q_heads,
                            TINY.head_dim, thresholds=0)
        device.register_user(0)
        device.register_user(1)
        keys0 = rng.normal(size=(40, TINY.head_dim))
        keys1 = rng.normal(size=(40, TINY.head_dim)) + 5.0
        for head in range(TINY.n_kv_heads):
            device.write_kv(0, 0, head, keys0, keys0)
            device.write_kv(1, 0, head, keys1, keys1)
        q = rng.normal(size=(TINY.n_q_heads, TINY.head_dim))
        r0 = device.execute(RequestDescriptor(uid=0, layer=0, queries=q,
                                              top_k=40))
        r1 = device.execute(RequestDescriptor(uid=1, layer=0, queries=q,
                                              top_k=40))
        np.testing.assert_allclose(r0.heads[0].values[
            np.argsort(r0.heads[0].indices)], keys0)
        np.testing.assert_allclose(r1.heads[0].values[
            np.argsort(r1.heads[0].indices)], keys1)

    def test_eviction_frees_capacity_for_new_user(self, rng):
        from repro.drex.device import DrexDevice

        device = DrexDevice(TINY.n_layers, TINY.n_kv_heads, TINY.n_q_heads,
                            TINY.head_dim)
        device.register_user(0)
        keys = rng.normal(size=(5000, TINY.head_dim))
        for head in range(TINY.n_kv_heads):
            device.write_kv(0, 0, head, keys, keys)
        used = device.allocator.bytes_used
        device.evict_user(0)
        device.register_user(2)
        for head in range(TINY.n_kv_heads):
            device.write_kv(2, 0, head, keys, keys)
        assert device.allocator.bytes_used == used


class TestCacheBackendInterplay:
    def test_prefill_then_decode_with_hybrid(self, trained):
        model, tokens = trained
        config = LongSightConfig(window=16, n_sink=4, top_k=16, thresholds=4)
        backend = LongSightAttention(config)
        cache = KVCache(TINY)
        model.prefill(tokens[:50], cache, backend=backend)
        logits = model.decode_step(int(tokens[50]), cache, backend=backend)
        assert np.isfinite(logits).all()
        assert len(cache) == 51
