"""Hypothesis fuzzing of the cross-layer equivalences.

These are the load-bearing invariants of the reproduction: the software
hybrid backend degenerates to dense attention in the right limits, and the
functional DReX device agrees with the reference pipeline under random
configurations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LongSightConfig
from repro.core.hybrid import LongSightAttention
from repro.core.sparse import sparse_retrieve
from repro.drex.descriptors import RequestDescriptor
from repro.drex.device import DrexDevice
from repro.llm.model import Transformer
from tests.conftest import TINY

MODEL = Transformer(TINY, seed=13)


@given(window=st.integers(min_value=1, max_value=20),
       n_sink=st.integers(min_value=0, max_value=6),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_hybrid_equals_dense_whenever_everything_attends(window, n_sink,
                                                         seed):
    """thresholds=0 and k >= context must reproduce dense attention for
    ANY window/sink split."""
    rng = np.random.default_rng(seed)
    tokens = rng.integers(0, TINY.vocab_size, size=40)
    dense = MODEL.forward_full(tokens)
    config = LongSightConfig(window=window, n_sink=n_sink, top_k=40,
                             thresholds=0)
    hybrid = MODEL.forward_full(tokens, backend=LongSightAttention(config))
    np.testing.assert_allclose(dense, hybrid, atol=1e-12)


@given(threshold=st.integers(min_value=0, max_value=TINY.head_dim),
       k=st.integers(min_value=0, max_value=60),
       n_keys=st.integers(min_value=1, max_value=400),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_device_always_matches_reference(threshold, k, n_keys, seed):
    rng = np.random.default_rng(seed)
    device = DrexDevice(1, TINY.n_kv_heads, TINY.n_q_heads, TINY.head_dim,
                        thresholds=threshold)
    device.register_user(0)
    keys = rng.normal(size=(TINY.n_kv_heads, n_keys, TINY.head_dim))
    values = rng.normal(size=(TINY.n_kv_heads, n_keys, TINY.head_dim))
    for head in range(TINY.n_kv_heads):
        device.write_kv(0, 0, head, keys[head], values[head])
    queries = rng.normal(size=(TINY.n_q_heads, TINY.head_dim))
    response = device.execute(
        RequestDescriptor(uid=0, layer=0, queries=queries, top_k=k))
    for h in range(TINY.n_q_heads):
        kv_head = h // TINY.gqa_group_size
        ref = sparse_retrieve(queries[h], keys[kv_head], threshold, k)
        np.testing.assert_array_equal(response.heads[h].indices, ref.indices)


@given(seed=st.integers(min_value=0, max_value=10_000),
       flush=st.sampled_from([1, 4, 16, 128]))
@settings(max_examples=8, deadline=None)
def test_backend_never_drops_tokens(seed, flush):
    """Whatever the flush granularity, thresholds=0 + big k must equal
    dense attention: every token is attended somewhere (HBM staging or
    DReX), never lost in between."""
    from repro.drex.backend import DrexOffloadBackend

    rng = np.random.default_rng(seed)
    tokens = rng.integers(0, TINY.vocab_size, size=50)
    dense = MODEL.forward_full(tokens)
    config = LongSightConfig(window=6, n_sink=2, top_k=50, thresholds=0)
    backend = DrexOffloadBackend(TINY, config, flush_granularity=flush)
    out = MODEL.forward_full(tokens, backend=backend, block_size=16)
    np.testing.assert_allclose(dense, out, atol=1e-12)
