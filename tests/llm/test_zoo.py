"""Model zoo caching behavior (uses a temp cache dir and tiny step counts)."""

import numpy as np
import pytest

from repro.llm import zoo


@pytest.fixture
def temp_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    zoo._MEMO.clear()
    yield tmp_path
    zoo._MEMO.clear()


def test_unknown_model_rejected(temp_cache):
    with pytest.raises(KeyError):
        zoo.trained_model("no-such-model")


def test_trained_model_is_cached_and_deterministic(temp_cache):
    a = zoo.trained_model("llama-sim-small", steps=2, corpus_tokens=3000)
    files = list(temp_cache.glob("*.npz"))
    assert len(files) == 1
    # Second call hits the in-process memo (same object).
    b = zoo.trained_model("llama-sim-small", steps=2, corpus_tokens=3000)
    assert a is b
    # Fresh process simulation: clear memo, must reload identical weights.
    zoo._MEMO.clear()
    c = zoo.trained_model("llama-sim-small", steps=2, corpus_tokens=3000)
    np.testing.assert_array_equal(a.weights["wq.0"], c.weights["wq.0"])


def test_untrained_model(temp_cache):
    m = zoo.untrained_model("llama-sim-small")
    assert m.config.name == "llama-sim-small"
    assert not list(temp_cache.glob("*.npz"))
