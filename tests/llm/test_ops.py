"""Unit tests for the functional ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.llm import ops

finite_floats = st.floats(min_value=-50, max_value=50, allow_nan=False)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(size=(4, 7))
        y = ops.softmax(x)
        np.testing.assert_allclose(y.sum(axis=-1), 1.0)
        assert (y >= 0).all()

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(ops.softmax(x), ops.softmax(x + 100.0))

    def test_handles_minus_inf(self):
        x = np.array([0.0, -np.inf, 1.0])
        y = ops.softmax(x)
        assert y[1] == 0.0
        np.testing.assert_allclose(y.sum(), 1.0)

    @given(hnp.arrays(np.float64, (3, 6), elements=finite_floats))
    @settings(max_examples=25, deadline=None)
    def test_log_softmax_consistent(self, x):
        np.testing.assert_allclose(np.exp(ops.log_softmax(x)),
                                   ops.softmax(x), atol=1e-12)


class TestRmsNorm:
    def test_unit_rms(self, rng):
        x = rng.normal(size=(5, 16)) * 3.0
        y = ops.rms_norm(x, np.ones(16), eps=0.0)
        np.testing.assert_allclose(np.sqrt(np.mean(y * y, axis=-1)), 1.0)

    def test_scale_applied(self, rng):
        x = rng.normal(size=(2, 8))
        w = rng.normal(size=8)
        np.testing.assert_allclose(ops.rms_norm(x, w),
                                   ops.rms_norm(x, np.ones(8)) * w)


class TestAttention:
    def test_single_key_returns_value(self, rng):
        q = rng.normal(size=(3, 4))
        k = rng.normal(size=(1, 4))
        v = rng.normal(size=(1, 6))
        out = ops.attention(q, k, v)
        np.testing.assert_allclose(out, np.repeat(v, 3, axis=0))

    def test_uniform_when_scores_equal(self):
        q = np.zeros((1, 4))
        k = np.ones((5, 4))
        v = np.eye(5)
        out = ops.attention(q, k, v)
        np.testing.assert_allclose(out, np.full((1, 5), 0.2))

    def test_mask_excludes(self, rng):
        q = rng.normal(size=(1, 4))
        k = rng.normal(size=(3, 4))
        v = rng.normal(size=(3, 4))
        mask = np.array([[True, True, False]])
        out = ops.attention(q, k, v, mask=mask)
        ref = ops.attention(q, k[:2], v[:2])
        np.testing.assert_allclose(out, ref)


class TestCausalMask:
    def test_prefill_is_lower_triangular(self):
        m = ops.causal_mask(4, 4)
        assert np.array_equal(m, np.tril(np.ones((4, 4), dtype=bool)))

    def test_decode_sees_everything(self):
        m = ops.causal_mask(1, 7)
        assert m.all()

    def test_partial_block(self):
        m = ops.causal_mask(2, 5)
        assert m[0].sum() == 4 and m[1].sum() == 5

    def test_rejects_more_queries_than_keys(self):
        with pytest.raises(ValueError):
            ops.causal_mask(5, 3)


class TestRepeatKV:
    def test_expansion(self, rng):
        x = rng.normal(size=(2, 5, 3))
        y = ops.repeat_kv(x, 3)
        assert y.shape == (6, 5, 3)
        np.testing.assert_array_equal(y[0], y[2])
        np.testing.assert_array_equal(y[3], x[1])


class TestCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        logits = np.full((3, 4), -100.0)
        targets = np.array([1, 2, 0])
        logits[np.arange(3), targets] = 100.0
        assert ops.cross_entropy(logits, targets) < 1e-6

    def test_uniform_is_log_vocab(self):
        logits = np.zeros((5, 8))
        targets = np.arange(5)
        assert np.isclose(ops.cross_entropy(logits, targets), np.log(8))


class TestSwiglu:
    def test_matches_composition(self, rng):
        x = rng.normal(size=(3, 6))
        wg = rng.normal(size=(6, 10))
        wu = rng.normal(size=(6, 10))
        wd = rng.normal(size=(10, 6))
        expected = (ops.silu(x @ wg) * (x @ wu)) @ wd
        np.testing.assert_allclose(ops.swiglu(x, wg, wu, wd), expected)

    def test_silu_fixed_points(self):
        assert ops.silu(np.array([0.0]))[0] == 0.0
        assert np.isclose(ops.silu(np.array([100.0]))[0], 100.0)
