"""Perplexity evaluation tests."""

import numpy as np

from repro.llm.perplexity import nll_per_token, perplexity, perplexity_increase
from repro.llm.model import Transformer
from tests.conftest import TINY


def test_uniform_logits_give_vocab_perplexity(tiny_model, tiny_tokens,
                                              monkeypatch):
    monkeypatch.setattr(
        tiny_model, "forward_full",
        lambda tokens, backend=None, block_size=256: np.zeros(
            (len(tokens), TINY.vocab_size)))
    assert np.isclose(perplexity(tiny_model, tiny_tokens), TINY.vocab_size)


def test_nll_length_and_burn_in(tiny_model, tiny_tokens):
    nll = nll_per_token(tiny_model, tiny_tokens)
    assert len(nll) == len(tiny_tokens) - 1
    burned = nll_per_token(tiny_model, tiny_tokens, burn_in=10)
    np.testing.assert_array_equal(burned, nll[10:])


def test_perplexity_positive_and_finite(tiny_model, tiny_tokens):
    ppl = perplexity(tiny_model, tiny_tokens)
    assert np.isfinite(ppl) and ppl > 1.0


def test_block_size_does_not_change_result(tiny_model, tiny_tokens):
    a = perplexity(tiny_model, tiny_tokens, block_size=9)
    b = perplexity(tiny_model, tiny_tokens, block_size=64)
    assert np.isclose(a, b)


def test_perplexity_increase():
    assert np.isclose(perplexity_increase(10.5, 10.0), 0.05)
    assert perplexity_increase(9.0, 10.0) < 0
