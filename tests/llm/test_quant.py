"""BF16 emulation tests, including the SCF sign-preservation property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.scf import sign_bits
from repro.llm.quant import Bf16KVStore, bf16_error_bound, to_bf16

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


def test_exactly_representable_values_unchanged():
    # Powers of two and small integers are exact in BF16.
    x = np.array([0.0, 1.0, -2.0, 0.5, 256.0, -1024.0])
    np.testing.assert_array_equal(to_bf16(x), x)


def test_rounding_error_within_bound():
    rng = np.random.default_rng(3)
    x = rng.normal(size=10_000) * 100.0
    err = np.abs(to_bf16(x) - x)
    assert (err <= bf16_error_bound(x) + 1e-30).all()


def test_mantissa_rounds_at_7_bits():
    # BF16 keeps 7 explicit mantissa bits: ULP at 1.0 is 2^-7.
    # 1 + 2^-9 rounds down to 1.0; 1 + 3*2^-9 (0.75 ULP) rounds up.
    assert to_bf16(np.array([1.0 + 2.0**-9]))[0] == 1.0
    assert to_bf16(np.array([1.0 + 3 * 2.0**-9]))[0] == 1.0 + 2.0**-7


@given(hnp.arrays(np.float64, 50,
                  elements=floats.filter(lambda v: v == 0 or abs(v) > 1e-30)))
@settings(max_examples=40, deadline=None)
def test_sign_bits_preserved(x):
    """The property Section 4 relies on: sign filtering is insensitive to
    the stored datatype.  (Negative denormals underflowing to -0.0 are
    excluded: our sign convention maps both zeros to 'positive'.)"""
    np.testing.assert_array_equal(sign_bits(to_bf16(x)), sign_bits(x))


def test_idempotent():
    rng = np.random.default_rng(0)
    x = to_bf16(rng.normal(size=100))
    np.testing.assert_array_equal(to_bf16(x), x)


def test_specials_preserved():
    x = np.array([np.inf, -np.inf])
    np.testing.assert_array_equal(to_bf16(x), x)
    assert np.isnan(to_bf16(np.array([np.nan]))[0])


def test_store_quantizes_and_concatenates():
    store = Bf16KVStore()
    rng = np.random.default_rng(1)
    a = rng.normal(size=(3, 4))
    b = rng.normal(size=(2, 4))
    store.append(a, a * 2)
    store.append(b, b * 2)
    assert len(store) == 5
    np.testing.assert_array_equal(store.keys[:3], to_bf16(a))
    np.testing.assert_array_equal(store.values[3:], to_bf16(b * 2))


def test_empty_store():
    store = Bf16KVStore()
    assert len(store) == 0
    assert store.keys.size == 0
