"""Optimizer and training-loop tests."""

import numpy as np
import pytest

from repro.llm.autograd import Tensor
from repro.llm.training import Adam, TrainResult, cosine_schedule, \
    sample_batches, train
from tests.conftest import TINY


class TestAdam:
    def test_single_step_matches_formula(self):
        p = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        opt = Adam({"p": p}, lr=0.1, clip_norm=0.0)
        p.grad = np.array([0.5, -0.5])
        opt.step()
        # After one step Adam moves by ~lr * sign(grad) (bias-corrected).
        np.testing.assert_allclose(p.data, [1.0 - 0.1, 2.0 + 0.1], atol=1e-6)

    def test_clipping_bounds_update(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = Adam({"p": p}, lr=1.0, clip_norm=1.0)
        p.grad = np.full(4, 100.0)
        norm = opt.step()
        assert norm > 1.0
        assert np.linalg.norm(p.grad) <= 1.0 + 1e-9

    def test_zero_grad(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        opt = Adam({"p": p})
        p.grad = np.ones(2)
        opt.zero_grad()
        assert p.grad is None

    def test_skips_params_without_grad(self):
        p = Tensor(np.ones(2), requires_grad=True)
        q = Tensor(np.ones(2), requires_grad=True)
        opt = Adam({"p": p, "q": q}, lr=0.5)
        p.grad = np.ones(2)
        opt.step()
        np.testing.assert_array_equal(q.data, np.ones(2))
        assert not np.array_equal(p.data, np.ones(2))


class TestSchedule:
    def test_warmup_then_decay(self):
        lr_at = cosine_schedule(1.0, warmup=10, total=100)
        assert lr_at(0) < lr_at(9) <= 1.0
        assert np.isclose(lr_at(9), 1.0)
        assert lr_at(50) < lr_at(10)
        assert np.isclose(lr_at(99), 0.1, atol=0.01)


class TestBatches:
    def test_window_shape_and_bounds(self):
        tokens = np.arange(1000)
        gen = sample_batches(tokens, batch_size=4, seq_len=16,
                             rng=np.random.default_rng(0))
        batch = next(gen)
        assert batch.shape == (4, 17)
        # Windows are contiguous slices of the stream.
        for row in batch:
            np.testing.assert_array_equal(np.diff(row), 1)

    def test_rejects_short_stream(self):
        gen = sample_batches(np.arange(5), 1, 16, np.random.default_rng(0))
        with pytest.raises(ValueError):
            next(gen)


class TestTrain:
    def test_loss_decreases_and_deterministic(self, rng):
        tokens = rng.integers(0, TINY.vocab_size, size=4000)
        a = train(TINY, tokens, steps=25, batch_size=4, seq_len=32, seed=0)
        b = train(TINY, tokens, steps=25, batch_size=4, seq_len=32, seed=0)
        assert isinstance(a, TrainResult)
        assert len(a.losses) == 25
        assert a.final_loss < a.losses[0]
        np.testing.assert_array_equal(a.weights["wq.0"], b.weights["wq.0"])

    def test_log_callback(self, rng):
        tokens = rng.integers(0, TINY.vocab_size, size=2000)
        seen = []
        train(TINY, tokens, steps=3, batch_size=2, seq_len=16,
              log=lambda step, loss: seen.append((step, loss)))
        assert [s for s, _ in seen] == [0, 1, 2]
