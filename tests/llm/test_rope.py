"""RoPE properties that LongSight depends on."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.rope import apply_rope, rope_cos_sin, rope_frequencies


def test_position_zero_is_identity(rng):
    x = rng.normal(size=(3, 5, 8))
    out = apply_rope(x, np.zeros(5, dtype=int))
    np.testing.assert_allclose(out, x, atol=1e-12)


def test_norm_preserved(rng):
    x = rng.normal(size=(2, 6, 16))
    out = apply_rope(x, np.arange(100, 106))
    np.testing.assert_allclose(np.linalg.norm(out, axis=-1),
                               np.linalg.norm(x, axis=-1))


@given(st.integers(min_value=0, max_value=500),
       st.integers(min_value=0, max_value=500),
       st.integers(min_value=0, max_value=300))
@settings(max_examples=30, deadline=None)
def test_relative_position_property(m, n, shift):
    """q(m) . k(n) must depend only on m - n — the property that makes
    post-RoPE keys a meaningful similarity database."""
    rng = np.random.default_rng(5)
    q = rng.normal(size=(1, 8))
    k = rng.normal(size=(1, 8))
    dot_a = apply_rope(q, np.array([m]))[0] @ apply_rope(k, np.array([n]))[0]
    dot_b = apply_rope(q, np.array([m + shift]))[0] \
        @ apply_rope(k, np.array([n + shift]))[0]
    assert np.isclose(dot_a, dot_b, atol=1e-9)


def test_frequencies_decreasing():
    f = rope_frequencies(32, theta=10000.0)
    assert f[0] == 1.0
    assert np.all(np.diff(f) < 0)


def test_cos_sin_shapes():
    cos, sin = rope_cos_sin(np.arange(7), 16)
    assert cos.shape == sin.shape == (7, 8)
    np.testing.assert_allclose(cos**2 + sin**2, 1.0)


def test_low_frequency_dims_barely_rotate():
    """Large theta keeps tail dimensions nearly static over long ranges —
    the mechanism by which a pre-RoPE key bias yields clustered post-RoPE
    keys (see ModelConfig.qk_bias)."""
    x = np.ones((1, 32))
    out = apply_rope(x, np.array([1000]), theta=500000.0)
    # The slowest plane rotates by 1000 * 500000^(-30/32) ~ 0.0046 rad.
    assert abs(out[0, 15] - 1.0) < 0.01
    assert abs(out[0, 0] - np.cos(1000.0) + np.sin(1000.0)) < 1e-6
