"""Inference model behavior: shapes, causality, cache equivalences."""

import numpy as np
import pytest

from repro.llm.kv_cache import KVCache
from repro.llm.model import DenseBackend, Transformer, init_weights
from tests.conftest import TINY, TINY_NOBIAS


class TestInitWeights:
    def test_deterministic(self):
        a = init_weights(TINY, seed=3)
        b = init_weights(TINY, seed=3)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_seed_changes_weights(self):
        a = init_weights(TINY, seed=3)
        b = init_weights(TINY, seed=4)
        assert not np.array_equal(a["wq.0"], b["wq.0"])

    def test_bias_keys_follow_config(self):
        with_bias = init_weights(TINY, seed=0)
        without = init_weights(TINY_NOBIAS, seed=0)
        assert "bk.0" in with_bias and "bq.0" in with_bias
        assert "bk.0" not in without

    def test_shapes(self):
        w = init_weights(TINY)
        assert w["embed"].shape == (TINY.vocab_size, TINY.d_model)
        assert w["wk.0"].shape == (TINY.d_model, TINY.kv_dim)
        assert w["w_down.1"].shape == (TINY.d_ff, TINY.d_model)


class TestForward:
    def test_logits_shape(self, tiny_model, tiny_tokens):
        logits = tiny_model.forward_full(tiny_tokens)
        assert logits.shape == (len(tiny_tokens), TINY.vocab_size)
        assert np.isfinite(logits).all()

    def test_block_size_invariance(self, tiny_model, tiny_tokens):
        a = tiny_model.forward_full(tiny_tokens, block_size=7)
        b = tiny_model.forward_full(tiny_tokens, block_size=96)
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_causality(self, tiny_model, rng):
        """Changing a future token must not affect earlier logits."""
        tokens = rng.integers(0, TINY.vocab_size, size=30)
        base = tiny_model.forward_full(tokens)
        mutated = tokens.copy()
        mutated[-1] = (mutated[-1] + 1) % TINY.vocab_size
        out = tiny_model.forward_full(mutated)
        np.testing.assert_allclose(base[:-1], out[:-1], atol=1e-12)
        assert not np.allclose(base[-1], out[-1])

    def test_prefill_matches_forward_full(self, tiny_model, tiny_tokens):
        full = tiny_model.forward_full(tiny_tokens)
        cache = KVCache(TINY)
        last = tiny_model.prefill(tiny_tokens, cache, block_size=11)
        np.testing.assert_allclose(last, full[-1], atol=1e-10)
        assert len(cache) == len(tiny_tokens)

    def test_decode_matches_forward_full(self, tiny_model, tiny_tokens):
        """prefill + decode_step must reproduce teacher-forced logits."""
        split = 60
        full = tiny_model.forward_full(tiny_tokens)
        cache = KVCache(TINY)
        tiny_model.prefill(tiny_tokens[:split], cache)
        for t in range(split, len(tiny_tokens)):
            logits = tiny_model.decode_step(int(tiny_tokens[t]), cache)
            np.testing.assert_allclose(logits, full[t], atol=1e-9)

    def test_no_bias_config_runs(self, rng):
        model = Transformer(TINY_NOBIAS, seed=2)
        tokens = rng.integers(0, TINY_NOBIAS.vocab_size, size=20)
        logits = model.forward_full(tokens)
        assert np.isfinite(logits).all()


class TestDenseBackend:
    def test_gqa_grouping(self, rng):
        """Query heads of the same group must use their own queries but the
        shared KV head."""
        backend = DenseBackend()
        q = rng.normal(size=(4, 3, 8))
        k = rng.normal(size=(2, 10, 8))
        v = rng.normal(size=(2, 10, 8))
        out = backend.forward(0, q, k, v)
        assert out.shape == (4, 3, 8)
        # Head 0 and 1 share kv head 0: same K/V, different q -> different out
        assert not np.allclose(out[0], out[1])
        # Identical queries on the same KV head give identical outputs.
        q2 = q.copy()
        q2[1] = q2[0]
        out2 = backend.forward(0, q2, k, v)
        np.testing.assert_allclose(out2[0], out2[1])


class TestConfigValidation:
    def test_bad_gqa_ratio(self):
        from repro.llm.config import ModelConfig

        with pytest.raises(ValueError):
            ModelConfig(name="bad", vocab_size=10, n_layers=1, n_q_heads=5,
                        n_kv_heads=2, head_dim=8, d_ff=16)

    def test_odd_head_dim(self):
        from repro.llm.config import ModelConfig

        with pytest.raises(ValueError):
            ModelConfig(name="bad", vocab_size=10, n_layers=1, n_q_heads=2,
                        n_kv_heads=2, head_dim=7, d_ff=16)

    def test_derived_dims(self):
        assert TINY.d_model == 32
        assert TINY.gqa_group_size == 2
        assert TINY.kv_dim == 16
        assert TINY.kv_bytes_per_token() == 2 * 16 * 2 * 2
