"""Generation tests."""

import numpy as np

from repro.llm.kv_cache import KVCache
from repro.llm.sampling import generate
from tests.conftest import TINY


def test_greedy_is_deterministic(tiny_model, rng):
    prompt = rng.integers(0, TINY.vocab_size, size=12)
    a = generate(tiny_model, prompt, n_new=8)
    b = generate(tiny_model, prompt, n_new=8)
    np.testing.assert_array_equal(a, b)
    assert a.shape == (8,)


def test_greedy_matches_argmax_chain(tiny_model, rng):
    prompt = rng.integers(0, TINY.vocab_size, size=10)
    out = generate(tiny_model, prompt, n_new=3)
    cache = KVCache(TINY)
    logits = tiny_model.prefill(prompt, cache)
    expected = []
    for _ in range(3):
        token = int(np.argmax(logits))
        expected.append(token)
        logits = tiny_model.decode_step(token, cache)
    np.testing.assert_array_equal(out, expected)


def test_temperature_sampling_seeded(tiny_model, rng):
    prompt = rng.integers(0, TINY.vocab_size, size=10)
    a = generate(tiny_model, prompt, n_new=6, temperature=1.0, seed=1)
    b = generate(tiny_model, prompt, n_new=6, temperature=1.0, seed=1)
    c = generate(tiny_model, prompt, n_new=6, temperature=1.0, seed=2)
    np.testing.assert_array_equal(a, b)
    assert a.shape == c.shape == (6,)


def test_tokens_in_vocab(tiny_model, rng):
    prompt = rng.integers(0, TINY.vocab_size, size=10)
    out = generate(tiny_model, prompt, n_new=10, temperature=2.0, seed=0)
    assert ((0 <= out) & (out < TINY.vocab_size)).all()
