"""Gradient checks for the autograd engine, op by op."""

import numpy as np
import pytest

from repro.llm import autograd as ag


def numeric_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        x[i] += eps
        up = f()
        x[i] -= 2 * eps
        down = f()
        x[i] += eps
        grad[i] = (up - down) / (2 * eps)
        it.iternext()
    return grad


def check(build, *tensors, atol=1e-7):
    """Compare autograd gradients of scalar `build()` against finite diffs."""
    for t in tensors:
        t.grad = None
    loss = build()
    loss.backward()
    for t in tensors:
        expected = numeric_grad(lambda: float(build().data), t.data)
        assert t.grad is not None
        np.testing.assert_allclose(t.grad, expected, atol=atol)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


def test_add_broadcast(rng):
    a = ag.Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    b = ag.Tensor(rng.normal(size=(4,)), requires_grad=True)
    check(lambda: (a + b).sum(), a, b)


def test_mul_broadcast(rng):
    a = ag.Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
    b = ag.Tensor(rng.normal(size=(3, 1)), requires_grad=True)
    check(lambda: (a * b).sum(), a, b)


def test_sub_div(rng):
    a = ag.Tensor(rng.normal(size=(3, 3)) + 3.0, requires_grad=True)
    b = ag.Tensor(rng.normal(size=(3, 3)) + 3.0, requires_grad=True)
    check(lambda: (a / b - b).sum(), a, b)


def test_pow(rng):
    a = ag.Tensor(np.abs(rng.normal(size=(5,))) + 0.5, requires_grad=True)
    check(lambda: (a ** 3.0).sum(), a)
    check(lambda: (a ** -0.5).sum(), a)


def test_matmul_2d(rng):
    a = ag.Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    b = ag.Tensor(rng.normal(size=(4, 2)), requires_grad=True)
    check(lambda: (a @ b).sum(), a, b)


def test_matmul_batched(rng):
    a = ag.Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
    b = ag.Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
    check(lambda: (a @ b).sum(), a, b)


def test_matmul_broadcast_rhs(rng):
    a = ag.Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
    b = ag.Tensor(rng.normal(size=(4, 5)), requires_grad=True)
    check(lambda: (a @ b).sum(), a, b)


def test_reshape_transpose_swapaxes(rng):
    a = ag.Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
    check(lambda: a.reshape(6, 4).sum(), a)
    check(lambda: a.transpose(2, 0, 1).sum(), a)
    check(lambda: a.swapaxes(0, 2).sum(), a)


def test_getitem_slice_and_fancy(rng):
    a = ag.Tensor(rng.normal(size=(4, 6)), requires_grad=True)
    check(lambda: a[1:3, ::2].sum(), a)
    idx = np.array([0, 0, 2])
    check(lambda: a[:, idx].sum(), a)


def test_sum_mean_axes(rng):
    a = ag.Tensor(rng.normal(size=(3, 4, 5)), requires_grad=True)
    check(lambda: a.sum(axis=1).sum(), a)
    check(lambda: a.mean(axis=-1, keepdims=True).sum(), a)
    check(lambda: a.mean(), a)


def test_exp_log_sqrt(rng):
    a = ag.Tensor(np.abs(rng.normal(size=(4,))) + 1.0, requires_grad=True)
    check(lambda: (a.exp() + a.log() + a.sqrt()).sum(), a)


def test_silu(rng):
    a = ag.Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    check(lambda: a.silu().sum(), a)


def test_softmax_weighted(rng):
    a = ag.Tensor(rng.normal(size=(3, 5)), requires_grad=True)
    w = np.arange(5.0)
    check(lambda: (a.softmax(-1) * w).sum(), a)


def test_concat(rng):
    a = ag.Tensor(rng.normal(size=(3, 2)), requires_grad=True)
    b = ag.Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    check(lambda: (ag.concat([a, b], axis=-1) ** 2.0).sum(), a, b)


def test_embedding(rng):
    w = ag.Tensor(rng.normal(size=(10, 4)), requires_grad=True)
    idx = np.array([[1, 2], [2, 9]])
    check(lambda: (ag.embedding(w, idx) ** 2.0).sum(), w)


def test_rms_norm(rng):
    x = ag.Tensor(rng.normal(size=(3, 6)), requires_grad=True)
    w = ag.Tensor(np.ones(6) + 0.1 * rng.normal(size=6), requires_grad=True)
    check(lambda: (ag.rms_norm(x, w) ** 2.0).sum(), x, w, atol=1e-6)


def test_softmax_cross_entropy(rng):
    logits = ag.Tensor(rng.normal(size=(4, 7)), requires_grad=True)
    targets = rng.integers(0, 7, size=4)
    check(lambda: ag.softmax_cross_entropy(logits, targets), logits)


def test_cross_entropy_matches_reference(rng):
    from repro.llm.ops import cross_entropy

    logits = rng.normal(size=(5, 9))
    targets = rng.integers(0, 9, size=5)
    t = ag.Tensor(logits)
    loss = ag.softmax_cross_entropy(t, targets)
    assert np.isclose(float(loss.data), cross_entropy(logits, targets))


def test_grad_accumulates_over_reuse(rng):
    a = ag.Tensor(rng.normal(size=(3,)), requires_grad=True)
    check(lambda: (a * a + a).sum(), a)


def test_backward_requires_scalar():
    a = ag.Tensor(np.ones((2, 2)), requires_grad=True)
    with pytest.raises(ValueError):
        (a * 2).backward()


def test_no_grad_without_requires():
    a = ag.Tensor(np.ones(3))
    b = ag.Tensor(np.ones(3), requires_grad=True)
    (a * b).sum().backward()
    assert a.grad is None
    assert b.grad is not None
