"""The trainable (autograd) and inference models must agree exactly.

The autograd twin runs entirely in float64, so the exact-equivalence tests
pin the inference model's KV cache to float64 too (``kv_dtype``); a separate
test bounds the drift the default float32 cache introduces.
"""

import dataclasses

import numpy as np

from repro.llm.model import Transformer, TrainableTransformer, init_weights
from tests.conftest import TINY, TINY_NOBIAS

TINY64 = dataclasses.replace(TINY, kv_dtype="float64")
TINY64_NOBIAS = dataclasses.replace(TINY_NOBIAS, kv_dtype="float64")


def test_forward_equivalence(rng):
    weights = init_weights(TINY64, seed=11)
    inference = Transformer(TINY64, weights)
    trainable = TrainableTransformer(TINY64, weights)
    tokens = rng.integers(0, TINY64.vocab_size, size=35)
    a = inference.forward_full(tokens, block_size=13)
    b = trainable.forward(tokens[None, :]).data[0]
    np.testing.assert_allclose(a, b, atol=1e-10)


def test_forward_equivalence_no_bias(rng):
    weights = init_weights(TINY64_NOBIAS, seed=11)
    inference = Transformer(TINY64_NOBIAS, weights)
    trainable = TrainableTransformer(TINY64_NOBIAS, weights)
    tokens = rng.integers(0, TINY64_NOBIAS.vocab_size, size=24)
    np.testing.assert_allclose(
        inference.forward_full(tokens),
        trainable.forward(tokens[None, :]).data[0], atol=1e-10)


def test_float32_cache_stays_close_to_float64(rng):
    weights = init_weights(TINY, seed=11)
    tokens = rng.integers(0, TINY.vocab_size, size=35)
    f32 = Transformer(TINY, weights).forward_full(tokens)
    f64 = Transformer(TINY64, weights).forward_full(tokens)
    np.testing.assert_allclose(f32, f64, atol=1e-3)


def test_batched_forward_matches_per_sequence(rng):
    weights = init_weights(TINY, seed=2)
    trainable = TrainableTransformer(TINY, weights)
    batch = rng.integers(0, TINY.vocab_size, size=(3, 20))
    joint = trainable.forward(batch).data
    for i in range(3):
        single = trainable.forward(batch[i : i + 1]).data[0]
        np.testing.assert_allclose(joint[i], single, atol=1e-10)


def test_export_weights_round_trip(rng):
    trainable = TrainableTransformer(TINY64, seed=4)
    exported = trainable.export_weights()
    inference = Transformer(TINY64, exported)
    tokens = rng.integers(0, TINY64.vocab_size, size=18)
    np.testing.assert_allclose(
        inference.forward_full(tokens),
        trainable.forward(tokens[None, :]).data[0], atol=1e-10)


def test_loss_is_mean_next_token_nll(rng):
    from repro.llm.ops import cross_entropy

    weights = init_weights(TINY, seed=6)
    trainable = TrainableTransformer(TINY, weights)
    tokens = rng.integers(0, TINY.vocab_size, size=(2, 16))
    loss = float(trainable.loss(tokens).data)
    logits = trainable.forward(tokens[:, :-1]).data
    assert np.isclose(loss, cross_entropy(logits, tokens[:, 1:]))
