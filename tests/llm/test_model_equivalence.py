"""The trainable (autograd) and inference models must agree exactly."""

import numpy as np

from repro.llm.model import Transformer, TrainableTransformer, init_weights
from tests.conftest import TINY, TINY_NOBIAS


def test_forward_equivalence(rng):
    weights = init_weights(TINY, seed=11)
    inference = Transformer(TINY, weights)
    trainable = TrainableTransformer(TINY, weights)
    tokens = rng.integers(0, TINY.vocab_size, size=35)
    a = inference.forward_full(tokens, block_size=13)
    b = trainable.forward(tokens[None, :]).data[0]
    np.testing.assert_allclose(a, b, atol=1e-10)


def test_forward_equivalence_no_bias(rng):
    weights = init_weights(TINY_NOBIAS, seed=11)
    inference = Transformer(TINY_NOBIAS, weights)
    trainable = TrainableTransformer(TINY_NOBIAS, weights)
    tokens = rng.integers(0, TINY_NOBIAS.vocab_size, size=24)
    np.testing.assert_allclose(
        inference.forward_full(tokens),
        trainable.forward(tokens[None, :]).data[0], atol=1e-10)


def test_batched_forward_matches_per_sequence(rng):
    weights = init_weights(TINY, seed=2)
    trainable = TrainableTransformer(TINY, weights)
    batch = rng.integers(0, TINY.vocab_size, size=(3, 20))
    joint = trainable.forward(batch).data
    for i in range(3):
        single = trainable.forward(batch[i : i + 1]).data[0]
        np.testing.assert_allclose(joint[i], single, atol=1e-10)


def test_export_weights_round_trip(rng):
    trainable = TrainableTransformer(TINY, seed=4)
    exported = trainable.export_weights()
    inference = Transformer(TINY, exported)
    tokens = rng.integers(0, TINY.vocab_size, size=18)
    np.testing.assert_allclose(
        inference.forward_full(tokens),
        trainable.forward(tokens[None, :]).data[0], atol=1e-10)


def test_loss_is_mean_next_token_nll(rng):
    from repro.llm.ops import cross_entropy

    weights = init_weights(TINY, seed=6)
    trainable = TrainableTransformer(TINY, weights)
    tokens = rng.integers(0, TINY.vocab_size, size=(2, 16))
    loss = float(trainable.loss(tokens).data)
    logits = trainable.forward(tokens[:, :-1]).data
    assert np.isclose(loss, cross_entropy(logits, tokens[:, 1:]))
