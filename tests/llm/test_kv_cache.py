"""KV cache behavior, including the dense/sparse split LongSight relies on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.kv_cache import KVCache, LayerKV
from tests.conftest import TINY


def _kv(rng, n, heads=2, dim=8):
    return rng.normal(size=(heads, n, dim)), rng.normal(size=(heads, n, dim))


class TestLayerKV:
    def test_append_and_read_back(self, rng):
        layer = LayerKV(2, 8, initial_capacity=4)
        k1, v1 = _kv(rng, 3)
        k2, v2 = _kv(rng, 5)
        layer.append(k1, v1)
        layer.append(k2, v2)
        assert len(layer) == 8
        np.testing.assert_array_equal(layer.keys[:, :3], k1)
        np.testing.assert_array_equal(layer.keys[:, 3:], k2)
        np.testing.assert_array_equal(layer.values[:, 3:], v2)

    def test_growth_preserves_contents(self, rng):
        layer = LayerKV(2, 8, initial_capacity=2)
        chunks = [_kv(rng, 7) for _ in range(6)]
        for k, v in chunks:
            layer.append(k, v)
        expected = np.concatenate([k for k, _ in chunks], axis=1)
        np.testing.assert_array_equal(layer.keys, expected)

    def test_shape_validation(self, rng):
        layer = LayerKV(2, 8)
        k, v = _kv(rng, 3)
        with pytest.raises(ValueError):
            layer.append(k, v[:, :2])
        with pytest.raises(ValueError):
            layer.append(k[:1], v[:1])

    @given(st.lists(st.integers(min_value=1, max_value=9), min_size=1,
                    max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_length_is_sum_of_appends(self, sizes):
        rng = np.random.default_rng(0)
        layer = LayerKV(1, 4, initial_capacity=1)
        for n in sizes:
            k, v = _kv(rng, n, heads=1, dim=4)
            layer.append(k, v)
        assert len(layer) == sum(sizes)


class TestWindowSplit:
    def _filled(self, rng, n):
        cache = KVCache(TINY)
        for layer in range(TINY.n_layers):
            k, v = _kv(rng, n, TINY.n_kv_heads, TINY.head_dim)
            cache.append(layer, k, v)
        return cache

    def test_short_context_fully_dense(self, rng):
        cache = self._filled(rng, 10)
        k, v, pos = cache.window_view(0, window=8, n_sink=4)
        assert k.shape[1] == 10
        np.testing.assert_array_equal(pos, np.arange(10))
        ko, vo, pos_o = cache.offloaded_view(0, window=8, n_sink=4)
        assert ko.shape[1] == 0 and len(pos_o) == 0

    def test_split_partitions_positions(self, rng):
        cache = self._filled(rng, 50)
        _, _, dense = cache.window_view(1, window=16, n_sink=4)
        _, _, sparse = cache.offloaded_view(1, window=16, n_sink=4)
        combined = np.sort(np.concatenate([dense, sparse]))
        np.testing.assert_array_equal(combined, np.arange(50))
        assert set(dense[:4]) == {0, 1, 2, 3}          # sinks
        assert set(dense[4:]) == set(range(34, 50))     # recent window

    def test_views_match_stored_data(self, rng):
        cache = self._filled(rng, 40)
        k, v, pos = cache.offloaded_view(0, window=8, n_sink=2)
        np.testing.assert_array_equal(k, cache.layers[0].keys[:, pos])
        np.testing.assert_array_equal(v, cache.layers[0].values[:, pos])

    def test_len_tracks_tokens(self, rng):
        cache = self._filled(rng, 13)
        assert len(cache) == 13
