"""KV cache behavior, including the dense/sparse split LongSight relies on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.kv_cache import KVCache, LayerKV
from tests.conftest import TINY


def _kv(rng, n, heads=2, dim=8):
    # float32 matches LayerKV's default storage dtype, so read-back is exact.
    return (rng.normal(size=(heads, n, dim)).astype(np.float32),
            rng.normal(size=(heads, n, dim)).astype(np.float32))


class TestLayerKV:
    def test_append_and_read_back(self, rng):
        layer = LayerKV(2, 8, initial_capacity=4)
        k1, v1 = _kv(rng, 3)
        k2, v2 = _kv(rng, 5)
        layer.append(k1, v1)
        layer.append(k2, v2)
        assert len(layer) == 8
        np.testing.assert_array_equal(layer.keys[:, :3], k1)
        np.testing.assert_array_equal(layer.keys[:, 3:], k2)
        np.testing.assert_array_equal(layer.values[:, 3:], v2)

    def test_growth_preserves_contents(self, rng):
        layer = LayerKV(2, 8, initial_capacity=2)
        chunks = [_kv(rng, 7) for _ in range(6)]
        for k, v in chunks:
            layer.append(k, v)
        expected = np.concatenate([k for k, _ in chunks], axis=1)
        np.testing.assert_array_equal(layer.keys, expected)

    def test_shape_validation(self, rng):
        layer = LayerKV(2, 8)
        k, v = _kv(rng, 3)
        with pytest.raises(ValueError):
            layer.append(k, v[:, :2])
        with pytest.raises(ValueError):
            layer.append(k[:1], v[:1])

    @given(st.lists(st.integers(min_value=1, max_value=9), min_size=1,
                    max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_length_is_sum_of_appends(self, sizes):
        rng = np.random.default_rng(0)
        layer = LayerKV(1, 4, initial_capacity=1)
        for n in sizes:
            k, v = _kv(rng, n, heads=1, dim=4)
            layer.append(k, v)
        assert len(layer) == sum(sizes)


class TestDtypeAndReserve:
    def test_default_dtype_is_float32(self, rng):
        layer = LayerKV(2, 8)
        k, v = _kv(rng, 3)
        layer.append(k, v)
        assert layer.keys.dtype == np.float32
        assert layer.values.dtype == np.float32

    def test_dtype_configurable(self, rng):
        layer = LayerKV(2, 8, dtype=np.float64)
        k = rng.normal(size=(2, 3, 8))
        layer.append(k, k)
        assert layer.keys.dtype == np.float64
        np.testing.assert_array_equal(layer.keys, k)

    def test_kv_dtype_threads_through_model_config(self):
        import dataclasses

        assert KVCache(TINY).layers[0].keys.dtype == np.float32
        tiny64 = dataclasses.replace(TINY, kv_dtype="float64")
        assert KVCache(tiny64).layers[0].keys.dtype == np.float64

    def test_reserve_prevents_repeated_growth(self, rng):
        layer = LayerKV(2, 8, initial_capacity=4)
        layer.reserve(1000)
        grows_after_reserve = layer.n_grows
        assert grows_after_reserve == 1
        for _ in range(10):
            k, v = _kv(rng, 100)
            layer.append(k, v)
        assert layer.n_grows == grows_after_reserve
        assert len(layer) == 1000

    def test_reserve_is_noop_when_capacity_suffices(self):
        layer = LayerKV(2, 8, initial_capacity=64)
        layer.reserve(10)
        assert layer.n_grows == 0


class TestSignCache:
    def test_disabled_by_default(self, rng):
        layer = LayerKV(2, 8)
        with pytest.raises(RuntimeError):
            _ = layer.packed_signs

    def test_incremental_packing_counts_each_token_once(self, rng):
        """Appending N tokens packs signs for exactly those N tokens."""
        layer = LayerKV(2, 8, initial_capacity=2)
        layer.enable_sign_cache()
        for n in (5, 1, 7, 3):
            k, v = _kv(rng, n)
            layer.append(k, v)
        assert layer.signs_packed_total == 16
        assert len(layer) == 16

    def test_enable_after_appends_packs_backlog_once(self, rng):
        layer = LayerKV(2, 8)
        k, v = _kv(rng, 9)
        layer.append(k, v)
        layer.enable_sign_cache()
        assert layer.signs_packed_total == 9
        k2, v2 = _kv(rng, 4)
        layer.append(k2, v2)
        assert layer.signs_packed_total == 13

    def test_packed_signs_match_batch_packing(self, rng):
        from repro.core.scf import pack_signs

        layer = LayerKV(2, 8, initial_capacity=2)
        layer.enable_sign_cache()
        for n in (3, 6, 2):
            k, v = _kv(rng, n)
            layer.append(k, v)
        np.testing.assert_array_equal(layer.packed_signs,
                                      pack_signs(layer.keys))

    def test_packed_signs_with_rotation(self, rng):
        from repro.core.scf import pack_signs

        rot = np.linalg.qr(rng.normal(size=(2, 8, 8)))[0]
        layer = LayerKV(2, 8)
        layer.enable_sign_cache(rotations=rot)
        k, v = _kv(rng, 12)
        layer.append(k, v)
        np.testing.assert_array_equal(
            layer.packed_signs, pack_signs(np.matmul(layer.keys, rot)))

    def test_rotation_shape_validated(self, rng):
        layer = LayerKV(2, 8)
        with pytest.raises(ValueError):
            layer.enable_sign_cache(rotations=np.eye(8)[None])

    def test_survives_growth(self, rng):
        from repro.core.scf import pack_signs

        layer = LayerKV(2, 8, initial_capacity=2)
        layer.enable_sign_cache()
        for _ in range(5):
            k, v = _kv(rng, 7)
            layer.append(k, v)
        assert layer.n_grows > 0
        np.testing.assert_array_equal(layer.packed_signs,
                                      pack_signs(layer.keys))

    def test_kv_cache_enable_is_idempotent(self, rng):
        cache = KVCache(TINY)
        k = rng.normal(size=(TINY.n_kv_heads, 6, TINY.head_dim))
        cache.append(0, k, k)
        cache.enable_sign_cache()
        packed_once = cache.layers[0].signs_packed_total
        cache.enable_sign_cache()
        assert cache.layers[0].signs_packed_total == packed_once
        assert cache.sign_cache_enabled


class TestWindowSplit:
    def _filled(self, rng, n):
        cache = KVCache(TINY)
        for layer in range(TINY.n_layers):
            k, v = _kv(rng, n, TINY.n_kv_heads, TINY.head_dim)
            cache.append(layer, k, v)
        return cache

    def test_short_context_fully_dense(self, rng):
        cache = self._filled(rng, 10)
        k, v, pos = cache.window_view(0, window=8, n_sink=4)
        assert k.shape[1] == 10
        np.testing.assert_array_equal(pos, np.arange(10))
        ko, vo, pos_o = cache.offloaded_view(0, window=8, n_sink=4)
        assert ko.shape[1] == 0 and len(pos_o) == 0

    def test_split_partitions_positions(self, rng):
        cache = self._filled(rng, 50)
        _, _, dense = cache.window_view(1, window=16, n_sink=4)
        _, _, sparse = cache.offloaded_view(1, window=16, n_sink=4)
        combined = np.sort(np.concatenate([dense, sparse]))
        np.testing.assert_array_equal(combined, np.arange(50))
        assert set(dense[:4]) == {0, 1, 2, 3}          # sinks
        assert set(dense[4:]) == set(range(34, 50))     # recent window

    def test_views_match_stored_data(self, rng):
        cache = self._filled(rng, 40)
        k, v, pos = cache.offloaded_view(0, window=8, n_sink=2)
        np.testing.assert_array_equal(k, cache.layers[0].keys[:, pos])
        np.testing.assert_array_equal(v, cache.layers[0].values[:, pos])

    def test_len_tracks_tokens(self, rng):
        cache = self._filled(rng, 13)
        assert len(cache) == 13


class TestFree:
    """Session-release path used by the serving engine (repro.serve)."""

    def test_layer_free_releases_and_blocks_append(self, rng):
        layer = LayerKV(2, 8, initial_capacity=16)
        k, v = _kv(rng, 5)
        layer.append(k, v)
        layer.free()
        assert layer.freed
        assert len(layer) == 0
        with pytest.raises(RuntimeError):
            layer.append(k, v)
        with pytest.raises(RuntimeError):
            layer.reserve(10)

    def test_layer_free_is_idempotent(self, rng):
        layer = LayerKV(2, 8)
        k, v = _kv(rng, 3)
        layer.append(k, v)
        layer.free()
        layer.free()
        assert layer.freed

    def test_cache_free_covers_all_layers(self, rng):
        cache = KVCache(TINY)
        for layer in range(TINY.n_layers):
            k, v = _kv(rng, 6, TINY.n_kv_heads, TINY.head_dim)
            cache.append(layer, k, v)
        assert not cache.freed
        cache.free()
        assert cache.freed
        assert all(layer.freed for layer in cache.layers)
        with pytest.raises(RuntimeError):
            cache.append(0, k, v)

    def test_free_with_sign_cache_enabled(self, rng):
        cache = KVCache(TINY)
        cache.enable_sign_cache()
        for layer in range(TINY.n_layers):
            k, v = _kv(rng, 6, TINY.n_kv_heads, TINY.head_dim)
            cache.append(layer, k, v)
        cache.free()
        assert cache.freed

    def test_admit_complete_churn(self, rng):
        """Regression for the serving engine's admit/complete cycle: many
        sessions created and freed in turn never interfere."""
        for _ in range(5):
            cache = KVCache(TINY)
            for layer in range(TINY.n_layers):
                k, v = _kv(rng, 9, TINY.n_kv_heads, TINY.head_dim)
                cache.append(layer, k, v)
            assert len(cache) == 9
            cache.free()
            assert cache.freed
