"""Property: cross-worker failover preserves bit-identity.

For *every* (gray-failure kind, onset step) pair hypothesis draws, a
two-worker durable fleet whose worker 0 goes gray mid-run must finish
the identical trace with token streams bit-identical to the fault-free
run — whether the sessions fail over (slow/stuck: snapshot + WAL suffix
into a fresh engine, live sessions shipped to the sibling) or the
worker self-heals (flapping at period 1 never strikes twice in a row).
"""

from __future__ import annotations

import pathlib
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.fleet import _build_fleet
from repro.bench.fleet_chaos import _fleet_outputs
from repro.fleet import HealthPolicy
from repro.system.faults import GRAY_KINDS, GrayFailurePlan

N_REQUESTS = 4
OUTPUT_TOKENS = 8
HEALTH = HealthPolicy(step_deadline_s=1.0, fail_after_deadline_misses=2)

#: fault-free reference outputs, computed once per module run.
_reference_cache = {}


def _run_fleet(model, system, requests, plan):
    with tempfile.TemporaryDirectory() as tmp:
        fleet = _build_fleet(
            2, model, system, blocks_per_worker=64, max_decode_batch=4,
            durable_root=pathlib.Path(tmp), snapshot_every=4,
            gray_plans=None if plan is None else {0: plan},
            health=HEALTH)
        report = fleet.run(requests)
        return report, _fleet_outputs(fleet)


def _reference(model, system, make_workload):
    if "outputs" not in _reference_cache:
        _, outputs = _run_fleet(model, system, make_workload(
            n_requests=N_REQUESTS, output_tokens=OUTPUT_TOKENS), None)
        _reference_cache["outputs"] = outputs
    return _reference_cache["outputs"]


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(kind=st.sampled_from(GRAY_KINDS), start=st.integers(2, 12))
def test_failover_bit_identical_for_every_kind_and_onset(
        kind, start, durable_model, longsight_system, make_workload):
    plan = GrayFailurePlan(
        kind=kind, start_step=start, stall_s=2.0,
        period=1 if kind == "flapping_worker" else 4)
    requests = make_workload(n_requests=N_REQUESTS,
                             output_tokens=OUTPUT_TOKENS)
    report, outputs = _run_fleet(durable_model, longsight_system,
                                 requests, plan)
    assert outputs == _reference(durable_model, longsight_system,
                                 make_workload)
    assert report.completed == N_REQUESTS
    assert report.shed == 0 and report.rejected == 0
    if kind == "flapping_worker":
        assert report.failovers == 0
    else:
        # Onset may postdate the whole run at late start steps; when the
        # stall did land, the worker must actually have failed over.
        assert report.failovers <= 1


def test_reference_outputs_are_nonempty(durable_model, longsight_system,
                                        make_workload):
    outputs = _reference(durable_model, longsight_system, make_workload)
    assert len(outputs) == N_REQUESTS
    assert all(len(tokens) == OUTPUT_TOKENS
               for tokens in outputs.values())
