"""Chaos x durability: supervised-offload degradation survives restore.

The satellite property: degradation the :class:`OffloadSupervisor`
records mid-decode (degraded tokens, fault-injector RNG position,
retry/repair telemetry) is part of the durable state — after a crash and
recovery the degraded_token_fraction must be identical to an
uninterrupted run, not merely "small".  A fault plan harsh enough to
degrade ~20% of sparse attempts makes any RNG-stream desync visible
immediately.
"""

import pytest

from repro.bench.serve import TINY_LS, TINY_MODEL
from repro.durable import DurableRun, recover
from repro.errors import WorkerKilledError
from repro.system.faults import CrashPlan, FaultPlan
from repro.system.supervisor import (SupervisedOffloadBackend,
                                     SupervisorPolicy)

pytestmark = pytest.mark.chaos

#: One lost offload retry, then degrade: with a 0.5 timeout rate the
#: degradation probability per sparse attempt is 0.25 — high enough that
#: a desynced RNG stream diverges within a step or two of the restore.
FAULT_PLAN = FaultPlan(cxl_timeout_rate=0.5, seed=3)
POLICY = SupervisorPolicy(max_retries=1)


def _supervised_factory():
    def make_backend(request):
        return SupervisedOffloadBackend(
            TINY_MODEL, TINY_LS, plan=FAULT_PLAN, policy=POLICY,
            uid=request.request_id, flush_granularity=1)
    return make_backend


@pytest.fixture
def supervised_builder(engine_builder):
    def build():
        return engine_builder(make_backend=_supervised_factory())
    return build


def _events_by_rid(run):
    return {r.request_id: (list(r.outputs), r.events.degraded_tokens,
                           r.events.n_tokens)
            for r in run.run._arrivals}


class TestDegradationSurvivesRestore:
    def test_degraded_fraction_identical_after_any_crash_point(
            self, tmp_path, supervised_builder, make_workload):
        reference = DurableRun(supervised_builder(), make_workload(),
                               tmp_path / "reference", snapshot_every=4)
        reference_report = reference.serve()
        # Non-vacuous: the plan must actually degrade tokens.
        assert reference_report.degraded_token_fraction > 0.0
        expected = _events_by_rid(reference)

        # kill_before_fsync is the adversarial kind here: the lost WAL
        # tail is *re-executed*, so the restored injector/supervisor RNG
        # streams must resume at exactly the snapshotted position.
        for kill_at in range(1, reference.steps + 1):
            directory = tmp_path / f"kill-{kill_at}"
            run = DurableRun(supervised_builder(), make_workload(),
                             directory, snapshot_every=4,
                             crash=CrashPlan(kill_at_step=kill_at,
                                             kind="kill_before_fsync"))
            with pytest.raises(WorkerKilledError):
                run.serve()
            run, _ = recover(directory, supervised_builder(),
                             snapshot_every=4)
            report = run.serve()
            assert _events_by_rid(run) == expected, \
                f"degradation diverged after crash at step {kill_at}"
            assert report.degraded_token_fraction \
                == reference_report.degraded_token_fraction

    def test_mid_decode_supervisor_state_is_restored_verbatim(
            self, tmp_path, supervised_builder, make_workload):
        """Directly before/after: the live backends' durable state at the
        restore point equals the state captured at the crash point."""
        directory = tmp_path / "mid"
        run = DurableRun(supervised_builder(), make_workload(), directory,
                         snapshot_every=4,
                         crash=CrashPlan(kill_at_step=10,
                                         kind="kill_after_fsync"))
        with pytest.raises(WorkerKilledError):
            run.serve()
        # The crashed object is still inspectable: capture the supervised
        # state of every live session at the moment of death.
        before = {r.request_id: r.backend.durable_state()
                  for r in run.run._arrivals
                  if r.backend is not None
                  and hasattr(r.backend, "durable_state")}
        fractions = {r.request_id: r.events.degraded_tokens
                     for r in run.run._arrivals}
        assert any(s["sparse_token_attempts"] > 0 for s in before.values())

        recovered, stats = recover(directory, supervised_builder(),
                                   snapshot_every=4)
        after = {r.request_id: r.backend.durable_state()
                 for r in recovered.run._arrivals
                 if r.backend is not None
                 and hasattr(r.backend, "durable_state")}
        assert after == before
        assert {r.request_id: r.events.degraded_tokens
                for r in recovered.run._arrivals} == fractions
        assert stats.snapshot_step + stats.steps_replayed == 10
