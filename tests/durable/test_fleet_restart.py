"""Fleet worker restart: restore-and-rejoin with exactly-once reporting."""

import collections

import pytest

from repro.bench.serve import TINY_LS
from repro.llm.config import LLAMA3_8B
from repro.obs import MetricsRegistry, Obs, Tracer
from repro.serve.crossval import backend_factory
from repro.serve.engine import AnalyticTiming
from repro.system.faults import CrashPlan
from repro.system.prefill import PrefillModel
from repro.fleet.router import FleetRouter, make_worker


@pytest.fixture
def make_fleet(durable_model, longsight_system):
    def build(root, crash_plans=None, n_workers=2, n_blocks=48):
        def timing_factory(obs):
            return AnalyticTiming(longsight_system, LLAMA3_8B,
                                  prefill=PrefillModel(), obs=obs)
        workers = [make_worker(i, durable_model,
                               backend_factory("longsight", TINY_LS),
                               n_blocks=n_blocks,
                               timing_factory=timing_factory,
                               durable_root=root)
                   for i in range(n_workers)]
        # Private bundle: router counters must not leak across tests
        # through the process-global default registry.
        obs = Obs(MetricsRegistry(enabled=True), Tracer(enabled=False))
        return FleetRouter(workers, snapshot_every=4,
                           crash_plans=crash_plans or {}, obs=obs)
    return build


def _fleet_outputs(router):
    outputs = {}
    for worker in router.workers:
        run = getattr(worker.run, "run", worker.run)  # unwrap DurableRun
        for request in run._arrivals:
            if id(request) not in run._departed:
                outputs[request.request_id] = list(request.outputs)
    return outputs


def _reported_rids(report):
    return [e.request_id for w in report.workers for e in w.events]


class TestRestoreAndRejoin:
    @pytest.mark.parametrize("kind", ["kill_after_fsync",
                                      "kill_before_fsync",
                                      "torn_snapshot"])
    @pytest.mark.parametrize("kill_at", [2, 5, 9])
    def test_killed_worker_restores_bit_identically(
            self, tmp_path, make_fleet, make_workload, kind, kill_at):
        reference_router = make_fleet(tmp_path / "ref")
        reference_report = reference_router.run(
            make_workload(n_requests=6, seed=11))
        reference = _fleet_outputs(reference_router)
        assert len(reference) == 6

        router = make_fleet(
            tmp_path / f"{kind}-{kill_at}",
            crash_plans={0: CrashPlan(kill_at_step=kill_at, kind=kind)})
        report = router.run(make_workload(n_requests=6, seed=11))
        assert router.worker_restores == 1
        assert len(router.recoveries) == 1
        assert _fleet_outputs(router) == reference
        assert sorted(_reported_rids(report)) \
            == sorted(_reported_rids(reference_report))

    def test_sessions_stay_home_instead_of_migrating(
            self, tmp_path, make_fleet, make_workload):
        """The point of restore-and-rejoin: a worker death must not
        scatter its sessions across the fleet."""
        reference_router = make_fleet(tmp_path / "ref")
        reference_router.run(make_workload(n_requests=6, seed=11))

        router = make_fleet(
            tmp_path / "crash",
            crash_plans={0: CrashPlan(kill_at_step=5)})
        router.run(make_workload(n_requests=6, seed=11))
        assert router.migrations == reference_router.migrations
        assert router.obs.metrics.counter("fleet.worker_restores").value \
            == 1


class TestExactlyOnceReporting:
    def test_restored_worker_never_double_reports(
            self, tmp_path, make_fleet, make_workload):
        """Satellite: every request id appears in exactly one worker's
        report, even when the worker serving it died and restored."""
        for kill_at in (2, 4, 7, 10):
            router = make_fleet(
                tmp_path / f"k{kill_at}",
                crash_plans={0: CrashPlan(kill_at_step=kill_at)})
            report = router.run(make_workload(n_requests=6, seed=11))
            counts = collections.Counter(_reported_rids(report))
            duplicates = {rid: n for rid, n in counts.items() if n > 1}
            assert not duplicates, \
                f"double-reported after kill at {kill_at}: {duplicates}"
            assert sorted(counts) == list(range(6))

    def test_departures_in_wal_tail_are_not_remigrated(
            self, tmp_path, make_fleet, make_workload):
        """A depart record in the unterminated WAL tail means the target
        already owns the session; the restored worker must honor it via
        the pending-departure path rather than re-migrating (which would
        double the session) or re-reporting it."""
        # Tight pools force preemption->migration traffic between the
        # two workers, so depart records land near crash points.
        for kill_at in (3, 6, 9):
            router = make_fleet(
                tmp_path / f"k{kill_at}",
                crash_plans={0: CrashPlan(kill_at_step=kill_at)},
                n_blocks=32)
            report = router.run(
                make_workload(n_requests=8, output_tokens=6, seed=13))
            counts = collections.Counter(_reported_rids(report))
            assert all(n == 1 for n in counts.values())
            assert sorted(counts) == list(range(8))
