"""Crash-recovery bit-identity: the headline property of this suite.

A durable run killed at *any* step boundary, by *any* crash kind, must —
after :func:`repro.durable.recover` and stepping to completion — produce
exactly the token streams of an uninterrupted run, for every session.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.durable import DurableRun, recover
from repro.errors import (ReplayDivergenceError, SnapshotCorruptError,
                          WorkerKilledError)
from repro.system.faults import CRASH_KINDS, CrashPlan


def _uninterrupted(engine_builder, make_workload, tmp_path,
                   snapshot_every=4):
    directory = tmp_path / "reference"
    run = DurableRun(engine_builder(), make_workload(), directory,
                     snapshot_every=snapshot_every)
    run.serve()
    outputs = {r.request_id: list(r.outputs) for r in run.run._arrivals}
    return outputs, run.steps


def _crash_and_recover(engine_builder, make_workload, directory, plan,
                       snapshot_every=4, fsync_every=8):
    """Serve under ``plan``; on the injected death, recover + finish."""
    run = DurableRun(engine_builder(), make_workload(), directory,
                     snapshot_every=snapshot_every,
                     fsync_every=fsync_every, crash=plan)
    stats = None
    try:
        report = run.serve()
    except WorkerKilledError as death:
        assert death.step == plan.kill_at_step
        assert death.kind == plan.kind
        run, stats = recover(directory, engine_builder(),
                             snapshot_every=snapshot_every,
                             fsync_every=fsync_every)
        report = run.serve()
    outputs = {r.request_id: list(r.outputs) for r in run.run._arrivals}
    return outputs, report, stats


class TestKillAtEveryBoundary:
    def test_every_step_every_kind_is_bit_identical(
            self, tmp_path, engine_builder, make_workload):
        """The exhaustive sweep: every event boundary x every crash kind."""
        reference, total_steps = _uninterrupted(engine_builder,
                                                make_workload, tmp_path)
        assert total_steps > 8  # the sweep must cross snapshot boundaries
        for kind in CRASH_KINDS:
            for kill_at in range(1, total_steps + 1):
                directory = tmp_path / f"{kind}-{kill_at}"
                outputs, _, stats = _crash_and_recover(
                    engine_builder, make_workload, directory,
                    CrashPlan(kill_at_step=kill_at, kind=kind))
                assert stats is not None, "crash never fired"
                assert outputs == reference, \
                    f"divergence after {kind} at step {kill_at}"

    def test_recovery_stats_account_for_the_replay(
            self, tmp_path, engine_builder, make_workload):
        reference, total_steps = _uninterrupted(engine_builder,
                                                make_workload, tmp_path)
        # Kill mid-snapshot-interval with a synced WAL: the suffix since
        # the last snapshot must be re-executed and token-verified.
        kill_at = 6  # snapshots at 0 and 4 -> replay steps 5..6
        directory = tmp_path / "stats"
        outputs, _, stats = _crash_and_recover(
            engine_builder, make_workload, directory,
            CrashPlan(kill_at_step=kill_at, kind="kill_after_fsync"))
        assert outputs == reference
        assert stats.snapshot_step == 4
        assert stats.steps_replayed == 2
        assert stats.tokens_replayed >= 0
        assert stats.snapshot_load_s >= 0 and stats.replay_s >= 0

    def test_kill_before_fsync_regenerates_the_lost_tail(
            self, tmp_path, engine_builder, make_workload):
        """With a huge fsync batch, everything since the last snapshot is
        lost with the process; re-execution must regenerate it."""
        reference, total_steps = _uninterrupted(engine_builder,
                                                make_workload, tmp_path)
        directory = tmp_path / "lost-tail"
        outputs, _, stats = _crash_and_recover(
            engine_builder, make_workload, directory,
            CrashPlan(kill_at_step=7, kind="kill_before_fsync"),
            fsync_every=10_000)
        assert outputs == reference
        # The unsynced records died with the process: nothing to replay.
        assert stats.steps_replayed == 0


class TestTornSnapshot:
    def test_falls_back_to_previous_valid_snapshot(
            self, tmp_path, engine_builder, make_workload):
        reference, total_steps = _uninterrupted(engine_builder,
                                                make_workload, tmp_path)
        directory = tmp_path / "torn"
        outputs, _, stats = _crash_and_recover(
            engine_builder, make_workload, directory,
            CrashPlan(kill_at_step=9, kind="torn_snapshot",
                      torn_fraction=0.6))
        assert outputs == reference
        assert stats.snapshots_skipped == 1  # the torn one was rejected
        assert stats.snapshot_step < 9

    def test_recovery_fails_loudly_with_no_valid_snapshot(
            self, tmp_path, engine_builder, make_workload):
        directory = tmp_path / "hopeless"
        run = DurableRun(engine_builder(), make_workload(), directory,
                         snapshot_every=4)
        for _ in range(3):
            run.step()
        for snap in directory.glob("snapshot-*.bin"):
            snap.write_bytes(snap.read_bytes()[:64])
        with pytest.raises(SnapshotCorruptError):
            recover(directory, engine_builder())


class TestStaleWal:
    def test_foreign_epoch_wal_is_set_aside_not_replayed(
            self, tmp_path, engine_builder, make_workload):
        reference, _ = _uninterrupted(engine_builder, make_workload,
                                      tmp_path)
        directory = tmp_path / "stale"
        outputs, _, stats = _crash_and_recover(
            engine_builder, make_workload, directory,
            CrashPlan(kill_at_step=5, kind="stale_wal"))
        assert outputs == reference
        assert stats.stale_wal
        assert stats.steps_replayed == 0  # foreign suffix discarded
        assert (directory / "wal.log.stale").exists()
        # The directory re-anchored: fresh WAL + a snapshot that matches.
        assert (directory / "wal.log").exists()


class TestReplayVerification:
    def test_tampered_token_record_raises_divergence(
            self, tmp_path, engine_builder, make_workload):
        """Replay is a verification pass: a WAL token record that does
        not match deterministic re-execution must fail recovery."""
        directory = tmp_path / "tamper"
        run = DurableRun(engine_builder(), make_workload(), directory,
                         snapshot_every=100)  # only the step-0 snapshot
        try:
            while run.step():
                pass
        except WorkerKilledError:  # pragma: no cover - no crash plan
            raise
        run.wal.close()
        path = directory / "wal.log"
        lines = path.read_text().splitlines(keepends=True)
        # Rewrite the first token record with a different token value,
        # re-encoded with a valid CRC (simulates a corrupted-but-
        # plausible log, the case checksums cannot catch).
        from repro.durable.wal import _decode, _encode
        for i, line in enumerate(lines):
            record = _decode(line.strip())
            if record.kind == "token":
                data = dict(record.data)
                data["token"] = (data["token"] + 1) % 64
                lines[i] = _encode(record.lsn, "token", data)
                break
        path.write_text("".join(lines))
        with pytest.raises(ReplayDivergenceError):
            recover(directory, engine_builder())


class TestHypothesisProperty:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(snapshot_every=st.integers(min_value=1, max_value=9),
           kill_at=st.integers(min_value=1, max_value=12),
           kind=st.sampled_from(CRASH_KINDS),
           fsync_every=st.sampled_from([1, 3, 8, 10_000]))
    def test_any_snapshot_crash_replay_triple_reproduces_the_transcript(
            self, tmp_path_factory, engine_builder, make_workload,
            snapshot_every, kill_at, kind, fsync_every):
        """Any (snapshot cadence, crash point, crash kind, fsync batch)
        combination reproduces the uninterrupted transcript."""
        tmp_path = tmp_path_factory.mktemp("hyp")
        reference, total_steps = _uninterrupted(
            engine_builder, make_workload, tmp_path,
            snapshot_every=snapshot_every)
        kill_at = min(kill_at, total_steps)
        outputs, _, stats = _crash_and_recover(
            engine_builder, make_workload, tmp_path / "crash",
            CrashPlan(kill_at_step=kill_at, kind=kind),
            snapshot_every=snapshot_every, fsync_every=fsync_every)
        assert stats is not None
        assert outputs == reference
