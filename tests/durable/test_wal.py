"""Write-ahead log unit tests: LSNs, fsync batching, torn tails, resume."""

import pytest

from repro.durable import WriteAheadLog, iter_step_buckets, read_wal
from repro.errors import WalCorruptError


def _wal(tmp_path, **kwargs):
    return WriteAheadLog(tmp_path / "wal.log", "epoch-0", **kwargs)


class TestAppend:
    def test_lsns_are_monotonic_from_one(self, tmp_path):
        wal = _wal(tmp_path)
        lsns = [wal.append("token", {"rid": 0, "index": i, "token": i})
                for i in range(5)]
        assert lsns == [1, 2, 3, 4, 5]
        wal.close()
        epoch, records, _, torn = read_wal(tmp_path / "wal.log")
        assert epoch == "epoch-0"
        assert [r.lsn for r in records] == lsns
        assert not torn

    def test_unknown_kind_rejected(self, tmp_path):
        wal = _wal(tmp_path)
        with pytest.raises(ValueError):
            wal.append("frobnicate", {})

    def test_fsync_batching(self, tmp_path):
        wal = _wal(tmp_path, fsync_every=4)
        base_syncs = wal.syncs  # the begin header syncs once
        for i in range(3):
            wal.append("step", {"step": i + 1, "clock": 0.0})
        assert wal.unsynced == 3
        assert wal.syncs == base_syncs
        wal.append("step", {"step": 4, "clock": 0.0})  # batch boundary
        assert wal.unsynced == 0
        assert wal.syncs == base_syncs + 1

    def test_drop_unsynced_loses_only_the_tail(self, tmp_path):
        wal = _wal(tmp_path, fsync_every=100)
        wal.append("token", {"rid": 0, "index": 0, "token": 9})
        wal.sync()
        wal.append("token", {"rid": 0, "index": 1, "token": 10})
        wal.append("token", {"rid": 0, "index": 2, "token": 11})
        assert wal.drop_unsynced() == 2
        _, records, _, _ = read_wal(tmp_path / "wal.log")
        assert [r.data["token"] for r in records] == [9]


class TestReader:
    def test_torn_tail_is_tolerated(self, tmp_path):
        wal = _wal(tmp_path)
        for i in range(3):
            wal.append("step", {"step": i + 1, "clock": float(i)})
        wal.close()
        path = tmp_path / "wal.log"
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])  # tear the final record mid-line
        _, records, end_offset, torn = read_wal(path)
        assert torn
        assert [r.data["step"] for r in records] == [1, 2]
        assert end_offset < len(raw)

    def test_midfile_corruption_raises(self, tmp_path):
        wal = _wal(tmp_path)
        for i in range(3):
            wal.append("step", {"step": i + 1, "clock": float(i)})
        wal.close()
        path = tmp_path / "wal.log"
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1][:10] + b"X" + lines[1][11:]  # flip mid-record
        path.write_bytes(b"".join(lines))
        with pytest.raises(WalCorruptError):
            read_wal(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_text("")
        with pytest.raises(WalCorruptError):
            read_wal(path)

    def test_crc_detects_payload_tamper(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append("token", {"rid": 0, "index": 0, "token": 7})
        wal.close()
        path = tmp_path / "wal.log"
        tampered = path.read_text().replace('"token":7', '"token":8')
        assert tampered != path.read_text()
        path.write_text(tampered)
        # The tampered record is last, so it reads as a torn tail —
        # the record is *rejected*, not silently accepted.
        _, records, _, torn = read_wal(path)
        assert torn and records == []


class TestResume:
    def test_resume_truncates_torn_tail_and_continues_lsns(self, tmp_path):
        wal = _wal(tmp_path)
        for i in range(3):
            wal.append("step", {"step": i + 1, "clock": float(i)})
        wal.close()
        path = tmp_path / "wal.log"
        path.write_bytes(path.read_bytes()[:-5])
        epoch, records, end_offset, torn = read_wal(path)
        assert torn and len(records) == 2
        resumed = WriteAheadLog.resume(path, epoch, records[-1].lsn,
                                       end_offset)
        assert resumed.append("step", {"step": 3, "clock": 2.0}) == 3
        resumed.close()
        _, records, _, torn = read_wal(path)
        assert not torn
        assert [r.lsn for r in records] == [1, 2, 3]


class TestStepBuckets:
    def test_buckets_split_on_step_markers(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append("admit", {"rid": 0})
        wal.append("token", {"rid": 0, "index": 0, "token": 1})
        wal.append("step", {"step": 1, "clock": 0.1})
        wal.append("token", {"rid": 0, "index": 1, "token": 2})
        wal.append("step", {"step": 2, "clock": 0.2})
        wal.append("depart", {"rid": 0})  # unterminated trailing record
        wal.close()
        _, records, _, _ = read_wal(tmp_path / "wal.log")
        buckets = list(iter_step_buckets(records))
        assert [m.data["step"] if m else None for _, m in buckets] \
            == [1, 2, None]
        assert [len(b) for b, _ in buckets] == [2, 1, 1]
        assert buckets[-1][0][0].kind == "depart"
