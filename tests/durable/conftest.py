"""Durable-suite fixtures: shared tiny serving setup + a tighter watchdog.

The root conftest already arms a 120s SIGALRM around every test; replay
loops that wedge (a recovery that never converges, a step that spins)
would still burn two CI minutes each.  This suite re-arms the alarm at a
tighter limit so a hung replay fails in seconds, mirroring the
root-level pattern rather than replacing it.
"""

from __future__ import annotations

import signal
import threading

import pytest

from repro.bench.serve import TINY_LS, TINY_MODEL
from repro.llm.config import LLAMA3_8B
from repro.llm.model import Transformer
from repro.serve.crossval import backend_factory, default_systems, \
    paired_workload
from repro.serve.engine import AnalyticTiming, ServeEngine
from repro.serve.paged_kv import PagedKVPool
from repro.serve.scheduler import SloPolicy
from repro.system.prefill import PrefillModel

#: Replay/recovery loops must converge far faster than the global limit.
DURABLE_TIMEOUT_S = 60.0


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.durable)


@pytest.fixture(autouse=True)
def _durable_watchdog():
    """Tighter SIGALRM for this suite (hung replay loops fail fast)."""
    if not hasattr(signal, "SIGALRM") \
            or threading.current_thread() is not threading.main_thread():
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"durable test exceeded the {DURABLE_TIMEOUT_S:.0f}s "
            "watchdog (replay or recovery loop is likely hung)")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, DURABLE_TIMEOUT_S)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def durable_model():
    return Transformer(TINY_MODEL, seed=0)


@pytest.fixture(scope="session")
def longsight_system():
    return default_systems()["longsight"]


@pytest.fixture
def engine_builder(durable_model, longsight_system):
    """Factory of fresh engines with identical geometry (restore needs a
    clean pool per recovery)."""
    def build(n_blocks: int = 64, prefix_caching: bool = True,
              make_backend=None) -> ServeEngine:
        pool = PagedKVPool(durable_model.config, n_blocks=n_blocks,
                           block_tokens=16, prefix_caching=prefix_caching)
        return ServeEngine(
            durable_model, pool,
            make_backend or backend_factory("longsight", TINY_LS),
            policy=SloPolicy(max_decode_batch=4),
            timing=AnalyticTiming(longsight_system, LLAMA3_8B,
                                  prefill=PrefillModel()),
            name="longsight")
    return build


@pytest.fixture
def make_workload():
    """Deterministic small workload; fresh request objects per call."""
    def build(n_requests: int = 3, prompt_tokens: int = 24,
              output_tokens: int = 8, seed: int = 7):
        requests, _ = paired_workload(
            n_requests, 50.0, prompt_tokens, output_tokens,
            TINY_MODEL.vocab_size, charged_prompt_tokens=65_536,
            seed=seed)
        return requests
    return build
