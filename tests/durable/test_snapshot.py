"""Snapshot round-trip fidelity and corruption rejection."""

import numpy as np
import pytest

from repro.durable import read_snapshot, restore_run, write_snapshot
from repro.errors import DurabilityError, SnapshotCorruptError


def _run_some_steps(engine, requests, n_steps):
    run = engine.start(requests)
    for _ in range(n_steps):
        if not run.step():
            break
    return run


def _snapshot_of(tmp_path, run):
    path = tmp_path / "snapshot-00000005.bin"
    write_snapshot(path, run, epoch="e", lsn=17, step=5)
    return path


class TestRoundTrip:
    def test_mid_decode_state_restores_bit_identically(
            self, tmp_path, engine_builder, make_workload):
        engine = engine_builder()
        run = _run_some_steps(engine, make_workload(), 6)
        pool = engine.pool
        path = _snapshot_of(tmp_path, run)

        meta, arenas = read_snapshot(path)
        assert meta["epoch"] == "e" and meta["lsn"] == 17 \
            and meta["step"] == 5
        engine2 = engine_builder()
        run2 = restore_run(engine2, meta, arenas)
        pool2 = engine2.pool

        # Free list must round-trip in exact LIFO order: future block
        # placement (hence gather layout) depends on it.
        assert pool2._free == pool._free
        assert pool2.high_watermark == pool.high_watermark
        assert pool2.total_allocated == pool.total_allocated
        # Arena bytes of every used block are bit-identical.
        used = sorted(set(range(pool.n_blocks)) - set(pool._free))
        bt = pool.block_tokens
        rows = [r for b in used for r in range(b * bt, (b + 1) * bt)]
        for layer in range(pool.config.n_layers):
            np.testing.assert_array_equal(
                pool2.k_arenas[layer][:, rows],
                pool.k_arenas[layer][:, rows])
            np.testing.assert_array_equal(
                pool2.v_arenas[layer][:, rows],
                pool.v_arenas[layer][:, rows])
            np.testing.assert_array_equal(
                pool2.sign_arenas[layer][:, rows],
                pool.sign_arenas[layer][:, rows])
        # Run/scheduler bookkeeping.
        assert run2.clock == run.clock
        assert run2.tokens_generated == run.tokens_generated
        assert [r.request_id for r in run2.scheduler.running] \
            == [r.request_id for r in run.scheduler.running]
        by_rid = {r.request_id: r for r in run._arrivals}
        for restored in run2._arrivals:
            original = by_rid[restored.request_id]
            assert restored.outputs == original.outputs
            assert restored.state is original.state
            assert restored.prefilled == original.prefilled

    def test_prefix_index_restores_shared_entries_with_refcounts(
            self, tmp_path, engine_builder, make_workload):
        engine = engine_builder()
        # Two sessions with an identical prompt share published blocks.
        requests = make_workload(n_requests=2, seed=3)
        requests[1].prompt = requests[0].prompt.copy()
        run = _run_some_steps(engine, requests, 8)
        pool = engine.pool
        if not pool._prefix_index:
            pytest.skip("workload produced no published prefix blocks")
        path = _snapshot_of(tmp_path, run)
        meta, arenas = read_snapshot(path)
        engine2 = engine_builder()
        run2 = restore_run(engine2, meta, arenas)
        pool2 = engine2.pool
        assert set(pool2._prefix_index) == set(pool._prefix_index)
        for key, entry in pool._prefix_index.items():
            restored = pool2._prefix_index[key]
            assert restored.block == entry.block
            assert restored.refcount == entry.refcount
            assert restored.signs_packed == entry.signs_packed
        # Cache entry maps must alias the pool's entries (same objects),
        # or a later free() would desync refcounts.
        for request in run2._arrivals:
            if request.cache is None:
                continue
            for block, entry in request.cache._entry_by_block.items():
                assert pool2._prefix_index[entry.key] is entry
                assert entry.block == block

    def test_restore_refuses_dirty_engine(self, tmp_path, engine_builder,
                                          make_workload):
        engine = engine_builder()
        run = _run_some_steps(engine, make_workload(), 4)
        path = _snapshot_of(tmp_path, run)
        meta, arenas = read_snapshot(path)
        dirty = engine_builder()
        dirty.pool.allocate(1)
        with pytest.raises(DurabilityError):
            restore_run(dirty, meta, arenas)


class TestCorruptionRejection:
    @pytest.fixture
    def snapshot_path(self, tmp_path, engine_builder, make_workload):
        engine = engine_builder()
        run = _run_some_steps(engine, make_workload(), 5)
        return _snapshot_of(tmp_path, run)

    def test_valid_snapshot_verifies(self, snapshot_path):
        meta, _ = read_snapshot(snapshot_path)
        assert meta["format"] == "longsight-durable-snapshot"

    @pytest.mark.parametrize("frac", [0.1, 0.5, 0.9, 0.999])
    def test_any_truncation_is_rejected(self, snapshot_path, frac):
        raw = snapshot_path.read_bytes()
        snapshot_path.write_bytes(raw[:int(len(raw) * frac)])
        with pytest.raises(SnapshotCorruptError):
            read_snapshot(snapshot_path)

    @pytest.mark.parametrize("offset_frac", [0.0, 0.3, 0.7, 0.99])
    def test_any_bit_flip_fails_the_chain_hash(self, snapshot_path,
                                               offset_frac):
        raw = bytearray(snapshot_path.read_bytes())
        pos = min(len(raw) - 1, int(len(raw) * offset_frac))
        raw[pos] ^= 0x40
        snapshot_path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotCorruptError):
            read_snapshot(snapshot_path)

    def test_wrong_magic_rejected(self, snapshot_path):
        raw = bytearray(snapshot_path.read_bytes())
        raw[:8] = b"NOTASNAP"
        snapshot_path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotCorruptError):
            read_snapshot(snapshot_path)
