"""ServeEngine end-to-end: bit-identity, scheduling dynamics, degradation.

The acceptance anchor for the whole serving layer: a served session's
token stream is **bit-identical** to single-session
:func:`repro.llm.sampling.generate` — through paged KV reads, chunked
prefill, concurrent batching, and even preemption + recompute-resume.
"""

import numpy as np
import pytest

from repro.core.config import LongSightConfig
from repro.core.hybrid import LongSightAttention, SlidingWindowAttention
from repro.llm.config import LLAMA3_8B
from repro.llm.model import DenseBackend, Transformer
from repro.llm.sampling import generate
from repro.serve.crossval import default_systems
from repro.serve.engine import AnalyticTiming, ServeEngine
from repro.serve.paged_kv import PagedKVPool
from repro.serve.scheduler import RequestState, ServeRequest, SloPolicy
from repro.system.faults import FaultPlan
from repro.system.prefill import PrefillModel
from repro.system.supervisor import SupervisedOffloadBackend
from tests.conftest import TINY

LS = LongSightConfig(window=8, n_sink=4, top_k=12, thresholds=3)


@pytest.fixture(scope="module")
def model():
    return Transformer(TINY, seed=0)


def _prompts(rng, sizes):
    return [rng.integers(0, TINY.vocab_size, size=n) for n in sizes]


class TestBitIdentity:
    def test_single_session_longsight_matches_generate(self, model, rng):
        prompt = rng.integers(0, TINY.vocab_size, size=37)
        reference = generate(model, prompt, 10,
                             backend=LongSightAttention(LS))
        pool = PagedKVPool(TINY, n_blocks=64, block_tokens=16)
        engine = ServeEngine(model, pool,
                             lambda r: LongSightAttention(LS))
        request = ServeRequest(request_id=0, prompt=prompt,
                               max_new_tokens=10)
        engine.run([request])
        assert request.outputs == list(reference)
        assert request.state is RequestState.DONE

    def test_zero_fault_offload_matches_generate(self, model, rng):
        """The ISSUE's acceptance criterion verbatim: a zero-fault plan
        through the full supervised offload path, served vs solo."""
        prompt = rng.integers(0, TINY.vocab_size, size=33)

        def fresh_backend(_request=None):
            return SupervisedOffloadBackend(
                TINY, LS, plan=FaultPlan.none(), flush_granularity=1)

        reference = generate(model, prompt, 8, backend=fresh_backend())
        pool = PagedKVPool(TINY, n_blocks=64, block_tokens=16)
        engine = ServeEngine(model, pool, fresh_backend)
        request = ServeRequest(request_id=0, prompt=prompt,
                               max_new_tokens=8)
        engine.run([request])
        assert request.outputs == list(reference)

    def test_concurrent_sessions_each_match_generate(self, model, rng):
        prompts = _prompts(rng, (20, 33, 48, 27))
        refs = [generate(model, p, 8, backend=LongSightAttention(LS))
                for p in prompts]
        pool = PagedKVPool(TINY, n_blocks=64, block_tokens=16)
        engine = ServeEngine(model, pool, lambda r: LongSightAttention(LS))
        requests = [ServeRequest(request_id=i, prompt=p, max_new_tokens=8)
                    for i, p in enumerate(prompts)]
        report = engine.run(requests)
        assert report.peak_decode_batch > 1  # batching actually happened
        for request, reference in zip(requests, refs):
            assert request.outputs == list(reference)

    def test_multi_chunk_prefill_matches_generate(self, model, rng):
        """600-token prompt: three chunked-prefill steps on 256-token
        model-block boundaries must reproduce single-shot prefill."""
        ls = LongSightConfig(window=64, n_sink=8, top_k=32, thresholds=3)
        prompt = rng.integers(0, TINY.vocab_size, size=600)
        reference = generate(model, prompt, 6,
                             backend=LongSightAttention(ls))
        pool = PagedKVPool(TINY, n_blocks=128, block_tokens=16)
        engine = ServeEngine(model, pool, lambda r: LongSightAttention(ls))
        request = ServeRequest(request_id=0, prompt=prompt,
                               max_new_tokens=6)
        engine.run([request])
        assert request.outputs == list(reference)

    def test_preemption_resume_matches_generate(self, model, rng):
        """A pool too small for three full sessions forces preemption;
        recompute-resume must not perturb a single token."""
        prompts = _prompts(rng, (40, 40, 40))
        refs = [generate(model, p, 12, backend=DenseBackend())
                for p in prompts]
        pool = PagedKVPool(TINY, n_blocks=15, block_tokens=8)
        engine = ServeEngine(model, pool, lambda r: DenseBackend())
        requests = [ServeRequest(request_id=i, prompt=p, max_new_tokens=12)
                    for i, p in enumerate(prompts)]
        report = engine.run(requests)
        assert report.preemptions >= 1  # the scenario actually triggered
        for request, reference in zip(requests, refs):
            assert request.outputs == list(reference)
            assert request.events.finished_s is not None
        assert pool.n_free == pool.n_blocks  # all blocks returned

    def test_chunk_must_align_with_model_blocks(self, model):
        pool = PagedKVPool(TINY, n_blocks=8, block_tokens=16)
        with pytest.raises(ValueError):
            ServeEngine(model, pool, lambda r: DenseBackend(),
                        policy=SloPolicy(prefill_chunk=100),
                        prefill_block_size=256)


class TestAnalyticClock:
    def test_ttft_includes_charged_prefill(self, model, rng):
        prompt = rng.integers(0, TINY.vocab_size, size=24)
        timing = AnalyticTiming(default_systems()["longsight"], LLAMA3_8B,
                                prefill=PrefillModel())
        pool = PagedKVPool(TINY, n_blocks=32, block_tokens=16)
        engine = ServeEngine(model, pool, lambda r: LongSightAttention(LS),
                             timing=timing)
        request = ServeRequest(request_id=0, prompt=prompt,
                               max_new_tokens=6,
                               charged_prompt_tokens=32_768)
        report = engine.run([request])
        assert request.events.ttft_s is not None
        # 32k-token prefill on the paper-scale model costs real time
        assert request.events.ttft_s > 0.05
        assert request.events.tpot_s > 0.0
        assert report.clock_s >= request.events.finished_s - 1e-12
        # token timestamps are monotone
        assert request.events.token_times_s == \
            sorted(request.events.token_times_s)

    def test_report_metrics_are_consistent(self, model, rng):
        prompts = _prompts(rng, (16, 16, 16))
        timing = AnalyticTiming(default_systems()["longsight"], LLAMA3_8B)
        pool = PagedKVPool(TINY, n_blocks=32, block_tokens=16)
        engine = ServeEngine(model, pool, lambda r: LongSightAttention(LS),
                             timing=timing)
        requests = [ServeRequest(request_id=i, prompt=p, max_new_tokens=5,
                                 charged_prompt_tokens=32_768)
                    for i, p in enumerate(prompts)]
        report = engine.run(requests)
        assert report.tokens_generated == 15
        assert report.throughput_tps > 0
        assert len(report.completed) == 3
        payload = report.as_dict()
        assert payload["ttft_p99_s"] >= payload["ttft_p50_s"]
        assert payload["tpot_p99_s"] >= payload["tpot_p50_s"]
        assert payload["pool"]["high_watermark"] <= payload["pool"]["n_blocks"]


@pytest.mark.chaos
class TestDegradation:
    def test_total_failure_sheds_in_place_with_full_output(self, model, rng):
        """Under FaultPlan.total_failure every offload degrades: sessions
        must pin to the dense window, keep decoding every step, and retire
        as SHED with their *complete* output — never dropped."""
        pool = PagedKVPool(TINY, n_blocks=64, block_tokens=16)

        def factory(request):
            return SupervisedOffloadBackend(
                TINY, LS, plan=FaultPlan.total_failure(),
                flush_granularity=1, supervisor_seed=request.request_id)

        engine = ServeEngine(
            model, pool, factory,
            policy=SloPolicy(shed_after_consecutive_degraded=3))
        requests = [ServeRequest(request_id=i,
                                 prompt=rng.integers(0, TINY.vocab_size,
                                                     size=30),
                                 max_new_tokens=10) for i in range(2)]
        report = engine.run(requests)
        for request in requests:
            assert len(request.outputs) == 10
            assert request.pinned_dense
            assert request.state is RequestState.SHED
            assert isinstance(request.backend, SlidingWindowAttention) \
                or request.backend is None
            assert request.events.degraded_tokens > 0
        assert report.availability == 0.0
        assert len(report.shed) == 2
        assert report.degraded_token_fraction > 0.5

    def test_zero_faults_never_degrade(self, model, rng):
        pool = PagedKVPool(TINY, n_blocks=64, block_tokens=16)

        def factory(request):
            return SupervisedOffloadBackend(TINY, LS, plan=FaultPlan.none(),
                                            flush_granularity=1)

        engine = ServeEngine(model, pool, factory)
        request = ServeRequest(request_id=0,
                               prompt=rng.integers(0, TINY.vocab_size,
                                                   size=30),
                               max_new_tokens=8)
        report = engine.run([request])
        assert not request.pinned_dense
        assert request.state is RequestState.DONE
        assert report.degraded_token_fraction == 0.0
        assert report.availability == 1.0
