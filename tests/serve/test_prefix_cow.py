"""Property test: COW prefix refcounting never double-frees, leaks, or
mutates a block another session still references.

Hypothesis drives random interleavings of session admit (attach + fill +
publish), fork (attach an existing prompt), sign-cache enablement, and
free.  Prompts are drawn from a small family sharing block-aligned
prefixes, so interleavings genuinely exercise refcounts > 1.  After every
operation the full arena state is checked against a token-level oracle:
each live session's gathered keys must equal the deterministic encoding
of its own tokens — any cross-session mutation or premature reuse of a
shared block shows up as corrupted rows.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.paged_kv import PagedKVPool
from tests.conftest import TINY

BT = 4
N_BLOCKS = 24
#: block-aligned prompt family: common 2-block base, then 3 variants that
#: extend it by 0-2 more blocks plus a distinguishing tail block.
_BASE = np.arange(2 * BT, dtype=np.int64)


def _prompt(variant: int, extra_blocks: int) -> np.ndarray:
    ext = np.full(extra_blocks * BT, 10 + variant, dtype=np.int64)
    tail = np.full(BT, 50 + variant, dtype=np.int64)
    return np.concatenate([_BASE, ext, tail])


def _enc(tokens, layer):
    t = np.asarray(tokens, dtype=np.float32)
    base = t[None, :, None] + 1000.0 * layer
    return np.broadcast_to(
        base, (TINY.n_kv_heads, len(t), TINY.head_dim)).astype(
            np.float32).copy()


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("admit"), st.integers(0, 2), st.integers(0, 2)),
        st.tuples(st.just("free"), st.integers(0, 7), st.integers(0, 0)),
        st.tuples(st.just("sign"), st.integers(0, 7), st.integers(0, 0)),
    ),
    min_size=1, max_size=24)


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_random_interleavings_preserve_pool_invariants(ops):
    pool = PagedKVPool(TINY, n_blocks=N_BLOCKS, block_tokens=BT,
                       prefix_caching=True)
    live = []  # (cache, tokens)

    def check_invariants():
        # free-list accounting: free + live-session distinct blocks == all
        held = set()
        for cache, _ in live:
            held.update(cache.block_ids)
        assert len(pool._free) == len(set(pool._free))
        assert held.isdisjoint(pool._free)
        assert len(held) + len(pool._free) == N_BLOCKS
        # every indexed entry's refcount equals the live sessions using it
        for entry in pool._prefix_index.values():
            holders = sum(1 for cache, _ in live
                          if entry.block in cache.block_ids)
            assert entry.refcount == holders > 0
        # oracle: nobody's rows were mutated or reused out from under them
        for cache, tokens in live:
            for layer in range(TINY.n_layers):
                np.testing.assert_array_equal(
                    cache.layers[layer].keys, _enc(tokens, layer))

    for op, a, b in ops:
        if op == "admit":
            tokens = _prompt(a, b)
            if not pool.can_fit_tokens(len(tokens)):
                continue
            cache = pool.new_cache()
            attached = cache.attach_prefix(tokens)
            rest = tokens[attached:]
            for layer in range(TINY.n_layers):
                k = _enc(rest, layer)
                cache.append(layer, k, k.copy())
            cache.publish_prefix(tokens)
            live.append((cache, tokens))
        elif op == "free" and live:
            cache, _ = live.pop(a % len(live))
            cache.free()
            assert cache.freed
        elif op == "sign" and live:
            cache, _ = live[a % len(live)]
            cache.enable_sign_cache()
            assert cache.prefix_signed_tokens <= len(cache)
        check_invariants()

    for cache, _ in live:
        cache.free()
    # no leak, no double-free: the arena is exactly restored
    assert pool.n_free == N_BLOCKS
    assert sorted(pool._free) == list(range(N_BLOCKS))
    assert pool.shared_blocks == 0
    assert pool._prefix_index == {}
