"""Paged KV pool: block accounting, gather parity, and reuse under churn."""

import numpy as np
import pytest

from repro.errors import PoolExhaustedError
from repro.llm.kv_cache import KVCache
from repro.serve.paged_kv import PagedKVPool
from tests.conftest import TINY


@pytest.fixture
def pool():
    return PagedKVPool(TINY, n_blocks=8, block_tokens=4)


def _kv(rng, n, heads=TINY.n_kv_heads, dim=TINY.head_dim):
    return (rng.normal(size=(heads, n, dim)).astype(np.float32),
            rng.normal(size=(heads, n, dim)).astype(np.float32))


class TestPoolAccounting:
    def test_starts_fully_free(self, pool):
        assert pool.n_free == 8
        assert pool.n_used == 0

    def test_blocks_for_tokens_rounds_up(self, pool):
        assert pool.blocks_for_tokens(0) == 0
        assert pool.blocks_for_tokens(1) == 1
        assert pool.blocks_for_tokens(4) == 1
        assert pool.blocks_for_tokens(5) == 2

    def test_allocate_release_roundtrip(self, pool):
        blocks = pool.allocate(3)
        assert pool.n_used == 3
        pool.release(blocks)
        assert pool.n_free == 8
        assert pool.total_allocated == 3
        assert pool.total_released == 3

    def test_exhaustion_is_all_or_nothing(self, pool):
        pool.allocate(6)
        with pytest.raises(PoolExhaustedError):
            pool.allocate(3)
        # the failed request must not have consumed any of the 2 left
        assert pool.n_free == 2

    def test_double_free_rejected(self, pool):
        blocks = pool.allocate(2)
        pool.release(blocks)
        with pytest.raises(ValueError):
            pool.release(blocks)

    def test_out_of_range_block_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.release([99])

    def test_lifo_reuse(self, pool):
        first = pool.allocate(2)
        pool.release(first)
        again = pool.allocate(2)
        # most recently released blocks come back first (hot rows)
        assert set(again) == set(first)

    def test_high_watermark_tracks_peak(self, pool):
        a = pool.allocate(5)
        pool.release(a)
        pool.allocate(2)
        assert pool.high_watermark == 5


class TestGatherParity:
    """A paged session must read back exactly what a private cache would."""

    def test_keys_values_match_kv_cache(self, rng):
        pool = PagedKVPool(TINY, n_blocks=16, block_tokens=4)
        paged, plain = pool.new_cache(), KVCache(TINY)
        for n in (3, 4, 9, 1):
            for layer in range(TINY.n_layers):
                k, v = _kv(rng, n)
                paged.append(layer, k, v)
                plain.append(layer, k, v)
        for layer in range(TINY.n_layers):
            np.testing.assert_array_equal(paged.layers[layer].keys,
                                          plain.layers[layer].keys)
            np.testing.assert_array_equal(paged.layers[layer].values,
                                          plain.layers[layer].values)

    def test_packed_signs_match_kv_cache(self, rng):
        pool = PagedKVPool(TINY, n_blocks=16, block_tokens=4)
        paged, plain = pool.new_cache(), KVCache(TINY)
        paged.enable_sign_cache()
        plain.enable_sign_cache()
        for n in (5, 2, 8):
            for layer in range(TINY.n_layers):
                k, v = _kv(rng, n)
                paged.append(layer, k, v)
                plain.append(layer, k, v)
        for layer in range(TINY.n_layers):
            np.testing.assert_array_equal(paged.layers[layer].packed_signs,
                                          plain.layers[layer].packed_signs)

    def test_enable_sign_cache_packs_backlog(self, rng):
        pool = PagedKVPool(TINY, n_blocks=16, block_tokens=4)
        paged, plain = pool.new_cache(), KVCache(TINY)
        for layer in range(TINY.n_layers):
            k, v = _kv(rng, 7)
            paged.append(layer, k, v)
            plain.append(layer, k, v)
        paged.enable_sign_cache()
        plain.enable_sign_cache()
        for layer in range(TINY.n_layers):
            np.testing.assert_array_equal(paged.layers[layer].packed_signs,
                                          plain.layers[layer].packed_signs)

    def test_views_match_kv_cache(self, rng):
        pool = PagedKVPool(TINY, n_blocks=16, block_tokens=4)
        paged, plain = pool.new_cache(), KVCache(TINY)
        for layer in range(TINY.n_layers):
            k, v = _kv(rng, 30)
            paged.append(layer, k, v)
            plain.append(layer, k, v)
        for view in ("window_view", "offloaded_view"):
            pk, pv, ppos = getattr(paged, view)(0, window=8, n_sink=4)
            ck, cv, cpos = getattr(plain, view)(0, window=8, n_sink=4)
            np.testing.assert_array_equal(pk, ck)
            np.testing.assert_array_equal(pv, cv)
            np.testing.assert_array_equal(ppos, cpos)

    def test_interleaved_sessions_stay_logically_ordered(self, rng):
        """Two sessions growing turn-by-turn get interleaved (non-contiguous)
        blocks, yet each reads back its own tokens in logical order."""
        pool = PagedKVPool(TINY, n_blocks=8, block_tokens=2)
        a, b = pool.new_cache(), pool.new_cache()
        a_chunks, b_chunks = [], []
        for _ in range(3):
            ka, va = _kv(rng, 2)
            kb, vb = _kv(rng, 2)
            a.append(0, ka, va)
            b.append(0, kb, vb)
            a_chunks.append(ka)
            b_chunks.append(kb)
        assert not a.contiguous or not b.contiguous
        np.testing.assert_array_equal(
            a.layers[0].keys, np.concatenate(a_chunks, axis=1))
        np.testing.assert_array_equal(
            b.layers[0].keys, np.concatenate(b_chunks, axis=1))


class TestSessionLifecycle:
    def test_free_returns_blocks_and_is_idempotent(self, rng):
        pool = PagedKVPool(TINY, n_blocks=8, block_tokens=4)
        cache = pool.new_cache()
        k, v = _kv(rng, 10)
        for layer in range(TINY.n_layers):
            cache.append(layer, k, v)
        assert pool.n_used == 3
        cache.free()
        assert pool.n_free == 8
        assert cache.freed
        cache.free()  # idempotent
        assert pool.n_free == 8

    def test_append_after_free_raises(self, rng):
        pool = PagedKVPool(TINY, n_blocks=8, block_tokens=4)
        cache = pool.new_cache()
        cache.free()
        k, v = _kv(rng, 1)
        with pytest.raises(RuntimeError):
            cache.append(0, k, v)

    def test_failed_growth_preserves_existing_blocks(self, rng):
        pool = PagedKVPool(TINY, n_blocks=4, block_tokens=4)
        cache = pool.new_cache()
        k, v = _kv(rng, 8)
        for layer in range(TINY.n_layers):
            cache.append(layer, k, v)
        held = cache.n_blocks
        with pytest.raises(PoolExhaustedError):
            cache.ensure_tokens(100)
        assert cache.n_blocks == held
        np.testing.assert_array_equal(cache.layers[0].keys, k)

    def test_admit_complete_churn_reuses_blocks(self, rng):
        """Regression: block free/reuse under admission/completion churn —
        the pool must neither leak nor grow its high watermark once
        steady-state reuse kicks in."""
        pool = PagedKVPool(TINY, n_blocks=6, block_tokens=4)
        for round_ in range(10):
            live = [pool.new_cache() for _ in range(3)]
            for cache in live:
                k, v = _kv(rng, 7)
                for layer in range(TINY.n_layers):
                    cache.append(layer, k, v)
            assert pool.n_used == 6
            for cache in live:
                cache.free()
            assert pool.n_free == 6
        assert pool.high_watermark == 6
        assert pool.total_allocated == pool.total_released == 60


class TestExhaustionDiagnostics:
    def test_message_reports_occupancy_and_free_list_depth(self):
        pool = PagedKVPool(TINY, n_blocks=8, block_tokens=4)
        pool.allocate(6)
        with pytest.raises(PoolExhaustedError) as excinfo:
            pool.allocate(5)
        message = str(excinfo.value)
        assert "need 5 blocks" in message
        assert "2 of 8 free" in message
        assert f"6 occupied x {TINY.n_layers} layers" in message
        assert "4 tokens/block" in message
        assert "0 shared prefix blocks" in message
        assert "free-list depth 2" in message
        assert "high watermark 6" in message

    def test_structured_fields_match_pool_state(self):
        pool = PagedKVPool(TINY, n_blocks=8, block_tokens=4,
                           prefix_caching=True)
        cache = pool.new_cache()
        k = np.zeros((TINY.n_kv_heads, 8, TINY.head_dim), dtype=np.float32)
        for layer in range(TINY.n_layers):
            cache.append(layer, k, k.copy())
        cache.publish_prefix(np.arange(8))
        with pytest.raises(PoolExhaustedError) as excinfo:
            pool.allocate(7)
        err = excinfo.value
        assert err.need == 7
        assert err.free == 6
        assert err.total == 8
        assert err.used == 2
        assert err.block_tokens == 4
        assert err.n_layers == TINY.n_layers
        assert err.shared_prefix_blocks == 2
        assert err.high_watermark == 2
        assert "2 shared prefix blocks" in str(err)

    def test_structured_fields_stay_consistent_under_cow_sharing(self):
        """After publish + attach (copy-on-write sharing) and divergent
        growth, every structured field must equal the live pool property
        it mirrors — shared blocks are counted once, not per attacher."""
        pool = PagedKVPool(TINY, n_blocks=8, block_tokens=4,
                           prefix_caching=True)
        prompt = np.arange(8)
        publisher = pool.new_cache()
        k = np.zeros((TINY.n_kv_heads, 8, TINY.head_dim), dtype=np.float32)
        for layer in range(TINY.n_layers):
            publisher.append(layer, k, k.copy())
        publisher.publish_prefix(prompt)

        attacher = pool.new_cache()
        assert attacher.attach_prefix(prompt) == 8
        # The attacher then diverges: its growth allocates private blocks
        # while the shared prefix blocks stay refcounted at 2.
        grow = np.zeros((TINY.n_kv_heads, 4, TINY.head_dim),
                        dtype=np.float32)
        for layer in range(TINY.n_layers):
            attacher.append(layer, grow, grow.copy())
        assert all(e.refcount == 2
                   for e in pool._prefix_index.values())

        with pytest.raises(PoolExhaustedError) as excinfo:
            pool.allocate(pool.n_free + 1)
        err = excinfo.value
        assert err.need == pool.n_free + 1
        assert err.free == pool.n_free == 5
        assert err.total == pool.n_blocks
        assert err.used == pool.n_used == 3  # 2 shared + 1 private
        assert err.shared_prefix_blocks == pool.shared_blocks == 2
        assert err.high_watermark == pool.high_watermark

        # Releasing the attacher drops refcounts but keeps the published
        # blocks shared; the next error must reflect the new occupancy.
        attacher.free()
        assert all(e.refcount == 1
                   for e in pool._prefix_index.values())
        with pytest.raises(PoolExhaustedError) as excinfo:
            pool.allocate(pool.n_free + 2)
        err = excinfo.value
        assert err.free == pool.n_free == 6
        assert err.used == pool.n_used == 2
        assert err.shared_prefix_blocks == pool.shared_blocks == 2

    def test_message_only_construction_still_works(self):
        err = PoolExhaustedError("out of blocks")
        assert str(err) == "out of blocks"
        assert err.need == 0 and err.used == 0
