"""Cross-validation: the functional engine must agree with the analytic
serving simulator on *which system wins and by how much* (satellite c).

The two layers share nothing but the latency models and the arrival
trace, so agreement here ties the token-level serving implementation to
the paper's analytic claims: LongSight out-throughputs the quality-equal
dense baseline at long context, and the gap closes toward the crossover
as context shrinks.
"""

import pytest

from repro.core.config import LongSightConfig
from repro.llm.config import LLAMA3_8B
from repro.llm.model import Transformer
from repro.serve.crossval import (SYSTEM_NAMES, cross_validate,
                                  default_systems, paired_workload)
from tests.conftest import TINY

LS = LongSightConfig(window=8, n_sink=4, top_k=12, thresholds=3)


@pytest.fixture(scope="module")
def model():
    return Transformer(TINY, seed=0)


@pytest.fixture(scope="module")
def long_context(model):
    return cross_validate(model, LLAMA3_8B, LS, n_requests=5,
                          prompt_tokens=24, charged_prompt_tokens=65_536,
                          output_tokens=10, pool_blocks=128, seed=0)


class TestOrderingAgreement:
    def test_rankings_match_at_long_context(self, long_context):
        assert long_context.orderings_agree, (
            long_context.functional_ranking,
            long_context.analytic_ranking)

    def test_longsight_beats_dense_at_long_context(self, long_context):
        assert long_context.speedup("longsight", "dense") > 1.2
        assert long_context.speedup("longsight", "dense",
                                    layer="analytic") > 1.2

    def test_sliding_window_is_the_floor(self, long_context):
        """The quality-sacrificing baseline is fastest by construction in
        both layers — LongSight approaches it, never beats it."""
        assert long_context.functional_ranking[0] == "sliding_window"
        assert long_context.analytic_ranking[0] == "sliding_window"

    def test_functional_tracks_analytic_magnitude(self, long_context):
        """Beyond ordering: the functional LongSight/dense ratio should be
        within ~25% of the analytic one on the same trace."""
        functional = long_context.speedup("longsight", "dense")
        analytic = long_context.speedup("longsight", "dense",
                                        layer="analytic")
        assert functional == pytest.approx(analytic, rel=0.25)


class TestCrossoverDirection:
    def test_gap_shrinks_at_short_context(self, model, long_context):
        short = cross_validate(model, LLAMA3_8B, LS, n_requests=5,
                               prompt_tokens=24,
                               charged_prompt_tokens=8_192,
                               output_tokens=10, pool_blocks=128, seed=0)
        gap_short = short.speedup("longsight", "dense")
        gap_long = long_context.speedup("longsight", "dense")
        assert gap_short < gap_long  # crossover direction
        # the analytic layer shows the same direction
        assert short.speedup("longsight", "dense", layer="analytic") \
            < long_context.speedup("longsight", "dense", layer="analytic")


class TestPairedWorkload:
    def test_layers_see_identical_traces(self):
        requests, sessions = paired_workload(
            n_requests=7, arrival_rate_per_s=3.0, prompt_tokens=20,
            output_tokens=5, vocab_size=TINY.vocab_size,
            charged_prompt_tokens=32_768, seed=1)
        assert len(requests) == len(sessions) == 7
        for request, session in zip(requests, sessions):
            assert request.arrival_s == session.arrival_s
            assert request.charged_prompt_tokens == session.prompt_tokens
            assert request.max_new_tokens == session.output_tokens
            # functional prompts are laptop scale, charged paper scale
            assert len(request.prompt) < session.prompt_tokens

    def test_default_systems_cover_the_cast(self):
        systems = default_systems()
        assert set(SYSTEM_NAMES) <= set(systems)
        for system in systems.values():
            assert hasattr(system, "step_latency_s")
