"""Prefix caching in the paged KV pool: attach, publish, refcounts, free.

These tests drive :class:`PagedKVCache` directly with synthetic K/V (no
transformer): the block-sharing machinery only moves and refcounts arena
rows, so deterministic per-token encodings are enough to prove blocks are
shared bit-exactly and never mutated while another session holds them.
"""

import numpy as np
import pytest

from repro.serve.paged_kv import PagedKVPool
from tests.conftest import TINY

BT = 4  # block_tokens used throughout


@pytest.fixture
def pool():
    return PagedKVPool(TINY, n_blocks=16, block_tokens=BT,
                       prefix_caching=True)


def _enc(tokens, layer):
    """Deterministic (token, layer) -> K/V rows encoding."""
    t = np.asarray(tokens, dtype=np.float32)
    base = t[None, :, None] + 1000.0 * layer
    return np.broadcast_to(
        base, (TINY.n_kv_heads, len(t), TINY.head_dim)).astype(
            np.float32).copy()


def _prefill(cache, tokens):
    """Simulate the engine: append all layers, then publish full blocks."""
    arr = np.asarray(tokens, dtype=np.int64)
    for layer in range(TINY.n_layers):
        k = _enc(arr, layer)
        cache.append(layer, k, k.copy())
    cache.publish_prefix(arr)


class TestAttachPublish:
    def test_attach_on_empty_index_misses(self, pool):
        cache = pool.new_cache()
        assert cache.attach_prefix(np.arange(3 * BT)) == 0
        assert pool.prefix_hits == 0
        assert pool.prefix_misses == 1
        cache.free()

    def test_publish_then_attach_shares_blocks(self, pool):
        tokens = np.arange(2 * BT + 2)  # two full blocks + a partial
        a = pool.new_cache()
        _prefill(a, tokens)
        assert pool.shared_blocks == 2

        b = pool.new_cache()
        attached = b.attach_prefix(tokens)
        assert attached == 2 * BT
        assert pool.prefix_hits == 2
        # the borrower maps the very same arena blocks
        assert b.block_ids == a.block_ids[:2]
        for layer in range(TINY.n_layers):
            np.testing.assert_array_equal(
                b.layers[layer].keys, _enc(tokens[:2 * BT], layer))
        a.free()
        b.free()

    def test_attach_stops_at_divergence(self, pool):
        shared = np.arange(2 * BT)
        a = pool.new_cache()
        _prefill(a, np.concatenate([shared, np.full(BT, 7)]))
        b = pool.new_cache()
        attached = b.attach_prefix(np.concatenate([shared, np.full(BT, 9)]))
        assert attached == 2 * BT  # diverging third block missed
        assert pool.prefix_misses == 1
        # the borrower finishes its own divergent block privately
        _prefill_from(b, np.concatenate([shared, np.full(BT, 9)]), attached)
        b.publish_prefix(np.concatenate([shared, np.full(BT, 9)]))
        assert pool.shared_blocks == 4  # 2 shared + one private tail each
        a.free()
        b.free()
        assert pool.n_free == pool.n_blocks

    def test_attach_requires_empty_cache(self, pool):
        tokens = np.arange(BT)
        a = pool.new_cache()
        _prefill(a, tokens)
        b = pool.new_cache()
        _prefill_from(b, tokens, 0)
        with pytest.raises(RuntimeError):
            b.attach_prefix(tokens)
        a.free()
        b.free()

    def test_duplicate_publish_keeps_private_copy(self, pool):
        tokens = np.arange(2 * BT)
        a = pool.new_cache()
        _prefill(a, tokens)
        b = pool.new_cache()
        _prefill_from(b, tokens, 0)  # raced: prefilled without attaching
        assert b.publish_prefix(tokens) == 0  # digests already registered
        assert pool.shared_blocks == 2
        assert set(a.block_ids).isdisjoint(b.block_ids)
        a.free()
        b.free()
        assert pool.n_free == pool.n_blocks
        assert pool.shared_blocks == 0

    def test_disabled_pool_is_inert(self):
        pool = PagedKVPool(TINY, n_blocks=8, block_tokens=BT,
                           prefix_caching=False)
        cache = pool.new_cache()
        _prefill(cache, np.arange(2 * BT))
        assert pool.shared_blocks == 0
        other = pool.new_cache()
        assert other.attach_prefix(np.arange(2 * BT)) == 0
        assert pool.prefix_hits == 0 and pool.prefix_misses == 0
        cache.free()
        other.free()
        assert pool.n_free == 8


def _prefill_from(cache, tokens, start):
    """Append layers for ``tokens[start:]`` (resume after attach)."""
    arr = np.asarray(tokens, dtype=np.int64)[start:]
    for layer in range(TINY.n_layers):
        k = _enc(arr, layer)
        cache.append(layer, k, k.copy())


class TestRefcountLifecycle:
    def test_blocks_survive_publisher_free(self, pool):
        tokens = np.arange(2 * BT)
        a = pool.new_cache()
        _prefill(a, tokens)
        b = pool.new_cache()
        b.attach_prefix(tokens)
        a.free()  # publisher leaves first
        assert pool.shared_blocks == 2  # borrower still holds them
        assert pool.n_free == pool.n_blocks - 2
        for layer in range(TINY.n_layers):
            np.testing.assert_array_equal(
                b.layers[layer].keys, _enc(tokens, layer))
        b.free()  # last reference drops -> blocks return, entries retire
        assert pool.shared_blocks == 0
        assert pool.n_free == pool.n_blocks

    def test_no_resident_caching_after_last_free(self, pool):
        tokens = np.arange(2 * BT)
        a = pool.new_cache()
        _prefill(a, tokens)
        a.free()
        assert pool.shared_blocks == 0  # entries retire with the session
        late = pool.new_cache()
        assert late.attach_prefix(tokens) == 0  # nothing left to attach
        late.free()

    def test_free_is_idempotent_with_shared_blocks(self, pool):
        tokens = np.arange(BT)
        a = pool.new_cache()
        _prefill(a, tokens)
        b = pool.new_cache()
        b.attach_prefix(tokens)
        b.free()
        b.free()  # second free must not decref again
        assert pool.shared_blocks == 1
        a.free()
        assert pool.n_free == pool.n_blocks

    def test_three_way_share_counts_references(self, pool):
        tokens = np.arange(2 * BT)
        a = pool.new_cache()
        _prefill(a, tokens)
        borrowers = []
        for _ in range(2):
            c = pool.new_cache()
            c.attach_prefix(tokens)
            borrowers.append(c)
        # 3 sessions, but only 2 distinct blocks live in the arena
        assert pool.n_used == 2
        a.free()
        borrowers[0].free()
        assert pool.n_used == 2  # one reference still standing
        borrowers[1].free()
        assert pool.n_used == 0
        assert pool.shared_blocks == 0


class TestProbe:
    def test_longest_prefix_probe_is_metric_free(self, pool):
        tokens = np.arange(3 * BT)
        a = pool.new_cache()
        _prefill(a, tokens)
        hits_before = pool.prefix_hits
        assert pool.longest_prefix_tokens(tokens) == 3 * BT
        assert pool.longest_prefix_tokens(tokens[: 2 * BT + 1]) == 2 * BT
        assert pool.longest_prefix_tokens(np.full(BT, 63)) == 0
        assert pool.prefix_hits == hits_before
        assert pool.prefix_misses == 0
        a.free()
