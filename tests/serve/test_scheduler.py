"""Scheduler policy unit tests: admission, assembly, degradation, preemption.

The scheduler is model-free by design, so these tests drive it directly
with synthetic requests and a small pool — no transformer involved.
"""

import numpy as np
import pytest

from repro.serve.paged_kv import PagedKVPool
from repro.serve.scheduler import (ContinuousBatchScheduler, RequestState,
                                   ServeRequest, SloPolicy)
from tests.conftest import TINY


def _request(i, prompt_tokens=8, max_new=4, arrival=0.0):
    return ServeRequest(request_id=i,
                        prompt=np.zeros(prompt_tokens, dtype=np.int64),
                        max_new_tokens=max_new, arrival_s=arrival)


def _scheduler(n_blocks=8, block_tokens=4, **policy):
    pool = PagedKVPool(TINY, n_blocks=n_blocks, block_tokens=block_tokens)
    return ContinuousBatchScheduler(pool, SloPolicy(**policy)), pool


class TestAdmission:
    def test_fifo_by_arrival(self):
        sched, _ = _scheduler()
        sched.submit(_request(1, arrival=2.0))
        sched.submit(_request(0, arrival=1.0))
        admitted = sched.admit(now=3.0)
        assert [r.request_id for r in admitted] == [0, 1]
        assert all(r.state is RequestState.PREFILL for r in admitted)
        assert all(r.events.admitted_s == 3.0 for r in admitted)

    def test_capacity_bounds_admission(self):
        # each prompt needs ceil(16/4) = 4 blocks; pool holds 8 -> 2 fit,
        # cumulatively within one admit() call (lazy allocation must not
        # let one free-list snapshot over-admit)
        sched, _ = _scheduler(n_blocks=8)
        for i in range(4):
            sched.submit(_request(i, prompt_tokens=16))
        admitted = sched.admit(now=0.0)
        assert len(admitted) == 2
        assert len(sched.queued) == 2

    def test_queue_timeout_sheds_stale_requests(self):
        sched, _ = _scheduler(queue_timeout_s=1.0)
        sched.submit(_request(0, arrival=0.0))
        sched.submit(_request(1, arrival=5.0))
        admitted = sched.admit(now=5.5)
        assert [r.request_id for r in admitted] == [1]
        stale = sched.finished[0]
        assert stale.request_id == 0
        assert stale.events.rejected and stale.events.shed

    def test_impossible_fit_rejected_not_stuck(self):
        sched, pool = _scheduler(n_blocks=2)
        sched.submit(_request(0, prompt_tokens=100))  # can never fit
        sched.submit(_request(1, prompt_tokens=4, arrival=0.1))
        admitted = sched.admit(now=0.5)
        # the impossible head was shed instead of clogging the queue
        assert [r.request_id for r in admitted] == [1]
        assert sched.finished[0].events.rejected

    def test_headroom_only_binds_when_running(self):
        sched, _ = _scheduler(n_blocks=3, admission_headroom_blocks=2)
        sched.submit(_request(0))  # needs 3 blocks == whole pool
        # idle system: headroom waived, the request is admitted
        assert len(sched.admit(now=0.0)) == 1
        sched.running[0].cache = sched.pool.new_cache()
        sched.submit(_request(1))
        # busy system: 0 free < need + headroom -> wait, not shed
        assert sched.admit(now=0.0) == []
        assert len(sched.queued) == 1


class TestAssembly:
    def test_decode_first_with_caps(self):
        sched, _ = _scheduler(n_blocks=64, max_decode_batch=2,
                              max_prefills_per_step=1)
        requests = [_request(i, arrival=i * 0.1) for i in range(5)]
        for r in requests:
            sched.submit(r)
        sched.admit(now=1.0)
        for r in requests[:3]:
            r.state = RequestState.DECODE
        plan = sched.assemble()
        assert [r.request_id for r in plan.decodes] == [0, 1]
        assert [r.request_id for r in plan.prefills] == [3]

    def test_empty_plan_when_idle(self):
        sched, _ = _scheduler()
        assert sched.assemble().empty


class TestDegradation:
    def test_pins_after_consecutive_budget(self):
        sched, _ = _scheduler(shed_after_consecutive_degraded=3)
        request = _request(0)
        for _ in range(2):
            sched.note_degraded(request, True)
        assert not request.pinned_dense
        sched.note_degraded(request, False)  # healthy token resets
        assert request.consecutive_degraded == 0
        for _ in range(3):
            sched.note_degraded(request, True)
        assert request.pinned_dense
        assert request.events.degraded_tokens == 5

    def test_pinned_session_retires_as_shed_with_output(self):
        sched, pool = _scheduler()
        request = _request(0)
        sched.submit(request)
        sched.admit(now=0.0)
        request.cache = pool.new_cache()
        request.pinned_dense = True
        sched.request_finished(request, now=1.0)
        assert request.state is RequestState.SHED
        assert request.events.shed
        assert request.events.finished_s == 1.0
        assert pool.n_free == pool.n_blocks


class TestPreemption:
    def _running_pair(self):
        sched, pool = _scheduler(n_blocks=8)
        old = _request(0, arrival=0.0)
        young = _request(1, arrival=1.0)
        for r in (old, young):
            sched.submit(r)
        sched.admit(now=0.0)
        sched.admit(now=1.0)
        for r in (old, young):
            r.cache = pool.new_cache()
            r.cache.ensure_tokens(8)
        return sched, pool, old, young

    def test_victim_is_youngest_admitted(self):
        sched, pool, old, young = self._running_pair()
        victim = sched.preempt_victim(needy=old)
        assert victim is young
        assert young.state is RequestState.QUEUED
        assert young.cache is None
        assert young.events.preemptions == 1
        assert sched.preemptions == 1
        # victim's blocks are back (only old's 2 blocks remain held)
        assert pool.n_used == 2
        # and it re-enters the queue for fair re-admission
        assert sched.queued == [young]

    def test_no_victim_when_alone(self):
        sched, pool = _scheduler()
        lone = _request(0)
        sched.submit(lone)
        sched.admit(now=0.0)
        lone.cache = pool.new_cache()
        assert sched.preempt_victim(needy=lone) is None

    def test_resume_tokens_replay_discipline(self):
        """A preempted request re-prefills prompt + outputs[:-1] and keeps
        the last sampled token pending for a true decode step."""
        request = _request(0, prompt_tokens=4)
        np.testing.assert_array_equal(request.resume_tokens, request.prompt)
        request.outputs = [7, 9, 11]
        resumed = request.resume_tokens
        np.testing.assert_array_equal(resumed[:4], request.prompt)
        np.testing.assert_array_equal(resumed[4:], [7, 9])


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_decode_batch": 0},
        {"prefill_chunk": 0},
        {"max_prefills_per_step": 0},
        {"admission_headroom_blocks": -1},
        {"shed_after_consecutive_degraded": 0},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SloPolicy(**kwargs)
