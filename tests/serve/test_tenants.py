"""Per-tenant SLO classes: weighted admission, fair decode truncation.

Model-free, like the scheduler suite: synthetic requests drive the
scheduler directly, so the stride-scheduling arithmetic and the
tenant-fair batch truncation are pinned without a transformer in the
loop.
"""

import numpy as np
import pytest

from repro.serve.paged_kv import PagedKVPool
from repro.serve.scheduler import (ContinuousBatchScheduler, RequestState,
                                   ServeRequest, SloPolicy, TenantClass)
from tests.conftest import TINY


def _request(i, tenant="default", prompt_tokens=8, max_new=4, arrival=0.0):
    return ServeRequest(request_id=i,
                        prompt=np.zeros(prompt_tokens, dtype=np.int64),
                        max_new_tokens=max_new, arrival_s=arrival,
                        tenant=tenant)


def _scheduler(n_blocks=8, block_tokens=4, **policy):
    pool = PagedKVPool(TINY, n_blocks=n_blocks, block_tokens=block_tokens)
    return ContinuousBatchScheduler(pool, SloPolicy(**policy)), pool


GOLD_FREE = (TenantClass("gold", weight=2), TenantClass("free", weight=1))


class TestWeightedAdmission:
    def test_stride_admission_honors_weights(self):
        # pool fits exactly one session at a time, so every admission is
        # a contended slot; weights 2:1 must yield a 2:1 admission rate.
        sched, _ = _scheduler(n_blocks=3, tenant_classes=GOLD_FREE)
        for i in range(6):
            sched.submit(_request(i, tenant="gold"))
            sched.submit(_request(100 + i, tenant="free"))
        order = []
        for _ in range(12):
            admitted = sched.admit(now=0.0)
            assert len(admitted) == 1
            order.append(admitted[0].tenant)
            sched.request_finished(admitted[0], now=0.0)
        # gold's 6 requests drain over the first 9 contended slots at a
        # 2:1 rate; the trailing 3 slots go to free's leftover queue.
        for k in (1, 2, 3):
            window = order[: 3 * k]
            assert window.count("gold") == 2 * k
            assert window.count("free") == k
        assert order[9:] == ["free"] * 3

    def test_single_tenant_keeps_fifo_order(self):
        # without tenant classes the stride machinery must reduce to the
        # original FIFO-by-arrival admission exactly.
        sched, _ = _scheduler()
        sched.submit(_request(1, arrival=2.0))
        sched.submit(_request(0, arrival=1.0))
        assert [r.request_id for r in sched.admit(now=3.0)] == [0, 1]

    def test_blocked_tenant_does_not_starve_others(self):
        # gold's head needs more free blocks than remain; free's small
        # head must still be admitted in the same call.
        sched, _ = _scheduler(n_blocks=8, tenant_classes=GOLD_FREE)
        sched.submit(_request(0, tenant="gold", prompt_tokens=28))
        sched.submit(_request(1, tenant="free", prompt_tokens=4))
        sched.submit(_request(2, tenant="gold", prompt_tokens=28))
        admitted = sched.admit(now=0.0)
        assert [r.request_id for r in admitted] == [0, 1]
        assert len(sched.queued) == 1  # gold's second head waits, unshed

    def test_per_tenant_timeout_overrides_policy(self):
        classes = (TenantClass("strict", weight=1, queue_timeout_s=1.0),
                   TenantClass("lax", weight=1))
        sched, _ = _scheduler(tenant_classes=classes, queue_timeout_s=60.0)
        sched.submit(_request(0, tenant="strict", arrival=0.0))
        sched.submit(_request(1, tenant="lax", arrival=0.0))
        admitted = sched.admit(now=5.0)
        assert [r.request_id for r in admitted] == [1]
        shed = sched.finished[0]
        assert shed.request_id == 0 and shed.events.rejected

    def test_late_joining_tenant_cannot_monopolize(self):
        # a tenant that sat idle must not bank virtual time: its vtime is
        # clamped to the active minimum on (re)activation, so it gets its
        # weighted share, not a catch-up burst.
        sched, _ = _scheduler(n_blocks=3, tenant_classes=GOLD_FREE)
        for i in range(4):
            sched.submit(_request(i, tenant="gold"))
        order = []
        for _ in range(2):
            admitted = sched.admit(now=0.0)
            order.append(admitted[0].tenant)
            sched.request_finished(admitted[0], now=0.0)
        for i in range(2):
            sched.submit(_request(100 + i, tenant="free"))
        for _ in range(4):
            admitted = sched.admit(now=0.0)
            order.append(admitted[0].tenant)
            sched.request_finished(admitted[0], now=0.0)
        # after free joins, gold still wins 2 of every 3 slots
        assert order[2:].count("gold") >= 2
        assert order[2:].count("free") >= 1


class TestFairDecodeTruncation:
    def _running_decodes(self, sched, specs):
        """Admit and promote requests so they sit in DECODE."""
        for i, tenant in specs:
            sched.submit(_request(i, tenant=tenant, prompt_tokens=4))
        for request in sched.admit(now=0.0):
            sched.prefill_complete(request)

    def test_over_cap_batch_mixes_tenants(self):
        sched, _ = _scheduler(n_blocks=64, max_decode_batch=2,
                              tenant_classes=(TenantClass("a"),
                                              TenantClass("b")))
        # all of tenant a admitted first: naive truncation would decode
        # only a's sessions and starve b entirely.
        self._running_decodes(
            sched, [(0, "a"), (1, "a"), (2, "a"), (100, "b")])
        plan = sched.assemble()
        assert len(plan.decodes) == 2
        assert {r.tenant for r in plan.decodes} == {"a", "b"}

    def test_under_cap_batch_is_untouched(self):
        sched, _ = _scheduler(n_blocks=64, max_decode_batch=8,
                              tenant_classes=(TenantClass("a"),
                                              TenantClass("b")))
        self._running_decodes(sched, [(0, "a"), (1, "b"), (2, "a")])
        plan = sched.assemble()
        assert [r.request_id for r in plan.decodes] == [0, 1, 2]

    def test_single_tenant_truncation_is_prefix(self):
        sched, _ = _scheduler(n_blocks=64, max_decode_batch=2)
        self._running_decodes(sched, [(0, "default"), (1, "default"),
                                      (2, "default")])
        plan = sched.assemble()
        assert [r.request_id for r in plan.decodes] == [0, 1]


class TestValidation:
    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ValueError):
            SloPolicy(tenant_classes=(TenantClass("a"), TenantClass("a")))

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            TenantClass("a", weight=0)

    def test_unknown_tenant_defaults_to_weight_one(self):
        policy = SloPolicy(tenant_classes=GOLD_FREE)
        assert policy.tenant_weight("gold") == 2
        assert policy.tenant_weight("anonymous") == 1
        assert policy.tenant_class("anonymous") is None

    def test_events_carry_tenant(self):
        request = _request(0, tenant="gold")
        assert request.events.tenant == "gold"
        assert request.events.as_dict()["tenant"] == "gold"
